//! View-selection scenario: which analytics counting queries can be answered
//! exactly from a set of materialised *count* views?
//!
//! Under bag semantics a boolean CQ is a COUNT(*) aggregate of a join — the
//! bread and butter of analytics dashboards.  A view set determines a query
//! exactly when the dashboard can be served from the materialised counts alone,
//! for *every* possible database state.  This example runs the Theorem 3
//! decision procedure over a small catalogue of candidate dashboards and
//! reports which ones are servable, together with the rewriting.
//!
//! Run with `cargo run --example view_selection`.

use cqdet::prelude::*;

fn cq(text: &str) -> ConjunctiveQuery {
    parse_query(text).expect("valid query").disjuncts()[0].clone()
}

fn main() {
    // Schema: Follows(user, user), Posts(user, post), Likes(user, post).
    let views = vec![
        cq("follows_count()      :- Follows(a,b)"),
        cq("posts_count()        :- Posts(u,p)"),
        cq("likes_count()        :- Likes(u,p)"),
        cq("self_follow_count()  :- Follows(a,a)"),
        cq("engagement_count()   :- Posts(u,p), Likes(v,p)"),
    ];

    let dashboards = vec![
        (
            "pairs of (follow, post) events",
            cq("d1() :- Follows(a,b), Posts(u,p)"),
        ),
        (
            "engagement × total likes",
            cq("d2() :- Posts(u,p), Likes(v,p), Likes(w,q)"),
        ),
        ("likes on own posts", cq("d3() :- Posts(u,p), Likes(u,p)")),
        (
            "follow chains of length 2",
            cq("d4() :- Follows(a,b), Follows(b,c)"),
        ),
        (
            "triple product of base counts",
            cq("d5() :- Follows(a,b), Posts(u,p), Likes(v,q)"),
        ),
        (
            "self-follows times posts",
            cq("d6() :- Follows(a,a), Posts(u,p)"),
        ),
    ];

    println!("== which dashboards are exactly answerable from the materialised counts? ==\n");
    let mut servable = 0;
    for (label, q) in &dashboards {
        let analysis = decide_bag_determinacy(&views, q).expect("boolean CQs");
        let verdict = if analysis.determined { "YES" } else { "no " };
        println!("[{verdict}] {label}");
        if let Some(rw) = analysis.rewriting(&views) {
            println!("       {rw}");
            servable += 1;
        } else {
            // For non-servable dashboards, exhibit two database states that
            // the views cannot tell apart but the dashboard can.
            let witness = build_counterexample(&analysis, q, &WitnessConfig::default())
                .expect("not determined");
            println!(
                "       counterexample: q(D) = {} but q(D') = {} while all views agree",
                witness.eval_on_d(q),
                witness.eval_on_d_prime(q)
            );
            assert!(witness.verify(&views, q));
        }
    }
    println!(
        "\n{servable}/{} dashboards are exactly servable from the views.",
        dashboards.len()
    );
}
