//! Quickstart: decide bag-semantics determinacy for a handful of boolean
//! conjunctive queries and print the analysis.
//!
//! Run with `cargo run --example quickstart`.

use cqdet::prelude::*;

fn cq(text: &str) -> ConjunctiveQuery {
    parse_query(text).expect("valid query").disjuncts()[0].clone()
}

fn main() {
    println!("== cqdet quickstart ==\n");

    // A tiny warehouse schema: Orders(customer, order), Ships(order, warehouse).
    let v1 = cq("v1() :- Orders(c,o), Ships(o,w)");
    let v2 = cq("v2() :- Ships(o,w)");
    let q_good = cq("q1() :- Orders(c,o), Ships(o,w), Ships(o2,w2)");
    let q_bad = cq("q2() :- Orders(c,o), Ships(o,w), Ships(o,w2)");

    for (label, q) in [
        ("q1 (join × extra shipment)", q_good),
        ("q2 (double shipment of one order)", q_bad),
    ] {
        let views = vec![v1.clone(), v2.clone()];
        let analysis = decide_bag_determinacy(&views, &q).expect("boolean CQs");
        println!("query {label}");
        println!("  determined under bag semantics: {}", analysis.determined);
        println!(
            "  retained views (q ⊆_set v):     {:?}",
            analysis.retained_views
        );
        println!("  basis size k = {}", analysis.basis_size());
        println!("  q⃗ = {}", analysis.query_vector);
        match analysis.rewriting(&views) {
            Some(rw) => println!("  rewriting: {rw}"),
            None => {
                println!("  no rewriting exists; building a counterexample …");
                let witness = build_counterexample(&analysis, &q, &WitnessConfig::default())
                    .expect("instance is not determined");
                let (y, y2) = witness.answer_vectors();
                println!(
                    "  counterexample answer vectors on the basis queries:\n    D  ↦ {:?}\n    D' ↦ {:?}",
                    y.iter().map(|n| n.to_string()).collect::<Vec<_>>(),
                    y2.iter().map(|n| n.to_string()).collect::<Vec<_>>(),
                );
                println!(
                    "  q(D) = {}   vs   q(D') = {}",
                    witness.eval_on_d(&q),
                    witness.eval_on_d_prime(&q)
                );
                assert!(witness.verify(&views, &q));
            }
        }
        println!();
    }
}
