//! Path queries (Theorem 1): determinacy via the prefix graph, the induced
//! q-walk, and the Appendix B counterexample for an undetermined instance.
//!
//! Run with `cargo run --example path_queries`.

use cqdet::core::paths::{
    derivation_to_q_walk, eval_path_matrix, non_determinacy_witness, path_schema, reduce_q_walk,
};
use cqdet::prelude::*;
use cqdet::query::eval::eval_cq;

fn main() {
    println!("== path-query determinacy (Theorem 1) ==\n");

    // Example 13 of the paper: q = ABCD, V = {ABC, BC, BCD}.
    let q = PathQuery::from_compact("ABCD");
    let views = vec![
        PathQuery::from_compact("ABC"),
        PathQuery::from_compact("BC"),
        PathQuery::from_compact("BCD"),
    ];
    let analysis = decide_path_determinacy(&views, &q);
    println!("q = {q},  V = {{ABC, BC, BCD}}");
    println!("determined (set ⇔ bag, Theorem 1): {}", analysis.determined);
    let steps = analysis.derivation.clone().expect("determined");
    print!("derivation: ε");
    for s in &steps {
        let dir = if s.sign > 0 { "+" } else { "−" };
        print!(" →({dir}{}) {}", views[s.view], q.prefix(s.to_len));
    }
    println!();
    let walk = derivation_to_q_walk(&views, &steps);
    println!(
        "induced q-walk: {}",
        walk.iter()
            .map(|(l, s)| if *s > 0 {
                l.clone()
            } else {
                format!("{l}⁻¹")
            })
            .collect::<Vec<_>>()
            .join("")
    );
    let reduced = reduce_q_walk(&walk);
    println!(
        "reduced (Lemma 15): {}",
        reduced
            .iter()
            .map(|(l, _)| l.clone())
            .collect::<Vec<_>>()
            .join("")
    );

    // An undetermined instance and its Appendix B witness.
    println!("\nq = ABC,  V = {{AB, BC}}");
    let q2 = PathQuery::from_compact("ABC");
    let views2 = vec![PathQuery::from_compact("AB"), PathQuery::from_compact("BC")];
    let analysis2 = decide_path_determinacy(&views2, &q2);
    println!("determined: {}", analysis2.determined);
    let (d, d_prime) = non_determinacy_witness(&views2, &q2).expect("not determined");
    let schema = path_schema(&views2, &q2);
    println!("witness D  = {d}");
    println!("witness D' = {d_prime}");
    for v in &views2 {
        let a = eval_cq(&v.to_cq("v"), &schema, &d);
        let b = eval_cq(&v.to_cq("v"), &schema, &d_prime);
        println!("  {v}(D) = {v}(D')  : {}", a == b);
    }
    println!(
        "  q(D) = {}  vs  q(D') = {}",
        eval_cq(&q2.to_cq("q"), &schema, &d).total(),
        eval_cq(&q2.to_cq("q"), &schema, &d_prime).total()
    );

    // Fast evaluation through incidence matrices (Fact 18).
    println!("\nmatrix evaluation of q = ABC over D (Fact 18):");
    let answers = eval_path_matrix(&q2, &d);
    for (tuple, count) in answers.iter() {
        println!(
            "  path from {} to {}: multiplicity {}",
            tuple[0], tuple[1], count
        );
    }
}
