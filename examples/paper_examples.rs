//! Reproduce every worked example and both figures of the paper,
//! printing the objects the paper shows (this is the companion binary to
//! `EXPERIMENTS.md` §FIG-1, §FIG-2, §EX-*).
//!
//! Run with `cargo run --example paper_examples`.

use cqdet::core::paths::{non_determinacy_witness, path_schema};
use cqdet::linalg::{cone_contains, interior_cone_point};
use cqdet::prelude::*;
use cqdet::query::eval::{eval_boolean_ucq, eval_cq};
use cqdet::structure::Structure;

fn cq(text: &str) -> ConjunctiveQuery {
    parse_query(text).expect("valid query").disjuncts()[0].clone()
}

/// Figure 1 / Example 39: the evaluation matrix `M_W` of the figure's pair
/// `w1, w2` is singular, so `W` itself cannot serve as a good basis.
///
/// The structures in Fig. 1 are only drawn, not listed, so we reproduce the
/// *matrix* the paper prints (`M_W(i,j) = |hom(wᵢ, wⱼ)| = [[2,4],[1,2]]`) and
/// the consequence spelled out in Example 42: on every structure
/// `D = a·w1 + b·w2 ∈ span_ℕ(W)` the answers are locked in the fixed ratio
/// `w1(D) = 2·w2(D)`, so no counterexample pair can live inside `span_ℕ(W)`.
fn figure_1() {
    println!("--- Figure 1 / Example 39: a singular M_W ---");
    let m_w = QMat::from_i64_rows(&[&[2, 4], &[1, 2]]);
    println!("M_W =\n{m_w}");
    println!("nonsingular: {}", m_w.is_nonsingular());
    println!("answers on D = a·w1 + b·w2 (rows: a,b = 0..3):");
    for a in 0..4i64 {
        for b in 0..4i64 {
            let answers = m_w.mul_vec(&QVec::from_i64s(&[a, b]));
            print!("  ({},{})", answers[0], answers[1]);
        }
        println!();
    }
    println!("w1(D) = 2·w2(D) on every D ∈ span_N(W)  →  W is not a usable basis (Example 42).");
}

/// Figure 2 / Example 54: the cone C and the answer set P for a *nonsingular*
/// evaluation matrix, rendered as ASCII.
fn figure_2() {
    println!("\n--- Figure 2 / Example 54: the cone C and the set P ---");
    // M_S = [[1,4],[1,2]] (columns are the answer vectors of s1, s2).
    let m = QMat::from_i64_rows(&[&[1, 4], &[1, 2]]);
    println!("M_S =\n{m}");
    println!("nonsingular: {}", m.is_nonsingular());
    let p = interior_cone_point(&m);
    println!("a rational interior point of C: {p}");
    // ASCII plot: x = answer to w1, y = answer to w2; '#' = in C, '*' = in P.
    let in_p = |x: i64, y: i64| -> bool {
        // P = {M·u : u ∈ ℕ²}: search small coefficients.
        for a in 0..=x.max(y) {
            for b in 0..=x.max(y) {
                if a + 4 * b == x && a + 2 * b == y {
                    return true;
                }
            }
        }
        false
    };
    let height = 8i64;
    let width = 17i64;
    for y in (0..=height).rev() {
        let mut line = String::new();
        for x in 0..=width {
            let inside = cone_contains(&m, &QVec::from_i64s(&[x, y]));
            let ch = if in_p(x, y) {
                '*'
            } else if inside {
                '·'
            } else {
                ' '
            };
            line.push(ch);
        }
        println!("w2={y:>2} |{line}");
    }
    println!("       +{}", "-".repeat((width + 1) as usize));
    println!("        w1 = 0..{width}   (* ∈ P,  · ∈ C\\P)");
}

/// Example 2: set-determinacy does not imply bag-determinacy.
fn example_2() {
    println!("\n--- Example 2: V →_set q but V ↛_bag q ---");
    let schema = Schema::with_relations([("P", 2), ("R", 2), ("S", 2)]);
    let q = parse_query("q(x) :- P(u,x), R(x,y), S(y,z)").unwrap();
    let v1 = parse_query("v1(x) :- P(u,x), R(x,y)").unwrap();
    let v2 = parse_query("v2(x) :- R(x,y), S(y,z)").unwrap();
    // A counterexample pair for bag semantics: the views count |P⋈R| and
    // |R⋈S| per x, which cannot recover |P⋈R⋈S| = #P(·,x)·Σ_y R(x,y)·#S(y,·).
    let mut d = Structure::new(schema.clone());
    d.add("P", &[0, 1]);
    d.add("R", &[1, 2]);
    d.add("R", &[1, 3]);
    d.add("S", &[2, 4]);
    d.add("S", &[3, 5]);
    let mut d2 = Structure::new(schema.clone());
    d2.add("P", &[0, 1]);
    d2.add("P", &[6, 1]);
    d2.add("R", &[1, 2]);
    d2.add("S", &[2, 4]);
    d2.add("S", &[2, 5]);
    for (name, view) in [("v1", &v1), ("v2", &v2)] {
        let a = eval_cq(&view.disjuncts()[0], &schema, &d);
        let b = eval_cq(&view.disjuncts()[0], &schema, &d2);
        println!("  {name}(D) = {name}(D') as bags? {}", a == b);
    }
    let qa = eval_cq(&q.disjuncts()[0], &schema, &d);
    let qb = eval_cq(&q.disjuncts()[0], &schema, &d2);
    println!("  q(D) = q(D') as bags? {}   ({} vs {})", qa == qb, qa, qb);
}

/// Example 3: bag-determinacy does not imply set-determinacy (needs UCQs).
fn example_3() {
    println!("\n--- Example 3: V →_bag q but V ↛_set q (UCQ views) ---");
    let schema = Schema::with_relations([("P", 1), ("R", 1)]);
    let q = parse_query("q() :- R(x)").unwrap();
    let v1 = parse_query("v1() :- P(x)").unwrap();
    let v2 = parse_query("v2() :- P(x) | R(x)").unwrap();
    // Under bag semantics q(D) = v2(D) − v1(D) for every D; check on a sample.
    let mut d = Structure::new(schema.clone());
    d.add("P", &[0]);
    d.add("P", &[1]);
    d.add("R", &[2]);
    d.add("R", &[3]);
    d.add("R", &[4]);
    let qv = eval_boolean_ucq(&q, &schema, &d);
    let v1v = eval_boolean_ucq(&v1, &schema, &d);
    let v2v = eval_boolean_ucq(&v2, &schema, &d);
    println!("  on a sample D: q(D) = {qv}, v1(D) = {v1v}, v2(D) = {v2v}");
    println!(
        "  q(D) = v2(D) − v1(D)? {}",
        Int::from_nat(qv) == Int::from_nat(v2v) - Int::from_nat(v1v)
    );
    // Under set semantics the views cannot distinguish {P(a)} from {P(a),R(b)}.
    let mut e1 = Structure::new(schema.clone());
    e1.add("P", &[0]);
    let mut e2 = Structure::new(schema.clone());
    e2.add("P", &[0]);
    e2.add("R", &[1]);
    let sat = |u: &UnionQuery, s: &Structure| !eval_boolean_ucq(u, &schema, s).is_zero();
    println!(
        "  set semantics: views agree on E1/E2? {}   q agrees? {}",
        sat(&v1, &e1) == sat(&v1, &e2) && sat(&v2, &e1) == sat(&v2, &e2),
        sat(&q, &e1) == sat(&q, &e2)
    );
}

/// Example 32 / the (⇐) direction of the Main Lemma: a span relationship
/// yields a rewriting.
fn example_32() {
    println!("\n--- Example 32: q⃗ = 3·v⃗1 − v⃗2 gives q(D) = v1(D)³/v2(D) ---");
    let q = cq("q() :- R(e0x,e0y), R(l0,l0), R(p0x,p0y), R(p0y,p0z), R(p1x,p1y), R(p1y,p1z)");
    let v1 = cq("v1() :- R(ae0x,ae0y), R(ae1x,ae1y), R(al0,al0), R(ap0x,ap0y), R(ap0y,ap0z), R(ap1x,ap1y), R(ap1y,ap1z), R(ap2x,ap2y), R(ap2y,ap2z)");
    let v2 = cq("v2() :- R(b0x,b0y), R(b1x,b1y), R(b2x,b2y), R(b3x,b3y), R(b4x,b4y), R(bl0,bl0), R(bl1,bl1), R(bp0x,bp0y), R(bp0y,bp0z), R(bp1x,bp1y), R(bp1y,bp1z), R(bp2x,bp2y), R(bp2y,bp2z), R(bp3x,bp3y), R(bp3y,bp3z), R(bp4x,bp4y), R(bp4y,bp4z), R(bp5x,bp5y), R(bp5y,bp5z), R(bp6x,bp6y), R(bp6y,bp6z)");
    let views = vec![v1, v2];
    let analysis = decide_bag_determinacy(&views, &q).unwrap();
    println!("  determined: {}", analysis.determined);
    println!("  {}", analysis.rewriting(&views).unwrap());
}

/// Example 42: the basis W itself is not good enough — its evaluation matrix
/// can be singular, which is why Section 6 builds a different basis S.
fn example_42() {
    println!("\n--- Example 42: why W itself cannot serve as the basis S ---");
    let q = cq("q() :- R(x,y), R(y,z)");
    let v = cq("v() :- R(x,y)");
    let analysis = decide_bag_determinacy(std::slice::from_ref(&v), &q).unwrap();
    println!(
        "  determined: {} (so a counterexample exists)",
        analysis.determined
    );
    let witness = build_counterexample(&analysis, &q, &WitnessConfig::default()).unwrap();
    println!("  the good basis replaces W; evaluation matrix:");
    print!("{}", witness.evaluation_matrix);
    println!(
        "  nonsingular: {}",
        witness.evaluation_matrix.is_nonsingular()
    );
    println!("  verified counterexample: {}", witness.verify(&[v], &q));
}

/// Appendix B witness for a path-query instance (the proof device of Lemma 11 (⇒)).
fn appendix_b() {
    println!("\n--- Appendix B: the D = q+q vs rewired D' pair ---");
    let q = PathQuery::from_compact("AB");
    let views = vec![PathQuery::from_compact("A")];
    let (d, d2) = non_determinacy_witness(&views, &q).unwrap();
    let schema = path_schema(&views, &q);
    println!("  D  = {d}");
    println!("  D' = {d2}");
    println!(
        "  q distinguishes them: {}",
        eval_cq(&q.to_cq("q"), &schema, &d) != eval_cq(&q.to_cq("q"), &schema, &d2)
    );
}

fn main() {
    figure_1();
    figure_2();
    example_2();
    example_3();
    example_32();
    example_42();
    appendix_b();
}
