//! Walk through the full counterexample construction of Sections 5–7 for a
//! small undetermined instance, printing every intermediate object of the
//! proof: the basis `W`, the good basis `S`, the evaluation matrix `M`, the
//! orthogonal vector `z⃗`, the perturbation factor `t`, and the final pair
//! `D, D′` — then verify the certificate, symbolically and (because this
//! instance is tiny) by materialising the structures and recounting every
//! homomorphism by brute force.
//!
//! Run with `cargo run --example counterexample`.

use cqdet::core::witness::check_certificate_arithmetic;
use cqdet::prelude::*;

fn cq(text: &str) -> ConjunctiveQuery {
    parse_query(text).expect("valid query").disjuncts()[0].clone()
}

fn main() {
    // q = "number of R-paths of length 2", V = {"number of R-edges"}.
    let q = cq("q() :- R(x,y), R(y,z)");
    let v = cq("v() :- R(x,y)");
    let views = vec![v];

    let analysis = decide_bag_determinacy(&views, &q).expect("boolean CQs");
    println!("determined: {}", analysis.determined);
    println!("basis W ({} components):", analysis.basis_size());
    for (i, w) in analysis.basis.iter().enumerate() {
        println!("  w{} = {w}", i + 1);
    }
    println!("q⃗ = {}", analysis.query_vector);
    for (pos, vec) in analysis.view_vectors.iter().enumerate() {
        println!("v⃗{} = {vec}", pos + 1);
    }

    let witness =
        build_counterexample(&analysis, &q, &WitnessConfig::default()).expect("not determined");
    println!("\ngood basis S (symbolic):");
    for (i, s) in witness.good_basis.iter().enumerate() {
        println!("  s{} = {s}", i + 1);
    }
    println!("\nevaluation matrix M(i,j) = |hom(wᵢ, sⱼ)|:");
    print!("{}", witness.evaluation_matrix);
    println!("z⃗ = {}   (⊥ to every v⃗, not ⊥ to q⃗)", witness.z);
    println!("t  = {}", witness.t);
    println!(
        "α⃗  = {:?}",
        witness
            .alpha
            .iter()
            .map(|n| n.to_string())
            .collect::<Vec<_>>()
    );
    println!(
        "α⃗′ = {:?}",
        witness
            .alpha_prime
            .iter()
            .map(|n| n.to_string())
            .collect::<Vec<_>>()
    );
    println!("\nD  = {}", witness.d);
    println!("D' = {}", witness.d_prime);

    println!(
        "\ncertificate arithmetic holds: {}",
        check_certificate_arithmetic(&witness, &analysis)
    );
    println!("symbolic verification: {}", witness.verify(&views, &q));
    println!(
        "v(D) = {}   v(D') = {}",
        witness.eval_on_d(&views[0]),
        witness.eval_on_d_prime(&views[0])
    );
    println!(
        "q(D) = {}   q(D') = {}",
        witness.eval_on_d(&q),
        witness.eval_on_d_prime(&q)
    );

    match witness.verify_by_materialization(&views, &q, &WitnessConfig::default()) {
        Some(ok) => println!("brute-force verification on the materialised structures: {ok}"),
        None => println!("structures too large to materialise (symbolic certificate only)"),
    }
}
