//! Batch engine walkthrough: decide a fleet of tasks sharing one view pool
//! through a single `DecisionSession`, print the per-task certificates and
//! the cross-request cache statistics, and compare against one-shot calls.
//!
//! Run with `cargo run --release --example batch_session`.

use cqdet::prelude::*;
use std::time::Instant;

fn cq(text: &str) -> ConjunctiveQuery {
    parse_query(text).expect("valid query").disjuncts()[0].clone()
}

fn main() {
    println!("== cqdet batch session ==\n");

    // One pool of views, shared by every task — the regime the session
    // caches target.  (Real deployments would parse a task file instead;
    // see `cqdet batch --help` and cqdet::engine::taskfile.)
    let views = vec![
        cq("v1() :- R(x,y)"),
        cq("v2() :- R(x,y), R(y,z)"),
        cq("v3() :- R(x,y), R(u,w)"),
    ];
    let queries = [
        "q0() :- R(x,y), R(u,w)",                 // determined: 2·v1
        "q1() :- R(x,y), R(y,z), R(a,b)",         // determined: v2 + v1
        "q2() :- R(x,y), R(y,z), R(z,w)",         // not determined (3-path)
        "q3() :- R(x,y), R(u,w), R(a,b), R(c,d)", // determined: 4·v1
    ];
    let tasks: Vec<Task> = (0..16)
        .map(|i| Task {
            id: format!("t{i}"),
            views: views.clone(),
            query: cq(queries[i % queries.len()]).with_name(format!("q{i}")),
        })
        .collect();

    // One-shot baseline: every call pays freezing/canonization/gates anew.
    let start = Instant::now();
    for task in &tasks {
        decide_bag_determinacy(&task.views, &task.query).expect("boolean CQs");
    }
    let fresh = start.elapsed();

    // The session: caches shared across all 16 tasks (and across the
    // per-task witness constructions for the undetermined ones).
    let session = DecisionSession::new();
    let start = Instant::now();
    let report = session.decide_batch(&tasks);
    let shared = start.elapsed();

    for record in &report.records {
        println!(
            "{:>4}  {:<14}  verified: {:?}",
            record.id,
            record.status.as_str(),
            record.verified
        );
        if let Some(rewriting) = &record.rewriting {
            println!("      {rewriting}");
        }
        if let Some((d, d_prime)) = &record.answer_vectors {
            let render = |v: &[Nat]| {
                v.iter()
                    .map(|n| n.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            };
            println!(
                "      counterexample answers: w⃗(D)=[{}] ≠ w⃗(D′)=[{}]",
                render(d),
                render(d_prime)
            );
        }
    }

    let stats = report.stats;
    println!("\nsession caches after the batch:");
    println!(
        "  frozen bodies {} hits / {} misses, gates {} / {}, hom memo {} / {}",
        stats.frozen_hits,
        stats.frozen_misses,
        stats.gate_hits,
        stats.gate_misses,
        stats.hom.hits,
        stats.hom.misses
    );
    println!("  {} isomorphism classes interned", stats.iso_classes);
    println!(
        "\none-shot calls {:.2} ms  vs  shared session {:.2} ms (incl. witnesses)",
        fresh.as_secs_f64() * 1e3,
        shared.as_secs_f64() * 1e3
    );
    assert!(report.all_verified(), "every certificate re-verifies");
}
