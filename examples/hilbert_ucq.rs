//! Theorem 2: the reduction from Hilbert's Tenth Problem to bag-determinacy of
//! boolean UCQs, run on the Pythagorean instance x² + y² − z² = 0.
//!
//! Run with `cargo run --example hilbert_ucq`.

use cqdet::hilbert::structures::{bounded_refutation, verify_counterexample};
use cqdet::prelude::*;
use cqdet::query::eval::eval_boolean_ucq;

fn main() {
    let instance =
        DiophantineInstance::from_terms(&[(1, &[("x", 2)]), (1, &[("y", 2)]), (-1, &[("z", 2)])]);
    println!("Diophantine instance: {instance}");

    let encoding = encode(&instance);
    println!("\nencoded schema: {}", encoding.schema);
    println!("query q = {}", encoding.query);
    for v in &encoding.views {
        println!("view {}  ({} disjunct(s))", v.name(), v.len());
    }
    println!(
        "total CQ disjuncts across views: {}",
        encoding.total_disjuncts()
    );

    println!("\nsearching for a solution with unknowns ≤ 5 …");
    match bounded_refutation(&instance, 5) {
        Some((enc, d, d_prime)) => {
            println!("solution found → the encoded view set does NOT determine q.");
            println!("D  = {d}");
            println!("D' = {d_prime}");
            println!(
                "verified counterexample: {}",
                verify_counterexample(&enc, &d, &d_prime)
            );
            for v in &enc.views {
                println!(
                    "  {}(D) = {}   {}(D') = {}",
                    v.name(),
                    eval_boolean_ucq(v, &enc.schema, &d),
                    v.name(),
                    eval_boolean_ucq(v, &enc.schema, &d_prime)
                );
            }
            println!(
                "  q(D) = {}   q(D') = {}",
                eval_boolean_ucq(&enc.query, &enc.schema, &d),
                eval_boolean_ucq(&enc.query, &enc.schema, &d_prime)
            );
        }
        None => println!("no solution in the box — nothing can be concluded (Theorem 2!)"),
    }

    // An instance with no solution over ℕ: x + 1 = 0.
    let unsolvable = DiophantineInstance::from_terms(&[(1, &[("x", 1)]), (1, &[])]);
    println!("\nDiophantine instance: {unsolvable}");
    println!(
        "bounded search up to 50: {:?} — the encoded instance is determined, \
         but no algorithm can certify that in general (that is Theorem 2).",
        bounded_refutation(&unsolvable, 50).is_none()
    );
}
