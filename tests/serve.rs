//! Integration tests for `cqdet serve`: drive the real binary over a real
//! TCP socket (concurrent pipelined requests, malformed requests, deadline
//! expiry, graceful shutdown) and over stdin/stdout, asserting that every
//! outcome is a typed response — never a panic, never a dropped connection.

use cqdet::engine::Json;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const PROGRAM: &str = "v1() :- R(x,y)\\nv2() :- R(x,y), R(y,z)\\nq() :- R(x,y), R(u,w)";
const TASKS: &str =
    "v1() :- R(x,y)\\nq1() :- R(x,y), R(u,w)\\ntask t1: q1 <- v1\\ntask t2: q1 <- *";

/// A running `cqdet serve --tcp 127.0.0.1:0` child plus its bound address.
struct Server {
    child: Child,
    addr: String,
}

impl Server {
    fn start() -> Server {
        let mut child = Command::new(env!("CARGO_BIN_EXE_cqdet"))
            .args(["serve", "--tcp", "127.0.0.1:0"])
            .stdin(Stdio::null())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn cqdet serve");
        // The first stdout line announces the bound (ephemeral) port.
        let stdout = child.stdout.take().expect("child stdout");
        let mut reader = BufReader::new(stdout);
        let mut ready = String::new();
        reader.read_line(&mut ready).expect("ready line");
        let ready = Json::parse(ready.trim()).expect("ready line is JSON");
        assert_eq!(ready.get("type").unwrap().as_str(), Some("serving"));
        let addr = ready
            .get("addr")
            .and_then(Json::as_str)
            .expect("ready line carries the address")
            .to_string();
        Server { child, addr }
    }

    fn connect(&self) -> TcpStream {
        let stream = TcpStream::connect(&self.addr).expect("connect to cqdet serve");
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .unwrap();
        stream
    }

    /// Wait (bounded) for the child to exit after a graceful shutdown.
    fn wait_for_exit(mut self) {
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            match self.child.try_wait().expect("try_wait") {
                Some(status) => {
                    assert!(status.success(), "server exited with {status}");
                    return;
                }
                None if Instant::now() > deadline => {
                    let _ = self.child.kill();
                    panic!("server did not exit within 30s of shutdown");
                }
                None => std::thread::sleep(Duration::from_millis(25)),
            }
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // Idempotent safety net for panicking tests.
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Send one JSON line and read one response line.
fn roundtrip(stream: &mut TcpStream, line: &str) -> Json {
    stream.write_all(line.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    stream.flush().unwrap();
    read_response(stream)
}

fn read_response(stream: &mut TcpStream) -> Json {
    let mut line = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match stream.read(&mut byte) {
            Ok(0) => panic!("connection closed before a response arrived"),
            Ok(_) if byte[0] == b'\n' => break,
            Ok(_) => line.push(byte[0]),
            Err(e) => panic!("read error: {e}"),
        }
    }
    Json::parse(std::str::from_utf8(&line).expect("utf-8 response")).expect("JSON response")
}

#[test]
fn tcp_server_answers_interleaved_requests_with_shared_caches() {
    let server = Server::start();

    // Warm the session caches with one decide on the first connection.
    let mut warm = server.connect();
    let first = roundtrip(
        &mut warm,
        &format!(r#"{{"id":"warm","type":"decide","program":"{PROGRAM}"}}"#),
    );
    assert_eq!(first.get("type").unwrap().as_str(), Some("decide"));
    assert_eq!(
        first.get("record").unwrap().get("status").unwrap().as_str(),
        Some("determined")
    );

    // Concurrent connections, each pipelining a different workload family.
    std::thread::scope(|scope| {
        let addr = &server.addr;
        let mut handles = Vec::new();
        for c in 0..4 {
            handles.push(scope.spawn(move || {
                let mut stream = TcpStream::connect(addr).expect("connect");
                stream
                    .set_read_timeout(Some(Duration::from_secs(60)))
                    .unwrap();
                // Pipelining: write every request before reading any reply.
                let requests = [
                    format!(
                        r#"{{"id":"{c}-d","type":"decide","program":"{PROGRAM}","witness":true}}"#
                    ),
                    format!(r#"{{"id":"{c}-b","type":"batch","tasks":"{TASKS}"}}"#),
                    format!(r#"{{"id":"{c}-p","type":"path","query":"AB","views":["A","AB"]}}"#),
                    format!(
                        r#"{{"id":"{c}-h","type":"hilbert","bound":3,"monomials":["+1:x","-2:"]}}"#
                    ),
                ];
                for r in &requests {
                    stream.write_all(r.as_bytes()).unwrap();
                    stream.write_all(b"\n").unwrap();
                }
                stream.flush().unwrap();
                // Responses come back in request order with echoed ids.
                let decide = read_response(&mut stream);
                assert_eq!(decide.get("id").unwrap().as_str(), Some(&*format!("{c}-d")));
                let record = decide.get("record").unwrap();
                assert_eq!(record.get("status").unwrap().as_str(), Some("determined"));
                assert_eq!(record.get("verified").unwrap().as_bool(), Some(true));
                assert_eq!(record.get("version").unwrap().as_u64(), Some(1));

                let batch = read_response(&mut stream);
                assert_eq!(batch.get("id").unwrap().as_str(), Some(&*format!("{c}-b")));
                let records = batch.get("records").unwrap().as_arr().unwrap();
                assert_eq!(records.len(), 2);
                for r in records {
                    assert_eq!(r.get("status").unwrap().as_str(), Some("determined"));
                }

                let path = read_response(&mut stream);
                assert_eq!(path.get("determined").unwrap().as_bool(), Some(true));

                let hilbert = read_response(&mut stream);
                assert_eq!(
                    hilbert.get("id").unwrap().as_str(),
                    Some(&*format!("{c}-h"))
                );
                let refutation = hilbert.get("refutation").unwrap();
                assert_eq!(refutation.get("verified").unwrap().as_bool(), Some(true));
            }));
        }
        for h in handles {
            h.join().expect("client thread");
        }
    });

    // The decide requests shared one view pool: the session stats must show
    // cross-connection cache hits.
    let stats_response = roundtrip(&mut warm, r#"{"id":"s","type":"stats"}"#);
    let stats = stats_response.get("stats").unwrap();
    assert!(
        stats.get("frozen_hits").unwrap().as_u64().unwrap() > 0,
        "concurrent connections must share the frozen-body cache: {stats:?}"
    );
    assert!(
        stats.get("gate_hits").unwrap().as_u64().unwrap() > 0,
        "concurrent connections must share the containment-gate cache: {stats:?}"
    );

    // Graceful shutdown: acknowledged, then the process exits cleanly.
    let ack = roundtrip(&mut warm, r#"{"id":"bye","type":"shutdown"}"#);
    assert_eq!(ack.get("type").unwrap().as_str(), Some("shutdown"));
    server.wait_for_exit();
}

#[test]
fn malformed_and_expired_requests_yield_typed_responses() {
    let server = Server::start();
    let mut stream = server.connect();

    // Not JSON: a typed parse error, id null, connection stays up.
    let err = roundtrip(&mut stream, "this is not json");
    assert_eq!(err.get("type").unwrap().as_str(), Some("error"));
    assert_eq!(err.get("id"), Some(&Json::Null));
    assert_eq!(
        err.get("error").unwrap().get("code").unwrap().as_str(),
        Some("parse")
    );

    // Unknown request type: schema error, id echoed.
    let err = roundtrip(&mut stream, r#"{"id":"u","type":"frobnicate"}"#);
    assert_eq!(err.get("id").unwrap().as_str(), Some("u"));
    assert_eq!(
        err.get("error").unwrap().get("code").unwrap().as_str(),
        Some("schema")
    );

    // A program outside the decidable fragment: the decision engine's typed
    // rejection arrives as an error *record*, not a dropped connection.
    let response = roundtrip(
        &mut stream,
        r#"{"id":"f","type":"decide","program":"v() :- R(x,y)\nq(x) :- R(x,y)"}"#,
    );
    let record = response.get("record").unwrap();
    assert_eq!(record.get("status").unwrap().as_str(), Some("error"));
    assert!(record
        .get("error")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("boolean"));

    // An already-expired deadline: a typed timeout response.
    let timeout = roundtrip(
        &mut stream,
        &format!(r#"{{"id":"t","type":"decide","program":"{PROGRAM}","deadline_ms":0}}"#),
    );
    assert_eq!(timeout.get("type").unwrap().as_str(), Some("timeout"));
    let error = timeout.get("error").unwrap();
    assert_eq!(error.get("code").unwrap().as_str(), Some("deadline"));
    assert!(error.get("stage").unwrap().as_str().is_some());

    // The same connection still answers real work afterwards.
    let ok = roundtrip(
        &mut stream,
        &format!(r#"{{"id":"ok","type":"decide","program":"{PROGRAM}"}}"#),
    );
    assert_eq!(
        ok.get("record").unwrap().get("status").unwrap().as_str(),
        Some("determined")
    );

    let _ = roundtrip(&mut stream, r#"{"id":"bye","type":"shutdown"}"#);
    server.wait_for_exit();
}

#[test]
fn stdio_transport_smoke() {
    // The zero-setup mode: pipe JSON-lines through stdin/stdout.
    let mut child = Command::new(env!("CARGO_BIN_EXE_cqdet"))
        .arg("serve")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn cqdet serve (stdio)");
    let mut stdin = child.stdin.take().unwrap();
    let requests = format!(
        "{}\n{}\n",
        format_args!(r#"{{"id":"1","type":"decide","program":"{PROGRAM}","witness":true}}"#),
        r#"{"id":"2","type":"shutdown"}"#,
    );
    stdin.write_all(requests.as_bytes()).unwrap();
    drop(stdin);
    let output = child.wait_with_output().expect("wait for stdio server");
    assert!(output.status.success(), "{output:?}");
    let stdout = String::from_utf8(output.stdout).unwrap();
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 2, "{stdout}");
    let decide = Json::parse(lines[0]).unwrap();
    assert_eq!(
        decide
            .get("record")
            .unwrap()
            .get("status")
            .unwrap()
            .as_str(),
        Some("determined")
    );
    assert_eq!(
        Json::parse(lines[1]).unwrap().get("type").unwrap().as_str(),
        Some("shutdown")
    );
}
