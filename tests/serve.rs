//! Integration tests for `cqdet serve`: drive the real binary over a real
//! TCP socket (concurrent pipelined requests, malformed requests, deadline
//! expiry, graceful shutdown) and over stdin/stdout, asserting that every
//! outcome is a typed response — never a panic, never a dropped connection.

use cqdet::engine::Json;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const PROGRAM: &str = "v1() :- R(x,y)\\nv2() :- R(x,y), R(y,z)\\nq() :- R(x,y), R(u,w)";
const TASKS: &str =
    "v1() :- R(x,y)\\nq1() :- R(x,y), R(u,w)\\ntask t1: q1 <- v1\\ntask t2: q1 <- *";

/// A running `cqdet serve --tcp 127.0.0.1:0` child plus its bound address.
struct Server {
    child: Child,
    addr: String,
}

impl Server {
    fn start() -> Server {
        let mut child = Command::new(env!("CARGO_BIN_EXE_cqdet"))
            .args(["serve", "--tcp", "127.0.0.1:0"])
            .stdin(Stdio::null())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn cqdet serve");
        // The first stdout line announces the bound (ephemeral) port.
        let stdout = child.stdout.take().expect("child stdout");
        let mut reader = BufReader::new(stdout);
        let mut ready = String::new();
        reader.read_line(&mut ready).expect("ready line");
        let ready = Json::parse(ready.trim()).expect("ready line is JSON");
        assert_eq!(ready.get("type").unwrap().as_str(), Some("serving"));
        let addr = ready
            .get("addr")
            .and_then(Json::as_str)
            .expect("ready line carries the address")
            .to_string();
        Server { child, addr }
    }

    fn connect(&self) -> TcpStream {
        let stream = TcpStream::connect(&self.addr).expect("connect to cqdet serve");
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .unwrap();
        stream
    }

    /// Wait (bounded) for the child to exit after a graceful shutdown.
    fn wait_for_exit(mut self) {
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            match self.child.try_wait().expect("try_wait") {
                Some(status) => {
                    assert!(status.success(), "server exited with {status}");
                    return;
                }
                None if Instant::now() > deadline => {
                    let _ = self.child.kill();
                    panic!("server did not exit within 30s of shutdown");
                }
                None => std::thread::sleep(Duration::from_millis(25)),
            }
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // Idempotent safety net for panicking tests.
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Send one JSON line and read one response line.
fn roundtrip(stream: &mut TcpStream, line: &str) -> Json {
    stream.write_all(line.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    stream.flush().unwrap();
    read_response(stream)
}

fn read_response(stream: &mut TcpStream) -> Json {
    let mut line = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match stream.read(&mut byte) {
            Ok(0) => panic!("connection closed before a response arrived"),
            Ok(_) if byte[0] == b'\n' => break,
            Ok(_) => line.push(byte[0]),
            Err(e) => panic!("read error: {e}"),
        }
    }
    Json::parse(std::str::from_utf8(&line).expect("utf-8 response")).expect("JSON response")
}

#[test]
fn tcp_server_answers_interleaved_requests_with_shared_caches() {
    let server = Server::start();

    // Warm the session caches with one decide on the first connection.
    let mut warm = server.connect();
    let first = roundtrip(
        &mut warm,
        &format!(r#"{{"id":"warm","type":"decide","program":"{PROGRAM}"}}"#),
    );
    assert_eq!(first.get("type").unwrap().as_str(), Some("decide"));
    assert_eq!(
        first.get("record").unwrap().get("status").unwrap().as_str(),
        Some("determined")
    );

    // Concurrent connections, each pipelining a different workload family.
    std::thread::scope(|scope| {
        let addr = &server.addr;
        let mut handles = Vec::new();
        for c in 0..4 {
            handles.push(scope.spawn(move || {
                let mut stream = TcpStream::connect(addr).expect("connect");
                stream
                    .set_read_timeout(Some(Duration::from_secs(60)))
                    .unwrap();
                // Pipelining: write every request before reading any reply.
                let requests = [
                    format!(
                        r#"{{"id":"{c}-d","type":"decide","program":"{PROGRAM}","witness":true}}"#
                    ),
                    format!(r#"{{"id":"{c}-b","type":"batch","tasks":"{TASKS}"}}"#),
                    format!(r#"{{"id":"{c}-p","type":"path","query":"AB","views":["A","AB"]}}"#),
                    format!(
                        r#"{{"id":"{c}-h","type":"hilbert","bound":3,"monomials":["+1:x","-2:"]}}"#
                    ),
                ];
                for r in &requests {
                    stream.write_all(r.as_bytes()).unwrap();
                    stream.write_all(b"\n").unwrap();
                }
                stream.flush().unwrap();
                // Responses come back in request order with echoed ids.
                let decide = read_response(&mut stream);
                assert_eq!(decide.get("id").unwrap().as_str(), Some(&*format!("{c}-d")));
                let record = decide.get("record").unwrap();
                assert_eq!(record.get("status").unwrap().as_str(), Some("determined"));
                assert_eq!(record.get("verified").unwrap().as_bool(), Some(true));
                assert_eq!(record.get("version").unwrap().as_u64(), Some(1));

                let batch = read_response(&mut stream);
                assert_eq!(batch.get("id").unwrap().as_str(), Some(&*format!("{c}-b")));
                let records = batch.get("records").unwrap().as_arr().unwrap();
                assert_eq!(records.len(), 2);
                for r in records {
                    assert_eq!(r.get("status").unwrap().as_str(), Some("determined"));
                }

                let path = read_response(&mut stream);
                assert_eq!(path.get("determined").unwrap().as_bool(), Some(true));

                let hilbert = read_response(&mut stream);
                assert_eq!(
                    hilbert.get("id").unwrap().as_str(),
                    Some(&*format!("{c}-h"))
                );
                let refutation = hilbert.get("refutation").unwrap();
                assert_eq!(refutation.get("verified").unwrap().as_bool(), Some(true));
            }));
        }
        for h in handles {
            h.join().expect("client thread");
        }
    });

    // The decide requests shared one view pool: the session stats must show
    // cross-connection cache hits.
    let stats_response = roundtrip(&mut warm, r#"{"id":"s","type":"stats"}"#);
    let stats = stats_response.get("stats").unwrap();
    assert!(
        stats.get("frozen_hits").unwrap().as_u64().unwrap() > 0,
        "concurrent connections must share the frozen-body cache: {stats:?}"
    );
    assert!(
        stats.get("gate_hits").unwrap().as_u64().unwrap() > 0,
        "concurrent connections must share the containment-gate cache: {stats:?}"
    );

    // Graceful shutdown: acknowledged, then the process exits cleanly.
    let ack = roundtrip(&mut warm, r#"{"id":"bye","type":"shutdown"}"#);
    assert_eq!(ack.get("type").unwrap().as_str(), Some("shutdown"));
    server.wait_for_exit();
}

/// Session lifecycle over real TCP: open, add, redecide, remove, redecide,
/// close — with every intermediate certificate byte-identical to a one-shot
/// `decide` of the same view set, and the session counters surfaced through
/// the `stats` response (the same line `cqdet stats --tcp` prints).
#[test]
fn tcp_session_lifecycle_matches_one_shot_decide() {
    let server = Server::start();
    let mut stream = server.connect();

    let one_shot = |stream: &mut TcpStream, id: &str, program: &str| -> String {
        let response = roundtrip(
            stream,
            &format!(r#"{{"id":"{id}","type":"decide","program":"{program}","witness":true}}"#),
        );
        assert_eq!(response.get("type").unwrap().as_str(), Some("decide"));
        response.get("record").unwrap().render()
    };

    const V1: &str = "v1() :- E(a,b)";
    const V2: &str = "v2() :- E(a,b), E(b,c)";
    const V3: &str = "v3() :- E(a,b), E(b,c), E(c,d)";
    const QUERY: &str = "q() :- E(a,b), E(u,w)";

    let open = roundtrip(
        &mut stream,
        &format!(r#"{{"id":"o","type":"session_open","program":"{V1}\n{V2}\n{QUERY}"}}"#),
    );
    assert_eq!(open.get("type").unwrap().as_str(), Some("session_open"));
    let session = open.get("session").unwrap().as_u64().expect("session id");
    assert_eq!(open.get("views").unwrap().as_arr().unwrap().len(), 2);

    let redecide_line =
        format!(r#"{{"id":"r","type":"redecide","session":{session},"witness":true}}"#);
    let got = roundtrip(&mut stream, &redecide_line);
    assert_eq!(got.get("type").unwrap().as_str(), Some("redecide"));
    assert_eq!(
        got.get("record").unwrap().render(),
        one_shot(&mut stream, "d0", &format!(r#"{V1}\n{V2}\n{QUERY}"#)),
        "warm redecide must agree with a one-shot decide"
    );

    let add = roundtrip(
        &mut stream,
        &format!(r#"{{"id":"a","type":"view_add","session":{session},"view":"{V3}"}}"#),
    );
    assert_eq!(add.get("type").unwrap().as_str(), Some("view_add"));
    assert_eq!(add.get("views").unwrap().as_arr().unwrap().len(), 3);
    let got = roundtrip(&mut stream, &redecide_line);
    assert_eq!(
        got.get("record").unwrap().render(),
        one_shot(&mut stream, "d1", &format!(r#"{V1}\n{V2}\n{V3}\n{QUERY}"#)),
        "redecide after view_add must agree with a one-shot decide"
    );

    let remove = roundtrip(
        &mut stream,
        &format!(r#"{{"id":"x","type":"view_remove","session":{session},"view":"v1"}}"#),
    );
    assert_eq!(remove.get("type").unwrap().as_str(), Some("view_remove"));
    assert_eq!(remove.get("views").unwrap().as_arr().unwrap().len(), 2);
    let got = roundtrip(&mut stream, &redecide_line);
    assert_eq!(
        got.get("record").unwrap().render(),
        one_shot(&mut stream, "d2", &format!(r#"{V2}\n{V3}\n{QUERY}"#)),
        "redecide after view_remove must agree with a one-shot decide"
    );

    // The session is visible on the public stats surface (what
    // `cqdet stats --tcp` prints) until it is closed.
    let stats = roundtrip(&mut stream, r#"{"id":"s1","type":"stats"}"#);
    let counters = stats.get("counters").unwrap();
    assert_eq!(counters.get("sessions_open").unwrap().as_u64(), Some(1));
    assert!(counters.get("sessions_reaped").unwrap().as_u64().is_some());

    let closed = roundtrip(
        &mut stream,
        &format!(r#"{{"id":"c","type":"session_close","session":{session}}}"#),
    );
    assert_eq!(closed.get("type").unwrap().as_str(), Some("session_close"));
    let stats = roundtrip(&mut stream, r#"{"id":"s2","type":"stats"}"#);
    assert_eq!(
        stats
            .get("counters")
            .unwrap()
            .get("sessions_open")
            .unwrap()
            .as_u64(),
        Some(0)
    );

    // A closed session is gone: mutations against it are typed errors.
    let err = roundtrip(&mut stream, &redecide_line);
    assert_eq!(err.get("type").unwrap().as_str(), Some("error"));
    assert_eq!(
        err.get("error").unwrap().get("code").unwrap().as_str(),
        Some("schema")
    );

    let _ = roundtrip(&mut stream, r#"{"id":"bye","type":"shutdown"}"#);
    server.wait_for_exit();
}

#[test]
fn malformed_and_expired_requests_yield_typed_responses() {
    let server = Server::start();
    let mut stream = server.connect();

    // Not JSON: a typed parse error, id null, connection stays up.
    let err = roundtrip(&mut stream, "this is not json");
    assert_eq!(err.get("type").unwrap().as_str(), Some("error"));
    assert_eq!(err.get("id"), Some(&Json::Null));
    assert_eq!(
        err.get("error").unwrap().get("code").unwrap().as_str(),
        Some("parse")
    );

    // Unknown request type: schema error, id echoed.
    let err = roundtrip(&mut stream, r#"{"id":"u","type":"frobnicate"}"#);
    assert_eq!(err.get("id").unwrap().as_str(), Some("u"));
    assert_eq!(
        err.get("error").unwrap().get("code").unwrap().as_str(),
        Some("schema")
    );

    // A program outside the decidable fragment: the decision engine's typed
    // rejection arrives as an error *record*, not a dropped connection.
    let response = roundtrip(
        &mut stream,
        r#"{"id":"f","type":"decide","program":"v() :- R(x,y)\nq(x) :- R(x,y)"}"#,
    );
    let record = response.get("record").unwrap();
    assert_eq!(record.get("status").unwrap().as_str(), Some("error"));
    assert!(record
        .get("error")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("boolean"));

    // An already-expired deadline: a typed timeout response.
    let timeout = roundtrip(
        &mut stream,
        &format!(r#"{{"id":"t","type":"decide","program":"{PROGRAM}","deadline_ms":0}}"#),
    );
    assert_eq!(timeout.get("type").unwrap().as_str(), Some("timeout"));
    let error = timeout.get("error").unwrap();
    assert_eq!(error.get("code").unwrap().as_str(), Some("deadline"));
    assert!(error.get("stage").unwrap().as_str().is_some());

    // The same connection still answers real work afterwards.
    let ok = roundtrip(
        &mut stream,
        &format!(r#"{{"id":"ok","type":"decide","program":"{PROGRAM}"}}"#),
    );
    assert_eq!(
        ok.get("record").unwrap().get("status").unwrap().as_str(),
        Some("determined")
    );

    let _ = roundtrip(&mut stream, r#"{"id":"bye","type":"shutdown"}"#);
    server.wait_for_exit();
}

#[test]
fn stdio_transport_smoke() {
    // The zero-setup mode: pipe JSON-lines through stdin/stdout.
    let mut child = Command::new(env!("CARGO_BIN_EXE_cqdet"))
        .arg("serve")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn cqdet serve (stdio)");
    let mut stdin = child.stdin.take().unwrap();
    let requests = format!(
        "{}\n{}\n",
        format_args!(r#"{{"id":"1","type":"decide","program":"{PROGRAM}","witness":true}}"#),
        r#"{"id":"2","type":"shutdown"}"#,
    );
    stdin.write_all(requests.as_bytes()).unwrap();
    drop(stdin);
    let output = child.wait_with_output().expect("wait for stdio server");
    assert!(output.status.success(), "{output:?}");
    let stdout = String::from_utf8(output.stdout).unwrap();
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 2, "{stdout}");
    let decide = Json::parse(lines[0]).unwrap();
    assert_eq!(
        decide
            .get("record")
            .unwrap()
            .get("status")
            .unwrap()
            .as_str(),
        Some("determined")
    );
    assert_eq!(
        Json::parse(lines[1]).unwrap().get("type").unwrap().as_str(),
        Some("shutdown")
    );
}

// ── In-process tests of the event-driven core ──────────────────────────
//
// The tests above drive the real binary; the ones below construct
// `serve_tcp` in-process so they can pin down options the CLI defaults
// away from (tiny admission budgets, a single worker) and read the
// engine's counters directly.

use cqdet::service::{serve_tcp, serve_tcp_threaded, Engine, ServeOptions};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};

/// An in-process `serve_tcp` on an ephemeral port.
struct InProc {
    engine: Arc<Engine>,
    addr: SocketAddr,
    handle: std::thread::JoinHandle<std::io::Result<u64>>,
}

impl InProc {
    fn start(options: ServeOptions) -> InProc {
        let engine = Arc::new(Engine::new());
        let server_engine = Arc::clone(&engine);
        let (tx, rx) = mpsc::channel();
        let handle = std::thread::spawn(move || {
            serve_tcp(&server_engine, "127.0.0.1:0", &options, move |addr| {
                let _ = tx.send(addr);
            })
        });
        let addr = rx
            .recv_timeout(Duration::from_secs(10))
            .expect("server ready within 10s");
        InProc {
            engine,
            addr,
            handle,
        }
    }

    fn connect(&self) -> TcpStream {
        let stream = TcpStream::connect(self.addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .unwrap();
        stream
    }

    /// End the server without speaking the protocol (for scenarios whose
    /// options would shed even the shutdown request) and join it.
    fn stop(self) -> u64 {
        self.engine.request_shutdown();
        self.handle
            .join()
            .expect("server thread")
            .expect("serve_tcp result")
    }
}

fn decide_line(id: &str) -> String {
    format!(r#"{{"id":"{id}","type":"decide","program":"{PROGRAM}"}}"#)
}

/// Fairness regression: one connection pipelines 1000 requests; a second
/// connection sends single requests.  Round-robin dispatch must answer the
/// single-request client after a *bounded* number of pipeliner responses —
/// not after the whole pipeline (starvation), which is what a FIFO over
/// all connections would do.
#[test]
fn pipelining_client_cannot_starve_single_requests() {
    let server = InProc::start(ServeOptions {
        worker_threads: 1,
        ..ServeOptions::default()
    });
    let addr = server.addr;
    let a_written = AtomicBool::new(false);
    let a_read = AtomicUsize::new(0);
    let a_done = AtomicBool::new(false);

    std::thread::scope(|scope| {
        let (a_written, a_read, a_done) = (&a_written, &a_read, &a_done);
        scope.spawn(move || {
            let mut stream = TcpStream::connect(addr).expect("pipeliner connect");
            stream
                .set_read_timeout(Some(Duration::from_secs(120)))
                .unwrap();
            let mut burst = String::new();
            for i in 0..1000 {
                burst.push_str(&decide_line(&format!("a{i}")));
                burst.push('\n');
            }
            stream.write_all(burst.as_bytes()).expect("pipeline burst");
            stream.flush().unwrap();
            a_written.store(true, Ordering::SeqCst);
            // A buffered reader keeps the kernel receive queue drained, so
            // `a_read` tracks what actually passed the wire instead of
            // lagging a socket buffer behind it (which would inflate the
            // probe's interleaving measurement below).
            let mut reader = BufReader::with_capacity(1 << 16, stream);
            let mut line = String::new();
            for _ in 0..1000 {
                line.clear();
                reader.read_line(&mut line).expect("pipeliner response");
                let response = Json::parse(line.trim()).expect("JSON response");
                assert_eq!(response.get("type").unwrap().as_str(), Some("decide"));
                a_read.fetch_add(1, Ordering::SeqCst);
            }
            a_done.store(true, Ordering::SeqCst);
        });

        // The single-request client: wait until the pipeline is fully
        // submitted, then measure how many pipeliner responses pass the
        // wire between each probe's send and its answer.
        while !a_written.load(Ordering::SeqCst) {
            std::thread::yield_now();
        }
        let mut probe = server.connect();
        for round in 0..3 {
            if a_read.load(Ordering::SeqCst) >= 500 {
                // Pipeline mostly drained: a probe now could not be
                // starved hard enough to distinguish FIFO from RR.
                break;
            }
            let response = roundtrip(
                &mut probe,
                &format!(r#"{{"id":"p{round}","type":"stats"}}"#),
            );
            assert_eq!(response.get("type").unwrap().as_str(), Some("stats"));
            // `requests` is the engine's processed count when this probe
            // ran — its exact dispatch position, immune to client-side
            // read lag.  FIFO dispatch would park the probe behind the
            // whole pipeline (position ≥ 1001); round-robin admits it
            // within a shallow job queue of its arrival.  900 leaves vast
            // room for scheduling noise while still refuting FIFO.
            let position = response
                .get("requests")
                .unwrap()
                .as_f64()
                .expect("stats carries the request count");
            assert!(
                position <= 900.0,
                "probe {round} starved: dispatched at engine position {position} \
                 (round-robin bound is the job queue, not the pipeline)"
            );
        }
        assert!(
            !a_done.load(Ordering::SeqCst) || a_read.load(Ordering::SeqCst) == 1000,
            "pipeliner must also finish intact"
        );
    });
    assert_eq!(a_read.load(Ordering::SeqCst), 1000);

    let mut bye = server.connect();
    let ack = roundtrip(&mut bye, r#"{"id":"bye","type":"shutdown"}"#);
    assert_eq!(ack.get("type").unwrap().as_str(), Some("shutdown"));
    let served = server.handle.join().expect("server thread").expect("serve");
    assert!(served >= 1004, "all requests answered, got {served}");
}

/// Admission control, strict form: a zero budget sheds every request with
/// a typed `resource_exhausted` — the connection is never stalled and
/// never dropped, and the shed counter records each refusal.
#[test]
fn zero_budget_sheds_every_request_with_typed_error() {
    let server = InProc::start(ServeOptions {
        inflight_budget: 0,
        ..ServeOptions::default()
    });
    let mut stream = server.connect();
    for i in 0..3 {
        let response = roundtrip(&mut stream, &decide_line(&format!("z{i}")));
        assert_eq!(response.get("type").unwrap().as_str(), Some("error"));
        assert_eq!(
            response.get("error").unwrap().get("code").unwrap().as_str(),
            Some("resource_exhausted"),
            "shed must be typed, got {response:?}"
        );
        assert_eq!(
            response.get("id").unwrap().as_str(),
            Some(format!("z{i}").as_str()),
            "shed responses still echo the request id"
        );
    }
    assert_eq!(server.engine.counters().shed_requests, 3);
    drop(stream);
    server.stop();
}

/// Admission control, budget 1: a pipelined burst admits its first request
/// and sheds the rest within the same reactor tick (the budget is checked
/// at frame extraction, before any completion can be collected), in
/// request order; the shed counter then surfaces in `stats` responses.
#[test]
fn over_budget_burst_sheds_tail_in_order() {
    let server = InProc::start(ServeOptions {
        inflight_budget: 1,
        worker_threads: 1,
        ..ServeOptions::default()
    });
    let mut stream = server.connect();
    let burst = format!(
        "{}\n{}\n{}\n",
        decide_line("keep"),
        r#"{"id":"shed1","type":"stats"}"#,
        r#"{"id":"shed2","type":"stats"}"#
    );
    stream.write_all(burst.as_bytes()).unwrap();
    stream.flush().unwrap();
    let first = read_response(&mut stream);
    assert_eq!(first.get("id").unwrap().as_str(), Some("keep"));
    assert_eq!(first.get("type").unwrap().as_str(), Some("decide"));
    for id in ["shed1", "shed2"] {
        let response = read_response(&mut stream);
        assert_eq!(response.get("id").unwrap().as_str(), Some(id));
        assert_eq!(
            response.get("error").unwrap().get("code").unwrap().as_str(),
            Some("resource_exhausted")
        );
    }
    // The connection survived shedding; a lone follow-up is admitted and
    // reports the sheds through the public counter surface.
    let stats = roundtrip(&mut stream, r#"{"id":"after","type":"stats"}"#);
    assert_eq!(stats.get("type").unwrap().as_str(), Some("stats"));
    let shed = stats
        .get("counters")
        .unwrap()
        .get("shed_requests")
        .unwrap()
        .as_f64()
        .expect("shed_requests in stats counters");
    assert!(shed >= 2.0, "stats must surface shed_requests, got {shed}");
    drop(stream);
    server.stop();
}

/// Session expiry end to end: with a tiny TTL configured through
/// `ServeOptions`, an idle session is reaped, the reap shows up in the
/// `stats` counters, and later requests against the dead session are typed
/// schema errors — the connection itself stays healthy.
#[test]
fn idle_sessions_are_reaped_by_ttl_and_counted() {
    let server = InProc::start(ServeOptions {
        session_ttl: Duration::from_millis(50),
        ..ServeOptions::default()
    });
    let mut stream = server.connect();
    let open = roundtrip(
        &mut stream,
        r#"{"id":"o","type":"session_open","program":"v1() :- R(x,y)\nq() :- R(x,y), R(u,w)"}"#,
    );
    assert_eq!(open.get("type").unwrap().as_str(), Some("session_open"));
    let session = open.get("session").unwrap().as_u64().expect("session id");
    assert_eq!(server.engine.counters().sessions_open, 1);

    // Idle past the TTL; the next request sweeps expired sessions.
    std::thread::sleep(Duration::from_millis(120));
    let stats = roundtrip(&mut stream, r#"{"id":"s","type":"stats"}"#);
    let counters = stats.get("counters").unwrap();
    assert_eq!(
        counters.get("sessions_open").unwrap().as_u64(),
        Some(0),
        "idle session must be reaped: {stats:?}"
    );
    assert!(
        counters.get("sessions_reaped").unwrap().as_u64().unwrap() >= 1,
        "the reap must be counted: {stats:?}"
    );

    // The reaped session is indistinguishable from a closed one: typed
    // schema error, connection stays up.
    let err = roundtrip(
        &mut stream,
        &format!(r#"{{"id":"r","type":"redecide","session":{session}}}"#),
    );
    assert_eq!(err.get("type").unwrap().as_str(), Some("error"));
    assert_eq!(
        err.get("error").unwrap().get("code").unwrap().as_str(),
        Some("schema")
    );
    drop(stream);
    server.stop();
}

/// The retained thread-per-connection twin still speaks the protocol —
/// it is the §SOAK baseline and the `CQDET_THREADED_SERVE=1` escape hatch.
#[test]
fn threaded_twin_still_serves() {
    let engine = Arc::new(Engine::new());
    let server_engine = Arc::clone(&engine);
    let (tx, rx) = mpsc::channel();
    let handle = std::thread::spawn(move || {
        let options = ServeOptions::default();
        serve_tcp_threaded(&server_engine, "127.0.0.1:0", &options, move |addr| {
            let _ = tx.send(addr);
        })
    });
    let addr = rx.recv_timeout(Duration::from_secs(10)).expect("ready");
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let response = roundtrip(&mut stream, &decide_line("t1"));
    assert_eq!(response.get("type").unwrap().as_str(), Some("decide"));
    let ack = roundtrip(&mut stream, r#"{"id":"bye","type":"shutdown"}"#);
    assert_eq!(ack.get("type").unwrap().as_str(), Some("shutdown"));
    assert_eq!(handle.join().expect("thread").expect("serve"), 2);
}
