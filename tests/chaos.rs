//! Chaos soak for `cqdet serve`: the real TCP server under concurrent
//! pipelined load, hostile clients (slow-loris, oversized lines, mid-request
//! disconnects, over-capacity floods) and — with `--features failpoints` —
//! panics/delays/errors injected at every request-reachable seam.
//!
//! Invariants asserted throughout:
//!
//! * the server never hangs (every test body runs under a watchdog);
//! * every request line is answered with a typed, versioned response —
//!   a connection is only ever dropped when the injected fault *is* the
//!   transport (`serve/conn/*` armed with `panic`);
//! * the shared session caches stay coherent: after the chaos, the server's
//!   answer to a reference instance is byte-identical to a fresh engine's;
//! * overload sheds with `resource_exhausted`, never with a silent close.

use cqdet::engine::Json;
use cqdet::service::{serve_tcp, Engine, Response, ServeOptions};
use cqdet_bench::chaos_workload;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// A determined reference instance (q = v1·v2) and a not-determined one,
/// used for the post-chaos cache-coherence oracle.
const DETERMINED: &str = "v1() :- R(x,y)\\nv2() :- R(x,y), R(y,z)\\nq() :- R(x,y), R(u,w)";
const NOT_DETERMINED: &str =
    "v1() :- R(x,y)\\nv2() :- R(x,y), R(y,z)\\nq() :- R(x,y), R(y,z), R(z,w)";

/// The failpoint registry (and its env parse) is process-global, so the
/// chaos tests must not interleave: each locks this for its whole body.
static SERIAL: Mutex<()> = Mutex::new(());

/// Run `body` on its own thread and panic if it neither finishes nor
/// panics within `secs` — the "never hangs" invariant, mechanized.
fn with_watchdog<F>(secs: u64, label: &str, body: F)
where
    F: FnOnce() + Send + 'static,
{
    let (tx, rx) = mpsc::channel();
    let handle = thread::spawn(move || {
        body();
        let _ = tx.send(());
    });
    match rx.recv_timeout(Duration::from_secs(secs)) {
        // On Disconnected the body panicked before sending: join and
        // re-raise the body's own panic payload either way.
        Ok(()) | Err(mpsc::RecvTimeoutError::Disconnected) => {
            if let Err(payload) = handle.join() {
                std::panic::resume_unwind(payload);
            }
        }
        Err(mpsc::RecvTimeoutError::Timeout) => panic!("{label}: hung for {secs}s"),
    }
}

/// An in-process `serve_tcp` on an ephemeral port.
struct ChaosServer {
    engine: Arc<Engine>,
    addr: SocketAddr,
    handle: thread::JoinHandle<std::io::Result<u64>>,
}

impl ChaosServer {
    fn start(options: ServeOptions) -> ChaosServer {
        let engine = Arc::new(Engine::new());
        let server_engine = Arc::clone(&engine);
        let (tx, rx) = mpsc::channel();
        let handle = thread::spawn(move || {
            serve_tcp(&server_engine, "127.0.0.1:0", &options, move |addr| {
                let _ = tx.send(addr);
            })
        });
        let addr = rx
            .recv_timeout(Duration::from_secs(10))
            .expect("server ready within 10s");
        ChaosServer {
            engine,
            addr,
            handle,
        }
    }

    fn connect(&self) -> TcpStream {
        connect(self.addr)
    }

    /// Graceful end: a `shutdown` request must be acknowledged and the
    /// server thread must return.  Yields the total requests served.
    fn shutdown(self) -> u64 {
        let mut stream = self.connect();
        let ack = roundtrip(&mut stream, r#"{"id":"bye","type":"shutdown"}"#);
        assert_eq!(ack.get("type").unwrap().as_str(), Some("shutdown"));
        self.handle
            .join()
            .expect("server thread")
            .expect("serve_tcp result")
    }
}

fn connect(addr: SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("connect to chaos server");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    stream
}

/// Read one newline-terminated response; panics on EOF (the strict reader,
/// for phases where a drop would be a bug).
fn read_response(stream: &mut TcpStream) -> Json {
    try_read_response(stream).expect("connection closed before a response arrived")
}

/// Read one newline-terminated response; `None` on EOF/reset (the tolerant
/// reader, for phases where the injected fault is the transport itself).
fn try_read_response(stream: &mut TcpStream) -> Option<Json> {
    let mut line = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match stream.read(&mut byte) {
            Ok(0) => return None,
            Ok(_) if byte[0] == b'\n' => break,
            Ok(_) => line.push(byte[0]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                panic!("read timed out mid-response")
            }
            Err(_) => return None,
        }
    }
    Some(
        Json::parse(std::str::from_utf8(&line).expect("utf-8 response"))
            .expect("every response line is valid JSON"),
    )
}

fn send_line(stream: &mut TcpStream, line: &str) -> std::io::Result<()> {
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()
}

fn roundtrip(stream: &mut TcpStream, line: &str) -> Json {
    send_line(stream, line).expect("send request");
    read_response(stream)
}

/// A per-test snapshot path under the system temp dir (process-id-scoped
/// so parallel CI jobs cannot collide).
fn temp_snapshot_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("cqdet-chaos-{tag}-{}.cqds", std::process::id()))
}

/// Pipeline `lines` in windows (write a window, then drain its responses):
/// windows keep both sides' socket buffers from deadlocking while still
/// exercising multi-request pipelining on every flush.
fn run_pipelined(addr: SocketAddr, lines: &[String], window: usize) -> Vec<Json> {
    let mut stream = connect(addr);
    let mut responses = Vec::with_capacity(lines.len());
    for chunk in lines.chunks(window) {
        for line in chunk {
            send_line(&mut stream, line).expect("pipeline request");
        }
        for _ in chunk {
            responses.push(read_response(&mut stream));
        }
    }
    responses
}

/// What the chaos workload's `i % 10` cycle must come back as.
fn assert_expected_shape(i: usize, response: &Json) {
    let ty = response.get("type").unwrap().as_str().unwrap();
    match i % 10 {
        0 | 1 => {
            assert_eq!(ty, "decide", "slot {i}: {response:?}");
            let status = response
                .get("record")
                .unwrap()
                .get("status")
                .unwrap()
                .as_str()
                .unwrap();
            assert!(
                status == "determined" || status == "not_determined",
                "slot {i}: {status}"
            );
        }
        2 => assert_eq!(ty, "batch", "slot {i}: {response:?}"),
        3 => assert_eq!(ty, "path", "slot {i}: {response:?}"),
        4 => assert_eq!(ty, "hilbert", "slot {i}: {response:?}"),
        5 => assert_eq!(ty, "stats", "slot {i}: {response:?}"),
        // A tiny fuel budget: either the work fit under it (cache hits make
        // small instances nearly free) or it's a typed resource_exhausted.
        6 => {
            if ty == "error" {
                let code = response
                    .get("error")
                    .unwrap()
                    .get("code")
                    .unwrap()
                    .as_str()
                    .unwrap();
                assert_eq!(code, "resource_exhausted", "slot {i}: {response:?}");
            } else {
                assert_eq!(ty, "decide", "slot {i}: {response:?}");
            }
        }
        7 => assert_eq!(ty, "timeout", "slot {i}: {response:?}"),
        8 => {
            assert_eq!(ty, "error", "slot {i}: {response:?}");
            let code = response
                .get("error")
                .unwrap()
                .get("code")
                .unwrap()
                .as_str()
                .unwrap();
            assert_eq!(code, "parse", "slot {i}: {response:?}");
        }
        _ => {
            assert_eq!(ty, "error", "slot {i}: {response:?}");
            let code = response
                .get("error")
                .unwrap()
                .get("code")
                .unwrap()
                .as_str()
                .unwrap();
            assert_eq!(code, "schema", "slot {i}: {response:?}");
        }
    }
}

/// The post-chaos cache-coherence oracle: the (possibly chaos-scarred)
/// server must answer the reference instances byte-identically to a fresh,
/// never-faulted engine.
fn assert_oracle_matches_clean_engine(addr: SocketAddr) {
    let clean = Engine::new();
    for (tag, program) in [("det", DETERMINED), ("ndet", NOT_DETERMINED)] {
        let line = format!(
            r#"{{"id":"oracle-{tag}","type":"decide","program":"{program}","witness":true}}"#
        );
        let mut stream = connect(addr);
        let chaotic = roundtrip(&mut stream, &line);
        let Some(Response::Decide { record, .. }) = cqdet::service::respond_to_line(&clean, &line)
        else {
            panic!("clean engine rejected the oracle instance")
        };
        assert_eq!(
            chaotic.get("record").unwrap().render(),
            record.to_json().render(),
            "post-chaos record for {tag} diverged from a clean engine"
        );
    }
}

/// A fresh-every-time decide whose gate stage must *refute* hom(K8, K7) —
/// a backtracking search over >10k candidate extensions (a hom that is
/// found early survives fuel exhaustion by design, so only a failing
/// search reliably burns steps).  Fresh relation names per `n` keep the
/// session caches cold, so the decide seams and `session/cache-insert`
/// are on-path for every probe.
fn uncached_decide_line(id: &str, n: u64, budget: Option<u64>) -> String {
    let clique = |name: String, k: usize| {
        let mut atoms = Vec::new();
        for i in 0..k {
            for j in 0..k {
                if i != j {
                    atoms.push(format!("E{n}(x{i},x{j})"));
                }
            }
        }
        format!("{name}() :- {}", atoms.join(", "))
    };
    let program = format!(
        "{}\n{}",
        clique(format!("v{n}"), 8),
        clique(format!("q{n}"), 7)
    );
    let budget = budget
        .map(|b| format!(r#","budget":{b}"#))
        .unwrap_or_default();
    format!(
        r#"{{"id":"{id}","type":"decide","program":{},"query":"q{n}"{budget}}}"#,
        Json::str(program).render()
    )
}

/// The baseline soak: ≥1k pipelined requests over concurrent connections,
/// with hostile clients interleaved, on the real TCP server.  No failpoint
/// feature required — this always runs in tier-1.
#[test]
fn chaos_soak_survives_hostile_load() {
    let _serial = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
    with_watchdog(300, "chaos soak", || {
        let options = ServeOptions {
            // Small enough for the oversized client to trip cheaply, big
            // enough for every legitimate chaos-workload line.
            max_request_bytes: 1 << 20,
            // Room for every soak client at once even on a 1-core box (the
            // default cap scales with the core count); deliberate shedding
            // is covered by `over_capacity_connections_shed…` below.
            max_connections: 64,
            ..ServeOptions::default()
        };
        let server = ChaosServer::start(options);
        let addr = server.addr;
        let answered = AtomicU64::new(0);

        thread::scope(|scope| {
            // Four well-behaved (but demanding) clients: 250 pipelined
            // requests each from the ten-family chaos workload.
            let answered = &answered;
            for c in 0..4u64 {
                scope.spawn(move || {
                    let lines = chaos_workload(250, 0xC0FFEE ^ c);
                    let responses = run_pipelined(addr, &lines, 16);
                    assert_eq!(responses.len(), lines.len());
                    for (i, response) in responses.iter().enumerate() {
                        assert_expected_shape(i, response);
                    }
                    answered.fetch_add(responses.len() as u64, Ordering::Relaxed);
                });
            }
            // Slow-loris: one stats request dribbled a byte at a time.  The
            // server must neither hang on it nor drop it.
            scope.spawn(move || {
                let mut stream = connect(addr);
                for b in br#"{"id":"loris","type":"stats"}"#.iter() {
                    stream.write_all(&[*b]).unwrap();
                    stream.flush().unwrap();
                    thread::sleep(Duration::from_millis(2));
                }
                stream.write_all(b"\n").unwrap();
                stream.flush().unwrap();
                let response = read_response(&mut stream);
                assert_eq!(response.get("id").unwrap().as_str(), Some("loris"));
                assert_eq!(response.get("type").unwrap().as_str(), Some("stats"));
            });
            // Oversized line: 2 MiB with no newline must come back as one
            // typed resource_exhausted response, then a close — bounded
            // memory, no hang, no silent drop.
            scope.spawn(move || {
                let mut stream = connect(addr);
                let blob = vec![b'x'; 2 << 20];
                // The server closes after answering; a late write may race
                // that close, which is fine.
                let _ = stream.write_all(&blob);
                let _ = stream.flush();
                let response = read_response(&mut stream);
                assert_eq!(response.get("type").unwrap().as_str(), Some("error"));
                assert_eq!(
                    response.get("error").unwrap().get("code").unwrap().as_str(),
                    Some("resource_exhausted")
                );
                assert!(
                    try_read_response(&mut stream).is_none(),
                    "closed after shed"
                );
            });
            // Mid-request disconnects: half a request, then vanish.  The
            // server must shrug (and keep serving everyone else).
            for _ in 0..8 {
                scope.spawn(move || {
                    let mut stream = connect(addr);
                    let _ = stream.write_all(br#"{"id":"ghost","type":"dec"#);
                    let _ = stream.flush();
                });
            }
        });
        assert_eq!(answered.load(Ordering::Relaxed), 1_000);

        // The tiny-fuel probe: a budget of 8 steps against an uncached
        // 6-atom query must shed inside the kernel, fast, with a typed
        // resource_exhausted carrying the ledger evidence.
        let mut stream = server.connect();
        let started = Instant::now();
        let response = roundtrip(
            &mut stream,
            &uncached_decide_line("fuel-probe", 7001, Some(8)),
        );
        let elapsed = started.elapsed();
        let error = response.get("error").expect("fuel probe yields an error");
        assert_eq!(
            error.get("code").unwrap().as_str(),
            Some("resource_exhausted")
        );
        assert!(error.get("spent").unwrap().as_u64().unwrap() > 8);
        assert_eq!(error.get("limit").unwrap().as_u64(), Some(8));
        // Generous CI bound; the release-build number (micros) goes in
        // EXPERIMENTS.md.
        assert!(
            elapsed < Duration::from_secs(2),
            "fuel shed took {elapsed:?}"
        );
        println!("tiny-fuel probe: resource_exhausted in {elapsed:?}");

        // Cache coherence after all of that.
        assert_oracle_matches_clean_engine(addr);

        // The stats counters saw the chaos: 100 expired deadlines (slot 7)
        // and the oversized client.
        let stats = roundtrip(&mut stream, r#"{"id":"s","type":"stats"}"#);
        let counters = stats.get("counters").expect("stats carries counters");
        assert!(counters.get("timeouts").unwrap().as_u64().unwrap() >= 100);
        assert!(
            counters
                .get("oversized_requests")
                .unwrap()
                .as_u64()
                .unwrap()
                >= 1
        );
        assert!(counters.get("fuel_exhausted").unwrap().as_u64().unwrap() >= 1);
        drop(stream);

        let served = server.shutdown();
        assert!(served >= 1_000, "served only {served} requests");
    });
}

/// Overload sheds with a typed response: a server capped at one connection
/// answers the second connection with `resource_exhausted` and closes it —
/// and the surviving connection still works.
#[test]
fn over_capacity_connections_shed_with_typed_response() {
    let _serial = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
    with_watchdog(60, "shed test", || {
        let options = ServeOptions {
            max_connections: 1,
            ..ServeOptions::default()
        };
        let server = ChaosServer::start(options);

        let mut occupant = server.connect();
        // Make the occupant's handler definitely running (it answered).
        let first = roundtrip(&mut occupant, r#"{"id":"occ","type":"stats"}"#);
        assert_eq!(first.get("type").unwrap().as_str(), Some("stats"));

        // Extra connections beyond the cap are answered-and-closed.  The
        // accept loop races the handler spawn, so flood a few.
        let mut shed = 0;
        for _ in 0..10 {
            let mut extra = server.connect();
            // A `None` outcome means the socket closed before the response
            // write completed — the shed counter below still has to reach 1.
            if let Some(response) = try_read_response(&mut extra) {
                assert_eq!(
                    response.get("error").unwrap().get("code").unwrap().as_str(),
                    Some("resource_exhausted")
                );
                assert!(try_read_response(&mut extra).is_none());
                shed += 1;
            }
        }
        assert!(shed >= 1, "no connection was shed with a typed response");
        assert!(server.engine.counters().shed_connections >= shed);

        // The occupant is unharmed.
        let again = roundtrip(&mut occupant, r#"{"id":"occ2","type":"stats"}"#);
        assert_eq!(again.get("type").unwrap().as_str(), Some("stats"));
        drop(occupant);
        server.shutdown();
    });
}

/// The failpoint matrix: every request-reachable seam armed with every
/// action (delay, injected error, panic) while requests flow — plus a
/// concurrent background client hammering the ten-family workload the whole
/// time.  Compiled and run only with `--features failpoints`.
#[cfg(feature = "failpoints")]
#[test]
fn failpoint_matrix_every_seam_every_action() {
    use cqdet_failpoint::{clear_all, configure, hits, Action};

    let _serial = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
    clear_all();
    with_watchdog(300, "failpoint matrix", || {
        // A tiny cache budget keeps the `cache/evict` seam on-path: every
        // uncached probe's inserts overflow their shard budgets, so each
        // armed action fires inside a real eviction sweep.
        let server = ChaosServer::start(ServeOptions {
            cache_bytes: Some(64 << 10),
            ..ServeOptions::default()
        });
        let addr = server.addr;
        let stop = AtomicU64::new(0);

        thread::scope(|scope| {
            // Background load: reconnect-tolerant, because conn-seam panics
            // legitimately cost the connection they fire on.
            let stop = &stop;
            // If a matrix assertion below panics, the background client must
            // still be told to stop — otherwise the scope join would wait on
            // it forever and the real failure would surface as a hang.
            struct StopOnDrop<'a>(&'a AtomicU64);
            impl Drop for StopOnDrop<'_> {
                fn drop(&mut self) {
                    self.0.store(1, Ordering::Relaxed);
                }
            }
            let _stop_guard = StopOnDrop(stop);
            let background = scope.spawn(move || {
                let lines = chaos_workload(200, 0xFA11);
                let mut stream = connect(addr);
                let mut answered = 0u64;
                for line in lines.iter().cycle() {
                    if stop.load(Ordering::Relaxed) != 0 {
                        break;
                    }
                    if send_line(&mut stream, line).is_err() {
                        stream = connect(addr);
                        continue;
                    }
                    match try_read_response(&mut stream) {
                        Some(_) => answered += 1,
                        None => stream = connect(addr),
                    }
                }
                answered
            });

            // The deterministic matrix.  Requests use fresh relation names
            // every time so the decide seams and the cache-insert seam are
            // on-path for each probe.
            let mut probe = connect(addr);
            let mut n = 0u64;
            for &seam in cqdet::service::failpoint_names() {
                if seam == "serve/shed" {
                    // Only fires on the admission shed path, which this
                    // under-budget probe never takes; the dedicated
                    // over-budget matrix below covers it.
                    continue;
                }
                if seam.starts_with("snapshot/") {
                    // Fires at boot/shutdown, not per request; the
                    // dedicated snapshot matrix below covers both seams.
                    continue;
                }
                if seam.starts_with("session/") {
                    // Fires only on the session request family, which this
                    // decide probe never sends; the dedicated session
                    // matrix below covers all three seams.
                    continue;
                }
                for action in [
                    Action::Delay(Duration::from_millis(2)),
                    Action::Err(format!("chaos injected at {seam}")),
                    Action::Panic,
                ] {
                    let is_conn_panic = seam.starts_with("serve/conn/") && action == Action::Panic;
                    println!("matrix: {seam} <- {action:?}");
                    configure(seam, action);
                    n += 1;
                    let line = uncached_decide_line(&format!("fp{n}"), n, None);
                    let outcome = match send_line(&mut probe, &line) {
                        Ok(()) => try_read_response(&mut probe),
                        Err(_) => None,
                    };
                    // Disarm before reconnecting: a fresh connection made
                    // while a conn-seam panic is still armed would die too.
                    let seam_hits = hits(seam);
                    cqdet_failpoint::clear(seam);
                    match outcome {
                        // Whatever the fault, the answer is a typed line:
                        // decide, error(internal), or error(resource…).
                        Some(response) => {
                            assert!(
                                response.get("type").unwrap().as_str().is_some(),
                                "{seam}: untyped response {response:?}"
                            );
                        }
                        // A dropped connection is only legitimate when the
                        // armed fault *is* the transport.
                        None => assert!(
                            is_conn_panic,
                            "{seam}: connection dropped without a typed response"
                        ),
                    }
                    if is_conn_panic {
                        // Even when the probe got its answer, the handler
                        // may have panicked on its *next* read poll — the
                        // connection is not trustworthy past this round.
                        probe = connect(addr);
                    }
                    assert!(seam_hits >= 1, "{seam}: seam never fired");
                }
            }
            clear_all();
            stop.store(1, Ordering::Relaxed);
            let answered = background.join().expect("background client");
            assert!(answered > 0, "background client starved");
        });

        // Panics were injected at 8 non-transport seams (and possibly at
        // the transport ones too): containment must have counted them.
        assert!(server.engine.counters().panics_contained >= 1);

        // And after all that, the caches still agree with a clean engine.
        assert_oracle_matches_clean_engine(addr);
        // Cap and watermark are process-global; restore defaults so later
        // tests in this binary run ungoverned.
        server.engine.set_cache_bytes(None);
        server.shutdown();
    });
}

/// The `serve/shed` seam under the full action matrix.  The generic matrix
/// above never goes over budget, so here the budget is forced to 1 and a
/// single pipelined write of three requests lands in one reactor tick:
/// the first is admitted, the rest are shed — and whatever fault is armed
/// on the shed path (delay, injected error, panic), every one of the three
/// still gets a typed response and the connection survives.
#[cfg(feature = "failpoints")]
#[test]
fn shed_seam_survives_fault_matrix() {
    use cqdet_failpoint::{clear, clear_all, configure, hits, Action};

    let _serial = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
    clear_all();
    with_watchdog(60, "shed seam matrix", || {
        let server = ChaosServer::start(ServeOptions {
            inflight_budget: 1,
            worker_threads: 1,
            ..ServeOptions::default()
        });
        let mut total_shed = 0u64;
        for action in [
            Action::Delay(Duration::from_millis(2)),
            Action::Err("chaos injected at serve/shed".into()),
            Action::Panic,
        ] {
            println!("shed matrix: serve/shed <- {action:?}");
            configure("serve/shed", action.clone());
            let mut stream = server.connect();
            let burst: String = (0..3)
                .map(|i| format!("{{\"id\":\"s{i}\",\"type\":\"stats\"}}\n"))
                .collect();
            stream.write_all(burst.as_bytes()).expect("send burst");
            stream.flush().expect("flush burst");
            let mut shed_here = 0u64;
            for i in 0..3 {
                let response = try_read_response(&mut stream)
                    .unwrap_or_else(|| panic!("response {i} dropped ({action:?})"));
                let ty = response.get("type").unwrap().as_str().expect("typed");
                match ty {
                    "stats" => {}
                    "error" => {
                        assert_eq!(
                            response.get("error").unwrap().get("code").unwrap().as_str(),
                            Some("resource_exhausted"),
                            "shed must surface as resource_exhausted"
                        );
                        shed_here += 1;
                    }
                    other => panic!("unexpected response type {other:?}"),
                }
            }
            let seam_hits = hits("serve/shed");
            clear("serve/shed");
            assert!(shed_here >= 1, "burst was never shed ({action:?})");
            assert!(seam_hits >= 1, "serve/shed seam never fired ({action:?})");
            total_shed += shed_here;
        }
        clear_all();
        assert!(server.engine.counters().shed_requests >= total_shed);
        // The shed counter is part of the public stats surface.
        let mut stream = server.connect();
        let stats = roundtrip(&mut stream, r#"{"id":"after","type":"stats"}"#);
        let counted = stats
            .get("counters")
            .unwrap()
            .get("shed_requests")
            .unwrap()
            .as_f64()
            .expect("shed_requests counter in stats");
        assert!(counted >= total_shed as f64, "stats undercounts sheds");
        drop(stream);
        server.shutdown();
    });
}

/// The three session seams (`session/open`, `session/mutate`,
/// `session/replay`) under the full action matrix, over the real TCP
/// server.  The invariant is atomicity: whatever fault fires mid-mutation,
/// the session is either **fully applied** or **fully rolled back** — never
/// a half-state.  Which of the two happened is read off the mutation's own
/// typed response, and a follow-up `redecide` must then agree
/// byte-for-byte with a fresh, never-faulted engine deciding exactly that
/// view set one-shot.
#[cfg(feature = "failpoints")]
#[test]
fn session_seams_survive_fault_matrix() {
    use cqdet_failpoint::{clear, clear_all, configure, hits, Action};

    let _serial = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
    clear_all();
    with_watchdog(180, "session seam matrix", || {
        let server = ChaosServer::start(ServeOptions::default());
        let mut stream = server.connect();

        // Disjoint-path-sum views (v_i = one path of each length 1..=i):
        // every view is its own iso class, removing the *first* view keeps
        // the coordinate order intact (its basis elements re-first-occur in
        // v2 in the same relative order), so `view_remove v1` walks the
        // in-place removal-repair path where `session/replay` is armed.
        let path_sum = |name: &str, upto: usize| {
            let mut atoms = Vec::new();
            for p in 1..=upto {
                for i in 0..p {
                    atoms.push(format!("E(p{p}x{i},p{p}x{})", i + 1));
                }
            }
            format!("{name}() :- {}", atoms.join(", "))
        };
        let defs: Vec<(String, String)> = (1..=4)
            .map(|i| (format!("v{i}"), path_sum(&format!("v{i}"), i)))
            .collect();
        let def_of = |name: &str| -> &str { &defs.iter().find(|(n, _)| n == name).unwrap().1 };
        let query = path_sum("q", 3);
        let program = |names: &[&str]| {
            let mut lines: Vec<&str> = names.iter().map(|n| def_of(n)).collect();
            lines.push(&query);
            lines.join("\n")
        };
        // The clean-engine oracle for a given view set, as wire-exact JSON.
        let oracle = |names: &[&str]| {
            let clean = Engine::new();
            let line = format!(
                r#"{{"id":"o","type":"decide","program":{},"witness":true}}"#,
                Json::str(program(names)).render()
            );
            let Some(Response::Decide { record, .. }) =
                cqdet::service::respond_to_line(&clean, &line)
            else {
                panic!("clean engine rejected the session oracle instance")
            };
            record.to_json().render()
        };
        let actions = || {
            [
                Action::Delay(Duration::from_millis(2)),
                Action::Err("chaos injected at a session seam".into()),
                Action::Panic,
            ]
        };

        // One long-lived session carried through every round; `current`
        // mirrors the view set the server must be holding.
        let opened = roundtrip(
            &mut stream,
            &format!(
                r#"{{"id":"open","type":"session_open","program":{}}}"#,
                Json::str(program(&["v1", "v2", "v3"])).render()
            ),
        );
        assert_eq!(opened.get("type").unwrap().as_str(), Some("session_open"));
        let sid = opened.get("session").unwrap().as_u64().unwrap();
        let redecide_line =
            format!(r#"{{"id":"rd","type":"redecide","session":{sid},"witness":true}}"#);
        let mut current: Vec<&str> = vec!["v1", "v2", "v3"];

        // `session/open`: a faulted open yields a fresh usable session
        // (Delay) or one typed error — never a half-registered slot.
        for action in actions() {
            println!("session matrix: session/open <- {action:?}");
            configure("session/open", action.clone());
            let response = roundtrip(
                &mut stream,
                &format!(
                    r#"{{"id":"fo","type":"session_open","program":{}}}"#,
                    Json::str(program(&["v1"])).render()
                ),
            );
            let seam_hits = hits("session/open");
            clear("session/open");
            assert!(seam_hits >= 1, "session/open never fired ({action:?})");
            match response.get("type").unwrap().as_str().unwrap() {
                "session_open" => {
                    let extra = response.get("session").unwrap().as_u64().unwrap();
                    let closed = roundtrip(
                        &mut stream,
                        &format!(r#"{{"id":"fc","type":"session_close","session":{extra}}}"#),
                    );
                    assert_eq!(closed.get("type").unwrap().as_str(), Some("session_close"));
                }
                "error" => assert_eq!(
                    response.get("error").unwrap().get("code").unwrap().as_str(),
                    Some("internal"),
                    "{response:?}"
                ),
                other => panic!("session/open under {action:?}: unexpected {other:?}"),
            }
        }

        // `session/mutate` over `view_add`, then `session/replay` over
        // `view_remove` (armed inside the echelon's removal repair).
        for (seam, is_remove) in [("session/mutate", false), ("session/replay", true)] {
            for action in actions() {
                println!("session matrix: {seam} <- {action:?}");
                // Warm the echelon so the mutation repairs in place (the
                // replay seam is only on-path when session state exists).
                let warm = roundtrip(&mut stream, &redecide_line);
                assert_eq!(warm.get("type").unwrap().as_str(), Some("redecide"));
                configure(seam, action.clone());
                let (line, expect_ty) = if is_remove {
                    (
                        format!(
                            r#"{{"id":"fm","type":"view_remove","session":{sid},"view":"v1"}}"#
                        ),
                        "view_remove",
                    )
                } else {
                    (
                        format!(
                            r#"{{"id":"fm","type":"view_add","session":{sid},"view":{}}}"#,
                            Json::str(def_of("v4").to_string()).render()
                        ),
                        "view_add",
                    )
                };
                let response = roundtrip(&mut stream, &line);
                let seam_hits = hits(seam);
                clear(seam);
                assert!(seam_hits >= 1, "{seam} never fired ({action:?})");
                let applied = match response.get("type").unwrap().as_str().unwrap() {
                    ty if ty == expect_ty => true,
                    "error" => {
                        assert_eq!(
                            response.get("error").unwrap().get("code").unwrap().as_str(),
                            Some("internal"),
                            "{response:?}"
                        );
                        false
                    }
                    other => panic!("{seam} under {action:?}: unexpected {other:?}"),
                };
                if applied {
                    if is_remove {
                        current.retain(|n| *n != "v1");
                    } else {
                        current.push("v4");
                    }
                    // The response's own view list must agree with the
                    // fully-applied set.
                    let listed: Vec<String> = response
                        .get("views")
                        .unwrap()
                        .as_arr()
                        .unwrap()
                        .iter()
                        .map(|v| v.as_str().unwrap().to_string())
                        .collect();
                    assert_eq!(listed, current, "half-applied view list");
                }
                // Atomicity oracle: the next redecide agrees byte-for-byte
                // with a clean engine on exactly the surviving view set.
                let after = roundtrip(&mut stream, &redecide_line);
                assert_eq!(
                    after.get("type").unwrap().as_str(),
                    Some("redecide"),
                    "{after:?}"
                );
                assert_eq!(
                    after.get("record").unwrap().render(),
                    oracle(&current),
                    "post-fault session diverged from a clean engine ({seam}, {action:?})"
                );
                // Undo the applied mutation (disarmed: must succeed) so
                // every round starts from the same three-view set.
                if applied {
                    let (undo, undo_ty) = if is_remove {
                        (
                            format!(
                                r#"{{"id":"um","type":"view_add","session":{sid},"view":{}}}"#,
                                Json::str(def_of("v1").to_string()).render()
                            ),
                            "view_add",
                        )
                    } else {
                        (
                            format!(
                                r#"{{"id":"um","type":"view_remove","session":{sid},"view":"v4"}}"#
                            ),
                            "view_remove",
                        )
                    };
                    let response = roundtrip(&mut stream, &undo);
                    assert_eq!(
                        response.get("type").unwrap().as_str(),
                        Some(undo_ty),
                        "{response:?}"
                    );
                    if is_remove {
                        current.push("v1");
                    } else {
                        current.retain(|n| *n != "v4");
                    }
                }
            }
        }

        clear_all();
        // Panics were injected at every seam; containment counted them, the
        // session survived them, and the shared caches are still coherent.
        assert!(server.engine.counters().panics_contained >= 1);
        let last = roundtrip(&mut stream, &redecide_line);
        assert_eq!(last.get("record").unwrap().render(), oracle(&current));
        assert_oracle_matches_clean_engine(server.addr);
        drop(stream);
        server.shutdown();
    });
}

/// The `snapshot/save` and `snapshot/load` seams under the full action
/// matrix.  These fire at shutdown and boot rather than per request, so the
/// generic matrix skips them and this scenario drives the lifecycle
/// directly: a fault while saving must never corrupt the previous snapshot
/// or hang shutdown, and a fault while loading must always yield a working
/// cold-start server.
#[cfg(feature = "failpoints")]
#[test]
fn snapshot_seams_survive_fault_matrix() {
    use cqdet_failpoint::{clear, clear_all, configure, hits, Action};

    let _serial = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
    clear_all();
    with_watchdog(180, "snapshot seam matrix", || {
        let path = temp_snapshot_path("seam-matrix");
        let _ = std::fs::remove_file(&path);
        let options = ServeOptions {
            snapshot_path: Some(path.clone()),
            ..ServeOptions::default()
        };

        // Seed a known-good snapshot via one warm run + graceful shutdown.
        let server = ChaosServer::start(options.clone());
        let mut stream = server.connect();
        let line = format!("{{\"id\":\"seed\",\"type\":\"decide\",\"program\":\"{DETERMINED}\"}}");
        let response = roundtrip(&mut stream, &line);
        assert_eq!(response.get("type").unwrap().as_str(), Some("decide"));
        drop(stream);
        server.shutdown();
        let good = std::fs::read(&path).expect("seed snapshot written");
        assert!(!good.is_empty(), "seed snapshot empty");

        let actions = || {
            [
                Action::Delay(Duration::from_millis(2)),
                Action::Err("chaos injected at snapshot seam".into()),
                Action::Panic,
            ]
        };

        // snapshot/save: shutdown must return under every action, and on
        // Err/Panic the seed snapshot survives byte-identical (the seam
        // aborts before the atomic tmp+rename ever starts).
        for action in actions() {
            println!("snapshot matrix: snapshot/save <- {action:?}");
            std::fs::write(&path, &good).expect("reseed snapshot");
            let server = ChaosServer::start(options.clone());
            assert_eq!(server.engine.counters().snapshot_loaded, 1);
            configure("snapshot/save", action.clone());
            let mut stream = server.connect();
            let response = roundtrip(&mut stream, &uncached_decide_line("save-probe", 8, None));
            assert_eq!(response.get("type").unwrap().as_str(), Some("decide"));
            drop(stream);
            server.shutdown();
            let seam_hits = hits("snapshot/save");
            clear("snapshot/save");
            assert!(seam_hits >= 1, "snapshot/save never fired ({action:?})");
            let on_disk = std::fs::read(&path).expect("snapshot file vanished");
            match action {
                // Delay still writes: the file must be a *fresh* valid
                // snapshot (it grew by the probe's frozen entries).
                Action::Delay(_) => assert!(!on_disk.is_empty()),
                // Err/Panic abort before the write: seed bytes intact.
                _ => assert_eq!(on_disk, good, "faulted save clobbered the snapshot"),
            }
            // Whatever is on disk, the next boot comes up warm and sane.
            let reboot = ChaosServer::start(options.clone());
            assert_eq!(reboot.engine.counters().snapshot_loaded, 1);
            assert_oracle_matches_clean_engine(reboot.addr);
            reboot.shutdown();
        }

        // snapshot/load: boot must always complete.  Err/Panic are counted
        // cold starts that still answer correctly; Delay is a warm start.
        for action in actions() {
            println!("snapshot matrix: snapshot/load <- {action:?}");
            std::fs::write(&path, &good).expect("reseed snapshot");
            configure("snapshot/load", action.clone());
            let server = ChaosServer::start(options.clone());
            let seam_hits = hits("snapshot/load");
            clear("snapshot/load");
            assert!(seam_hits >= 1, "snapshot/load never fired ({action:?})");
            let counters = server.engine.counters();
            match action {
                Action::Delay(_) => {
                    assert_eq!(counters.snapshot_loaded, 1, "delayed load must succeed");
                    assert_eq!(counters.snapshot_rejected, 0);
                }
                Action::Err(_) => {
                    assert_eq!(counters.snapshot_rejected, 1, "erred load must be counted");
                    assert_eq!(counters.snapshot_loaded, 0);
                }
                _ => {
                    assert_eq!(
                        counters.snapshot_rejected, 1,
                        "panicked load must be counted"
                    );
                    assert_eq!(counters.snapshot_loaded, 0);
                    assert!(counters.panics_contained >= 1, "load panic not contained");
                }
            }
            assert_oracle_matches_clean_engine(server.addr);
            server.shutdown();
        }

        clear_all();
        let _ = std::fs::remove_file(&path);
    });
}

/// Corruption on disk — a flipped byte or a truncated file — must never
/// panic the server or poison its answers: the snapshot is rejected with a
/// typed counter and the server cold-starts, agreeing with a clean engine.
/// This scenario needs no failpoints; it runs in every build.
#[test]
fn corrupted_snapshot_cold_starts_a_working_server() {
    let _serial = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
    with_watchdog(120, "snapshot corruption", || {
        let path = temp_snapshot_path("corrupt");
        let _ = std::fs::remove_file(&path);
        let options = ServeOptions {
            snapshot_path: Some(path.clone()),
            ..ServeOptions::default()
        };

        // Warm a server and shut down gracefully: the snapshot is written.
        let server = ChaosServer::start(options.clone());
        // A missing snapshot is an ordinary first boot, not a rejection.
        assert_eq!(server.engine.counters().snapshot_loaded, 0);
        assert_eq!(server.engine.counters().snapshot_rejected, 0);
        let mut stream = server.connect();
        for (tag, program) in [("det", DETERMINED), ("ndet", NOT_DETERMINED)] {
            let line =
                format!("{{\"id\":\"warm-{tag}\",\"type\":\"decide\",\"program\":\"{program}\"}}");
            let response = roundtrip(&mut stream, &line);
            assert_eq!(response.get("type").unwrap().as_str(), Some("decide"));
        }
        drop(stream);
        server.shutdown();
        let good = std::fs::read(&path).expect("snapshot written at graceful shutdown");
        assert!(
            !good.is_empty(),
            "graceful shutdown wrote an empty snapshot"
        );

        // A pristine reboot loads it.
        let server = ChaosServer::start(options.clone());
        assert_eq!(server.engine.counters().snapshot_loaded, 1);
        assert_oracle_matches_clean_engine(server.addr);
        server.shutdown();

        // Flip one payload byte: checksum rejects it, the server cold-starts,
        // and the rejection rides the public stats surface.
        let mut flipped = good.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x40;
        std::fs::write(&path, &flipped).expect("plant flipped snapshot");
        let server = ChaosServer::start(options.clone());
        assert_eq!(server.engine.counters().snapshot_rejected, 1);
        assert_eq!(server.engine.counters().snapshot_loaded, 0);
        assert_oracle_matches_clean_engine(server.addr);
        let mut stream = server.connect();
        let stats = roundtrip(&mut stream, r#"{"id":"after-flip","type":"stats"}"#);
        let rejected = stats
            .get("counters")
            .unwrap()
            .get("snapshot_rejected")
            .unwrap()
            .as_f64()
            .expect("snapshot_rejected counter in stats");
        assert_eq!(rejected, 1.0, "rejection missing from stats surface");
        drop(stream);
        server.shutdown();

        // That shutdown rewrote a *good* snapshot; now truncate it.
        std::fs::write(&path, &good[..good.len() / 3]).expect("plant truncated snapshot");
        let server = ChaosServer::start(options.clone());
        assert_eq!(server.engine.counters().snapshot_rejected, 1);
        assert_eq!(server.engine.counters().snapshot_loaded, 0);
        assert_oracle_matches_clean_engine(server.addr);
        server.shutdown();

        let _ = std::fs::remove_file(&path);
    });
}
