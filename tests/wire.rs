//! Wire-format stabilization tests: every emitted certificate record
//! carries the top-level `"version"` member, parses back through
//! `cqdet::engine::json`, and its arithmetic re-verifies **from the parsed
//! JSON alone** — no peeking at in-process state.

use cqdet::engine::{stats_json, Json, WIRE_FORMAT_VERSION};
use cqdet::prelude::*;

fn golden(name: &str) -> String {
    let text = std::fs::read_to_string(format!("{}/tests/data/{name}", env!("CARGO_MANIFEST_DIR")))
        .expect("golden file");
    text
}

fn rat_of(v: &Json) -> Rat {
    let num: Int = v
        .get("num")
        .and_then(Json::as_str)
        .unwrap()
        .parse()
        .unwrap();
    let den: Int = v
        .get("den")
        .and_then(Json::as_str)
        .unwrap()
        .parse()
        .unwrap();
    Rat::new(num, den)
}

fn int_vec_of(v: &Json) -> Vec<Rat> {
    v.as_arr()
        .unwrap()
        .iter()
        .map(|s| Rat::from_int(s.as_str().unwrap().parse().unwrap()))
        .collect()
}

fn dot(a: &[Rat], b: &[Rat]) -> Rat {
    a.iter()
        .zip(b)
        .fold(Rat::zero(), |acc, (x, y)| acc.add_ref(&x.mul_ref(y)))
}

/// Re-verify one parsed record's arithmetic: the span identity for
/// determined records, the orthogonality + perturbation identities for
/// undetermined ones.
fn reverify(record: &Json) {
    assert_eq!(
        record.get("version").unwrap().as_u64(),
        Some(WIRE_FORMAT_VERSION as u64),
        "every record carries the wire version"
    );
    let status = record.get("status").unwrap().as_str().unwrap();
    if status == "error" {
        assert!(record.get("error").unwrap().as_str().is_some());
        return;
    }
    let q_vec = int_vec_of(record.get("query_vector").unwrap());
    let view_vecs: Vec<Vec<Rat>> = record
        .get("view_vectors")
        .unwrap()
        .as_arr()
        .unwrap()
        .iter()
        .map(int_vec_of)
        .collect();
    match status {
        "determined" => {
            let coefficients: Vec<Rat> = record
                .get("coefficients")
                .expect("determined records carry coefficients")
                .as_arr()
                .unwrap()
                .iter()
                .map(rat_of)
                .collect();
            for (j, q_j) in q_vec.iter().enumerate() {
                let mut acc = Rat::zero();
                for (alpha, v) in coefficients.iter().zip(&view_vecs) {
                    acc = acc.add_ref(&alpha.mul_ref(&v[j]));
                }
                assert_eq!(&acc, q_j, "span identity at coordinate {j}");
            }
        }
        "not_determined" => {
            let ce = record
                .get("counterexample")
                .expect("undetermined records carry the counterexample");
            let z: Vec<Rat> = ce
                .get("z")
                .unwrap()
                .as_arr()
                .unwrap()
                .iter()
                .map(rat_of)
                .collect();
            let t = rat_of(ce.get("t").unwrap());
            for v in &view_vecs {
                assert!(dot(&z, v).is_zero(), "z ⊥ every view vector");
            }
            assert!(!dot(&z, &q_vec).is_zero(), "⟨z,q⃗⟩ ≠ 0");
            let y = int_vec_of(ce.get("answers_d").unwrap());
            let y_prime = int_vec_of(ce.get("answers_d_prime").unwrap());
            assert_ne!(y, y_prime);
            for i in 0..y.len() {
                let z_i = z[i].to_int().unwrap().to_i64().unwrap();
                assert_eq!(
                    y_prime[i],
                    y[i].mul_ref(&t.pow_i64(z_i)),
                    "y′ = t^z ∘ y at {i}"
                );
            }
        }
        other => panic!("unknown status {other:?}"),
    }
    assert_ne!(record.get("verified"), None);
}

#[test]
fn every_emitted_record_round_trips_and_reverifies() {
    // Drive the whole mixed golden batch through the serving engine and
    // re-check every record from its rendered JSON line alone.
    let engine = Engine::new();
    let response = engine.submit(Request {
        id: "wire".into(),
        deadline_ms: None,
        budget: None,
        kind: RequestKind::Batch {
            tasks: golden("mixed.cqb"),
            witnesses: true,
            verify: true,
        },
    });
    let Response::Batch { records, stats, .. } = response else {
        panic!("expected a batch response");
    };
    assert_eq!(records.len(), 6);
    for record in &records {
        let line = record.to_json().render();
        let parsed = Json::parse(&line).expect("emitted record is valid JSON");
        assert_eq!(Json::parse(&parsed.render()).unwrap(), parsed, "round trip");
        reverify(&parsed);
    }
    // The stats record is versioned too.
    let stats_line = stats_json(&stats).render();
    let parsed = Json::parse(&stats_line).unwrap();
    assert_eq!(
        parsed.get("version").unwrap().as_u64(),
        Some(WIRE_FORMAT_VERSION as u64)
    );
}

#[test]
fn decide_response_envelope_round_trips() {
    let engine = Engine::new();
    let response = engine.submit(Request {
        id: "env".into(),
        deadline_ms: None,
        budget: None,
        kind: RequestKind::Decide {
            program: golden("warehouse.cq"),
            query: "q".into(),
            witness: true,
        },
    });
    let wire = response.to_json();
    assert_eq!(wire.get("version").unwrap().as_u64(), Some(1));
    assert_eq!(wire.get("id").unwrap().as_str(), Some("env"));
    let parsed = Json::parse(&wire.render()).unwrap();
    assert_eq!(parsed, wire);
    reverify(parsed.get("record").unwrap());
}
