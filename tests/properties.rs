//! Property-based tests of the core invariants, across crates.
//!
//! These check the executable content of the paper's toolkit on randomly
//! generated structures and queries:
//!
//! * Lovász's Lemma 4 (the counting rules for `+`, `t·`, `×`, powers),
//! * consistency of symbolic (`StructureExpr`) evaluation with brute force,
//! * the Main Lemma's (⇐) direction: determined instances can never be
//!   refuted by any concrete structure pair we manage to generate,
//! * soundness of witnesses for undetermined instances,
//! * path queries: matrix evaluation ≡ homomorphism counting, and the
//!   prefix-graph decision is stable under renaming of the alphabet.

use cqdet::prelude::*;
use cqdet::query::eval::{eval_boolean_cq, eval_cq};
use cqdet::query::QueryGenerator;
use cqdet::structure::{
    disjoint_union, hom_count, hom_count_factored, power, product, scalar_multiple,
    StructureGenerator,
};
use proptest::prelude::*;

fn schema2() -> Schema {
    Schema::binary(["R0", "R1"])
}

fn small_structure(seed: u64, facts: usize, domain: usize) -> Structure {
    let mut generator = StructureGenerator::new(schema2(), seed);
    generator.random_with_facts(domain.max(1), facts)
}

fn connected_structure(seed: u64, facts: usize) -> Structure {
    let mut generator = StructureGenerator::new(schema2(), seed);
    generator.random_connected(facts.max(1))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Lemma 4 (1)–(2): sum rules for connected sources.
    #[test]
    fn lemma_4_sum_rules(seed in 0u64..5000, t in 0u64..4, facts in 1usize..4) {
        let a = connected_structure(seed, facts);
        let b = small_structure(seed.wrapping_add(1), 4, 3);
        let c = small_structure(seed.wrapping_add(2), 3, 3);
        prop_assert_eq!(
            hom_count(&a, &disjoint_union(&b, &c)),
            hom_count(&a, &b) + hom_count(&a, &c)
        );
        prop_assert_eq!(
            hom_count(&a, &scalar_multiple(t, &b)),
            Nat::from_u64(t) * hom_count(&a, &b)
        );
    }

    /// Lemma 4 (3)–(5): product and left-sum rules for arbitrary sources.
    #[test]
    fn lemma_4_product_rules(seed in 0u64..5000, facts in 1usize..4) {
        let a = small_structure(seed, facts, 3);
        let b = small_structure(seed.wrapping_add(10), 3, 3);
        let c = small_structure(seed.wrapping_add(20), 3, 3);
        prop_assert_eq!(
            hom_count(&a, &product(&b, &c)),
            hom_count(&a, &b) * hom_count(&a, &c)
        );
        prop_assert_eq!(hom_count(&a, &power(&b, 2)), hom_count(&a, &b).pow(2));
        prop_assert_eq!(
            hom_count(&disjoint_union(&a, &b), &c),
            hom_count(&a, &c) * hom_count(&b, &c)
        );
        prop_assert_eq!(hom_count_factored(&a, &b), hom_count(&a, &b));
    }

    /// Main Lemma (⇐): a determined instance can never be refuted — no pair of
    /// random structures that agrees on the views may disagree on the query.
    #[test]
    fn determined_instances_are_never_refuted(seed in 0u64..2000, pairs in 1usize..6) {
        let mut qgen = QueryGenerator::new(2, seed);
        let (views, q) = qgen.random_instance(2, 2, true);
        let analysis = decide_bag_determinacy(&views, &q).unwrap();
        prop_assert!(analysis.determined);
        let schema = analysis.schema.clone();
        let mut sgen = StructureGenerator::new(schema.clone(), seed ^ 0xABCD);
        for i in 0..pairs {
            let d = sgen.random_with_facts(3, 4 + i);
            let d2 = sgen.random_with_facts(3, 4 + i);
            let views_agree = views
                .iter()
                .all(|v| eval_boolean_cq(v, &schema, &d) == eval_boolean_cq(v, &schema, &d2));
            if views_agree {
                prop_assert_eq!(
                    eval_boolean_cq(&q, &schema, &d),
                    eval_boolean_cq(&q, &schema, &d2),
                    "determined instance refuted by {:?} vs {:?}", d, d2
                );
            }
        }
    }

    /// Witness soundness on random undetermined instances.
    #[test]
    fn witnesses_are_sound(seed in 0u64..500) {
        let mut qgen = QueryGenerator::new(2, seed);
        let (views, q) = qgen.random_instance(2, 2, false);
        let analysis = decide_bag_determinacy(&views, &q).unwrap();
        if !analysis.determined {
            let witness = build_counterexample(&analysis, &q, &WitnessConfig::default()).unwrap();
            prop_assert!(witness.verify(&views, &q));
        }
    }

    /// Path queries: matrix evaluation agrees with homomorphism counting, and
    /// the determinacy decision is invariant under renaming the alphabet.
    #[test]
    fn path_matrix_eval_and_renaming(seed in 0u64..2000, len in 1usize..5) {
        let mut qgen = QueryGenerator::new(2, seed);
        let (views, q) = qgen.random_path_instance(len + 1, 2, 2, seed % 2 == 0);
        // Matrix evaluation vs naive evaluation on a random structure.
        let schema = Schema::binary(["R0", "R1"]);
        let mut sgen = StructureGenerator::new(schema.clone(), seed);
        let d = sgen.random_with_facts(4, 8);
        let by_matrix = cqdet::core::paths::eval_path_matrix(&q, &d);
        let by_hom = eval_cq(&q.to_cq("q"), &schema, &d);
        prop_assert_eq!(by_matrix, by_hom);
        // Renaming the alphabet does not change the decision.
        let rename = |p: &PathQuery| PathQuery::new(p.letters().iter().map(|l| format!("Z{l}")));
        let renamed_views: Vec<PathQuery> = views.iter().map(&rename).collect();
        let renamed_q = rename(&q);
        prop_assert_eq!(
            decide_path_determinacy(&views, &q).determined,
            decide_path_determinacy(&renamed_views, &renamed_q).determined
        );
    }

    /// The decision procedure is insensitive to duplicating views and to
    /// reordering them.
    #[test]
    fn decision_invariances(seed in 0u64..2000) {
        let mut qgen = QueryGenerator::new(2, seed);
        let (mut views, q) = qgen.random_instance(3, 2, seed % 2 == 0);
        let base = decide_bag_determinacy(&views, &q).unwrap().determined;
        views.reverse();
        prop_assert_eq!(decide_bag_determinacy(&views, &q).unwrap().determined, base);
        let dup = views.clone().into_iter().chain(views.clone()).collect::<Vec<_>>();
        prop_assert_eq!(decide_bag_determinacy(&dup, &q).unwrap().determined, base);
    }
}

/// The clique program the fuel tests lean on: hom(K8, K7) is empty (no
/// proper 7-colouring of K8) but the backtracking search visits >10k
/// candidate extensions before it can say so, so any step limit below the
/// full search cost trips mid-search — at a step count that varies with
/// the limit.
fn clique_program() -> String {
    fn clique(name: &str, n: usize) -> String {
        let atoms: Vec<String> = (0..n)
            .flat_map(|i| {
                (0..n)
                    .filter(move |&j| j != i)
                    .map(move |j| format!("R(x{i},x{j})"))
            })
            .collect();
        format!("{name}() :- {}", atoms.join(", "))
    }
    format!("{}\n{}", clique("v", 8), clique("q", 7))
}

fn decide_request(id: &str, budget: Option<BudgetSpec>, deadline_ms: Option<u64>) -> Request {
    Request {
        id: id.into(),
        deadline_ms,
        budget,
        kind: RequestKind::Decide {
            program: clique_program(),
            query: "q".into(),
            witness: false,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Fuel governance: a step budget expiring at an *arbitrary* point of
    /// the pipeline surfaces as a typed `resource_exhausted` error (never a
    /// panic, never a wrong answer), and the session caches stay usable —
    /// the same engine then completes the instance unmetered with the
    /// correct answer.
    #[test]
    fn fuel_expiry_at_arbitrary_step_is_typed_and_caches_survive(limit in 1u64..20_000) {
        let engine = Engine::new();
        let spec = BudgetSpec { steps: Some(limit), bytes: None };
        match engine.submit(decide_request("metered", Some(spec), None)) {
            // A generous limit lets the search finish: the answer must be
            // the true one.
            Response::Decide { record, .. } => {
                prop_assert_eq!(record.status, TaskStatus::NotDetermined);
            }
            // A tiny limit trips the meter: the error must be typed and
            // carry an honest ledger.
            Response::Error { error, .. } => {
                prop_assert_eq!(error.code(), "resource_exhausted");
                let CqdetError::ResourceExhausted { spent, limit: reported, .. } = error else {
                    prop_assert!(false, "resource_exhausted code with a different variant");
                    unreachable!()
                };
                prop_assert_eq!(reported, Some(limit));
                prop_assert!(
                    spent.unwrap_or(0) >= limit,
                    "exhaustion must charge at least the limit"
                );
                prop_assert!(engine.counters().fuel_exhausted >= 1);
            }
            other => prop_assert!(false, "unexpected response: {other:?}"),
        }
        // The interrupted search must not have poisoned the caches.
        let after = engine.submit(decide_request("after", None, None));
        let Response::Decide { record, .. } = after else {
            prop_assert!(false, "unmetered retry failed: {after:?}");
            unreachable!()
        };
        prop_assert_eq!(record.status, TaskStatus::NotDetermined);
        prop_assert!(record.verified != Some(false), "certificate re-verification failed");
    }

    /// Fuel inside the tiered span solver: a step budget expiring at an
    /// arbitrary row operation of the modular prescreen or the exact
    /// elimination surfaces as a typed `Interrupt` — never a panic, never a
    /// wrong in-span/out-of-span verdict — and the unmetered retry on the
    /// same inputs gives the true answer.
    #[test]
    fn span_solver_fuel_expiry_is_typed_never_wrong(
        limit in 1u64..200_000,
        seed in 0u64..1000,
        big in any::<bool>(),
    ) {
        use cqdet::linalg::span_coefficients_gas;
        use cqdet::parallel::{Budget, Gas};
        let (k, n, bits) = if big { (48, 12, 256) } else { (24, 8, 64) };
        let (generators, in_span, outside) = cqdet_bench::span_workload(k, n, bits, seed);
        let budget = Budget::with_limits(Some(limit), None);
        for (target, expected_in_span) in [(&in_span, true), (&outside, false)] {
            let mut gas = Gas::new(&CancelToken::none(), &budget, "span");
            match span_coefficients_gas(&generators, target, &mut gas) {
                // Finished under budget: the verdict must be the true one.
                Ok(alpha) => prop_assert_eq!(alpha.is_some(), expected_in_span),
                // Interrupted mid-elimination: typed, with an honest ledger.
                Err(interrupt) => {
                    let msg = interrupt.to_string();
                    prop_assert!(msg.contains("steps"), "untyped interrupt: {msg}");
                }
            }
            // The meter never corrupts the answer for a fresh, unmetered run.
            prop_assert_eq!(
                cqdet::linalg::span_coefficients(&generators, target).is_some(),
                expected_in_span
            );
        }
    }

    /// Deadline governance: an already-expired deadline surfaces as a typed
    /// `deadline` error naming the pipeline stage that observed it, and the
    /// engine keeps serving afterwards.
    #[test]
    fn expired_deadline_is_typed_and_engine_keeps_serving(deadline in 0u64..2) {
        let engine = Engine::new();
        let response = engine.submit(decide_request("metered", None, Some(deadline)));
        match response {
            // 1 ms can be enough on a fast machine; the answer must then be
            // the true one.
            Response::Decide { record, .. } => {
                prop_assert_eq!(record.status, TaskStatus::NotDetermined);
            }
            Response::Error { error, .. } => {
                prop_assert_eq!(error.code(), "deadline");
                let CqdetError::Deadline { ref stage } = error else {
                    prop_assert!(false, "deadline code with a different variant");
                    unreachable!()
                };
                prop_assert!(!stage.is_empty(), "deadline error must name its stage");
                prop_assert!(engine.counters().timeouts >= 1);
            }
            other => prop_assert!(false, "unexpected response: {other:?}"),
        }
        let after = engine.submit(decide_request("after", None, None));
        let Response::Decide { record, .. } = after else {
            prop_assert!(false, "retry after deadline failed: {after:?}");
            unreachable!()
        };
        prop_assert_eq!(record.status, TaskStatus::NotDetermined);
        prop_assert!(record.verified != Some(false), "certificate re-verification failed");
    }
}

/// The candidate-view pool for the mutable-session differential test:
/// disjoint-path-sum prefixes `v_i` (each its own iso class; adds append,
/// removals exercise compaction, checkpoint replay, and rebuilds), a
/// duplicate-class edge view `e1` (≅ `v1`, so dropping either keeps the
/// class set), and a loop view `w` (its removal makes the query's regime
/// uncovered).  Returns `(name, definition)` pairs.
fn session_view_pool() -> Vec<(String, String)> {
    let mut pool: Vec<(String, String)> = (1..=5)
        .map(|i| (format!("v{i}"), path_sum_def(&format!("v{i}"), i)))
        .collect();
    pool.push(("e1".to_string(), "e1() :- E(x,y)".to_string()));
    pool.push(("w".to_string(), "w() :- E(l,l)".to_string()));
    pool
}

/// `name() :- one path of each length 1..=upto` (fresh variables per path).
fn path_sum_def(name: &str, upto: usize) -> String {
    let mut atoms = Vec::new();
    for p in 1..=upto {
        for i in 0..p {
            atoms.push(format!("E(p{p}x{i},p{p}x{})", i + 1));
        }
    }
    format!("{name}() :- {}", atoms.join(", "))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The mutable-session differential invariant: after **any** sequence
    /// of `view_add` / `view_remove` / `redecide` mutations, a session's
    /// `redecide` certificate is byte-identical (as wire JSON) to a fresh
    /// engine's one-shot `decide` on the final view set.  With a tiny fuel
    /// budget attached, any request may instead surface as a typed
    /// `resource_exhausted` — in which case the mutation rolled back
    /// cleanly and the session stays usable, which the same byte-identity
    /// check (against the unmutated view set) verifies.  CI runs this
    /// binary under both `CQDET_EXACT_LINALG` hatches, so the invariant is
    /// pinned on the tiered and the pure-rational solvers alike.
    #[test]
    fn session_mutation_sequences_match_one_shot_decide(
        opens in 1usize..4,
        ops in prop::collection::vec((0u8..3, 0usize..7), 3..12),
        tiny_fuel in any::<bool>(),
        steps in 1u64..12,
    ) {
        let pool = session_view_pool();
        let query = path_sum_def("q", 3);
        let program = |idxs: &[usize]| {
            idxs.iter()
                .map(|&i| pool[i].1.clone())
                .chain(std::iter::once(query.clone()))
                .collect::<Vec<_>>()
                .join("\n")
        };
        // The one-shot oracle: a never-mutated engine deciding the same
        // view set, rendered exactly as the wire would carry it.
        let one_shot = |idxs: &[usize]| -> String {
            let fresh = Engine::new();
            let Response::Decide { record, .. } = fresh.submit(Request {
                id: "oracle".into(),
                deadline_ms: None,
                budget: None,
                kind: RequestKind::Decide {
                    program: program(idxs),
                    query: "q".into(),
                    witness: true,
                },
            }) else {
                panic!("oracle decide failed")
            };
            record.to_json().render()
        };

        let engine = Engine::new();
        let mut current: Vec<usize> = (0..opens).collect();
        let open = engine.submit(Request {
            id: "open".into(),
            deadline_ms: None,
            budget: None,
            kind: RequestKind::SessionOpen {
                program: program(&current),
                query: "q".into(),
                checkpoint_interval: Some(2),
            },
        });
        let Response::SessionOpen { session, .. } = open else {
            prop_assert!(false, "session_open failed: {:?}", open);
            unreachable!()
        };
        let budget = tiny_fuel.then_some(BudgetSpec { steps: Some(steps), bytes: None });
        let submit = |kind: RequestKind| {
            engine.submit(Request {
                id: "op".into(),
                deadline_ms: None,
                budget,
                kind,
            })
        };

        for &(op, pick) in &ops {
            let pick = pick % pool.len();
            match op {
                0 => match submit(RequestKind::ViewAdd {
                    session,
                    view: pool[pick].1.clone(),
                }) {
                    Response::SessionDelta { .. } => {
                        prop_assert!(!current.contains(&pick), "duplicate add admitted");
                        current.push(pick);
                    }
                    Response::Error { error, .. } => {
                        if current.contains(&pick) {
                            prop_assert_eq!(error.code(), "schema");
                        } else {
                            // Only the fuel meter may refuse a legal add —
                            // and then the session must have rolled back.
                            prop_assert!(tiny_fuel, "unmetered add failed: {}", error);
                            prop_assert_eq!(error.code(), "resource_exhausted");
                        }
                    }
                    other => {
                        prop_assert!(false, "unexpected add response: {:?}", other);
                    }
                },
                1 => match submit(RequestKind::ViewRemove {
                    session,
                    view: pool[pick].0.clone(),
                }) {
                    Response::SessionDelta { .. } => {
                        let at = current.iter().position(|&i| i == pick);
                        prop_assert!(at.is_some(), "removed a view that was not in the set");
                        current.remove(at.unwrap());
                    }
                    Response::Error { error, .. } => {
                        if current.contains(&pick) {
                            prop_assert!(tiny_fuel, "unmetered remove failed: {}", error);
                            prop_assert_eq!(error.code(), "resource_exhausted");
                        } else {
                            prop_assert_eq!(error.code(), "schema");
                        }
                    }
                    other => {
                        prop_assert!(false, "unexpected remove response: {:?}", other);
                    }
                },
                _ => match submit(RequestKind::Redecide { session, witness: true }) {
                    Response::SessionDecide { record, .. } => {
                        prop_assert_eq!(record.to_json().render(), one_shot(&current));
                    }
                    Response::Error { error, .. } => {
                        prop_assert!(tiny_fuel, "unmetered redecide failed: {}", error);
                        prop_assert_eq!(error.code(), "resource_exhausted");
                    }
                    other => {
                        prop_assert!(false, "unexpected redecide response: {:?}", other);
                    }
                },
            }
        }

        // However the metered churn went, the session is still usable: an
        // unmetered redecide agrees byte-for-byte with the one-shot oracle
        // on exactly the surviving view set.
        let last = engine.submit(Request {
            id: "final".into(),
            deadline_ms: None,
            budget: None,
            kind: RequestKind::Redecide { session, witness: true },
        });
        let Response::SessionDecide { record, .. } = last else {
            prop_assert!(false, "final redecide failed: {:?}", last);
            unreachable!()
        };
        prop_assert_eq!(record.to_json().render(), one_shot(&current));
    }
}

/// A deterministic three-view decide request from the seeded random
/// instance family ([`cqdet_bench::decide_workload`]), rendered the same
/// way the serve protocol receives programs.
fn random_decide_request(id: &str, seed: u64, planted: bool, witness: bool) -> Request {
    let (views, query) = cqdet_bench::decide_workload(3, 2, planted, seed);
    let name = query.name().to_string();
    let program = views
        .iter()
        .map(|v| v.to_string())
        .chain(std::iter::once(query.to_string()))
        .collect::<Vec<_>>()
        .join("\n");
    Request {
        id: id.into(),
        deadline_ms: None,
        budget: None,
        kind: RequestKind::Decide {
            program,
            query: name,
            witness,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Cache governance: a tiny byte cap changes *when* work is recomputed,
    /// never *what* is answered.  A random request stream against an engine
    /// capped at 32 KiB (forcing evictions on nearly every insert) yields
    /// wire JSON byte-identical to an uncapped engine's, and every governed
    /// cache honors its byte budget throughout.
    #[test]
    fn tiny_cache_cap_never_changes_answers(seed in 0u64..5000, len in 4usize..10) {
        let capped = Engine::new();
        capped.set_cache_bytes(Some(32 * 1024));
        let uncapped = Engine::new();
        for i in 0..len {
            let item_seed = seed ^ (i as u64).wrapping_mul(0x9E37_79B9);
            // Identical requests (same id) so the rendered lines can only
            // differ if the *answers* differ.
            let request = || random_decide_request(
                &format!("s-{i}"), item_seed, i % 2 == 0, i % 3 == 1,
            );
            let governed = capped.submit(request()).to_json().render();
            let free = uncapped.submit(request()).to_json().render();
            prop_assert_eq!(
                governed, free,
                "capped and uncapped engines diverged at stream slot {}", i
            );
        }
        let stats_response = capped.submit(Request {
            id: "stats".into(),
            deadline_ms: None,
            budget: None,
            kind: RequestKind::Stats,
        });
        let Response::Stats { stats, .. } = stats_response else {
            prop_assert!(false, "stats request failed");
            unreachable!()
        };
        // The candidate-memo family is excluded: its cap governs each
        // short-lived per-structure memo, while the family `bytes` counter
        // sums every live member, so the family total can legitimately sit
        // above one member's cap.
        for (tag, usage) in [
            ("frozen", &stats.frozen_usage),
            ("gate", &stats.gate_usage),
            ("span", &stats.span_usage),
            ("hom", &stats.hom_usage),
        ] {
            prop_assert!(
                usage.bytes <= usage.cap,
                "{} cache over budget: {} bytes > {} cap", tag, usage.bytes, usage.cap
            );
        }
        // Cap and watermark of the candidate-memo family are process-global:
        // restore the defaults for the other tests in this binary.
        capped.set_cache_bytes(None);
    }

    /// Warm-start persistence: a snapshot survives the disk round trip
    /// exactly (the reloaded engine counts one `snapshot_loaded` and answers
    /// the original stream byte-identically), and *any* single-bit
    /// corruption of the file is rejected with a typed error and a counted
    /// cold start — never a panic, never a changed answer.
    #[test]
    fn snapshot_roundtrip_is_exact_and_corruption_is_typed(
        seed in 0u64..5000,
        flip_pos in any::<usize>(),
        flip_bit in 0u32..8,
    ) {
        let path = std::env::temp_dir().join(format!(
            "cqdet-prop-snapshot-{}-{seed}.cqds",
            std::process::id(),
        ));
        let requests = |tag: &str| -> Vec<Request> {
            (0..4)
                .map(|i| {
                    let item_seed = seed ^ (i as u64).wrapping_mul(0x517C_C1B7);
                    random_decide_request(&format!("{tag}-{i}"), item_seed, i % 2 == 0, i == 1)
                })
                .collect()
        };
        let warm = Engine::new();
        let expected: Vec<String> = requests("q")
            .into_iter()
            .map(|r| warm.submit(r).to_json().render())
            .collect();
        let entries = warm.save_snapshot(&path).expect("snapshot save");
        prop_assert!(entries > 0, "warm session exported an empty snapshot");

        let reloaded = Engine::new();
        let loaded = reloaded.load_snapshot(&path).expect("snapshot load");
        prop_assert_eq!(loaded, entries, "round trip dropped entries");
        prop_assert_eq!(reloaded.counters().snapshot_loaded, 1);
        for (request, want) in requests("q").into_iter().zip(&expected) {
            prop_assert_eq!(&reloaded.submit(request).to_json().render(), want);
        }

        let mut bytes = std::fs::read(&path).expect("read snapshot back");
        let pos = flip_pos % bytes.len();
        bytes[pos] ^= 1u8 << flip_bit;
        std::fs::write(&path, &bytes).expect("plant corruption");
        let cold = Engine::new();
        let verdict = cold.load_snapshot(&path);
        prop_assert!(
            verdict.is_err(),
            "corrupted snapshot (byte {}, bit {}) accepted", pos, flip_bit
        );
        prop_assert_eq!(cold.counters().snapshot_rejected, 1);
        prop_assert_eq!(cold.counters().snapshot_loaded, 0);
        for (request, want) in requests("q").into_iter().zip(&expected) {
            prop_assert_eq!(&cold.submit(request).to_json().render(), want);
        }
        let _ = std::fs::remove_file(&path);
    }
}
