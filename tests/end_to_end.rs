//! Cross-crate end-to-end tests: decision procedure ↔ witness construction ↔
//! materialised brute-force recounting ↔ bounded exhaustive baseline.

use cqdet::core::witness::check_certificate_arithmetic;
use cqdet::prelude::*;
use cqdet::query::QueryGenerator;

fn cq(text: &str) -> ConjunctiveQuery {
    parse_query(text).expect("valid query").disjuncts()[0].clone()
}

/// For an undetermined instance, the witness must survive every check we have:
/// certificate arithmetic, symbolic evaluation of all views, and — because the
/// instance is small — full materialisation with brute-force recounting.
#[test]
fn witness_full_stack_edge_vs_two_path() {
    let q = cq("q() :- R(x,y), R(y,z)");
    let v = cq("v() :- R(x,y)");
    let views = vec![v];
    let analysis = decide_bag_determinacy(&views, &q).unwrap();
    assert!(!analysis.determined);
    let config = WitnessConfig::default();
    let witness = build_counterexample(&analysis, &q, &config).unwrap();
    assert!(check_certificate_arithmetic(&witness, &analysis));
    assert!(witness.verify(&views, &q));
    let materialised = witness
        .verify_by_materialization(&views, &q, &config)
        .expect("this instance is small enough to materialise");
    assert!(
        materialised,
        "brute-force recount must agree with the symbolic certificate"
    );
}

/// The decision procedure and the bounded brute-force baseline must never
/// contradict each other: if the procedure says "determined", the baseline
/// must not find a counterexample; if the baseline finds one, the procedure
/// must say "not determined".
#[test]
fn decision_agrees_with_bruteforce_on_random_instances() {
    let mut generator = QueryGenerator::new(2, 2024);
    let mut determined_count = 0usize;
    for i in 0..30 {
        let planted = i % 3 == 0;
        let (views, q) = generator.random_instance(2, 2, planted);
        let analysis = decide_bag_determinacy(&views, &q).unwrap();
        if planted {
            assert!(
                analysis.determined,
                "planted instances are determined by construction"
            );
        }
        if analysis.determined {
            determined_count += 1;
        }
        let brute = brute_force_search(&views, &q, 2, 20_000);
        if analysis.determined {
            assert!(
                !brute.refuted(),
                "brute force found a counterexample for an instance the procedure calls determined: V={views:?}, q={q}"
            );
        }
        if brute.refuted() {
            assert!(!analysis.determined);
        }
    }
    assert!(
        determined_count >= 10,
        "the planted third must all be determined"
    );
}

/// Undetermined random instances must yield verifiable witnesses.
#[test]
fn witnesses_for_random_undetermined_instances() {
    let mut generator = QueryGenerator::new(2, 777);
    let mut built = 0usize;
    for _ in 0..20 {
        let (views, q) = generator.random_instance(2, 2, false);
        let analysis = decide_bag_determinacy(&views, &q).unwrap();
        if analysis.determined {
            continue;
        }
        let witness = build_counterexample(&analysis, &q, &WitnessConfig::default()).unwrap();
        assert!(
            witness.verify(&views, &q),
            "witness failed for V={views:?}, q={q}"
        );
        built += 1;
    }
    assert!(
        built >= 5,
        "expected a healthy share of undetermined instances, got {built}"
    );
}

/// Determinacy is monotone in a useful way: adding the query itself to any
/// view set makes the instance determined, and adding extra views never turns
/// a determined instance into an undetermined one.
#[test]
fn adding_views_preserves_determinacy() {
    let mut generator = QueryGenerator::new(2, 31337);
    for i in 0..10 {
        let (mut views, q) = generator.random_instance(3, 2, i % 2 == 0);
        let before = decide_bag_determinacy(&views, &q).unwrap().determined;
        // Adding q itself always determines.
        let mut with_q = views.clone();
        with_q.push(q.clone().with_name("q_as_view"));
        assert!(decide_bag_determinacy(&with_q, &q).unwrap().determined);
        // Adding an unrelated extra view never destroys determinacy.
        views.push(generator.random_boolean_cq("extra", 2, 3, true));
        let after = decide_bag_determinacy(&views, &q).unwrap().determined;
        if before {
            assert!(after, "adding a view must not destroy determinacy");
        }
    }
}

/// The facade's parser, decision procedure and rewriting work together on the
/// warehouse scenario from the README.
#[test]
fn readme_scenario() {
    let program = "
        # materialised counting views
        v1() :- Orders(c,o), Ships(o,w)
        v2() :- Ships(o,w)
        # dashboards
        q1() :- Orders(c,o), Ships(o,w), Ships(o2,w2)
        q2() :- Orders(c,o), Ships(o,w), Ships(o,w2)
    ";
    let queries = parse_queries(program).unwrap();
    let views: Vec<ConjunctiveQuery> = queries[..2]
        .iter()
        .map(|u| u.disjuncts()[0].clone())
        .collect();
    let q1 = queries[2].disjuncts()[0].clone();
    let q2 = queries[3].disjuncts()[0].clone();
    let a1 = decide_bag_determinacy(&views, &q1).unwrap();
    assert!(a1.determined);
    assert!(a1.rewriting(&views).unwrap().contains("v1(D)"));
    let a2 = decide_bag_determinacy(&views, &q2).unwrap();
    assert!(!a2.determined);
    let w = build_counterexample(&a2, &q2, &WitnessConfig::default()).unwrap();
    assert!(w.verify(&views, &q2));
}

/// Theorem 2 end-to-end: encode a solvable Diophantine instance, search for a
/// solution, and confirm the counterexample refutes determinacy of the encoded
/// UCQ instance.
#[test]
fn hilbert_reduction_end_to_end() {
    use cqdet::hilbert::structures::{bounded_refutation, verify_counterexample};
    // 2·x·y − 12 = 0 (solvable), and x² + 3 = 0 (unsolvable over ℕ).
    let solvable = DiophantineInstance::from_terms(&[(2, &[("x", 1), ("y", 1)]), (-12, &[])]);
    let (enc, d, d_prime) = bounded_refutation(&solvable, 6).unwrap();
    assert!(verify_counterexample(&enc, &d, &d_prime));

    let unsolvable = DiophantineInstance::from_terms(&[(1, &[("x", 2)]), (3, &[])]);
    assert!(bounded_refutation(&unsolvable, 30).is_none());
}
