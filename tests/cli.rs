//! Integration tests for the `cqdet` binary: drive `decide` and `batch` on
//! the golden files under `tests/data/` and assert that the emitted JSON
//! certificates round-trip (parse with `cqdet::engine::json`, re-verify the
//! arithmetic from the parsed record alone — no peeking at internal state).

use cqdet::engine::Json;
use cqdet::prelude::*;
use std::process::{Command, Output};

fn golden(name: &str) -> String {
    format!("{}/tests/data/{name}", env!("CARGO_MANIFEST_DIR"))
}

fn run_cqdet(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_cqdet"))
        .args(args)
        .output()
        .expect("spawn cqdet")
}

fn stdout_lines(output: &Output) -> Vec<String> {
    String::from_utf8(output.stdout.clone())
        .expect("utf-8 stdout")
        .lines()
        .map(str::to_string)
        .collect()
}

/// Parse a decimal-string JSON member into a rational.
fn rat_of(v: &Json) -> Rat {
    let num: Int = v
        .get("num")
        .and_then(Json::as_str)
        .expect("num member")
        .parse()
        .expect("decimal num");
    let den: Int = v
        .get("den")
        .and_then(Json::as_str)
        .expect("den member")
        .parse()
        .expect("decimal den");
    Rat::new(num, den)
}

/// Parse an array of bare decimal strings into rationals.
fn int_vec_of(v: &Json) -> Vec<Rat> {
    v.as_arr()
        .expect("array")
        .iter()
        .map(|s| Rat::from_int(s.as_str().expect("decimal string").parse().unwrap()))
        .collect()
}

/// The determined-side certificate check, from the JSON record alone:
/// `q⃗ = Σ αᵢ·v⃗ᵢ` over the emitted vectors and coefficients.
fn check_determined_record(record: &Json) {
    let q_vec = int_vec_of(record.get("query_vector").unwrap());
    let view_vecs: Vec<Vec<Rat>> = record
        .get("view_vectors")
        .unwrap()
        .as_arr()
        .unwrap()
        .iter()
        .map(int_vec_of)
        .collect();
    let coefficients: Vec<Rat> = record
        .get("coefficients")
        .expect("determined records carry coefficients")
        .as_arr()
        .unwrap()
        .iter()
        .map(rat_of)
        .collect();
    assert_eq!(coefficients.len(), view_vecs.len());
    for (j, q_j) in q_vec.iter().enumerate() {
        let mut acc = Rat::zero();
        for (alpha, v) in coefficients.iter().zip(&view_vecs) {
            acc = acc.add_ref(&alpha.mul_ref(&v[j]));
        }
        assert_eq!(&acc, q_j, "span identity fails at basis coordinate {j}");
    }
    assert_eq!(record.get("verified").unwrap().as_bool(), Some(true));
    assert!(record.get("rewriting").unwrap().as_str().is_some());
}

/// The undetermined-side certificate check, from the JSON record alone:
/// `⟨z⃗, v⃗⟩ = 0` for every retained view, `⟨z⃗, q⃗⟩ ≠ 0`, the answer vectors
/// differ, and `y′ = t^{z⃗} ∘ y` componentwise (Lemma 57's perturbation,
/// which survives the Lemma 55 scaling).
fn check_undetermined_record(record: &Json) {
    let q_vec = int_vec_of(record.get("query_vector").unwrap());
    let view_vecs: Vec<Vec<Rat>> = record
        .get("view_vectors")
        .unwrap()
        .as_arr()
        .unwrap()
        .iter()
        .map(int_vec_of)
        .collect();
    let ce = record
        .get("counterexample")
        .expect("undetermined records carry the counterexample");
    let z: Vec<Rat> = ce
        .get("z")
        .unwrap()
        .as_arr()
        .unwrap()
        .iter()
        .map(rat_of)
        .collect();
    let t = rat_of(ce.get("t").unwrap());
    let dot = |a: &[Rat], b: &[Rat]| -> Rat {
        a.iter()
            .zip(b)
            .fold(Rat::zero(), |acc, (x, y)| acc.add_ref(&x.mul_ref(y)))
    };
    for v in &view_vecs {
        assert!(
            dot(&z, v).is_zero(),
            "z must be orthogonal to every view vector"
        );
    }
    assert!(!dot(&z, &q_vec).is_zero(), "z must not be orthogonal to q⃗");
    assert!(t != Rat::one(), "the perturbation factor must be ≠ 1");

    let y = int_vec_of(ce.get("answers_d").unwrap());
    let y_prime = int_vec_of(ce.get("answers_d_prime").unwrap());
    assert_eq!(y.len(), z.len());
    assert_ne!(y, y_prime, "the answer vectors must differ");
    for i in 0..y.len() {
        let z_i = z[i].to_int().expect("z is integral").to_i64().unwrap();
        assert_eq!(
            y_prime[i],
            y[i].mul_ref(&t.pow_i64(z_i)),
            "y′ = t^z ∘ y must hold at coordinate {i}"
        );
    }
    assert_eq!(ce.get("arithmetic_verified").unwrap().as_bool(), Some(true));
    assert_eq!(record.get("verified").unwrap().as_bool(), Some(true));
}

#[test]
fn decide_json_certificate_round_trips() {
    let output = run_cqdet(&["decide", &golden("warehouse.cq"), "--json"]);
    assert!(output.status.success(), "{output:?}");
    let lines = stdout_lines(&output);
    assert_eq!(lines.len(), 1, "decide --json emits exactly one record");
    let record = Json::parse(&lines[0]).expect("valid JSON");
    // Round trip: render and re-parse is the identity.
    assert_eq!(Json::parse(&record.render()).unwrap(), record);
    assert_eq!(record.get("status").unwrap().as_str(), Some("determined"));
    assert_eq!(record.get("query").unwrap().as_str(), Some("q"));
    assert_eq!(
        record.get("views").unwrap().as_arr().unwrap().len(),
        2,
        "v1 and v2"
    );
    check_determined_record(&record);
}

#[test]
fn batch_emits_reverifiable_records_and_stats() {
    let output = run_cqdet(&["batch", &golden("mixed.cqb"), "--quiet"]);
    assert!(output.status.success(), "{output:?}");
    let lines = stdout_lines(&output);
    // 6 tasks + 1 session_stats line.
    assert_eq!(lines.len(), 7);
    let records: Vec<Json> = lines
        .iter()
        .map(|l| Json::parse(l).expect("every line is valid JSON"))
        .collect();
    for record in &records {
        assert_eq!(
            Json::parse(&record.render()).unwrap(),
            *record,
            "round trip"
        );
    }

    let by_task = |id: &str| {
        records
            .iter()
            .find(|r| r.get("task").and_then(Json::as_str) == Some(id))
            .unwrap_or_else(|| panic!("no record for task {id}"))
    };
    for id in ["det-pair", "det-star", "det-again"] {
        let record = by_task(id);
        assert_eq!(
            record.get("status").unwrap().as_str(),
            Some("determined"),
            "{id}"
        );
        check_determined_record(record);
    }
    for id in ["undet", "undet2"] {
        let record = by_task(id);
        assert_eq!(
            record.get("status").unwrap().as_str(),
            Some("not_determined"),
            "{id}"
        );
        check_undetermined_record(record);
    }
    let reject = by_task("reject");
    assert_eq!(reject.get("status").unwrap().as_str(), Some("error"));
    assert!(reject
        .get("error")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("boolean"));

    // The stats line reports the cross-task cache hits; tasks share views,
    // so the frozen and gate caches must both have hit.
    let stats = records
        .iter()
        .find(|r| r.get("type").and_then(Json::as_str) == Some("session_stats"))
        .expect("session_stats record");
    assert!(stats.get("frozen_hits").unwrap().as_u64().unwrap() > 0);
    assert!(stats.get("gate_hits").unwrap().as_u64().unwrap() > 0);
    assert!(stats.get("hom_hits").unwrap().as_u64().unwrap() > 0);
    // `det-pair` and `det-again` retain the same view class (the edge), so
    // the second task solves against the first one's cached span basis.
    assert!(stats.get("span_hits").unwrap().as_u64().unwrap() > 0);
}

#[test]
fn forced_exact_linalg_hatch_agrees_with_modular_path() {
    // CQDET_EXACT_LINALG=1 forces the pure-Rat linear algebra; every task
    // outcome and every certificate verification must agree with the
    // modular-prescreened default.  (Coefficient values may legitimately
    // differ on underdetermined systems — any exact combination is a valid
    // certificate — so the comparison is per-task status + verified flag.)
    let default_run = run_cqdet(&["batch", &golden("mixed.cqb"), "--quiet"]);
    assert!(default_run.status.success());
    let forced_run = Command::new(env!("CARGO_BIN_EXE_cqdet"))
        .args(["batch", &golden("mixed.cqb"), "--quiet"])
        .env("CQDET_EXACT_LINALG", "1")
        .output()
        .expect("spawn cqdet");
    assert!(forced_run.status.success(), "{forced_run:?}");
    let default_lines = stdout_lines(&default_run);
    let forced_lines = stdout_lines(&forced_run);
    assert_eq!(default_lines.len(), forced_lines.len());
    for (d, f) in default_lines.iter().zip(&forced_lines) {
        let (d, f) = (Json::parse(d).unwrap(), Json::parse(f).unwrap());
        if d.get("type").and_then(Json::as_str) == Some("session_stats") {
            continue;
        }
        assert_eq!(d.get("task"), f.get("task"));
        assert_eq!(d.get("status"), f.get("status"), "{:?}", d.get("task"));
        assert_eq!(d.get("verified"), f.get("verified"), "{:?}", d.get("task"));
    }
}

#[test]
fn batch_json_agrees_with_in_process_engine() {
    // The CLI's records must match what the library computes on the same
    // task file (same ids, same statuses, same determinacy).
    let text = std::fs::read_to_string(golden("mixed.cqb")).unwrap();
    let file = parse_task_file(&text).unwrap();
    let session = DecisionSession::new();
    let report = session.decide_batch(&file.tasks);

    let output = run_cqdet(&["batch", &golden("mixed.cqb"), "--quiet"]);
    assert!(output.status.success());
    let lines = stdout_lines(&output);
    for (record, line) in report.records.iter().zip(&lines) {
        let json = Json::parse(line).unwrap();
        assert_eq!(json.get("task").unwrap().as_str(), Some(record.id.as_str()));
        assert_eq!(
            json.get("status").unwrap().as_str(),
            Some(record.status.as_str())
        );
    }
}

#[test]
fn decide_human_output_still_works() {
    let output = run_cqdet(&["decide", &golden("warehouse.cq")]);
    assert!(output.status.success());
    let text = String::from_utf8(output.stdout).unwrap();
    assert!(text.contains("determined under bag semantics: true"));
    assert!(text.contains("rewriting: q(D) = v1(D)^(1) · v2(D)^(1)"));
}

#[test]
fn explain_narrates_the_pipeline() {
    let output = run_cqdet(&["explain", &golden("warehouse.cq")]);
    assert!(output.status.success());
    let text = String::from_utf8(output.stdout).unwrap();
    for needle in [
        "# Step 1",
        "retention gate",
        "# Step 2",
        "# Step 3",
        "Main Lemma span test",
        "YES — determined",
    ] {
        assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
    }
}

#[test]
fn wire_version_is_emitted_on_every_record() {
    let output = run_cqdet(&["decide", &golden("warehouse.cq"), "--json"]);
    assert!(output.status.success());
    let record = Json::parse(&stdout_lines(&output)[0]).unwrap();
    assert_eq!(record.get("version").unwrap().as_u64(), Some(1));

    let output = run_cqdet(&["batch", &golden("mixed.cqb"), "--quiet"]);
    assert!(output.status.success());
    for line in stdout_lines(&output) {
        let json = Json::parse(&line).unwrap();
        assert_eq!(
            json.get("version").unwrap().as_u64(),
            Some(1),
            "task records and the session_stats line are all versioned: {line}"
        );
    }
}

#[test]
fn parse_errors_render_with_a_caret() {
    let path = std::env::temp_dir().join("cqdet_cli_caret.cq");
    std::fs::write(&path, "v() :- R(x,y)\nq() :- R(x,y) junk\n").unwrap();
    let output = run_cqdet(&["decide", path.to_str().unwrap()]);
    assert!(!output.status.success());
    let err = String::from_utf8(output.stderr).unwrap();
    assert!(
        err.contains("line 2, column 15"),
        "positioned diagnostic: {err}"
    );
    assert!(err.contains("\"junk\""), "offending token named: {err}");
    assert!(
        err.contains("q() :- R(x,y) junk"),
        "source line echoed: {err}"
    );
    let caret_line = err
        .lines()
        .find(|l| l.trim_end().ends_with('^'))
        .unwrap_or_else(|| panic!("no caret line in: {err}"));
    // The caret sits under column 15 of the echoed line (prefix "  |  ").
    assert_eq!(caret_line, "  |                ^");
}

#[test]
fn unknown_command_fails_cleanly() {
    let output = run_cqdet(&["frobnicate"]);
    assert!(!output.status.success());
    let err = String::from_utf8(output.stderr).unwrap();
    assert!(err.contains("unknown command"));
}

#[test]
fn decide_json_error_record_still_exits_nonzero() {
    // The machine-readable record is emitted, but scripts gating on the
    // exit code must still see a failure.
    let path = std::env::temp_dir().join("cqdet_cli_nonboolean.cq");
    std::fs::write(&path, "v() :- R(x,y)\nq(x) :- R(x,y)\n").unwrap();
    let output = run_cqdet(&["decide", path.to_str().unwrap(), "--json"]);
    assert!(!output.status.success(), "error records exit nonzero");
    let lines = stdout_lines(&output);
    assert_eq!(lines.len(), 1);
    let record = Json::parse(&lines[0]).unwrap();
    assert_eq!(record.get("status").unwrap().as_str(), Some("error"));
}

#[test]
fn foreign_flags_are_rejected_per_subcommand() {
    // --repeat belongs to `bench`; `decide` must reject it, not ignore it.
    let output = run_cqdet(&["decide", &golden("warehouse.cq"), "--repeat", "3"]);
    assert!(!output.status.success());
    let err = String::from_utf8(output.stderr).unwrap();
    assert!(err.contains("not a flag of this subcommand"), "{err}");
}
