//! Integration tests reproducing the paper's worked examples, figures and the
//! qualitative content of its theorems (see EXPERIMENTS.md for the index).

use cqdet::core::paths::{
    derivation_to_q_walk, is_q_walk, non_determinacy_witness, path_schema, reduce_q_walk,
};
use cqdet::linalg::{cone_contains, interior_cone_point};
use cqdet::prelude::*;
use cqdet::query::eval::{eval_boolean_ucq, eval_cq};
use cqdet::structure::Structure;

fn cq(text: &str) -> ConjunctiveQuery {
    parse_query(text).expect("valid query").disjuncts()[0].clone()
}

/// EX-2: set-determinacy does not imply bag-determinacy (Example 2).
#[test]
fn example_2_bag_counterexample() {
    let schema = Schema::with_relations([("P", 2), ("R", 2), ("S", 2)]);
    let q = parse_query("q(x) :- P(u,x), R(x,y), S(y,z)").unwrap();
    let v1 = parse_query("v1(x) :- P(u,x), R(x,y)").unwrap();
    let v2 = parse_query("v2(x) :- R(x,y), S(y,z)").unwrap();
    let mut d = Structure::new(schema.clone());
    d.add("P", &[0, 1]);
    d.add("R", &[1, 2]);
    d.add("R", &[1, 3]);
    d.add("S", &[2, 4]);
    d.add("S", &[3, 5]);
    let mut d2 = Structure::new(schema.clone());
    d2.add("P", &[0, 1]);
    d2.add("P", &[6, 1]);
    d2.add("R", &[1, 2]);
    d2.add("S", &[2, 4]);
    d2.add("S", &[2, 5]);
    // The views agree as bags…
    assert_eq!(
        eval_cq(&v1.disjuncts()[0], &schema, &d),
        eval_cq(&v1.disjuncts()[0], &schema, &d2)
    );
    assert_eq!(
        eval_cq(&v2.disjuncts()[0], &schema, &d),
        eval_cq(&v2.disjuncts()[0], &schema, &d2)
    );
    // …but the query does not: V does not bag-determine q.
    assert_ne!(
        eval_cq(&q.disjuncts()[0], &schema, &d),
        eval_cq(&q.disjuncts()[0], &schema, &d2)
    );
    // Under set semantics the two structures also agree on the views and on q
    // (both satisfy everything), consistent with V →_set q.
    assert_eq!(
        eval_cq(&q.disjuncts()[0], &schema, &d).support(),
        eval_cq(&q.disjuncts()[0], &schema, &d2).support()
    );
}

/// EX-3: bag-determinacy does not imply set-determinacy (Example 3, UCQs).
#[test]
fn example_3_set_counterexample() {
    let schema = Schema::with_relations([("P", 1), ("R", 1)]);
    let q = parse_query("q() :- R(x)").unwrap();
    let v1 = parse_query("v1() :- P(x)").unwrap();
    let v2 = parse_query("v2() :- P(x) | R(x)").unwrap();

    // Bag semantics: q(D) = v2(D) − v1(D) for every D (here: a few samples).
    for (p_count, r_count) in [(0u64, 0u64), (1, 0), (0, 3), (2, 5), (4, 1)] {
        let mut d = Structure::new(schema.clone());
        for i in 0..p_count {
            d.add("P", &[i]);
        }
        for i in 0..r_count {
            d.add("R", &[100 + i]);
        }
        let qv = Int::from_nat(eval_boolean_ucq(&q, &schema, &d));
        let v1v = Int::from_nat(eval_boolean_ucq(&v1, &schema, &d));
        let v2v = Int::from_nat(eval_boolean_ucq(&v2, &schema, &d));
        assert_eq!(qv, v2v - v1v, "q = v2 − v1 under bag semantics");
    }

    // Set semantics: {P(a)} and {P(a), R(b)} agree on both views (satisfied /
    // satisfied) but disagree on q — so V does not set-determine q.
    let mut e1 = Structure::new(schema.clone());
    e1.add("P", &[0]);
    let mut e2 = e1.clone();
    e2.add("R", &[1]);
    let sat = |u: &UnionQuery, s: &Structure| !eval_boolean_ucq(u, &schema, s).is_zero();
    assert_eq!(sat(&v1, &e1), sat(&v1, &e2));
    assert_eq!(sat(&v2, &e1), sat(&v2, &e2));
    assert_ne!(sat(&q, &e1), sat(&q, &e2));
}

/// EX-13 + Lemma 15: the q-walk induced by the paper's derivation reduces to q.
#[test]
fn example_13_q_walk() {
    let q = PathQuery::from_compact("ABCD");
    let views = vec![
        PathQuery::from_compact("ABC"),
        PathQuery::from_compact("BC"),
        PathQuery::from_compact("BCD"),
    ];
    let analysis = decide_path_determinacy(&views, &q);
    assert!(analysis.determined, "Example 13 is determined");
    let steps = analysis.derivation.unwrap();
    let walk = derivation_to_q_walk(&views, &steps);
    assert!(is_q_walk(&walk, &q));
    let reduced = reduce_q_walk(&walk);
    assert_eq!(
        reduced,
        q.letters()
            .iter()
            .map(|l| (l.clone(), 1i8))
            .collect::<Vec<_>>()
    );
}

/// THEOREM 1: on path queries, the decision coincides with set-semantics
/// determinacy (Fact 10) — and undetermined instances have explicit witnesses.
#[test]
fn theorem_1_path_decision_and_witnesses() {
    let cases: Vec<(&str, Vec<&str>, bool)> = vec![
        ("AB", vec!["A", "B"], true),
        ("AB", vec!["A"], false),
        ("ABCD", vec!["ABC", "BC", "BCD"], true),
        ("ABCD", vec!["ABC", "BCD"], false),
        ("AAA", vec!["A"], true),
        ("ABAB", vec!["AB"], true),
        ("ABA", vec!["AB", "BA"], false),
        ("", vec!["A"], true),
    ];
    for (q, vs, expected) in cases {
        let q = PathQuery::from_compact(q);
        let views: Vec<PathQuery> = vs.iter().map(|v| PathQuery::from_compact(v)).collect();
        let analysis = decide_path_determinacy(&views, &q);
        assert_eq!(analysis.determined, expected, "q={q}, V={vs:?}");
        if !expected {
            let (d, d2) = non_determinacy_witness(&views, &q).unwrap();
            let schema = path_schema(&views, &q);
            for v in &views {
                assert_eq!(
                    eval_cq(&v.to_cq("v"), &schema, &d),
                    eval_cq(&v.to_cq("v"), &schema, &d2),
                    "view {v} must agree on the Appendix B pair"
                );
            }
            assert_ne!(
                eval_cq(&q.to_cq("q"), &schema, &d),
                eval_cq(&q.to_cq("q"), &schema, &d2)
            );
        }
    }
}

/// ABA with V = {AB, BA}: the prefix graph has edges ε—AB and A—ABA, so ABA is
/// reachable only if A is; A is reachable only via … nothing.  Sanity-check a
/// subtle case against the brute-force baseline converted to boolean queries.
#[test]
fn path_decision_agrees_with_bruteforce_on_small_cases() {
    let q = PathQuery::from_compact("AB");
    let views = [PathQuery::from_compact("A")];
    // Not determined: the brute-force search over boolean versions must find a
    // counterexample among small structures (the Appendix B pair has 6 elements).
    let bool_views: Vec<ConjunctiveQuery> = views
        .iter()
        .map(|v| ConjunctiveQuery::boolean("v", v.to_cq("v").atoms().to_vec()))
        .collect();
    let bool_q = ConjunctiveQuery::boolean("q", q.to_cq("q").atoms().to_vec());
    let outcome = brute_force_search(&bool_views, &bool_q, 3, 200_000);
    assert!(outcome.refuted());
}

/// FIG-1 / Example 39 + Example 42: the matrix the paper prints is singular,
/// and inside span_ℕ(W) the two basis queries are locked in a fixed ratio.
#[test]
fn figure_1_singular_matrix() {
    let m_w = QMat::from_i64_rows(&[&[2, 4], &[1, 2]]);
    assert!(!m_w.is_nonsingular());
    for a in 0..5i64 {
        for b in 0..5i64 {
            let answers = m_w.mul_vec(&QVec::from_i64s(&[a, b]));
            assert_eq!(answers[0], Rat::from_i64(2).mul_ref(&answers[1]));
        }
    }
}

/// FIG-2 / Example 54: the evaluation matrix is nonsingular, the cone has a
/// rational interior point, and the generators (columns) lie in the cone.
#[test]
fn figure_2_cone_and_p() {
    let m = QMat::from_i64_rows(&[&[1, 4], &[1, 2]]);
    assert!(m.is_nonsingular());
    let p = interior_cone_point(&m);
    assert!(cone_contains(&m, &p));
    assert_eq!(p, QVec::from_i64s(&[5, 3]));
    assert!(cone_contains(&m, &QVec::from_i64s(&[1, 1])));
    assert!(cone_contains(&m, &QVec::from_i64s(&[4, 2])));
    assert!(!cone_contains(&m, &QVec::from_i64s(&[4, 1])));
    assert!(!cone_contains(&m, &QVec::from_i64s(&[0, 3])));
    // Points of P are points of C.
    for a in 0..4i64 {
        for b in 0..4i64 {
            let point = m.mul_vec(&QVec::from_i64s(&[a, b]));
            assert!(cone_contains(&m, &point));
        }
    }
}

/// EX-32: the span relationship gives the rewriting q(D) = v1(D)³ / v2(D).
#[test]
fn example_32_rewriting() {
    let q = cq("q() :- R(e0x,e0y), R(l0,l0), R(p0x,p0y), R(p0y,p0z), R(p1x,p1y), R(p1y,p1z)");
    let v1 = cq("v1() :- R(ae0x,ae0y), R(ae1x,ae1y), R(al0,al0), R(ap0x,ap0y), R(ap0y,ap0z), R(ap1x,ap1y), R(ap1y,ap1z), R(ap2x,ap2y), R(ap2y,ap2z)");
    let v2 = cq("v2() :- R(b0x,b0y), R(b1x,b1y), R(b2x,b2y), R(b3x,b3y), R(b4x,b4y), R(bl0,bl0), R(bl1,bl1), R(bp0x,bp0y), R(bp0y,bp0z), R(bp1x,bp1y), R(bp1y,bp1z), R(bp2x,bp2y), R(bp2y,bp2z), R(bp3x,bp3y), R(bp3y,bp3z), R(bp4x,bp4y), R(bp4y,bp4z), R(bp5x,bp5y), R(bp5y,bp5z), R(bp6x,bp6y), R(bp6y,bp6z)");
    let views = vec![v1, v2];
    let analysis = decide_bag_determinacy(&views, &q).unwrap();
    assert!(analysis.determined);
    assert_eq!(analysis.basis_size(), 3);
    let coeffs = analysis.coefficients.clone().unwrap();
    assert_eq!(coeffs[0], Rat::from_i64(3));
    assert_eq!(coeffs[1], Rat::from_i64(-1));
    // Spot-check the rewriting numerically: q(D) · v2(D) = v1(D)³ on a sample D.
    let schema = analysis.schema.clone();
    let mut d = Structure::new(schema.clone());
    d.add("R", &[0, 1]);
    d.add("R", &[1, 1]);
    d.add("R", &[1, 2]);
    d.add("R", &[3, 0]);
    let qv = cqdet::query::eval::eval_boolean_cq(&q, &schema, &d);
    let v1v = cqdet::query::eval::eval_boolean_cq(&views[0], &schema, &d);
    let v2v = cqdet::query::eval::eval_boolean_cq(&views[1], &schema, &d);
    assert!(!v2v.is_zero());
    assert_eq!(qv.mul_ref(&v2v), v1v.pow(3));
}

/// COR-33: among connected queries, only literal membership determines.
#[test]
fn corollary_33_connected_case() {
    let q = cq("q() :- R(x,y), R(y,z), R(z,x)"); // a triangle
    let triangle_again = cq("v0() :- R(a,b), R(b,c), R(c,a)");
    let edge = cq("v1() :- R(x,y)");
    let path2 = cq("v2() :- R(x,y), R(y,z)");
    // Not determined by connected views that are not isomorphic to q…
    let res = decide_bag_determinacy(&[edge.clone(), path2.clone()], &q).unwrap();
    assert!(!res.determined);
    // …but determined as soon as (a copy of) q itself is among the views.
    let res2 = decide_bag_determinacy(&[edge, path2, triangle_again], &q).unwrap();
    assert!(res2.determined);
}

/// THEOREM 3 corollary: for boolean CQs, bag-determinacy is strictly stronger
/// than set-determinacy (the paper states this as a corollary of the proof).
#[test]
fn bag_strictly_stronger_than_set_for_boolean_cqs() {
    // V = {edge}, q = 2-path: under set semantics V determines q on *boolean*
    // answers?  No — but bag non-determinacy is what Theorem 3 decides, and
    // the strictness is witnessed by instances like q ⊆_set v with q ∉ span:
    // here every structure satisfying q satisfies v, yet bag counts diverge.
    let q = cq("q() :- R(x,y), R(y,z)");
    let v = cq("v() :- R(x,y)");
    let res = decide_bag_determinacy(std::slice::from_ref(&v), &q).unwrap();
    assert!(!res.determined);
    // The witness pair realises the strictness concretely.
    let w = build_counterexample(&res, &q, &WitnessConfig::default()).unwrap();
    assert!(w.verify(&[v], &q));
}
