//! # cqdet — Determinacy of Real (Bag-Semantics) Conjunctive Queries
//!
//! A faithful, executable reproduction of *"Determinacy of Real Conjunctive
//! Queries. The Boolean Case"* (PODS 2022): given a set of views `V` and a
//! query `q`, does knowing the **multiset** answers of the views on a database
//! determine the multiset answer of the query?
//!
//! The facade crate re-exports the whole workspace:
//!
//! * [`bigint`] — arbitrary-precision integers (homomorphism counts overflow
//!   machine words immediately),
//! * [`linalg`] — exact rational linear algebra (the Main Lemma is a span test
//!   in ℚ^k),
//! * [`structure`] — relational structures, homomorphism counting, the
//!   structure algebra of Lovász's Lemma 4,
//! * [`query`] — conjunctive queries, UCQs, path queries, a small parser and
//!   bag-semantics evaluation,
//! * [`core`] — the decision procedure of Theorem 3, counterexample
//!   construction, the path-query results of Theorem 1 and a brute-force
//!   baseline,
//! * [`hilbert`] — the Theorem 2 reduction from Hilbert's Tenth Problem
//!   (undecidability for boolean UCQs).
//!
//! ## Quickstart
//!
//! ```
//! use cqdet::prelude::*;
//!
//! // Two materialised views and a query, all boolean conjunctive queries.
//! let v1 = parse_query("v1() :- Orders(c, o), Ships(o, w)").unwrap();
//! let v2 = parse_query("v2() :- Ships(o, w)").unwrap();
//! let q = parse_query("q() :- Orders(c, o), Ships(o, w), Ships(o2, w2)").unwrap();
//!
//! let views = vec![v1.disjuncts()[0].clone(), v2.disjuncts()[0].clone()];
//! let query = q.disjuncts()[0].clone();
//!
//! let analysis = decide_bag_determinacy(&views, &query).unwrap();
//! assert!(analysis.determined);
//! // … and the analysis explains why: q(D) = v1(D)·v2(D).
//! assert!(analysis.rewriting(&views).unwrap().contains("v1(D)"));
//! ```

pub use cqdet_bigint as bigint;
pub use cqdet_core as core;
pub use cqdet_hilbert as hilbert;
pub use cqdet_linalg as linalg;
pub use cqdet_query as query;
pub use cqdet_structure as structure;

/// Everything most programs need, in one import.
pub mod prelude {
    pub use cqdet_bigint::{Int, Nat};
    pub use cqdet_core::witness::{build_counterexample, WitnessConfig};
    pub use cqdet_core::{
        brute_force_search, decide_bag_determinacy, decide_path_determinacy, BagDeterminacy,
        Counterexample,
    };
    pub use cqdet_hilbert::{encode, DiophantineInstance, Monomial};
    pub use cqdet_linalg::{QMat, QVec, Rat};
    pub use cqdet_query::{parse_queries, parse_query, ConjunctiveQuery, PathQuery, UnionQuery};
    pub use cqdet_structure::{Schema, Structure};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn facade_reexports_work_together() {
        let q = parse_query("q() :- R(x,y)").unwrap();
        let v = parse_query("v() :- R(x,y)").unwrap();
        let res =
            decide_bag_determinacy(&[v.disjuncts()[0].clone()], &q.disjuncts()[0].clone()).unwrap();
        assert!(res.determined);
    }
}
