//! # cqdet — Determinacy of Real (Bag-Semantics) Conjunctive Queries
//!
//! A faithful, executable reproduction of *"Determinacy of Real Conjunctive
//! Queries. The Boolean Case"* (PODS 2022): given a set of views `V` and a
//! query `q`, does knowing the **multiset** answers of the views on a database
//! determine the multiset answer of the query?
//!
//! The facade crate re-exports the whole workspace:
//!
//! * [`bigint`] — arbitrary-precision integers (homomorphism counts overflow
//!   machine words immediately),
//! * [`linalg`] — exact rational linear algebra (the Main Lemma is a span test
//!   in ℚ^k),
//! * [`structure`] — relational structures, homomorphism counting, the
//!   structure algebra of Lovász's Lemma 4,
//! * [`query`] — conjunctive queries, UCQs, path queries, a small parser and
//!   bag-semantics evaluation,
//! * [`core`] — the decision procedure of Theorem 3, counterexample
//!   construction, the path-query results of Theorem 1 and a brute-force
//!   baseline,
//! * [`engine`] — the batch decision engine: long-lived sessions with
//!   cross-request caches, task files, JSON certificates,
//! * [`service`] — the unified typed request/response API: `Engine::submit`
//!   over every workload family, the typed error hierarchy, per-request
//!   deadlines, and the `cqdet serve` JSON-lines server,
//! * [`parallel`] — scoped-thread fan-out and the [`prelude::CancelToken`]
//!   deadline/cancellation primitive,
//! * [`hilbert`] — the Theorem 2 reduction from Hilbert's Tenth Problem
//!   (undecidability for boolean UCQs).
//!
//! `ARCHITECTURE.md` at the workspace root maps every paper object (Lemma 4
//! structure algebra, Definition 27 basis, the Main Lemma span test,
//! Theorems 1–3) to the module implementing it, with the crate dependency
//! diagram.
//!
//! ## Quickstart — one instance
//!
//! ```
//! use cqdet::prelude::*;
//!
//! // Two materialised views and a query, all boolean conjunctive queries.
//! let v1 = parse_query("v1() :- Orders(c, o), Ships(o, w)").unwrap();
//! let v2 = parse_query("v2() :- Ships(o, w)").unwrap();
//! let q = parse_query("q() :- Orders(c, o), Ships(o, w), Ships(o2, w2)").unwrap();
//!
//! let views = vec![v1.disjuncts()[0].clone(), v2.disjuncts()[0].clone()];
//! let query = q.disjuncts()[0].clone();
//!
//! let analysis = decide_bag_determinacy(&views, &query).unwrap();
//! assert!(analysis.determined);
//! // … and the analysis explains why: q(D) = v1(D)·v2(D).
//! assert!(analysis.rewriting(&views).unwrap().contains("v1(D)"));
//! ```
//!
//! ## Quickstart — a batch of instances
//!
//! Real workloads are fleets of `(views, query)` tasks sharing views.  A
//! [`engine::DecisionSession`] owns cross-request caches (frozen bodies,
//! canonical keys, containment gates, the hom-count memo), so a batch
//! canonizes and gates each isomorphism class once; every task comes back
//! with a re-verified certificate that serializes to JSON.
//!
//! ```
//! use cqdet::prelude::*;
//!
//! let file = parse_task_file(
//!     "
//!     v1() :- R(x,y)
//!     v2() :- R(x,y), R(y,z)
//!     q1() :- R(x,y), R(u,w)            # determined: 2·v1
//!     q2() :- R(x,y), R(y,z), R(z,w)    # not determined
//!     task a: q1 <- v1 v2
//!     task b: q2 <- *
//!     ",
//! )
//! .unwrap();
//!
//! let session = DecisionSession::new();
//! let report = session.decide_batch(&file.tasks);
//! assert!(report.all_verified());
//! assert_eq!(report.records[0].status, TaskStatus::Determined);
//! assert_eq!(report.records[1].status, TaskStatus::NotDetermined);
//! // Each record is a JSON-lines certificate …
//! let line = report.records[1].to_json().render();
//! assert!(line.contains("\"counterexample\""));
//! // … and the session counted its cache traffic.
//! assert!(report.stats.frozen_hits > 0);
//! ```
//!
//! ## Quickstart — the serving facade
//!
//! Every workload family answers through one typed entry point,
//! [`service::Engine::submit`] — the code path shared by all CLI
//! subcommands and the `cqdet serve` JSON-lines server.  Requests carry an
//! id (echoed on the response) and an optional deadline, checked at the
//! pipeline's stage boundaries:
//!
//! ```
//! use cqdet::prelude::*;
//!
//! let engine = Engine::new();
//! let response = engine.submit(Request {
//!     id: "r1".into(),
//!     deadline_ms: Some(5_000),
//!     budget: None,
//!     kind: RequestKind::Decide {
//!         program: "v1() :- R(x,y)\nv2() :- R(x,y), R(y,z)\nq() :- R(x,y), R(u,w)".into(),
//!         query: "q".into(),
//!         witness: true,
//!     },
//! });
//! let Response::Decide { record, .. } = response else { panic!() };
//! assert_eq!(record.status, TaskStatus::Determined);
//! assert_eq!(record.verified, Some(true));
//! // The wire form is one JSON line, version-stamped:
//! assert!(record.to_json().render().starts_with("{\"version\":1,"));
//!
//! // Failures are typed — here a parse error with line/column/token:
//! let bad = engine.submit(Request {
//!     id: "r2".into(),
//!     deadline_ms: None,
//!     budget: None,
//!     kind: RequestKind::Decide {
//!         program: "q() : R(x,y)".into(),
//!         query: "q".into(),
//!         witness: false,
//!     },
//! });
//! let Response::Error { error, .. } = bad else { panic!() };
//! assert_eq!(error.code(), "parse");
//! ```
//!
//! ## The `cqdet` CLI
//!
//! The same functionality ships as a binary (`cargo run --release --bin
//! cqdet -- --help`); every subcommand routes through
//! [`service::Engine::submit`]:
//!
//! ```text
//! cqdet decide  program.cq --query q --json   # one instance → JSON certificate
//! cqdet batch   tasks.cqb                     # task file → JSON-lines + cache stats
//! cqdet explain program.cq                    # the pipeline, narrated step by step
//! cqdet bench   tasks.cqb --repeat 5          # serving engine vs one-shot calls
//! cqdet path    ABCD ABC BC BCD               # Theorem 1 (path queries)
//! cqdet hilbert 6 +2:x,y -12:                 # Theorem 2 reduction
//! cqdet serve   [--tcp ADDR]                  # the JSON-lines server
//! ```
//!
//! Task files declare a pool of definitions (one boolean CQ per line) and
//! then `task <id>: <query> <- <view> <view> ...` lines (`*` = every
//! definition except the query); see [`engine::taskfile`] for the grammar
//! and `README.md` for the full protocol specification (request/response
//! schema, error taxonomy, deadline semantics).

pub use cqdet_bigint as bigint;
pub use cqdet_core as core;
pub use cqdet_engine as engine;
pub use cqdet_hilbert as hilbert;
pub use cqdet_linalg as linalg;
pub use cqdet_parallel as parallel;
pub use cqdet_query as query;
pub use cqdet_service as service;
pub use cqdet_structure as structure;

/// Everything most programs need, in one import.
pub mod prelude {
    pub use cqdet_bigint::{Int, Nat};
    pub use cqdet_core::witness::{build_counterexample, WitnessConfig};
    pub use cqdet_core::{
        brute_force_search, decide_bag_determinacy, decide_bag_determinacy_in,
        decide_path_determinacy, BagDeterminacy, Counterexample, DecisionContext,
    };
    pub use cqdet_engine::{
        parse_task_file, DecisionSession, SessionConfig, Task, TaskRecord, TaskStatus,
    };
    pub use cqdet_hilbert::{encode, DiophantineInstance, Monomial};
    pub use cqdet_linalg::{QMat, QVec, Rat};
    pub use cqdet_parallel::CancelToken;
    pub use cqdet_query::{parse_queries, parse_query, ConjunctiveQuery, PathQuery, UnionQuery};
    pub use cqdet_service::{BudgetSpec, CqdetError, Engine, Request, RequestKind, Response};
    pub use cqdet_structure::{Schema, Structure};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn facade_reexports_work_together() {
        let q = parse_query("q() :- R(x,y)").unwrap();
        let v = parse_query("v() :- R(x,y)").unwrap();
        let res =
            decide_bag_determinacy(&[v.disjuncts()[0].clone()], &q.disjuncts()[0].clone()).unwrap();
        assert!(res.determined);
    }
}
