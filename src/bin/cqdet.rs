//! `cqdet` — a small command-line front end to the determinacy library.
//!
//! ```text
//! cqdet decide <program.cq> [--query NAME] [--witness]
//!     Parse a Datalog-style program (one boolean CQ per line); the query is
//!     the definition named NAME (default: "q"), every other definition is a
//!     view.  Prints the decision, the rewriting (if determined) or — with
//!     --witness — a certified counterexample.
//!
//! cqdet path <word> <view-word>...
//!     Path-query determinacy (Theorem 1): e.g. `cqdet path ABCD ABC BC BCD`.
//!
//! cqdet hilbert <bound> <monomial>...
//!     Theorem 2 reduction: monomials like `+2:x^1,y^1` or `-12:`; searches
//!     for a solution with unknowns ≤ bound and reports the refutation.
//! ```

use cqdet::core::witness::{build_counterexample, WitnessConfig};
use cqdet::prelude::*;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("decide") => cmd_decide(&args[1..]),
        Some("path") => cmd_path(&args[1..]),
        Some("hilbert") => cmd_hilbert(&args[1..]),
        Some("--help") | Some("-h") | None => {
            print_usage();
            Ok(())
        }
        Some(other) => Err(format!("unknown command {other:?}; try --help")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    println!("cqdet — bag-semantics query determinacy (PODS 2022 reproduction)");
    println!();
    println!("  cqdet decide <program.cq> [--query NAME] [--witness]");
    println!("  cqdet path <query-word> <view-word>...");
    println!("  cqdet hilbert <bound> <coeff:var^deg,...>...");
}

fn cmd_decide(args: &[String]) -> Result<(), String> {
    let mut path = None;
    let mut query_name = "q".to_string();
    let mut want_witness = false;
    let mut iter = args.iter();
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--query" => {
                query_name = iter.next().ok_or("--query needs a value")?.clone();
            }
            "--witness" => want_witness = true,
            other if path.is_none() => path = Some(other.to_string()),
            other => return Err(format!("unexpected argument {other:?}")),
        }
    }
    let path = path.ok_or("decide needs a program file")?;
    let text = std::fs::read_to_string(&path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let program = parse_queries(&text).map_err(|e| e.to_string())?;

    let mut views = Vec::new();
    let mut query = None;
    for u in &program {
        if !u.is_single_cq() {
            return Err(format!(
                "{} is a union query; Theorem 3 handles conjunctive queries (unions are undecidable — Theorem 2)",
                u.name()
            ));
        }
        let cq = u.disjuncts()[0].clone();
        if u.name() == query_name {
            query = Some(cq);
        } else {
            views.push(cq);
        }
    }
    let query = query.ok_or(format!("no definition named {query_name:?} in {path}"))?;

    let analysis = decide_bag_determinacy(&views, &query).map_err(|e| e.to_string())?;
    println!("query:    {query}");
    println!("views:    {}", views.len());
    println!(
        "retained: {:?} (views with q ⊆_set v)",
        analysis.retained_views
    );
    println!("basis:    {} connected component(s)", analysis.basis_size());
    println!("determined under bag semantics: {}", analysis.determined);
    if let Some(rewriting) = analysis.rewriting(&views) {
        println!("rewriting: {rewriting}");
    } else if want_witness {
        let witness = build_counterexample(&analysis, &query, &WitnessConfig::default())
            .map_err(|e| e.to_string())?;
        println!("counterexample (symbolic structures over the good basis):");
        println!("  D  = {}", witness.d);
        println!("  D' = {}", witness.d_prime);
        println!(
            "  q(D) = {}   q(D') = {}",
            witness.eval_on_d(&query),
            witness.eval_on_d_prime(&query)
        );
        println!("  verified: {}", witness.verify(&views, &query));
    }
    Ok(())
}

fn cmd_path(args: &[String]) -> Result<(), String> {
    let [query, views @ ..] = args else {
        return Err("path needs a query word and at least one view word".to_string());
    };
    if views.is_empty() {
        return Err("path needs at least one view word".to_string());
    }
    let q = PathQuery::from_compact(query);
    let vs: Vec<PathQuery> = views.iter().map(|w| PathQuery::from_compact(w)).collect();
    let analysis = decide_path_determinacy(&vs, &q);
    println!("q = {q}");
    println!(
        "V = {{{}}}",
        vs.iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!("determined (set ⇔ bag, Theorem 1): {}", analysis.determined);
    match analysis.derivation {
        Some(steps) => {
            print!("derivation: ε");
            for s in &steps {
                let dir = if s.sign > 0 { '+' } else { '−' };
                print!(" →({dir}{}) {}", vs[s.view], q.prefix(s.to_len));
            }
            println!();
        }
        None => {
            let (d, d_prime) = cqdet::core::paths::non_determinacy_witness(&vs, &q)
                .expect("undetermined instances have Appendix B witnesses");
            println!("Appendix B witness:");
            println!("  D  = {d}");
            println!("  D' = {d_prime}");
        }
    }
    Ok(())
}

fn cmd_hilbert(args: &[String]) -> Result<(), String> {
    let [bound, monomials @ ..] = args else {
        return Err("hilbert needs a bound and at least one monomial".to_string());
    };
    if monomials.is_empty() {
        return Err("hilbert needs at least one monomial".to_string());
    }
    let bound: u64 = bound
        .parse()
        .map_err(|_| "bound must be a natural number")?;
    let mut parsed = Vec::new();
    for m in monomials {
        parsed.push(parse_monomial(m)?);
    }
    let instance = DiophantineInstance::new(parsed);
    println!("instance: {instance}");
    let encoding = encode(&instance);
    println!(
        "encoded as {} views with {} CQ disjuncts over schema {}",
        encoding.views.len(),
        encoding.total_disjuncts(),
        encoding.schema
    );
    match cqdet::hilbert::structures::bounded_refutation(&instance, bound) {
        Some((enc, d, d_prime)) => {
            println!("solution found within the box → determinacy REFUTED");
            println!("  D  = {d}");
            println!("  D' = {d_prime}");
            println!(
                "  verified: {}",
                cqdet::hilbert::structures::verify_counterexample(&enc, &d, &d_prime)
            );
        }
        None => println!(
            "no solution with unknowns ≤ {bound}; nothing can be concluded (Theorem 2: undecidable)"
        ),
    }
    Ok(())
}

/// Parse `"+2:x^1,y^3"` / `"-12:"` into a monomial.
fn parse_monomial(text: &str) -> Result<Monomial, String> {
    let (coeff, vars) = text
        .split_once(':')
        .ok_or_else(|| format!("monomial {text:?} must look like coeff:var^deg,..."))?;
    let coefficient: i64 = coeff
        .parse()
        .map_err(|_| format!("bad coefficient {coeff:?}"))?;
    let mut degrees = Vec::new();
    for part in vars.split(',').filter(|p| !p.trim().is_empty()) {
        let (name, degree) = match part.split_once('^') {
            Some((n, d)) => (
                n.trim().to_string(),
                d.trim()
                    .parse::<u32>()
                    .map_err(|_| format!("bad degree in {part:?}"))?,
            ),
            None => (part.trim().to_string(), 1),
        };
        degrees.push((name, degree));
    }
    let borrowed: Vec<(&str, u32)> = degrees.iter().map(|(n, d)| (n.as_str(), *d)).collect();
    Ok(Monomial::new(coefficient, &borrowed))
}

#[cfg(test)]
mod tests {
    use super::parse_monomial;

    #[test]
    fn monomial_parsing() {
        let m = parse_monomial("+2:x^2,y").unwrap();
        assert_eq!(m.coefficient, 2);
        assert_eq!(m.degree("x"), 2);
        assert_eq!(m.degree("y"), 1);
        let c = parse_monomial("-12:").unwrap();
        assert_eq!(c.coefficient, -12);
        assert!(c.degrees.is_empty());
        assert!(parse_monomial("nope").is_err());
        assert!(parse_monomial("3:x^z").is_err());
    }
}
