//! `cqdet` — the command-line front end to the determinacy engine.
//!
//! Every subcommand is a **thin transport**: it constructs a typed
//! [`Request`](cqdet::service::Request), routes it through
//! [`Engine::submit`](cqdet::service::Engine::submit) — the same code path
//! the JSON-lines server uses — and renders the typed
//! [`Response`](cqdet::service::Response).
//!
//! ```text
//! cqdet decide <program.cq> [--query NAME] [--witness] [--json]
//!     Decide one instance.  The program file defines one boolean CQ per
//!     line; the query is the definition named NAME (default "q"), every
//!     other definition is a view.  Human-readable by default; --json emits
//!     the full certificate as a single JSON record.
//!
//! cqdet batch <tasks.cqb> [--no-witness] [--no-verify] [--quiet]
//!     Run a batch task file (shared definitions + `task id: q <- v1 v2`
//!     lines) through one shared DecisionSession.  Emits one JSON
//!     certificate record per task on stdout, then a session_stats record
//!     with the cache-hit counters; a human summary goes to stderr.
//!
//! cqdet explain <program.cq> [--query NAME]
//!     The full analysis, narrated: schema, retention gate per view, basis,
//!     vector representations, span coefficients or counterexample.
//!
//! cqdet bench <tasks.cqb> [--repeat N]
//!     Time the batch through the serving engine vs one-shot calls per task
//!     and report the speedup plus cache statistics.
//!
//! cqdet path <word> <view-word>...
//!     Path-query determinacy (Theorem 1): e.g. `cqdet path ABCD ABC BC BCD`.
//!
//! cqdet hilbert <bound> <monomial>...
//!     Theorem 2 reduction: monomials like `+2:x^1,y^1` or `-12:`; searches
//!     for a solution with unknowns ≤ bound and reports the refutation.
//!
//! cqdet serve [--tcp ADDR] [--workers N] [--inflight N]
//!             [--max-line-bytes N] [--fuel-steps N] [--fuel-bytes N]
//!             [--cache-bytes N] [--snapshot PATH]
//!             [--session-ttl-ms N] [--max-sessions N]
//!     The long-lived JSON-lines server.  Default transport is
//!     stdin/stdout; `--tcp 127.0.0.1:4199` serves concurrent connections
//!     over TCP with shared cross-connection caches (`--tcp 127.0.0.1:0`
//!     picks an ephemeral port, reported on stdout).  `--workers` sizes
//!     the reactor's worker pool (0 = one per core), `--inflight` caps
//!     admitted-but-unanswered requests across all connections (over
//!     budget ⇒ typed `resource_exhausted`, never a stall), and
//!     `--max-line-bytes` bounds one request line (an oversized line gets
//!     one typed error, then the connection closes).  `--fuel-steps` /
//!     `--fuel-bytes` install a default fuel budget applied to every
//!     request without a `budget` member of its own.  `--cache-bytes`
//!     caps the total bytes of the governed session caches (over-budget
//!     entries are evicted and recomputed — throughput degrades, answers
//!     never change; `CQDET_CACHE_BYTES` is the env equivalent) and
//!     `--snapshot PATH` warm-starts from a checksummed snapshot at boot
//!     (missing/corrupted file ⇒ counted cold start) and rewrites it
//!     atomically at shutdown.  `--session-ttl-ms` sets the idle
//!     time-to-live for mutable decision sessions (`session_open` et al.)
//!     and `--max-sessions` caps how many may be open at once (over cap ⇒
//!     typed `resource_exhausted` on open).  See README.md for the
//!     protocol (request/response schema, error taxonomy, deadlines).
//!
//! cqdet stats --tcp ADDR
//!     Query a running `cqdet serve --tcp` instance for its session cache
//!     counters, request count and robustness counters (timeouts, contained
//!     panics, shed connections, …); prints the stats response JSON.
//! ```
//!
//! Parse failures are rendered with the offending line and a caret:
//!
//! ```text
//! error: parse error at line 2, column 15: unexpected input after atom (found "junk")
//!   |  q() :- R(x,y) junk
//!   |                ^
//! ```

use cqdet::prelude::*;
use cqdet::service::{serve_lines, serve_tcp, ServeOptions};
use std::io::Write as _;
use std::process::ExitCode;
use std::time::Instant;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("decide") => cmd_decide(&args[1..]),
        Some("batch") => cmd_batch(&args[1..]),
        Some("explain") => cmd_explain(&args[1..]),
        Some("bench") => cmd_bench(&args[1..]),
        Some("path") => cmd_path(&args[1..]),
        Some("hilbert") => cmd_hilbert(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("--help") | Some("-h") | None => {
            print_usage();
            Ok(())
        }
        Some(other) => Err(format!("unknown command {other:?}; try --help")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    println!("cqdet — bag-semantics query determinacy (PODS 2022 reproduction)");
    println!();
    println!("  cqdet decide  <program.cq> [--query NAME] [--witness] [--json]");
    println!("  cqdet batch   <tasks.cqb> [--no-witness] [--no-verify] [--quiet]");
    println!("  cqdet explain <program.cq> [--query NAME]");
    println!("  cqdet bench   <tasks.cqb> [--repeat N]");
    println!("  cqdet path    <query-word> <view-word>...");
    println!("  cqdet hilbert <bound> <coeff:var^deg,...>...");
    println!("  cqdet serve   [--tcp ADDR] [--workers N] [--inflight N]");
    println!("                [--max-line-bytes N] [--fuel-steps N] [--fuel-bytes N]");
    println!("                [--cache-bytes N] [--snapshot PATH]");
    println!("                [--session-ttl-ms N] [--max-sessions N]");
    println!("  cqdet stats   --tcp ADDR");
    println!();
    println!("Batch task files define boolean CQs (one per line, shared by all");
    println!("tasks) plus task lines `task <id>: <query> <- <view> <view> ...`");
    println!("(`*` = every definition except the query).  `cqdet serve` speaks");
    println!("JSON-lines (one request object per line, ids echoed, optional");
    println!("deadline_ms) over stdin/stdout or TCP; see README.md and");
    println!("ARCHITECTURE.md for the protocol and the task-file format.");
}

/// Read a file for a request payload, mapping I/O failure to a CLI error.
fn read_input(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
}

/// Render a typed service error against the source text it refers to
/// (caret diagnostics for parse errors).
fn render_error(error: &CqdetError, source: &str) -> String {
    error.render(Some(source))
}

/// Flag-style argument scan: one positional path plus boolean/valued flags.
#[derive(Debug)]
struct Flags {
    path: Option<String>,
    query_name: String,
    witness: bool,
    json: bool,
    no_witness: bool,
    no_verify: bool,
    quiet: bool,
    repeat: usize,
    tcp: Option<String>,
    fuel_steps: Option<u64>,
    fuel_bytes: Option<u64>,
    workers: Option<usize>,
    inflight: Option<usize>,
    max_line_bytes: Option<usize>,
    cache_bytes: Option<u64>,
    snapshot: Option<String>,
    session_ttl_ms: Option<u64>,
    max_sessions: Option<usize>,
}

/// Parse one positional path plus the flags in `allowed`; any other
/// argument — including a flag another subcommand accepts — is an error,
/// so a mistyped or misplaced flag can never be silently ignored.
fn parse_flags(args: &[String], allowed: &[&str]) -> Result<Flags, String> {
    let mut flags = Flags {
        path: None,
        query_name: "q".to_string(),
        witness: false,
        json: false,
        no_witness: false,
        no_verify: false,
        quiet: false,
        repeat: 1,
        tcp: None,
        fuel_steps: None,
        fuel_bytes: None,
        workers: None,
        inflight: None,
        max_line_bytes: None,
        cache_bytes: None,
        snapshot: None,
        session_ttl_ms: None,
        max_sessions: None,
    };
    let mut iter = args.iter();
    while let Some(a) = iter.next() {
        if a.starts_with('-') && !allowed.contains(&a.as_str()) {
            return Err(format!(
                "{a:?} is not a flag of this subcommand (accepted: {})",
                allowed.join(", ")
            ));
        }
        match a.as_str() {
            "--query" => {
                flags.query_name = iter.next().ok_or("--query needs a value")?.clone();
            }
            "--witness" => flags.witness = true,
            "--json" => flags.json = true,
            "--no-witness" => flags.no_witness = true,
            "--no-verify" => flags.no_verify = true,
            "--quiet" => flags.quiet = true,
            "--tcp" => {
                flags.tcp = Some(iter.next().ok_or("--tcp needs an address")?.clone());
            }
            "--fuel-steps" => {
                flags.fuel_steps = Some(
                    iter.next()
                        .ok_or("--fuel-steps needs a value")?
                        .parse()
                        .map_err(|_| "--fuel-steps must be a non-negative integer")?,
                );
            }
            "--fuel-bytes" => {
                flags.fuel_bytes = Some(
                    iter.next()
                        .ok_or("--fuel-bytes needs a value")?
                        .parse()
                        .map_err(|_| "--fuel-bytes must be a non-negative integer")?,
                );
            }
            "--workers" => {
                flags.workers = Some(
                    iter.next()
                        .ok_or("--workers needs a value")?
                        .parse()
                        .map_err(|_| "--workers must be a non-negative integer (0 = auto)")?,
                );
            }
            "--inflight" => {
                flags.inflight = Some(
                    iter.next()
                        .ok_or("--inflight needs a value")?
                        .parse()
                        .map_err(|_| "--inflight must be a non-negative integer")?,
                );
            }
            "--max-line-bytes" => {
                let value: usize = iter
                    .next()
                    .ok_or("--max-line-bytes needs a value")?
                    .parse()
                    .map_err(|_| "--max-line-bytes must be a positive integer")?;
                if value == 0 {
                    return Err("--max-line-bytes must be a positive integer".to_string());
                }
                flags.max_line_bytes = Some(value);
            }
            "--cache-bytes" => {
                let value: u64 = iter
                    .next()
                    .ok_or("--cache-bytes needs a value")?
                    .parse()
                    .map_err(|_| "--cache-bytes must be a positive integer")?;
                if value == 0 {
                    return Err("--cache-bytes must be a positive integer".to_string());
                }
                flags.cache_bytes = Some(value);
            }
            "--snapshot" => {
                flags.snapshot = Some(iter.next().ok_or("--snapshot needs a path")?.clone());
            }
            "--session-ttl-ms" => {
                flags.session_ttl_ms = Some(
                    iter.next()
                        .ok_or("--session-ttl-ms needs a value")?
                        .parse()
                        .map_err(|_| "--session-ttl-ms must be a non-negative integer")?,
                );
            }
            "--max-sessions" => {
                let value: usize = iter
                    .next()
                    .ok_or("--max-sessions needs a value")?
                    .parse()
                    .map_err(|_| "--max-sessions must be a positive integer")?;
                if value == 0 {
                    return Err("--max-sessions must be a positive integer".to_string());
                }
                flags.max_sessions = Some(value);
            }
            "--repeat" => {
                flags.repeat = iter
                    .next()
                    .ok_or("--repeat needs a value")?
                    .parse()
                    .map_err(|_| "--repeat must be a positive integer")?;
                if flags.repeat == 0 {
                    return Err("--repeat must be a positive integer".to_string());
                }
            }
            other if flags.path.is_none() && !other.starts_with('-') => {
                flags.path = Some(other.to_string());
            }
            other => return Err(format!("unexpected argument {other:?}")),
        }
    }
    Ok(flags)
}

fn cmd_decide(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args, &["--query", "--witness", "--json"])?;
    let path = flags.path.as_deref().ok_or("decide needs a program file")?;
    let program = read_input(path)?;

    let engine = Engine::new();
    let response = engine.submit(Request {
        id: "cli".to_string(),
        deadline_ms: None,
        budget: None,
        kind: RequestKind::Decide {
            program: program.clone(),
            query: flags.query_name.clone(),
            witness: flags.witness || flags.json,
        },
    });
    let (record, views, query) = match response {
        Response::Error { error, .. } => return Err(render_error(&error, &program)),
        Response::Decide {
            record,
            views,
            query,
            ..
        } => (record, views, query),
        other => return Err(format!("unexpected response {:?}", other.type_str())),
    };

    if flags.json {
        // The record (including an error record) is the machine-readable
        // output; the exit code still reflects the outcome so scripts can
        // gate on it.
        println!("{}", record.to_json().render());
        if record.status == TaskStatus::Error {
            return Err(record.error.unwrap_or_else(|| "instance rejected".into()));
        }
        if record.verified == Some(false) {
            return Err("certificate failed re-verification".to_string());
        }
        if let Some(error) = record.error {
            return Err(error);
        }
        return Ok(());
    }

    if let Some(error) = &record.error {
        if record.analysis.is_none() {
            return Err(error.clone());
        }
    }
    let analysis = record.analysis.as_ref().ok_or("non-error record")?;
    println!("query:    {query}");
    println!("views:    {}", views.len());
    println!(
        "retained: {:?} (views with q ⊆_set v)",
        analysis.retained_views
    );
    println!("basis:    {} connected component(s)", analysis.basis_size());
    println!("determined under bag semantics: {}", analysis.determined);
    if let Some(rewriting) = &record.rewriting {
        println!("rewriting: {rewriting}");
    } else if flags.witness {
        match &record.counterexample {
            Some(witness) => {
                println!("counterexample (symbolic structures over the good basis):");
                println!("  D  = {}", witness.d);
                println!("  D' = {}", witness.d_prime);
                println!(
                    "  q(D) = {}   q(D') = {}",
                    witness.eval_on_d(&query),
                    witness.eval_on_d_prime(&query)
                );
                println!("  verified: {}", record.verified == Some(true));
            }
            // A failed witness search was a hard error before the engine
            // rework; keep it one.
            None => {
                return Err(record
                    .error
                    .unwrap_or_else(|| "counterexample not constructed".into()))
            }
        }
    }
    Ok(())
}

fn cmd_batch(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args, &["--no-witness", "--no-verify", "--quiet"])?;
    let path = flags.path.as_deref().ok_or("batch needs a task file")?;
    let tasks_text = read_input(path)?;

    let engine = Engine::new();
    let start = Instant::now();
    let response = engine.submit(Request {
        id: "cli".to_string(),
        deadline_ms: None,
        budget: None,
        kind: RequestKind::Batch {
            tasks: tasks_text.clone(),
            witnesses: !flags.no_witness,
            verify: !flags.no_verify,
        },
    });
    let elapsed = start.elapsed();
    let report = match response {
        Response::Error { error, .. } => return Err(render_error(&error, &tasks_text)),
        Response::Batch { records, stats, .. } => cqdet::engine::BatchReport { records, stats },
        other => return Err(format!("unexpected response {:?}", other.type_str())),
    };

    for record in &report.records {
        println!("{}", record.to_json().render());
    }
    println!("{}", cqdet::engine::stats_json(&report.stats).render());

    if !flags.quiet {
        let stats = &report.stats;
        eprintln!(
            "{} tasks in {:.1} ms: {} determined, {} not determined, {} errors; all certificates verified: {}",
            report.records.len(),
            elapsed.as_secs_f64() * 1e3,
            report.count(TaskStatus::Determined),
            report.count(TaskStatus::NotDetermined),
            report.count(TaskStatus::Error),
            report.all_verified(),
        );
        eprintln!(
            "cache hits: frozen {}/{}, gate {}/{}, span {}/{}, hom {}/{} ({} classes interned)",
            stats.frozen_hits,
            stats.frozen_hits + stats.frozen_misses,
            stats.gate_hits,
            stats.gate_hits + stats.gate_misses,
            stats.span_hits,
            stats.span_hits + stats.span_misses,
            stats.hom.hits,
            stats.hom.hits + stats.hom.misses,
            stats.iso_classes,
        );
    }
    if report.all_verified() {
        Ok(())
    } else {
        Err("a certificate failed re-verification".to_string())
    }
}

fn cmd_explain(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args, &["--query"])?;
    let path = flags
        .path
        .as_deref()
        .ok_or("explain needs a program file")?;
    let program = read_input(path)?;

    let engine = Engine::new();
    let response = engine.submit(Request {
        id: "cli".to_string(),
        deadline_ms: None,
        budget: None,
        kind: RequestKind::Explain {
            program: program.clone(),
            query: flags.query_name.clone(),
        },
    });
    match response {
        Response::Error { error, .. } => Err(render_error(&error, &program)),
        Response::Explain { text, .. } => {
            print!("{text}");
            Ok(())
        }
        other => Err(format!("unexpected response {:?}", other.type_str())),
    }
}

fn cmd_bench(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args, &["--repeat"])?;
    let path = flags.path.as_deref().ok_or("bench needs a task file")?;
    let tasks_text = read_input(path)?;
    let file = parse_task_file(&tasks_text).map_err(|e| render_error(&e.into(), &tasks_text))?;
    let tasks = &file.tasks;

    // Decision cost only on both sides (witnesses and verification off):
    // the comparison is "requests through a shared serving engine" vs
    // "one-shot library calls" on identical tasks.
    let mut fresh_total = 0.0f64;
    let mut shared_total = 0.0f64;
    let mut last_stats = None;
    for _ in 0..flags.repeat {
        let start = Instant::now();
        for task in tasks {
            let _ = decide_bag_determinacy(&task.views, &task.query);
        }
        fresh_total += start.elapsed().as_secs_f64();

        // A fresh engine per repeat: cold caches at batch start, shared
        // within the batch — the same regime the old session bench measured,
        // now through the one code path every front end uses.
        let engine = Engine::new();
        let start = Instant::now();
        let response = engine.submit(Request {
            id: "bench".to_string(),
            deadline_ms: None,
            budget: None,
            kind: RequestKind::Batch {
                tasks: tasks_text.clone(),
                witnesses: false,
                verify: false,
            },
        });
        shared_total += start.elapsed().as_secs_f64();
        match response {
            Response::Batch { stats, .. } => last_stats = Some(stats),
            Response::Error { error, .. } => return Err(render_error(&error, &tasks_text)),
            other => return Err(format!("unexpected response {:?}", other.type_str())),
        }
    }
    let fresh_ms = fresh_total * 1e3 / flags.repeat as f64;
    let shared_ms = shared_total * 1e3 / flags.repeat as f64;
    println!(
        "{} tasks ({} definitions), mean over {} run(s):",
        tasks.len(),
        file.definitions.len(),
        flags.repeat
    );
    println!("  one-shot calls:  {fresh_ms:>10.2} ms/batch");
    println!("  shared session:  {shared_ms:>10.2} ms/batch");
    println!("  speedup:         {:>10.2}×", fresh_ms / shared_ms);
    if let Some(stats) = last_stats {
        println!(
            "  session caches:  frozen {}/{}, gate {}/{}, span {}/{}, {} iso classes",
            stats.frozen_hits,
            stats.frozen_hits + stats.frozen_misses,
            stats.gate_hits,
            stats.gate_hits + stats.gate_misses,
            stats.span_hits,
            stats.span_hits + stats.span_misses,
            stats.iso_classes,
        );
    }
    Ok(())
}

fn cmd_path(args: &[String]) -> Result<(), String> {
    let [query, views @ ..] = args else {
        return Err("path needs a query word and at least one view word".to_string());
    };
    let engine = Engine::new();
    let response = engine.submit(Request {
        id: "cli".to_string(),
        deadline_ms: None,
        budget: None,
        kind: RequestKind::Path {
            query: query.clone(),
            views: views.to_vec(),
        },
    });
    let (q, vs, analysis, witness) = match response {
        Response::Error { error, .. } => return Err(error.to_string()),
        Response::Path {
            query,
            views,
            analysis,
            witness,
            ..
        } => (query, views, analysis, witness),
        other => return Err(format!("unexpected response {:?}", other.type_str())),
    };
    println!("q = {q}");
    println!(
        "V = {{{}}}",
        vs.iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!("determined (set ⇔ bag, Theorem 1): {}", analysis.determined);
    match analysis.derivation {
        Some(steps) => {
            print!("derivation: ε");
            for s in &steps {
                let dir = if s.sign > 0 { '+' } else { '−' };
                print!(" →({dir}{}) {}", vs[s.view], q.prefix(s.to_len));
            }
            println!();
        }
        None => {
            let (d, d_prime) = witness.ok_or("undetermined instances have Appendix B witnesses")?;
            println!("Appendix B witness:");
            println!("  D  = {d}");
            println!("  D' = {d_prime}");
        }
    }
    Ok(())
}

fn cmd_hilbert(args: &[String]) -> Result<(), String> {
    let [bound, monomials @ ..] = args else {
        return Err("hilbert needs a bound and at least one monomial".to_string());
    };
    let bound: u64 = bound
        .parse()
        .map_err(|_| "bound must be a natural number")?;
    let engine = Engine::new();
    let response = engine.submit(Request {
        id: "cli".to_string(),
        deadline_ms: None,
        budget: None,
        kind: RequestKind::Hilbert {
            bound,
            monomials: monomials.to_vec(),
        },
    });
    let (instance, views, disjuncts, schema, refutation) = match response {
        Response::Error { error, .. } => return Err(error.to_string()),
        Response::Hilbert {
            instance,
            views,
            disjuncts,
            schema,
            refutation,
            ..
        } => (instance, views, disjuncts, schema, refutation),
        other => return Err(format!("unexpected response {:?}", other.type_str())),
    };
    println!("instance: {instance}");
    println!("encoded as {views} views with {disjuncts} CQ disjuncts over schema {schema}");
    match refutation {
        Some(r) => {
            println!("solution found within the box → determinacy REFUTED");
            println!("  D  = {}", r.d);
            println!("  D' = {}", r.d_prime);
            println!("  verified: {}", r.verified);
        }
        None => println!(
            "no solution with unknowns ≤ {bound}; nothing can be concluded (Theorem 2: undecidable)"
        ),
    }
    Ok(())
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(
        args,
        &[
            "--tcp",
            "--workers",
            "--inflight",
            "--max-line-bytes",
            "--fuel-steps",
            "--fuel-bytes",
            "--cache-bytes",
            "--snapshot",
            "--session-ttl-ms",
            "--max-sessions",
        ],
    )?;
    if let Some(extra) = &flags.path {
        return Err(format!(
            "serve takes no positional argument (got {extra:?})"
        ));
    }
    if flags.tcp.is_none()
        && (flags.workers.is_some() || flags.inflight.is_some() || flags.max_line_bytes.is_some())
    {
        return Err(
            "--workers/--inflight/--max-line-bytes apply to the TCP reactor; add --tcp ADDR"
                .to_string(),
        );
    }
    let default_budget =
        (flags.fuel_steps.is_some() || flags.fuel_bytes.is_some()).then_some(BudgetSpec {
            steps: flags.fuel_steps,
            bytes: flags.fuel_bytes,
        });
    let engine = Engine::new();
    engine.set_default_budget(default_budget);
    if let Some(ttl) = flags.session_ttl_ms {
        engine.set_session_ttl(std::time::Duration::from_millis(ttl));
    }
    if let Some(max) = flags.max_sessions {
        engine.set_max_sessions(max);
    }
    match &flags.tcp {
        None => {
            // The stdio transport has no ServeOptions boot hook: apply the
            // cache budget and warm start here, persist on exit.
            if let Some(bytes) = flags.cache_bytes {
                engine.set_cache_bytes(Some(bytes));
            }
            if let Some(path) = &flags.snapshot {
                let _ = engine.warm_start(std::path::Path::new(path));
            }
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            let served = serve_lines(&engine, stdin.lock(), stdout.lock())
                .map_err(|e| format!("serve I/O error: {e}"))?;
            if let Some(path) = &flags.snapshot {
                let _ = engine.save_snapshot_quiet(std::path::Path::new(path));
            }
            eprintln!("cqdet serve: answered {served} request(s), shutting down");
            Ok(())
        }
        Some(addr) => {
            let defaults = ServeOptions::default();
            let options = ServeOptions {
                default_budget,
                worker_threads: flags.workers.unwrap_or(defaults.worker_threads),
                inflight_budget: flags.inflight.unwrap_or(defaults.inflight_budget),
                max_request_bytes: flags.max_line_bytes.unwrap_or(defaults.max_request_bytes),
                cache_bytes: flags.cache_bytes,
                snapshot_path: flags.snapshot.as_ref().map(std::path::PathBuf::from),
                session_ttl: flags
                    .session_ttl_ms
                    .map_or(defaults.session_ttl, std::time::Duration::from_millis),
                max_sessions: flags.max_sessions.unwrap_or(defaults.max_sessions),
                ..defaults
            };
            let served = serve_tcp(&engine, addr, &options, |bound| {
                // The ready line is machine-readable so tests and tooling can
                // discover an ephemeral port.
                println!("{{\"type\":\"serving\",\"addr\":\"{bound}\"}}");
                let _ = std::io::stdout().flush();
            })
            .map_err(|e| format!("serve I/O error on {addr}: {e}"))?;
            eprintln!("cqdet serve: answered {served} request(s), shutting down");
            Ok(())
        }
    }
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args, &["--tcp"])?;
    if let Some(extra) = &flags.path {
        return Err(format!(
            "stats takes no positional argument (got {extra:?})"
        ));
    }
    let addr = flags
        .tcp
        .as_deref()
        .ok_or("stats needs --tcp ADDR (the address of a running `cqdet serve --tcp`)")?;
    use std::io::BufRead as _;
    let mut stream =
        std::net::TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    stream
        .write_all(b"{\"id\":\"cli\",\"type\":\"stats\"}\n")
        .and_then(|()| stream.flush())
        .map_err(|e| format!("cannot send stats request to {addr}: {e}"))?;
    let mut line = String::new();
    std::io::BufReader::new(stream)
        .read_line(&mut line)
        .map_err(|e| format!("no stats response from {addr}: {e}"))?;
    if line.trim().is_empty() {
        return Err(format!("{addr} closed the connection without a response"));
    }
    print!("{line}");
    Ok(())
}

#[cfg(test)]
mod tests {
    use cqdet::service::parse_monomial;

    #[test]
    fn monomial_parsing() {
        let m = parse_monomial("+2:x^2,y").unwrap();
        assert_eq!(m.coefficient, 2);
        assert_eq!(m.degree("x"), 2);
        assert_eq!(m.degree("y"), 1);
        let c = parse_monomial("-12:").unwrap();
        assert_eq!(c.coefficient, -12);
        assert!(c.degrees.is_empty());
        assert!(parse_monomial("nope").is_err());
        assert!(parse_monomial("3:x^z").is_err());
    }

    #[test]
    fn flag_parsing() {
        let all = ["--query", "--json", "--repeat"];
        let args: Vec<String> = ["file.cq", "--query", "q2", "--json", "--repeat", "3"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let flags = super::parse_flags(&args, &all).unwrap();
        assert_eq!(flags.path.as_deref(), Some("file.cq"));
        assert_eq!(flags.query_name, "q2");
        assert!(flags.json && !flags.witness);
        assert_eq!(flags.repeat, 3);
        assert!(super::parse_flags(&["--repeat".to_string(), "0".to_string()], &all).is_err());
        assert!(super::parse_flags(&["--bogus".to_string()], &all).is_err());
        // A flag belonging to a different subcommand is rejected, not
        // silently ignored.
        let err = super::parse_flags(&["--json".to_string()], &["--query"]).unwrap_err();
        assert!(err.contains("not a flag of this subcommand"));
    }

    #[test]
    fn serve_tuning_flags() {
        let all = ["--workers", "--inflight", "--max-line-bytes"];
        let args: Vec<String> = [
            "--workers",
            "2",
            "--inflight",
            "128",
            "--max-line-bytes",
            "4096",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let flags = super::parse_flags(&args, &all).unwrap();
        assert_eq!(flags.workers, Some(2));
        assert_eq!(flags.inflight, Some(128));
        assert_eq!(flags.max_line_bytes, Some(4096));
        // 0 means "auto" for workers and "shed everything" for inflight,
        // but a zero-byte line cap could never admit a request.
        assert!(super::parse_flags(&["--workers".into(), "0".into()], &all).is_ok());
        assert!(super::parse_flags(&["--inflight".into(), "0".into()], &all).is_ok());
        assert!(super::parse_flags(&["--max-line-bytes".into(), "0".into()], &all).is_err());
        assert!(super::parse_flags(&["--workers".into(), "x".into()], &all).is_err());
    }

    #[test]
    fn cache_governance_flags() {
        let all = ["--cache-bytes", "--snapshot"];
        let args: Vec<String> = ["--cache-bytes", "65536", "--snapshot", "/tmp/warm.cqds"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let flags = super::parse_flags(&args, &all).unwrap();
        assert_eq!(flags.cache_bytes, Some(65536));
        assert_eq!(flags.snapshot.as_deref(), Some("/tmp/warm.cqds"));
        // A zero-byte cache budget could never admit an entry.
        assert!(super::parse_flags(&["--cache-bytes".into(), "0".into()], &all).is_err());
        assert!(super::parse_flags(&["--cache-bytes".into(), "x".into()], &all).is_err());
        assert!(super::parse_flags(&["--snapshot".into()], &all).is_err());
    }
}
