//! `cqdet` — the command-line front end to the determinacy engine.
//!
//! ```text
//! cqdet decide <program.cq> [--query NAME] [--witness] [--json]
//!     Decide one instance.  The program file defines one boolean CQ per
//!     line; the query is the definition named NAME (default "q"), every
//!     other definition is a view.  Human-readable by default; --json emits
//!     the full certificate as a single JSON record.
//!
//! cqdet batch <tasks.cqb> [--no-witness] [--no-verify] [--quiet]
//!     Run a batch task file (shared definitions + `task id: q <- v1 v2`
//!     lines) through one shared DecisionSession.  Emits one JSON
//!     certificate record per task on stdout, then a session_stats record
//!     with the cache-hit counters; a human summary goes to stderr.
//!
//! cqdet explain <program.cq> [--query NAME]
//!     The full analysis, narrated: schema, retention gate per view, basis,
//!     vector representations, span coefficients or counterexample.
//!
//! cqdet bench <tasks.cqb> [--repeat N]
//!     Time the batch with a shared session vs. one-shot calls per task and
//!     report the speedup plus cache statistics.
//!
//! cqdet path <word> <view-word>...
//!     Path-query determinacy (Theorem 1): e.g. `cqdet path ABCD ABC BC BCD`.
//!
//! cqdet hilbert <bound> <monomial>...
//!     Theorem 2 reduction: monomials like `+2:x^1,y^1` or `-12:`; searches
//!     for a solution with unknowns ≤ bound and reports the refutation.
//! ```

use cqdet::core::witness::{build_counterexample, WitnessConfig};
use cqdet::engine::{parse_task_file, stats_json, SessionConfig};
use cqdet::prelude::*;
use std::process::ExitCode;
use std::time::Instant;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("decide") => cmd_decide(&args[1..]),
        Some("batch") => cmd_batch(&args[1..]),
        Some("explain") => cmd_explain(&args[1..]),
        Some("bench") => cmd_bench(&args[1..]),
        Some("path") => cmd_path(&args[1..]),
        Some("hilbert") => cmd_hilbert(&args[1..]),
        Some("--help") | Some("-h") | None => {
            print_usage();
            Ok(())
        }
        Some(other) => Err(format!("unknown command {other:?}; try --help")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    println!("cqdet — bag-semantics query determinacy (PODS 2022 reproduction)");
    println!();
    println!("  cqdet decide  <program.cq> [--query NAME] [--witness] [--json]");
    println!("  cqdet batch   <tasks.cqb> [--no-witness] [--no-verify] [--quiet]");
    println!("  cqdet explain <program.cq> [--query NAME]");
    println!("  cqdet bench   <tasks.cqb> [--repeat N]");
    println!("  cqdet path    <query-word> <view-word>...");
    println!("  cqdet hilbert <bound> <coeff:var^deg,...>...");
    println!();
    println!("Batch task files define boolean CQs (one per line, shared by all");
    println!("tasks) plus task lines `task <id>: <query> <- <view> <view> ...`");
    println!("(`*` = every definition except the query).  See ARCHITECTURE.md");
    println!("and the rustdoc of cqdet_engine::taskfile for the full format.");
}

/// Parse a program file into `(views, query)`: the definition named
/// `query_name` is the query, everything else is a view.
fn load_program(
    path: &str,
    query_name: &str,
) -> Result<(Vec<ConjunctiveQuery>, ConjunctiveQuery), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let program = parse_queries(&text).map_err(|e| e.to_string())?;
    let mut views = Vec::new();
    let mut query = None;
    for u in &program {
        if !u.is_single_cq() {
            return Err(format!(
                "{} is a union query; Theorem 3 handles conjunctive queries (unions are undecidable — Theorem 2)",
                u.name()
            ));
        }
        let cq = u.disjuncts()[0].clone();
        if u.name() == query_name {
            query = Some(cq);
        } else {
            views.push(cq);
        }
    }
    let query = query.ok_or(format!("no definition named {query_name:?} in {path}"))?;
    Ok((views, query))
}

/// Flag-style argument scan: one positional path plus boolean/valued flags.
#[derive(Debug)]
struct Flags {
    path: Option<String>,
    query_name: String,
    witness: bool,
    json: bool,
    no_witness: bool,
    no_verify: bool,
    quiet: bool,
    repeat: usize,
}

/// Parse one positional path plus the flags in `allowed`; any other
/// argument — including a flag another subcommand accepts — is an error,
/// so a mistyped or misplaced flag can never be silently ignored.
fn parse_flags(args: &[String], allowed: &[&str]) -> Result<Flags, String> {
    let mut flags = Flags {
        path: None,
        query_name: "q".to_string(),
        witness: false,
        json: false,
        no_witness: false,
        no_verify: false,
        quiet: false,
        repeat: 1,
    };
    let mut iter = args.iter();
    while let Some(a) = iter.next() {
        if a.starts_with('-') && !allowed.contains(&a.as_str()) {
            return Err(format!(
                "{a:?} is not a flag of this subcommand (accepted: {})",
                allowed.join(", ")
            ));
        }
        match a.as_str() {
            "--query" => {
                flags.query_name = iter.next().ok_or("--query needs a value")?.clone();
            }
            "--witness" => flags.witness = true,
            "--json" => flags.json = true,
            "--no-witness" => flags.no_witness = true,
            "--no-verify" => flags.no_verify = true,
            "--quiet" => flags.quiet = true,
            "--repeat" => {
                flags.repeat = iter
                    .next()
                    .ok_or("--repeat needs a value")?
                    .parse()
                    .map_err(|_| "--repeat must be a positive integer")?;
                if flags.repeat == 0 {
                    return Err("--repeat must be a positive integer".to_string());
                }
            }
            other if flags.path.is_none() && !other.starts_with('-') => {
                flags.path = Some(other.to_string());
            }
            other => return Err(format!("unexpected argument {other:?}")),
        }
    }
    Ok(flags)
}

fn cmd_decide(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args, &["--query", "--witness", "--json"])?;
    let path = flags.path.as_deref().ok_or("decide needs a program file")?;
    let (views, query) = load_program(path, &flags.query_name)?;

    let session = DecisionSession::with_config(SessionConfig {
        witnesses: flags.witness || flags.json,
        verify: true,
        witness: WitnessConfig::default(),
    });
    let record = session.run_task(&Task {
        id: flags.query_name.clone(),
        views: views.clone(),
        query: query.clone(),
    });

    if flags.json {
        // The record (including an error record) is the machine-readable
        // output; the exit code still reflects the outcome so scripts can
        // gate on it.
        println!("{}", record.to_json().render());
        if record.status == TaskStatus::Error {
            return Err(record.error.unwrap_or_else(|| "instance rejected".into()));
        }
        if record.verified == Some(false) {
            return Err("certificate failed re-verification".to_string());
        }
        if let Some(error) = record.error {
            return Err(error);
        }
        return Ok(());
    }

    if let Some(error) = &record.error {
        if record.analysis.is_none() {
            return Err(error.clone());
        }
    }
    let analysis = record.analysis.as_ref().expect("non-error record");
    println!("query:    {query}");
    println!("views:    {}", views.len());
    println!(
        "retained: {:?} (views with q ⊆_set v)",
        analysis.retained_views
    );
    println!("basis:    {} connected component(s)", analysis.basis_size());
    println!("determined under bag semantics: {}", analysis.determined);
    if let Some(rewriting) = &record.rewriting {
        println!("rewriting: {rewriting}");
    } else if flags.witness {
        match &record.counterexample {
            Some(witness) => {
                println!("counterexample (symbolic structures over the good basis):");
                println!("  D  = {}", witness.d);
                println!("  D' = {}", witness.d_prime);
                println!(
                    "  q(D) = {}   q(D') = {}",
                    witness.eval_on_d(&query),
                    witness.eval_on_d_prime(&query)
                );
                println!("  verified: {}", record.verified == Some(true));
            }
            // A failed witness search was a hard error before the engine
            // rework; keep it one.
            None => {
                return Err(record
                    .error
                    .unwrap_or_else(|| "counterexample not constructed".into()))
            }
        }
    }
    Ok(())
}

fn cmd_batch(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args, &["--no-witness", "--no-verify", "--quiet"])?;
    let path = flags.path.as_deref().ok_or("batch needs a task file")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let file = parse_task_file(&text).map_err(|e| e.to_string())?;

    let session = DecisionSession::with_config(SessionConfig {
        witnesses: !flags.no_witness,
        verify: !flags.no_verify,
        witness: WitnessConfig::default(),
    });
    let start = Instant::now();
    let report = session.decide_batch(&file.tasks);
    let elapsed = start.elapsed();

    for record in &report.records {
        println!("{}", record.to_json().render());
    }
    println!("{}", stats_json(&report.stats).render());

    if !flags.quiet {
        let stats = &report.stats;
        eprintln!(
            "{} tasks in {:.1} ms: {} determined, {} not determined, {} errors; all certificates verified: {}",
            report.records.len(),
            elapsed.as_secs_f64() * 1e3,
            report.count(TaskStatus::Determined),
            report.count(TaskStatus::NotDetermined),
            report.count(TaskStatus::Error),
            report.all_verified(),
        );
        eprintln!(
            "cache hits: frozen {}/{}, gate {}/{}, span {}/{}, hom {}/{} ({} classes interned)",
            stats.frozen_hits,
            stats.frozen_hits + stats.frozen_misses,
            stats.gate_hits,
            stats.gate_hits + stats.gate_misses,
            stats.span_hits,
            stats.span_hits + stats.span_misses,
            stats.hom.hits,
            stats.hom.hits + stats.hom.misses,
            stats.iso_classes,
        );
    }
    if report.all_verified() {
        Ok(())
    } else {
        Err("a certificate failed re-verification".to_string())
    }
}

fn cmd_explain(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args, &["--query"])?;
    let path = flags
        .path
        .as_deref()
        .ok_or("explain needs a program file")?;
    let (views, query) = load_program(path, &flags.query_name)?;

    let analysis = decide_bag_determinacy(&views, &query).map_err(|e| e.to_string())?;
    println!("# Instance");
    println!("schema: {}", analysis.schema);
    println!("query:  {query}");
    for v in &views {
        println!("view:   {v}");
    }
    println!();
    println!("# Step 1 — retention gate (Definition 25: q ⊆_set v ⇔ hom(v,q) ≠ ∅)");
    for (i, v) in views.iter().enumerate() {
        let kept = analysis.retained_views.contains(&i);
        println!(
            "  {} {}: {}",
            if kept { "✓" } else { "✗" },
            v.name(),
            if kept { "retained" } else { "dropped" }
        );
    }
    println!();
    println!(
        "# Step 2 — basis W (Definition 27): {} pairwise non-isomorphic connected component(s)",
        analysis.basis_size()
    );
    for (k, w) in analysis.basis.iter().enumerate() {
        println!("  w{k} = {w}");
    }
    println!();
    println!("# Step 3 — vector representations (Definition 29)");
    println!("  q⃗ = {}", analysis.query_vector);
    for (pos, &vi) in analysis.retained_views.iter().enumerate() {
        println!("  {}⃗ = {}", views[vi].name(), analysis.view_vectors[pos]);
    }
    println!();
    println!("# Step 4 — Main Lemma span test: q⃗ ∈ span_ℚ{{v⃗}} ?");
    if analysis.determined {
        println!("  YES — determined.  Coefficients:");
        let coefficients = analysis.coefficients.as_ref().expect("determined");
        for (pos, &vi) in analysis.retained_views.iter().enumerate() {
            println!("    α_{} = {}", views[vi].name(), coefficients[pos]);
        }
        if let Some(rewriting) = analysis.rewriting(&views) {
            println!("  rewriting: {rewriting}");
        }
    } else {
        println!("  NO — not determined.  Constructing the counterexample (Sections 5–7):");
        let witness = build_counterexample(&analysis, &query, &WitnessConfig::default())
            .map_err(|e| e.to_string())?;
        println!("  z⃗ = {}   (⊥ to every v⃗, ⟨z⃗,q⃗⟩ ≠ 0 — Fact 5)", witness.z);
        println!("  t  = {}   (perturbation factor, Lemma 57)", witness.t);
        let (d, dp) = witness.answer_vectors();
        let render = |v: &[Nat]| {
            v.iter()
                .map(|n| n.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        };
        println!("  answer vectors (w⃗ evaluated on D and D′):");
        println!("    w⃗(D)  = [{}]", render(&d));
        println!("    w⃗(D′) = [{}]", render(&dp));
        println!("  D  = {}", witness.d);
        println!("  D' = {}", witness.d_prime);
        println!(
            "  q(D) = {} ≠ {} = q(D′)",
            witness.eval_on_d(&query),
            witness.eval_on_d_prime(&query)
        );
        use cqdet::core::witness::check_certificate_arithmetic;
        println!(
            "  certificate arithmetic verified: {}",
            check_certificate_arithmetic(&witness, &analysis)
        );
        println!(
            "  symbolic verification (all views agree, q differs): {}",
            witness.verify(&views, &query)
        );
    }
    Ok(())
}

fn cmd_bench(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args, &["--repeat"])?;
    let path = flags.path.as_deref().ok_or("bench needs a task file")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let file = parse_task_file(&text).map_err(|e| e.to_string())?;
    let tasks = &file.tasks;

    // Decision cost only on both sides: witnesses off, so the comparison is
    // exactly "shared session" vs "one-shot calls".
    let config = SessionConfig {
        witnesses: false,
        verify: false,
        witness: WitnessConfig::default(),
    };

    let mut fresh_total = 0.0f64;
    let mut shared_total = 0.0f64;
    let mut last_stats = None;
    for _ in 0..flags.repeat {
        let start = Instant::now();
        for task in tasks {
            let _ = decide_bag_determinacy(&task.views, &task.query);
        }
        fresh_total += start.elapsed().as_secs_f64();

        let session = DecisionSession::with_config(config.clone());
        let start = Instant::now();
        let report = session.decide_batch(tasks);
        shared_total += start.elapsed().as_secs_f64();
        last_stats = Some(report.stats);
    }
    let fresh_ms = fresh_total * 1e3 / flags.repeat as f64;
    let shared_ms = shared_total * 1e3 / flags.repeat as f64;
    println!(
        "{} tasks ({} definitions), mean over {} run(s):",
        tasks.len(),
        file.definitions.len(),
        flags.repeat
    );
    println!("  one-shot calls:  {fresh_ms:>10.2} ms/batch");
    println!("  shared session:  {shared_ms:>10.2} ms/batch");
    println!("  speedup:         {:>10.2}×", fresh_ms / shared_ms);
    if let Some(stats) = last_stats {
        println!(
            "  session caches:  frozen {}/{}, gate {}/{}, span {}/{}, {} iso classes",
            stats.frozen_hits,
            stats.frozen_hits + stats.frozen_misses,
            stats.gate_hits,
            stats.gate_hits + stats.gate_misses,
            stats.span_hits,
            stats.span_hits + stats.span_misses,
            stats.iso_classes,
        );
    }
    Ok(())
}

fn cmd_path(args: &[String]) -> Result<(), String> {
    let [query, views @ ..] = args else {
        return Err("path needs a query word and at least one view word".to_string());
    };
    if views.is_empty() {
        return Err("path needs at least one view word".to_string());
    }
    let q = PathQuery::from_compact(query);
    let vs: Vec<PathQuery> = views.iter().map(|w| PathQuery::from_compact(w)).collect();
    let analysis = decide_path_determinacy(&vs, &q);
    println!("q = {q}");
    println!(
        "V = {{{}}}",
        vs.iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!("determined (set ⇔ bag, Theorem 1): {}", analysis.determined);
    match analysis.derivation {
        Some(steps) => {
            print!("derivation: ε");
            for s in &steps {
                let dir = if s.sign > 0 { '+' } else { '−' };
                print!(" →({dir}{}) {}", vs[s.view], q.prefix(s.to_len));
            }
            println!();
        }
        None => {
            let (d, d_prime) = cqdet::core::paths::non_determinacy_witness(&vs, &q)
                .expect("undetermined instances have Appendix B witnesses");
            println!("Appendix B witness:");
            println!("  D  = {d}");
            println!("  D' = {d_prime}");
        }
    }
    Ok(())
}

fn cmd_hilbert(args: &[String]) -> Result<(), String> {
    let [bound, monomials @ ..] = args else {
        return Err("hilbert needs a bound and at least one monomial".to_string());
    };
    if monomials.is_empty() {
        return Err("hilbert needs at least one monomial".to_string());
    }
    let bound: u64 = bound
        .parse()
        .map_err(|_| "bound must be a natural number")?;
    let mut parsed = Vec::new();
    for m in monomials {
        parsed.push(parse_monomial(m)?);
    }
    let instance = DiophantineInstance::new(parsed);
    println!("instance: {instance}");
    let encoding = encode(&instance);
    println!(
        "encoded as {} views with {} CQ disjuncts over schema {}",
        encoding.views.len(),
        encoding.total_disjuncts(),
        encoding.schema
    );
    match cqdet::hilbert::structures::bounded_refutation(&instance, bound) {
        Some((enc, d, d_prime)) => {
            println!("solution found within the box → determinacy REFUTED");
            println!("  D  = {d}");
            println!("  D' = {d_prime}");
            println!(
                "  verified: {}",
                cqdet::hilbert::structures::verify_counterexample(&enc, &d, &d_prime)
            );
        }
        None => println!(
            "no solution with unknowns ≤ {bound}; nothing can be concluded (Theorem 2: undecidable)"
        ),
    }
    Ok(())
}

/// Parse `"+2:x^1,y^3"` / `"-12:"` into a monomial.
fn parse_monomial(text: &str) -> Result<Monomial, String> {
    let (coeff, vars) = text
        .split_once(':')
        .ok_or_else(|| format!("monomial {text:?} must look like coeff:var^deg,..."))?;
    let coefficient: i64 = coeff
        .parse()
        .map_err(|_| format!("bad coefficient {coeff:?}"))?;
    let mut degrees = Vec::new();
    for part in vars.split(',').filter(|p| !p.trim().is_empty()) {
        let (name, degree) = match part.split_once('^') {
            Some((n, d)) => (
                n.trim().to_string(),
                d.trim()
                    .parse::<u32>()
                    .map_err(|_| format!("bad degree in {part:?}"))?,
            ),
            None => (part.trim().to_string(), 1),
        };
        degrees.push((name, degree));
    }
    let borrowed: Vec<(&str, u32)> = degrees.iter().map(|(n, d)| (n.as_str(), *d)).collect();
    Ok(Monomial::new(coefficient, &borrowed))
}

#[cfg(test)]
mod tests {
    use super::parse_monomial;

    #[test]
    fn monomial_parsing() {
        let m = parse_monomial("+2:x^2,y").unwrap();
        assert_eq!(m.coefficient, 2);
        assert_eq!(m.degree("x"), 2);
        assert_eq!(m.degree("y"), 1);
        let c = parse_monomial("-12:").unwrap();
        assert_eq!(c.coefficient, -12);
        assert!(c.degrees.is_empty());
        assert!(parse_monomial("nope").is_err());
        assert!(parse_monomial("3:x^z").is_err());
    }

    #[test]
    fn flag_parsing() {
        let all = ["--query", "--json", "--repeat"];
        let args: Vec<String> = ["file.cq", "--query", "q2", "--json", "--repeat", "3"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let flags = super::parse_flags(&args, &all).unwrap();
        assert_eq!(flags.path.as_deref(), Some("file.cq"));
        assert_eq!(flags.query_name, "q2");
        assert!(flags.json && !flags.witness);
        assert_eq!(flags.repeat, 3);
        assert!(super::parse_flags(&["--repeat".to_string(), "0".to_string()], &all).is_err());
        assert!(super::parse_flags(&["--bogus".to_string()], &all).is_err());
        // A flag belonging to a different subcommand is rejected, not
        // silently ignored.
        let err = super::parse_flags(&["--json".to_string()], &["--query"]).unwrap_err();
        assert!(err.contains("not a flag of this subcommand"));
    }
}
