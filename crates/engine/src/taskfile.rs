//! The line-oriented batch task-file format.
//!
//! A task file declares a pool of named boolean conjunctive queries once and
//! then any number of `(views, query)` decision tasks over that pool — the
//! natural shape of real workloads, where fleets of requests share views.
//! Blank lines and `#` comments are ignored; every other line is either a
//! **definition** (the Datalog-style syntax of `cqdet_query::parse_query`)
//! or a **task**:
//!
//! ```text
//! # definitions — one boolean CQ per line, shared by all tasks below
//! v1() :- R(x,y)
//! v2() :- R(x,y), R(y,z)
//! q1() :- R(x,y), R(u,v)
//! q2() :- R(x,y), R(y,z), R(a,b)
//!
//! # tasks — `task <id>: <query> <- <view> <view> ...`
//! task t1: q1 <- v1
//! task t2: q2 <- v1 v2
//! task t3: q1 <- *          # '*' = every definition except the query
//! ```
//!
//! Tasks may reference the same definitions freely; the batch engine
//! ([`crate::DecisionSession`]) exploits exactly this sharing.  Definitions
//! must precede nothing in particular — the whole pool is parsed before
//! tasks are resolved, so forward references are fine.

use crate::session::Task;
use cqdet_query::{parse_query, ConjunctiveQuery, ParseQueryError};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// A parsed task file: the definition pool and the resolved tasks.
#[derive(Debug, Clone)]
pub struct TaskFile {
    /// The named definitions, in file order.
    pub definitions: Vec<ConjunctiveQuery>,
    /// The resolved tasks, in file order (views and query are clones of the
    /// pool entries, so tasks sharing a view share its text verbatim —
    /// which is what makes the session caches hit).
    pub tasks: Vec<Task>,
}

/// Why a task file could not be parsed.  Every variant carries the 1-based
/// line number of the offending file line, so front ends can point at the
/// source (`line 0` never occurs; [`TaskFileError::NoTasks`] is the only
/// position-free failure).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskFileError {
    /// A definition line failed to parse; the inner error carries the full
    /// line/column/token diagnostics (re-anchored at the file line).
    BadDefinition {
        /// 1-based file line of the definition.
        line: usize,
        /// The positioned parser diagnostic.
        error: ParseQueryError,
    },
    /// A definition is a union query (Theorem 3 handles CQs; unions are
    /// undecidable by Theorem 2).
    UnionDefinition {
        /// 1-based file line of the definition.
        line: usize,
        /// The definition's name.
        name: String,
    },
    /// Two definitions share a name.
    DuplicateDefinition {
        /// 1-based file line of the *second* definition.
        line: usize,
        /// The duplicated name.
        name: String,
    },
    /// A task line is not of the form `task <id>: <query> <- <views...>`.
    BadTaskLine {
        /// 1-based file line of the task.
        line: usize,
        /// The offending line text (comment stripped).
        text: String,
    },
    /// Two tasks share an id.
    DuplicateTask {
        /// 1-based file line of the *second* task.
        line: usize,
        /// The duplicated id.
        id: String,
    },
    /// A task references an unknown definition.
    UnknownName {
        /// 1-based file line of the task.
        line: usize,
        /// The referencing task's id.
        task: String,
        /// The unresolved name.
        name: String,
    },
    /// The file declares no tasks.
    NoTasks,
}

impl TaskFileError {
    /// The 1-based file line of the failure (`None` for [`TaskFileError::NoTasks`]).
    pub fn line(&self) -> Option<usize> {
        match self {
            TaskFileError::BadDefinition { line, .. }
            | TaskFileError::UnionDefinition { line, .. }
            | TaskFileError::DuplicateDefinition { line, .. }
            | TaskFileError::BadTaskLine { line, .. }
            | TaskFileError::DuplicateTask { line, .. }
            | TaskFileError::UnknownName { line, .. } => Some(*line),
            TaskFileError::NoTasks => None,
        }
    }
}

impl fmt::Display for TaskFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TaskFileError::BadDefinition { error, .. } => {
                write!(f, "bad definition: {error}")
            }
            TaskFileError::UnionDefinition { line, name } => write!(
                f,
                "line {line}: definition {name} is a union query; batch tasks are boolean CQs (Theorem 3)"
            ),
            TaskFileError::DuplicateDefinition { line, name } => {
                write!(f, "line {line}: duplicate definition name {name:?}")
            }
            TaskFileError::BadTaskLine { line, text } => write!(
                f,
                "line {line}: bad task line {text:?}; expected `task <id>: <query> <- <view> <view> ...`"
            ),
            TaskFileError::DuplicateTask { line, id } => {
                write!(f, "line {line}: duplicate task id {id:?}")
            }
            TaskFileError::UnknownName { line, task, name } => write!(
                f,
                "line {line}: task {task:?} references unknown definition {name:?}"
            ),
            TaskFileError::NoTasks => write!(f, "task file declares no tasks"),
        }
    }
}

impl std::error::Error for TaskFileError {}

/// Parse a batch task file (see the [module docs](self) for the format).
pub fn parse_task_file(text: &str) -> Result<TaskFile, TaskFileError> {
    // First pass: definitions, each parsed against its raw file line so the
    // diagnostics (line, column, caret target) point at the actual source.
    let mut definitions: Vec<ConjunctiveQuery> = Vec::new();
    let mut by_name: HashMap<String, usize> = HashMap::new();
    let mut task_lines: Vec<(usize, String)> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let stripped = raw.split('#').next().unwrap_or("").trim();
        if stripped.is_empty() {
            continue;
        }
        if let Some(rest) = stripped.strip_prefix("task ") {
            task_lines.push((line_no, rest.trim().to_string()));
            continue;
        }
        let u = parse_query(raw).map_err(|e| TaskFileError::BadDefinition {
            line: line_no,
            error: e.at_line(line_no),
        })?;
        if !u.is_single_cq() {
            return Err(TaskFileError::UnionDefinition {
                line: line_no,
                name: u.name().to_string(),
            });
        }
        let cq = u.disjuncts()[0].clone();
        if by_name
            .insert(cq.name().to_string(), definitions.len())
            .is_some()
        {
            return Err(TaskFileError::DuplicateDefinition {
                line: line_no,
                name: cq.name().to_string(),
            });
        }
        definitions.push(cq);
    }

    // Second pass: tasks, resolved against the full pool (forward references
    // from a task to a later definition are fine).
    let mut tasks: Vec<Task> = Vec::with_capacity(task_lines.len());
    let mut seen_ids: HashSet<String> = HashSet::new();
    for (line_no, line) in &task_lines {
        let line_no = *line_no;
        let bad = || TaskFileError::BadTaskLine {
            line: line_no,
            text: format!("task {line}"),
        };
        // `<id>: <query> <- <view> <view> ...`
        let (id, rest) = line.split_once(':').ok_or_else(bad)?;
        let id = id.trim().to_string();
        let (query_name, views_part) = rest.split_once("<-").ok_or_else(bad)?;
        let query_name = query_name.trim();
        if id.is_empty() || query_name.is_empty() {
            return Err(bad());
        }
        if !seen_ids.insert(id.clone()) {
            return Err(TaskFileError::DuplicateTask { line: line_no, id });
        }
        let resolve = |name: &str| -> Result<ConjunctiveQuery, TaskFileError> {
            by_name
                .get(name)
                .map(|&i| definitions[i].clone())
                .ok_or_else(|| TaskFileError::UnknownName {
                    line: line_no,
                    task: id.clone(),
                    name: name.to_string(),
                })
        };
        let query = resolve(query_name)?;
        let view_names: Vec<&str> = views_part.split_whitespace().collect();
        if view_names.is_empty() {
            return Err(bad());
        }
        let views: Vec<ConjunctiveQuery> = if view_names == ["*"] {
            definitions
                .iter()
                .filter(|d| d.name() != query_name)
                .cloned()
                .collect()
        } else {
            view_names
                .iter()
                .map(|n| resolve(n))
                .collect::<Result<_, _>>()?
        };
        tasks.push(Task { id, views, query });
    }
    if tasks.is_empty() {
        return Err(TaskFileError::NoTasks);
    }
    Ok(TaskFile { definitions, tasks })
}

#[cfg(test)]
mod tests {
    use super::*;

    const FILE: &str = "
        # shared pool
        v1() :- R(x,y)
        v2() :- R(x,y), R(y,z)
        q1() :- R(x,y), R(u,v)

        task t1: q1 <- v1          # explicit views
        task t2: q1 <- v1 v2
        task t3: q1 <- *           # everything but the query
    ";

    #[test]
    fn parses_definitions_and_tasks() {
        let file = parse_task_file(FILE).unwrap();
        assert_eq!(file.definitions.len(), 3);
        assert_eq!(file.tasks.len(), 3);
        assert_eq!(file.tasks[0].id, "t1");
        assert_eq!(file.tasks[0].views.len(), 1);
        assert_eq!(file.tasks[1].views.len(), 2);
        // '*' excludes the query itself.
        let t3 = &file.tasks[2];
        assert_eq!(t3.views.len(), 2);
        assert!(t3.views.iter().all(|v| v.name() != "q1"));
        assert_eq!(t3.query.name(), "q1");
    }

    #[test]
    fn error_cases() {
        assert!(matches!(
            parse_task_file("v1() :- R(x,y)"),
            Err(TaskFileError::NoTasks)
        ));
        assert!(matches!(
            parse_task_file("task t1: q <- v"),
            Err(TaskFileError::UnknownName { .. })
        ));
        assert!(matches!(
            parse_task_file("v() :- R(x,y)\nq() :- R(x,y)\ntask a: q <- v\ntask a: q <- v"),
            Err(TaskFileError::DuplicateTask { line: 4, .. })
        ));
        assert!(matches!(
            parse_task_file("v() :- R(x,y)\nv() :- R(x,x)\ntask a: v <- *"),
            Err(TaskFileError::DuplicateDefinition { line: 2, .. })
        ));
        assert!(matches!(
            parse_task_file("u() :- R(x,y) | S(x,y)\ntask a: u <- *"),
            Err(TaskFileError::UnionDefinition { line: 1, .. })
        ));
        assert!(matches!(
            parse_task_file("v() :- R(x,y)\ntask broken v"),
            Err(TaskFileError::BadTaskLine { line: 2, .. })
        ));
    }

    #[test]
    fn definition_errors_are_positioned_against_the_file() {
        // The broken definition sits on file line 4; its column diagnostics
        // are measured against the raw line (leading whitespace included),
        // so a caret rendered under the file's own text lines up.
        let text = "\n# pool\nv1() :- R(x,y)\n  q1() :- R(x,y) junk\ntask t: q1 <- v1\n";
        let err = parse_task_file(text).unwrap_err();
        assert_eq!(err.line(), Some(4));
        let TaskFileError::BadDefinition { line, error } = err else {
            panic!("expected BadDefinition, got {err:?}");
        };
        assert_eq!(line, 4);
        assert_eq!(error.line(), 4);
        assert_eq!(error.token(), "junk");
        assert_eq!(error.col(), 18, "column counts the raw line's indent");
        assert!(error.to_string().contains("line 4"), "{error}");
    }
}
