//! The line-oriented batch task-file format.
//!
//! A task file declares a pool of named boolean conjunctive queries once and
//! then any number of `(views, query)` decision tasks over that pool — the
//! natural shape of real workloads, where fleets of requests share views.
//! Blank lines and `#` comments are ignored; every other line is either a
//! **definition** (the Datalog-style syntax of `cqdet_query::parse_query`)
//! or a **task**:
//!
//! ```text
//! # definitions — one boolean CQ per line, shared by all tasks below
//! v1() :- R(x,y)
//! v2() :- R(x,y), R(y,z)
//! q1() :- R(x,y), R(u,v)
//! q2() :- R(x,y), R(y,z), R(a,b)
//!
//! # tasks — `task <id>: <query> <- <view> <view> ...`
//! task t1: q1 <- v1
//! task t2: q2 <- v1 v2
//! task t3: q1 <- *          # '*' = every definition except the query
//! ```
//!
//! Tasks may reference the same definitions freely; the batch engine
//! ([`crate::DecisionSession`]) exploits exactly this sharing.  Definitions
//! must precede nothing in particular — the whole pool is parsed before
//! tasks are resolved, so forward references are fine.

use crate::session::Task;
use cqdet_query::{parse_queries, ConjunctiveQuery};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// A parsed task file: the definition pool and the resolved tasks.
#[derive(Debug, Clone)]
pub struct TaskFile {
    /// The named definitions, in file order.
    pub definitions: Vec<ConjunctiveQuery>,
    /// The resolved tasks, in file order (views and query are clones of the
    /// pool entries, so tasks sharing a view share its text verbatim —
    /// which is what makes the session caches hit).
    pub tasks: Vec<Task>,
}

/// Why a task file could not be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskFileError {
    /// A definition line failed to parse.
    BadDefinition(String),
    /// A definition is a union query (Theorem 3 handles CQs; unions are
    /// undecidable by Theorem 2).
    UnionDefinition(String),
    /// Two definitions share a name.
    DuplicateDefinition(String),
    /// A task line is not of the form `task <id>: <query> <- <views...>`.
    BadTaskLine(String),
    /// Two tasks share an id.
    DuplicateTask(String),
    /// A task references an unknown definition.
    UnknownName { task: String, name: String },
    /// The file declares no tasks.
    NoTasks,
}

impl fmt::Display for TaskFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TaskFileError::BadDefinition(e) => write!(f, "bad definition: {e}"),
            TaskFileError::UnionDefinition(n) => write!(
                f,
                "definition {n} is a union query; batch tasks are boolean CQs (Theorem 3)"
            ),
            TaskFileError::DuplicateDefinition(n) => {
                write!(f, "duplicate definition name {n:?}")
            }
            TaskFileError::BadTaskLine(l) => write!(
                f,
                "bad task line {l:?}; expected `task <id>: <query> <- <view> <view> ...`"
            ),
            TaskFileError::DuplicateTask(id) => write!(f, "duplicate task id {id:?}"),
            TaskFileError::UnknownName { task, name } => {
                write!(f, "task {task:?} references unknown definition {name:?}")
            }
            TaskFileError::NoTasks => write!(f, "task file declares no tasks"),
        }
    }
}

impl std::error::Error for TaskFileError {}

/// Parse a batch task file (see the [module docs](self) for the format).
pub fn parse_task_file(text: &str) -> Result<TaskFile, TaskFileError> {
    let mut program = String::new();
    let mut task_lines: Vec<String> = Vec::new();
    for raw in text.lines() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("task ") {
            task_lines.push(rest.trim().to_string());
        } else {
            program.push_str(line);
            program.push('\n');
        }
    }

    let parsed =
        parse_queries(&program).map_err(|e| TaskFileError::BadDefinition(e.to_string()))?;
    let mut definitions: Vec<ConjunctiveQuery> = Vec::with_capacity(parsed.len());
    let mut by_name: HashMap<String, usize> = HashMap::new();
    for u in &parsed {
        if !u.is_single_cq() {
            return Err(TaskFileError::UnionDefinition(u.name().to_string()));
        }
        let cq = u.disjuncts()[0].clone();
        if by_name
            .insert(cq.name().to_string(), definitions.len())
            .is_some()
        {
            return Err(TaskFileError::DuplicateDefinition(cq.name().to_string()));
        }
        definitions.push(cq);
    }

    let mut tasks: Vec<Task> = Vec::with_capacity(task_lines.len());
    let mut seen_ids: HashSet<String> = HashSet::new();
    for line in &task_lines {
        // `<id>: <query> <- <view> <view> ...`
        let (id, rest) = line
            .split_once(':')
            .ok_or_else(|| TaskFileError::BadTaskLine(line.clone()))?;
        let id = id.trim().to_string();
        let (query_name, views_part) = rest
            .split_once("<-")
            .ok_or_else(|| TaskFileError::BadTaskLine(line.clone()))?;
        let query_name = query_name.trim();
        if id.is_empty() || query_name.is_empty() {
            return Err(TaskFileError::BadTaskLine(line.clone()));
        }
        if !seen_ids.insert(id.clone()) {
            return Err(TaskFileError::DuplicateTask(id));
        }
        let resolve = |name: &str| -> Result<ConjunctiveQuery, TaskFileError> {
            by_name
                .get(name)
                .map(|&i| definitions[i].clone())
                .ok_or_else(|| TaskFileError::UnknownName {
                    task: id.clone(),
                    name: name.to_string(),
                })
        };
        let query = resolve(query_name)?;
        let view_names: Vec<&str> = views_part.split_whitespace().collect();
        if view_names.is_empty() {
            return Err(TaskFileError::BadTaskLine(line.clone()));
        }
        let views: Vec<ConjunctiveQuery> = if view_names == ["*"] {
            definitions
                .iter()
                .filter(|d| d.name() != query_name)
                .cloned()
                .collect()
        } else {
            view_names
                .iter()
                .map(|n| resolve(n))
                .collect::<Result<_, _>>()?
        };
        tasks.push(Task { id, views, query });
    }
    if tasks.is_empty() {
        return Err(TaskFileError::NoTasks);
    }
    Ok(TaskFile { definitions, tasks })
}

#[cfg(test)]
mod tests {
    use super::*;

    const FILE: &str = "
        # shared pool
        v1() :- R(x,y)
        v2() :- R(x,y), R(y,z)
        q1() :- R(x,y), R(u,v)

        task t1: q1 <- v1          # explicit views
        task t2: q1 <- v1 v2
        task t3: q1 <- *           # everything but the query
    ";

    #[test]
    fn parses_definitions_and_tasks() {
        let file = parse_task_file(FILE).unwrap();
        assert_eq!(file.definitions.len(), 3);
        assert_eq!(file.tasks.len(), 3);
        assert_eq!(file.tasks[0].id, "t1");
        assert_eq!(file.tasks[0].views.len(), 1);
        assert_eq!(file.tasks[1].views.len(), 2);
        // '*' excludes the query itself.
        let t3 = &file.tasks[2];
        assert_eq!(t3.views.len(), 2);
        assert!(t3.views.iter().all(|v| v.name() != "q1"));
        assert_eq!(t3.query.name(), "q1");
    }

    #[test]
    fn error_cases() {
        assert!(matches!(
            parse_task_file("v1() :- R(x,y)"),
            Err(TaskFileError::NoTasks)
        ));
        assert!(matches!(
            parse_task_file("task t1: q <- v"),
            Err(TaskFileError::UnknownName { .. })
        ));
        assert!(matches!(
            parse_task_file("v() :- R(x,y)\nq() :- R(x,y)\ntask a: q <- v\ntask a: q <- v"),
            Err(TaskFileError::DuplicateTask(_))
        ));
        assert!(matches!(
            parse_task_file("v() :- R(x,y)\nv() :- R(x,x)\ntask a: v <- *"),
            Err(TaskFileError::DuplicateDefinition(_))
        ));
        assert!(matches!(
            parse_task_file("u() :- R(x,y) | S(x,y)\ntask a: u <- *"),
            Err(TaskFileError::UnionDefinition(_))
        ));
        assert!(matches!(
            parse_task_file("v() :- R(x,y)\ntask broken v"),
            Err(TaskFileError::BadTaskLine(_))
        ));
    }
}
