//! The batch decision engine: [`DecisionSession`] / [`DecisionSession::decide_batch`].
//!
//! A session wraps a [`DecisionContext`] (the cross-request caches of
//! `cqdet-core`: frozen bodies, canonical keys, components, containment
//! gates, the session iso-class table) together with the policy knobs of a
//! batch run ([`SessionConfig`]) and the task fan-out: `decide_batch`
//! spreads tasks over scoped threads (`cqdet_parallel::par_map`), each
//! worker installing the session's shared hom-count cache
//! (`cqdet_structure::with_shared_caches`) so witness construction reuses
//! counts across tasks.  Inside a worker the per-view fan-out of the
//! decision pipeline runs inline (nested fan-outs are serial by design), so
//! a batch uses one level of parallelism — across tasks — without
//! oversubscribing.
//!
//! Every task produces a [`TaskRecord`] carrying the **full certificate**:
//!
//! * determined — the rational span coefficients realising
//!   `q(D) = Π vᵢ(D)^{αᵢ}` plus the rendered rewriting, re-verified by
//!   recomputing `q⃗ = Σ αᵢ·v⃗ᵢ` in exact arithmetic;
//! * not determined — the [`Counterexample`] of Sections 5–7 with its
//!   answer vectors, re-verified via
//!   [`check_certificate_arithmetic`] (and, by default, the full symbolic
//!   `v(D) = v(D′) ∧ q(D) ≠ q(D′)` check).
//!
//! Records serialize to JSON-lines ([`TaskRecord::to_json`], see the field
//! list there); bigints travel as decimal strings so certificates survive a
//! round trip exactly ([`crate::json`]).

use crate::json::Json;
use cqdet_bigint::Nat;
use cqdet_core::decide_bag_determinacy_budgeted;
use cqdet_core::witness::{build_counterexample_ctl, check_certificate_arithmetic, WitnessConfig};
use cqdet_core::{
    BagDeterminacy, ContextStats, Counterexample, DecisionContext, DeterminacyError, WitnessError,
};
use cqdet_linalg::Rat;
use cqdet_parallel::{par_map, Budget, CancelToken, Exhausted};
use cqdet_query::ConjunctiveQuery;
use cqdet_structure::with_shared_caches;

/// Version of the JSON certificate wire format.  Emitted as the first
/// `"version"` member of every [`TaskRecord::to_json`] record and every
/// [`stats_json`] line; consumers must treat records with a larger version
/// as potentially carrying unknown members.
///
/// History: `1` — the PR 3/4 record schema plus the explicit version field
/// itself (earlier records carried no version and are read as version 1).
pub const WIRE_FORMAT_VERSION: i64 = 1;

/// One decision request: does `views ⟶_bag query`?
#[derive(Debug, Clone)]
pub struct Task {
    /// Caller-chosen identifier, echoed in the task's record.
    pub id: String,
    /// The views `V₀` (boolean CQs).
    pub views: Vec<ConjunctiveQuery>,
    /// The query `q` (a boolean CQ).
    pub query: ConjunctiveQuery,
}

/// Batch policy knobs.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Build a [`Counterexample`] for undetermined tasks (default `true`).
    /// Without it, undetermined records still carry the analysis (retained
    /// views, basis, vectors) but no constructive witness.
    pub witnesses: bool,
    /// Re-verify certificates semantically: the exact span identity for
    /// determined tasks is always checked; with `verify` the undetermined
    /// side additionally runs the full symbolic
    /// `v(D) = v(D′) ∧ q(D) ≠ q(D′)` evaluation on top of
    /// [`check_certificate_arithmetic`] (default `true`).
    pub verify: bool,
    /// Knobs of the witness construction itself.
    pub witness: WitnessConfig,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            witnesses: true,
            verify: true,
            witness: WitnessConfig::default(),
        }
    }
}

/// The outcome class of a task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskStatus {
    /// `V₀ ⟶_bag q` — the record carries coefficients and a rewriting.
    Determined,
    /// `V₀ ⟶̸_bag q` — the record carries the counterexample certificate
    /// (when witness construction is enabled and succeeded).
    NotDetermined,
    /// The instance was rejected (non-boolean query, nullary relation, …).
    Error,
}

impl TaskStatus {
    /// The JSON wire string of this status.
    pub fn as_str(self) -> &'static str {
        match self {
            TaskStatus::Determined => "determined",
            TaskStatus::NotDetermined => "not_determined",
            TaskStatus::Error => "error",
        }
    }
}

/// The full per-task result: analysis, certificate, verification outcome.
#[derive(Debug, Clone)]
pub struct TaskRecord {
    /// The task's id.
    pub id: String,
    /// The query's name.
    pub query_name: String,
    /// The view names, in task order.
    pub view_names: Vec<String>,
    /// Outcome class.
    pub status: TaskStatus,
    /// The full analysis (absent only for [`TaskStatus::Error`]).
    pub analysis: Option<BagDeterminacy>,
    /// Rendered rewriting `q(D) = Π vᵢ(D)^{αᵢ}` (determined tasks).
    pub rewriting: Option<String>,
    /// The constructive counterexample (undetermined tasks, when enabled).
    pub counterexample: Option<Counterexample>,
    /// The answer vectors `(w⃗(D), w⃗(D′))` of the counterexample.
    pub answer_vectors: Option<(Vec<Nat>, Vec<Nat>)>,
    /// Outcome of [`check_certificate_arithmetic`] alone (undetermined
    /// tasks with a witness); distinct from [`TaskRecord::verified`], which
    /// also folds in the optional symbolic check.
    pub arithmetic_verified: Option<bool>,
    /// Certificate re-verification outcome: `Some(true)` when every check
    /// that ran passed, `Some(false)` when one failed, `None` when there was
    /// nothing to verify (errors; undetermined tasks without witnesses).
    pub verified: Option<bool>,
    /// Error message ([`TaskStatus::Error`], or a failed witness search on
    /// an otherwise-undetermined task).
    pub error: Option<String>,
    /// When the task's [`CancelToken`] expired, the pipeline stage at whose
    /// boundary the expiry was observed (`"gate"`, `"basis"`, `"span"`,
    /// `"witness/…"`); `None` for tasks that ran to completion.  A timed-out
    /// decision is a [`TaskStatus::Error`] record; a timeout during witness
    /// construction leaves a partial [`TaskStatus::NotDetermined`] record
    /// (analysis present, certificate absent).
    pub timeout_stage: Option<&'static str>,
    /// When the task's fuel [`Budget`] ran out inside a decision kernel:
    /// which ledger (`"steps"` or `"bytes"`), the total charged and the
    /// limit.  Such a task is a [`TaskStatus::Error`] record; the work done
    /// stays in the session caches, so resubmitting with a larger budget
    /// resumes rather than restarts.
    pub fuel_exhausted: Option<Exhausted>,
}

/// The result of a batch run: per-task records plus the session cache
/// counters observed after the run.
#[derive(Debug)]
pub struct BatchReport {
    /// One record per task, in input order.
    pub records: Vec<TaskRecord>,
    /// Session cache statistics (cumulative over the session's lifetime).
    pub stats: ContextStats,
}

impl BatchReport {
    /// Number of records with the given status.
    pub fn count(&self, status: TaskStatus) -> usize {
        self.records.iter().filter(|r| r.status == status).count()
    }

    /// Whether every certificate that was checked verified successfully.
    pub fn all_verified(&self) -> bool {
        self.records.iter().all(|r| r.verified != Some(false))
    }
}

/// A long-lived batch decision engine: owns the cross-request caches and
/// fans tasks out over threads.  See the [module docs](self).
///
/// ```
/// use cqdet_engine::{DecisionSession, Task};
/// use cqdet_query::parse_query;
///
/// let cq = |t: &str| parse_query(t).unwrap().disjuncts()[0].clone();
/// let v = cq("v() :- R(x,y)");
/// let tasks: Vec<Task> = (0..4)
///     .map(|i| Task {
///         id: format!("t{i}"),
///         views: vec![v.clone()],
///         query: cq("q() :- R(x,y), R(u,w)"),
///     })
///     .collect();
///
/// let session = DecisionSession::new();
/// let report = session.decide_batch(&tasks);
/// assert!(report.records.iter().all(|r| r.status == cqdet_engine::TaskStatus::Determined));
/// assert!(report.all_verified());
/// // Tasks 2..4 reused task 1's frozen bodies, classes and gates:
/// assert!(report.stats.frozen_hits > 0 && report.stats.gate_hits > 0);
/// ```
#[derive(Default)]
pub struct DecisionSession {
    cx: DecisionContext,
    config: SessionConfig,
}

impl DecisionSession {
    /// A fresh session with default configuration.
    pub fn new() -> DecisionSession {
        DecisionSession::default()
    }

    /// A fresh session with explicit configuration.
    pub fn with_config(config: SessionConfig) -> DecisionSession {
        DecisionSession {
            cx: DecisionContext::new(),
            config,
        }
    }

    /// The underlying cache context.
    pub fn context(&self) -> &DecisionContext {
        &self.cx
    }

    /// Session cache counters (cumulative).
    pub fn stats(&self) -> ContextStats {
        self.cx.stats()
    }

    /// Decide one instance against the session caches (no certificate
    /// construction — the raw analysis).
    pub fn decide(
        &self,
        views: &[ConjunctiveQuery],
        query: &ConjunctiveQuery,
    ) -> Result<BagDeterminacy, DeterminacyError> {
        self.decide_ctl(views, query, &CancelToken::none())
    }

    /// [`DecisionSession::decide`] under a request-scoped [`CancelToken`]
    /// (checked at the pipeline's stage boundaries).
    pub fn decide_ctl(
        &self,
        views: &[ConjunctiveQuery],
        query: &ConjunctiveQuery,
        ctl: &CancelToken,
    ) -> Result<BagDeterminacy, DeterminacyError> {
        self.decide_budgeted(views, query, ctl, &Budget::none())
    }

    /// [`DecisionSession::decide_ctl`] under a fuel [`Budget`] as well: the
    /// decision kernels charge the budget's step/byte ledgers and stop with
    /// [`DeterminacyError::ResourceExhausted`] when it runs out (see
    /// [`decide_bag_determinacy_budgeted`]).
    pub fn decide_budgeted(
        &self,
        views: &[ConjunctiveQuery],
        query: &ConjunctiveQuery,
        ctl: &CancelToken,
        budget: &Budget,
    ) -> Result<BagDeterminacy, DeterminacyError> {
        with_shared_caches(self.cx.caches(), || {
            decide_bag_determinacy_budgeted(&self.cx, views, query, ctl, budget)
        })
    }

    /// Run one task end to end: decide, build the certificate, re-verify.
    pub fn run_task(&self, task: &Task) -> TaskRecord {
        self.run_task_ctl(task, &CancelToken::none())
    }

    /// [`DecisionSession::run_task`] under a request-scoped [`CancelToken`].
    ///
    /// An expired token yields a record, never a panic: expiry during the
    /// decision is a [`TaskStatus::Error`] record, expiry during witness
    /// construction a partial [`TaskStatus::NotDetermined`] record (the
    /// analysis survives, the certificate is absent); both carry
    /// [`TaskRecord::timeout_stage`] so serving layers can answer with a
    /// typed timeout.
    pub fn run_task_ctl(&self, task: &Task, ctl: &CancelToken) -> TaskRecord {
        self.run_task_with(task, ctl, &self.config)
    }

    /// [`DecisionSession::run_task_ctl`] under an explicit per-request
    /// policy, overriding the session's own [`SessionConfig`].  The serving
    /// layer uses this to honour per-request flags (witnesses on/off,
    /// verification on/off) against one long-lived session.
    pub fn run_task_with(
        &self,
        task: &Task,
        ctl: &CancelToken,
        config: &SessionConfig,
    ) -> TaskRecord {
        self.run_task_budgeted(task, ctl, &Budget::none(), config)
    }

    /// [`DecisionSession::run_task_with`] under a fuel [`Budget`]: the
    /// decision phase is metered (an exhausted budget yields a
    /// [`TaskStatus::Error`] record carrying [`TaskRecord::fuel_exhausted`]);
    /// witness construction remains deadline-governed only — its dominant
    /// cost, hom counting, runs under the shared memo whose entries the
    /// budget already paid for once.
    pub fn run_task_budgeted(
        &self,
        task: &Task,
        ctl: &CancelToken,
        budget: &Budget,
        config: &SessionConfig,
    ) -> TaskRecord {
        let outcome = self.decide_budgeted(&task.views, &task.query, ctl, budget);
        self.record_from_outcome(task, outcome, ctl, config)
    }

    /// Turn an already-computed decision outcome into the full certificate
    /// [`TaskRecord`] — the witness-construction / re-verification half of
    /// [`DecisionSession::run_task_budgeted`].  The serving layer's mutable
    /// sessions use this to certify a `redecide` whose analysis came out of
    /// a [`cqdet_core::MutableSession`] rather than a one-shot decide.
    pub fn record_from_outcome(
        &self,
        task: &Task,
        outcome: Result<BagDeterminacy, DeterminacyError>,
        ctl: &CancelToken,
        config: &SessionConfig,
    ) -> TaskRecord {
        let mut record = TaskRecord {
            id: task.id.clone(),
            query_name: task.query.name().to_string(),
            view_names: task.views.iter().map(|v| v.name().to_string()).collect(),
            status: TaskStatus::Error,
            analysis: None,
            rewriting: None,
            counterexample: None,
            answer_vectors: None,
            arithmetic_verified: None,
            verified: None,
            error: None,
            timeout_stage: None,
            fuel_exhausted: None,
        };
        let analysis = match outcome {
            Ok(a) => a,
            Err(e) => {
                match e {
                    DeterminacyError::DeadlineExceeded { stage } => {
                        record.timeout_stage = Some(stage);
                    }
                    DeterminacyError::ResourceExhausted { what, spent, limit } => {
                        record.fuel_exhausted = Some(Exhausted { what, spent, limit });
                    }
                    _ => {}
                }
                record.error = Some(e.to_string());
                return record;
            }
        };
        if analysis.determined {
            record.status = TaskStatus::Determined;
            record.rewriting = analysis.rewriting(&task.views);
            record.verified = Some(span_identity_holds(&analysis));
        } else {
            record.status = TaskStatus::NotDetermined;
            if config.witnesses {
                // Witness construction is hom-count-heavy (separating
                // structures, the evaluation matrix, symbolic answers);
                // running it under the session's shared cache is what makes
                // a batch of related tasks cheap.
                let built = with_shared_caches(self.cx.caches(), || {
                    build_counterexample_ctl(&analysis, &task.query, &config.witness, ctl)
                });
                match built {
                    Ok(witness) => {
                        let arithmetic = check_certificate_arithmetic(&witness, &analysis);
                        let mut ok = arithmetic;
                        if ok && config.verify {
                            ok = with_shared_caches(self.cx.caches(), || {
                                witness.verify(&task.views, &task.query)
                            });
                        }
                        record.answer_vectors = Some(with_shared_caches(self.cx.caches(), || {
                            witness.answer_vectors()
                        }));
                        record.arithmetic_verified = Some(arithmetic);
                        record.verified = Some(ok);
                        record.counterexample = Some(witness);
                    }
                    Err(e) => {
                        if let WitnessError::DeadlineExceeded { stage } = e {
                            record.timeout_stage = Some(stage);
                        }
                        record.error = Some(format!("witness construction failed: {e}"));
                    }
                }
            }
        }
        record.analysis = Some(analysis);
        record
    }

    /// Run a batch of tasks, fanning out across scoped threads.  Records
    /// come back in input order; [`BatchReport::stats`] reflects the session
    /// counters after the whole batch.
    pub fn decide_batch(&self, tasks: &[Task]) -> BatchReport {
        self.decide_batch_ctl(tasks, &CancelToken::none())
    }

    /// [`DecisionSession::decide_batch`] under one shared request-scoped
    /// [`CancelToken`]: tasks still running when the token expires come back
    /// as timeout records ([`TaskRecord::timeout_stage`]); completed tasks
    /// keep their full certificates — the report is *partial*, not void.
    pub fn decide_batch_ctl(&self, tasks: &[Task], ctl: &CancelToken) -> BatchReport {
        self.decide_batch_with(tasks, ctl, &self.config)
    }

    /// [`DecisionSession::decide_batch_ctl`] under an explicit per-request
    /// policy (see [`DecisionSession::run_task_with`]).
    pub fn decide_batch_with(
        &self,
        tasks: &[Task],
        ctl: &CancelToken,
        config: &SessionConfig,
    ) -> BatchReport {
        self.decide_batch_budgeted(tasks, ctl, &Budget::none(), config)
    }

    /// [`DecisionSession::decide_batch_with`] under one fuel [`Budget`]
    /// shared by **every** task of the batch: the limit bounds the batch's
    /// *total* decision work, so one runaway task drains the ledger for its
    /// siblings and the stragglers come back as typed fuel-exhausted records
    /// ([`TaskRecord::fuel_exhausted`]) instead of unbounded compute.
    /// Completed tasks keep their certificates — the report is partial, not
    /// void.
    pub fn decide_batch_budgeted(
        &self,
        tasks: &[Task],
        ctl: &CancelToken,
        budget: &Budget,
        config: &SessionConfig,
    ) -> BatchReport {
        let records = par_map(tasks, |t| self.run_task_budgeted(t, ctl, budget, config));
        BatchReport {
            records,
            stats: self.stats(),
        }
    }
}

/// Exact re-check of the determined-side certificate: `q⃗ = Σ αᵢ·v⃗ᵢ` over
/// the retained view vectors, in ℚ.
fn span_identity_holds(analysis: &BagDeterminacy) -> bool {
    let Some(coefficients) = &analysis.coefficients else {
        return false;
    };
    let k = analysis.query_vector.dim();
    for j in 0..k {
        let mut acc = Rat::zero();
        for (i, v) in analysis.view_vectors.iter().enumerate() {
            acc = acc.add_ref(&coefficients[i].mul_ref(&v[j]));
        }
        if acc != analysis.query_vector[j] {
            return false;
        }
    }
    true
}

/// A rational as a `{"num": "...", "den": "..."}` object (decimal strings,
/// arbitrary precision).
fn rat_json(r: &Rat) -> Json {
    Json::obj([
        ("num", Json::str(r.numer().to_string())),
        ("den", Json::str(r.denom().to_string())),
    ])
}

/// An integral rational as a bare decimal string (multiplicity vectors are
/// naturals by construction).
fn int_rat_string(r: &Rat) -> Json {
    debug_assert!(r.is_integer());
    Json::str(r.numer().to_string())
}

impl TaskRecord {
    /// The JSON certificate record of this task.  Schema (members always
    /// present unless marked optional):
    ///
    /// ```text
    /// version       int                         wire format ([`WIRE_FORMAT_VERSION`])
    /// task          string                      the task id
    /// status        "determined" | "not_determined" | "error"
    /// query         string                      query name
    /// views         [string]                    view names, task order
    /// retained      [int]                       indices into views (absent on error)
    /// basis_size    int                         |W|            (absent on error)
    /// query_vector  [string]                    q⃗, decimal     (absent on error)
    /// view_vectors  [[string]]                  v⃗ per retained view (absent on error)
    /// coefficients  [{view, num, den}]          determined only
    /// rewriting     string                      determined only
    /// counterexample {z: [{num,den}], t: {num,den},
    ///                alpha: [string], alpha_prime: [string],
    ///                answers_d: [string], answers_d_prime: [string],
    ///                arithmetic_verified: bool}  undetermined + witnesses only
    /// verified      bool | null                 certificate re-verification
    /// error         string                      optional
    /// timeout_stage string                      optional (deadline expiry)
    /// fuel_exhausted {what, spent, limit}       optional (budget ran out)
    /// ```
    pub fn to_json(&self) -> Json {
        let mut members: Vec<(String, Json)> = vec![
            ("version".into(), Json::num(WIRE_FORMAT_VERSION)),
            ("task".into(), Json::str(&self.id)),
            ("status".into(), Json::str(self.status.as_str())),
            ("query".into(), Json::str(&self.query_name)),
            (
                "views".into(),
                Json::Arr(self.view_names.iter().map(Json::str).collect()),
            ),
        ];
        if let Some(analysis) = &self.analysis {
            members.push((
                "retained".into(),
                Json::Arr(
                    analysis
                        .retained_views
                        .iter()
                        .map(|&i| Json::num(i as i64))
                        .collect(),
                ),
            ));
            members.push(("basis_size".into(), Json::num(analysis.basis_size() as i64)));
            members.push((
                "query_vector".into(),
                Json::Arr(analysis.query_vector.iter().map(int_rat_string).collect()),
            ));
            members.push((
                "view_vectors".into(),
                Json::Arr(
                    analysis
                        .view_vectors
                        .iter()
                        .map(|v| Json::Arr(v.iter().map(int_rat_string).collect()))
                        .collect(),
                ),
            ));
            if let Some(coefficients) = &analysis.coefficients {
                members.push((
                    "coefficients".into(),
                    Json::Arr(
                        analysis
                            .retained_views
                            .iter()
                            .enumerate()
                            .map(|(pos, &vi)| {
                                let mut m =
                                    vec![("view".to_string(), Json::str(&self.view_names[vi]))];
                                if let Json::Obj(nd) = rat_json(&coefficients[pos]) {
                                    m.extend(nd);
                                }
                                Json::Obj(m)
                            })
                            .collect(),
                    ),
                ));
            }
        }
        if let Some(rewriting) = &self.rewriting {
            members.push(("rewriting".into(), Json::str(rewriting)));
        }
        if let Some(witness) = &self.counterexample {
            // Borrow the precomputed answer vectors; the recompute fallback
            // only fires for hand-built records (the engine always fills
            // them in, under the session's shared hom cache).
            let computed;
            let (answers_d, answers_d_prime) = match &self.answer_vectors {
                Some((d, d_prime)) => (d, d_prime),
                None => {
                    computed = witness.answer_vectors();
                    (&computed.0, &computed.1)
                }
            };
            let nat_arr =
                |v: &[Nat]| Json::Arr(v.iter().map(|n| Json::str(n.to_string())).collect());
            members.push((
                "counterexample".into(),
                Json::obj([
                    ("z", Json::Arr(witness.z.iter().map(rat_json).collect())),
                    ("t", rat_json(&witness.t)),
                    ("alpha", nat_arr(&witness.alpha)),
                    ("alpha_prime", nat_arr(&witness.alpha_prime)),
                    ("answers_d", nat_arr(answers_d)),
                    ("answers_d_prime", nat_arr(answers_d_prime)),
                    (
                        "arithmetic_verified",
                        Json::Bool(self.arithmetic_verified.unwrap_or(false)),
                    ),
                ]),
            ));
        }
        members.push((
            "verified".into(),
            match self.verified {
                Some(b) => Json::Bool(b),
                None => Json::Null,
            },
        ));
        if let Some(error) = &self.error {
            members.push(("error".into(), Json::str(error)));
        }
        if let Some(stage) = self.timeout_stage {
            members.push(("timeout_stage".into(), Json::str(stage)));
        }
        if let Some(fuel) = &self.fuel_exhausted {
            members.push((
                "fuel_exhausted".into(),
                Json::obj([
                    ("what", Json::str(fuel.what)),
                    ("spent", Json::num(fuel.spent as i64)),
                    ("limit", Json::num(fuel.limit as i64)),
                ]),
            ));
        }
        Json::Obj(members)
    }
}

/// One governed cache's full counter block as a JSON object: occupancy
/// (`entries`/`bytes`/`cap`) plus the hit/miss/eviction tallies.
pub fn usage_json(usage: &cqdet_cache::CacheUsage) -> Json {
    Json::obj([
        ("hits", Json::num(usage.hits as i64)),
        ("misses", Json::num(usage.misses as i64)),
        ("evictions", Json::num(usage.evictions as i64)),
        ("entries", Json::num(usage.entries as i64)),
        ("bytes", Json::num(usage.bytes as i64)),
        ("cap", Json::num(usage.cap as i64)),
    ])
}

/// The session statistics as a JSON record (for the `cqdet batch` stats
/// line).  The flat `*_hits`/`*_misses` members predate cache governance
/// and stay for wire compatibility; the `*_usage` objects carry the full
/// per-cache occupancy/eviction counters ([`usage_json`]) and
/// `governed_bytes` the process-wide byte ledger.
pub fn stats_json(stats: &ContextStats) -> Json {
    Json::obj([
        ("type", Json::str("session_stats")),
        ("version", Json::num(WIRE_FORMAT_VERSION)),
        ("frozen_hits", Json::num(stats.frozen_hits as i64)),
        ("frozen_misses", Json::num(stats.frozen_misses as i64)),
        ("gate_hits", Json::num(stats.gate_hits as i64)),
        ("gate_misses", Json::num(stats.gate_misses as i64)),
        ("span_hits", Json::num(stats.span_hits as i64)),
        ("span_misses", Json::num(stats.span_misses as i64)),
        ("iso_classes", Json::num(stats.iso_classes as i64)),
        ("hom_hits", Json::num(stats.hom.hits as i64)),
        ("hom_misses", Json::num(stats.hom.misses as i64)),
        ("hom_entries", Json::num(stats.hom.entries as i64)),
        ("frozen_usage", usage_json(&stats.frozen_usage)),
        ("gate_usage", usage_json(&stats.gate_usage)),
        ("span_usage", usage_json(&stats.span_usage)),
        ("hom_usage", usage_json(&stats.hom_usage)),
        ("cand_usage", usage_json(&stats.cand_usage)),
        ("governed_bytes", Json::num(stats.governed_bytes as i64)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqdet_query::parse_query;

    fn cq(text: &str) -> ConjunctiveQuery {
        parse_query(text).unwrap().disjuncts()[0].clone()
    }

    fn shared_views() -> Vec<ConjunctiveQuery> {
        vec![cq("v1() :- R(x,y)"), cq("v2() :- R(x,y), R(y,z)")]
    }

    #[test]
    fn determined_task_carries_verified_certificate() {
        let session = DecisionSession::new();
        let record = session.run_task(&Task {
            id: "t".into(),
            views: shared_views(),
            query: cq("q() :- R(x,y), R(u,w)"),
        });
        assert_eq!(record.status, TaskStatus::Determined);
        assert_eq!(record.verified, Some(true));
        assert!(record.rewriting.is_some());
        let json = record.to_json();
        assert_eq!(json.get("status").unwrap().as_str(), Some("determined"));
        assert!(json.get("coefficients").is_some());
        // The record is valid JSON and round-trips.
        let reparsed = crate::json::Json::parse(&json.render()).unwrap();
        assert_eq!(reparsed, json);
    }

    #[test]
    fn undetermined_task_carries_reverified_counterexample() {
        let session = DecisionSession::new();
        let record = session.run_task(&Task {
            id: "t".into(),
            views: vec![cq("v() :- R(x,y)")],
            query: cq("q() :- R(x,y), R(y,z)"),
        });
        assert_eq!(record.status, TaskStatus::NotDetermined);
        assert_eq!(record.verified, Some(true), "arithmetic + symbolic checks");
        let witness = record.counterexample.as_ref().unwrap();
        let (d, dp) = record.answer_vectors.as_ref().unwrap();
        assert_ne!(d, dp, "answer vectors differ — that is the whole point");
        assert_eq!(d.len(), witness.basis.len());
        let json = record.to_json();
        let ce = json.get("counterexample").unwrap();
        assert_eq!(
            ce.get("answers_d").unwrap().as_arr().unwrap().len(),
            witness.basis.len()
        );
        assert_eq!(ce.get("arithmetic_verified").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn error_task_is_reported_not_panicked() {
        let session = DecisionSession::new();
        let record = session.run_task(&Task {
            id: "t".into(),
            views: vec![],
            query: cq("q(x) :- R(x,y)"),
        });
        assert_eq!(record.status, TaskStatus::Error);
        assert!(record.error.as_ref().unwrap().contains("boolean"));
        assert_eq!(
            record.to_json().get("status").unwrap().as_str(),
            Some("error")
        );
    }

    #[test]
    fn batch_shares_caches_across_tasks() {
        let session = DecisionSession::new();
        // 12 tasks over the same two views: everything isomorphism-invariant
        // is computed for the first task and reused by the rest.
        let tasks: Vec<Task> = (0..12)
            .map(|i| Task {
                id: format!("t{i}"),
                views: shared_views(),
                query: if i % 2 == 0 {
                    cq("q() :- R(x,y), R(u,w)")
                } else {
                    cq("q() :- R(x,y), R(y,z), R(z,w)")
                },
            })
            .collect();
        let report = session.decide_batch(&tasks);
        assert_eq!(report.records.len(), 12);
        assert!(report.all_verified());
        assert_eq!(report.count(TaskStatus::Determined), 6);
        assert_eq!(report.count(TaskStatus::NotDetermined), 6);
        let stats = report.stats;
        assert!(
            stats.frozen_hits > 0,
            "shared views must hit the frozen cache: {stats:?}"
        );
        assert!(
            stats.gate_hits > 0,
            "shared (view, query) classes must hit the gate cache: {stats:?}"
        );
        assert!(
            stats.hom.hits > 0,
            "witness construction must hit the shared hom memo: {stats:?}"
        );
        // Records stay in input order.
        for (i, r) in report.records.iter().enumerate() {
            assert_eq!(r.id, format!("t{i}"));
        }
    }

    #[test]
    fn session_decide_matches_one_shot_function() {
        let session = DecisionSession::new();
        let views = shared_views();
        for query in [
            cq("q() :- R(x,y), R(u,w)"),
            cq("q() :- R(x,y), R(y,z), R(z,w)"),
            cq("q() :- S(x,y)"),
        ] {
            let fresh = cqdet_core::decide_bag_determinacy(&views, &query).unwrap();
            let cached = session.decide(&views, &query).unwrap();
            // Decide twice through the session: the second pass is served
            // almost entirely from caches and must agree.
            let cached2 = session.decide(&views, &query).unwrap();
            assert_eq!(fresh.determined, cached.determined);
            assert_eq!(cached.determined, cached2.determined);
            assert_eq!(fresh.retained_views, cached.retained_views);
            assert_eq!(fresh.basis_size(), cached.basis_size());
            assert_eq!(fresh.query_vector, cached.query_vector);
            assert_eq!(fresh.view_vectors, cached2.view_vectors);
        }
    }
}
