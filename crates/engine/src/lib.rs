//! # cqdet-engine — the batch decision engine
//!
//! The decision procedure of Theorem 3 (`cqdet-core`) answers one
//! `(views, query)` instance; real workloads are **fleets** of instances
//! sharing views, schemas and isomorphism classes.  This crate turns the
//! one-shot procedure into a serving engine:
//!
//! * [`DecisionSession`] — a long-lived session owning the cross-request
//!   caches (`cqdet_core::DecisionContext` + the shared hom-count memo of
//!   `cqdet_structure::SharedCaches`), so a batch of N tasks reusing the
//!   same views freezes, canonizes, decomposes and gates each isomorphism
//!   class **once per session** instead of once per task;
//! * [`DecisionSession::decide_batch`] — the task fan-out: one scoped
//!   thread per task (`cqdet-parallel`), the per-view fan-out inside each
//!   task running inline on its worker;
//! * [`TaskRecord`] — the full per-task certificate (span coefficients +
//!   rewriting when determined; the `Counterexample` answer vectors,
//!   re-verified via `check_certificate_arithmetic`, when not), with
//!   JSON-lines serialization ([`TaskRecord::to_json`]);
//! * [`taskfile`] — the line-oriented batch task-file format of the
//!   `cqdet batch` subcommand;
//! * [`json`] — the dependency-free JSON tree/parser/emitter behind the
//!   certificates (no crates.io access in this sandbox, hence no serde).
//!
//! See `ARCHITECTURE.md` at the workspace root for how the engine sits on
//! top of the paper-faithful layers, and the crate-level quickstart on
//! [`DecisionSession`] for a complete example.

// Request-reachable code must fail as typed errors, never panics (the
// `cqdet serve` process outlives any request).  Tests are exempt; justified
// library sites carry individual `#[allow]`s.
#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]

pub mod json;
pub mod session;
pub mod taskfile;

pub use json::{Json, JsonError};
pub use session::{
    stats_json, usage_json, BatchReport, DecisionSession, SessionConfig, Task, TaskRecord,
    TaskStatus, WIRE_FORMAT_VERSION,
};
pub use taskfile::{parse_task_file, TaskFile, TaskFileError};
