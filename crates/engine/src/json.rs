//! A minimal JSON value type with an emitter and a parser.
//!
//! The sandbox this workspace builds in has no crates.io access, so there is
//! no `serde`/`serde_json`; this module implements the small subset the
//! batch engine needs to publish and round-trip certificates:
//!
//! * [`Json`] — the standard value tree (`null`, booleans, numbers, strings,
//!   arrays, objects with insertion-ordered members);
//! * [`Json::render`] — compact single-line emission (certificates are
//!   JSON-lines records, one task per line);
//! * [`Json::parse`] — a recursive-descent parser accepting exactly RFC 8259
//!   JSON (the usual escapes including `\uXXXX`, no trailing commas).
//!
//! Arbitrary-precision quantities (hom counts, rational coefficients) are
//! represented as **strings**, never as JSON numbers: a counterexample's
//! answer vectors routinely exceed 2⁵³ and must survive a round trip
//! exactly.  Numbers are only used for small machine integers (counts,
//! indices, cache statistics).
//!
//! ```
//! use cqdet_engine::json::Json;
//!
//! let record = Json::obj([
//!     ("task", Json::str("t1")),
//!     ("determined", Json::Bool(true)),
//!     ("basis_size", Json::num(3)),
//!     ("alpha", Json::Arr(vec![Json::str("18446744073709551616")])),
//! ]);
//! let line = record.render();
//! assert_eq!(Json::parse(&line).unwrap(), record);
//! assert_eq!(record.get("alpha").unwrap()[0].as_str(), Some("18446744073709551616"));
//! ```

use std::fmt;

/// A JSON value.  Object members keep insertion order (certificates render
/// deterministically).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.  Only ever a small machine integer or float in this
    /// workspace; bigints travel as strings.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as ordered `(key, value)` members.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Shorthand for a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Shorthand for an integer number value.
    pub fn num(n: impl Into<i64>) -> Json {
        Json::Num(n.into() as f64)
    }

    /// Shorthand for an object from `(key, value)` pairs.
    pub fn obj<K: Into<String>, I: IntoIterator<Item = (K, Json)>>(members: I) -> Json {
        Json::Obj(members.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Member lookup on objects (`None` on non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a `u64`, if this is a non-negative integral
    /// number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Compact single-line rendering (no insignificant whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => {
                use std::fmt::Write as _;
                // `write!` into a String is infallible and allocation-free
                // (hot path: every record member renders through here).
                if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse a complete JSON document (trailing whitespace allowed, trailing
    /// garbage is an error).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonError::at(pos, "trailing characters after value"));
        }
        Ok(value)
    }
}

impl std::ops::Index<usize> for Json {
    type Output = Json;

    /// Array element access; panics (like slice indexing) on non-arrays or
    /// out-of-range indices.
    // Indexing is *documented* to panic, exactly like `[T]` — request paths
    // use the checked accessors (`get`, `as_arr`) instead.
    #[allow(clippy::panic)]
    fn index(&self, index: usize) -> &Json {
        match self {
            Json::Arr(items) => &items[index],
            other => panic!("cannot index into {other:?}"),
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    // Bulk-copy maximal runs of clean characters and only stop at the rare
    // byte that needs escaping: string members dominate every certificate
    // (bigints travel as decimal strings), so the emitter must not walk
    // them char by char.  Every byte needing an escape is ASCII, so byte
    // offsets are always char boundaries.
    let bytes = s.as_bytes();
    let mut start = 0;
    for (i, &b) in bytes.iter().enumerate() {
        let escape: Option<&str> = match b {
            b'"' => Some("\\\""),
            b'\\' => Some("\\\\"),
            b'\n' => Some("\\n"),
            b'\r' => Some("\\r"),
            b'\t' => Some("\\t"),
            0x00..=0x1f => None, // rare control byte: \uXXXX below
            _ => continue,
        };
        out.push_str(&s[start..i]);
        match escape {
            Some(e) => out.push_str(e),
            None => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", b);
            }
        }
        start = i + 1;
    }
    out.push_str(&s[start..]);
    out.push('"');
}

/// A parse failure: byte offset plus a short description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl JsonError {
    fn at(offset: usize, message: impl Into<String>) -> JsonError {
        JsonError {
            offset,
            message: message.into(),
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonError {}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, token: &str) -> Result<(), JsonError> {
    if bytes[*pos..].starts_with(token.as_bytes()) {
        *pos += token.len();
        Ok(())
    } else {
        Err(JsonError::at(*pos, format!("expected {token:?}")))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(JsonError::at(*pos, "unexpected end of input")),
        Some(b'n') => expect(bytes, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(JsonError::at(*pos, "expected ',' or ']' in array")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b'"') {
                    return Err(JsonError::at(*pos, "expected string object key"));
                }
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(JsonError::at(*pos, "expected ':' after object key"));
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                members.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(JsonError::at(*pos, "expected ',' or '}' in object")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(JsonError::at(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| JsonError::at(*pos, "truncated \\u escape"))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| JsonError::at(*pos, "bad \\u escape"))?;
                        let cp = u32::from_str_radix(hex, 16)
                            .map_err(|_| JsonError::at(*pos, "bad \\u escape"))?;
                        // Surrogate pairs are not needed by our emitter; map
                        // lone surrogates to the replacement character.
                        out.push(char::from_u32(cp).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return Err(JsonError::at(*pos, "bad escape")),
                }
                *pos += 1;
            }
            Some(&b) if b < 0x80 => {
                if b < 0x20 {
                    return Err(JsonError::at(*pos, "unescaped control character"));
                }
                out.push(b as char);
                *pos += 1;
            }
            Some(_) => {
                // Multi-byte UTF-8: copy the whole code point.
                let s = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| JsonError::at(*pos, "invalid UTF-8"))?;
                let Some(c) = s.chars().next() else {
                    return Err(JsonError::at(*pos, "unterminated string"));
                };
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while matches!(
        bytes.get(*pos),
        Some(b'0'..=b'9') | Some(b'.') | Some(b'e') | Some(b'E') | Some(b'+') | Some(b'-')
    ) {
        *pos += 1;
    }
    // The scanned range is ASCII by construction (digits, sign, '.', 'e').
    let text =
        std::str::from_utf8(&bytes[start..*pos]).map_err(|_| JsonError::at(start, "bad number"))?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| JsonError::at(start, format!("bad number {text:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_compound_values() {
        let v = Json::obj([
            ("null", Json::Null),
            ("flag", Json::Bool(false)),
            ("n", Json::num(-42)),
            ("big", Json::str("123456789012345678901234567890")),
            (
                "arr",
                Json::Arr(vec![Json::num(1), Json::str("two"), Json::Null]),
            ),
            ("nested", Json::obj([("k", Json::Arr(vec![]))])),
        ]);
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn escapes_round_trip() {
        let v = Json::str("line\nquote\"backslash\\tab\tcontrol\u{1}end");
        let rendered = v.render();
        assert_eq!(Json::parse(&rendered).unwrap(), v);
        // Unicode beyond ASCII survives verbatim.
        let u = Json::str("π ≈ 3");
        assert_eq!(Json::parse(&u.render()).unwrap(), u);
    }

    #[test]
    fn parses_standard_json() {
        let v = Json::parse(r#" {"a": [1, 2.5, -3e2], "b": "xAy", "c": {}} "#).unwrap();
        assert_eq!(v.get("b").unwrap().as_str(), Some("xAy"));
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(v.get("c"), Some(&Json::Obj(vec![])));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "nul",
            "\"unterminated",
            "1 2",
            "{'a':1}",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn accessors() {
        let v = Json::obj([("n", Json::num(7))]);
        assert_eq!(v.get("n").unwrap().as_u64(), Some(7));
        assert_eq!(v.get("n").unwrap().as_str(), None);
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Num(1.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
    }
}
