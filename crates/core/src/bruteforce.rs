//! Bounded brute-force determinacy checking — the baseline.
//!
//! Definition 1 quantifies over *all* finite structure pairs, so without the
//! paper's Theorem 3 the only generic approach is to enumerate structures up
//! to some size and look for a counterexample pair.  This module implements
//! that baseline:
//!
//! * it can **refute** determinacy (by exhibiting a pair `D, D′` that agrees
//!   on every view and disagrees on the query), but
//! * it can never **confirm** it — "no counterexample up to size n" proves
//!   nothing (and Theorem 2 shows that for UCQs nothing ever could).
//!
//! It is used for cross-validation of the Theorem 3 decision procedure on
//! small instances and as the baseline of the `BASELINE` benchmark of
//! `EXPERIMENTS.md` (where the crossover against the exact procedure is
//! measured).

use cqdet_bigint::Nat;
use cqdet_query::eval::eval_boolean_cq;
use cqdet_query::ConjunctiveQuery;
use cqdet_structure::{Schema, Structure};

/// The outcome of a bounded brute-force search.
// The counterexample variant is much larger than the others; boxing it would
// push the size into every caller's match arms for no measurable gain here.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum BruteForceOutcome {
    /// A counterexample pair was found: determinacy is refuted.
    CounterexampleFound {
        /// First structure of the pair.
        d: Structure,
        /// Second structure of the pair; agrees with `d` on every view, not on
        /// the query.
        d_prime: Structure,
    },
    /// No counterexample exists among the enumerated structures.  This says
    /// nothing about determinacy in general.
    NoneFoundWithinBounds {
        /// Number of structures enumerated.
        structures_checked: usize,
    },
}

impl BruteForceOutcome {
    /// Whether a counterexample was found.
    pub fn refuted(&self) -> bool {
        matches!(self, BruteForceOutcome::CounterexampleFound { .. })
    }
}

/// Enumerate every structure over `schema` whose domain is `{0, …, n-1}` for
/// `n ≤ max_domain`, up to `limit` structures in total.
///
/// The enumeration is exhaustive per domain size (every subset of the possible
/// facts), so it is exponential; keep `max_domain` tiny.
pub fn enumerate_structures(schema: &Schema, max_domain: usize, limit: usize) -> Vec<Structure> {
    let mut out = Vec::new();
    'outer: for n in 0..=max_domain {
        let mut tuples: Vec<(String, Vec<u64>)> = Vec::new();
        for (rel, arity) in schema.relations() {
            if arity == 0 {
                tuples.push((rel.to_string(), vec![]));
                continue;
            }
            if n == 0 {
                continue;
            }
            let mut idx = vec![0usize; arity];
            loop {
                tuples.push((rel.to_string(), idx.iter().map(|&x| x as u64).collect()));
                let mut pos = 0;
                loop {
                    if pos == arity {
                        break;
                    }
                    idx[pos] += 1;
                    if idx[pos] < n {
                        break;
                    }
                    idx[pos] = 0;
                    pos += 1;
                }
                if pos == arity {
                    break;
                }
            }
        }
        if tuples.len() >= 30 {
            // 2^30 structures will never be enumerated; stop at this domain size.
            break;
        }
        for mask in 0u64..(1u64 << tuples.len()) {
            let mut s = Structure::new(schema.clone());
            for c in 0..n {
                s.add_isolated(c as u64);
            }
            for (bit, (rel, args)) in tuples.iter().enumerate() {
                if mask >> bit & 1 == 1 {
                    s.add(rel, args);
                }
            }
            out.push(s);
            if out.len() >= limit {
                break 'outer;
            }
        }
    }
    out
}

/// Search for a counterexample to `views ⟶_bag query` among all structures
/// with at most `max_domain` domain elements (capped at `limit` structures).
///
/// Structures are grouped by their view-answer vector, so the search is
/// linear in the number of structures (times the cost of evaluation) rather
/// than quadratic in pairs.
pub fn brute_force_search(
    views: &[ConjunctiveQuery],
    query: &ConjunctiveQuery,
    max_domain: usize,
    limit: usize,
) -> BruteForceOutcome {
    let all: Vec<&ConjunctiveQuery> = views.iter().chain(std::iter::once(query)).collect();
    let schema = cqdet_query::cq::common_schema(&all);
    let structures = enumerate_structures(&schema, max_domain, limit);
    let mut seen: std::collections::HashMap<Vec<Nat>, (Structure, Nat)> =
        std::collections::HashMap::new();
    for d in &structures {
        let key: Vec<Nat> = views
            .iter()
            .map(|v| eval_boolean_cq(v, &schema, d))
            .collect();
        let qval = eval_boolean_cq(query, &schema, d);
        match seen.get(&key) {
            None => {
                seen.insert(key, (d.clone(), qval));
            }
            Some((other, other_q)) => {
                if *other_q != qval {
                    return BruteForceOutcome::CounterexampleFound {
                        d: other.clone(),
                        d_prime: d.clone(),
                    };
                }
            }
        }
    }
    BruteForceOutcome::NoneFoundWithinBounds {
        structures_checked: structures.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqdet_query::cq::Atom;

    fn atom(rel: &str, vars: &[&str]) -> Atom {
        Atom::new(rel, vars)
    }

    fn edge(name: &str) -> ConjunctiveQuery {
        ConjunctiveQuery::boolean(name, vec![atom("R", &["x", "y"])])
    }

    fn two_path(name: &str) -> ConjunctiveQuery {
        ConjunctiveQuery::boolean(name, vec![atom("R", &["x", "y"]), atom("R", &["y", "z"])])
    }

    #[test]
    fn enumeration_counts() {
        let schema = Schema::binary(["R"]);
        // Domain sizes 0, 1, 2: 1 + 2^1 + 2^4 = 19 structures.
        let all = enumerate_structures(&schema, 2, 10_000);
        assert_eq!(all.len(), 1 + 2 + 16);
        // The limit is respected.
        assert_eq!(enumerate_structures(&schema, 2, 5).len(), 5);
        // Nullary relations are enumerated too.
        let schema2 = Schema::with_relations([("H", 0usize)]);
        let all2 = enumerate_structures(&schema2, 0, 100);
        assert_eq!(all2.len(), 2);
    }

    #[test]
    fn refutes_edge_vs_two_path() {
        // Not determined; small structures already witness it
        // (e.g. a 2-path vs a 3-path have 2 resp. 3 edges … domain 3 needed,
        // but a loop vs a 2-cycle also works within domain 2).
        let q = two_path("q");
        let v = edge("v");
        let outcome = brute_force_search(std::slice::from_ref(&v), &q, 3, 100_000);
        match outcome {
            BruteForceOutcome::CounterexampleFound { d, d_prime } => {
                let schema = cqdet_query::cq::common_schema(&[&v, &q]);
                assert_eq!(
                    eval_boolean_cq(&v, &schema, &d),
                    eval_boolean_cq(&v, &schema, &d_prime)
                );
                assert_ne!(
                    eval_boolean_cq(&q, &schema, &d),
                    eval_boolean_cq(&q, &schema, &d_prime)
                );
            }
            BruteForceOutcome::NoneFoundWithinBounds { .. } => {
                panic!("a counterexample exists within domain size 3")
            }
        }
    }

    #[test]
    fn does_not_refute_determined_instance() {
        // q = edge, V = {edge}: determined, so no bound can refute it.
        let outcome = brute_force_search(&[edge("v")], &edge("q"), 3, 100_000);
        assert!(!outcome.refuted());
        if let BruteForceOutcome::NoneFoundWithinBounds { structures_checked } = outcome {
            assert!(structures_checked > 100);
        }
    }

    #[test]
    fn planted_linear_combination_not_refuted() {
        // q = 2 disjoint edges = 2·v: determined; brute force agrees (finds nothing).
        let q =
            ConjunctiveQuery::boolean("q", vec![atom("R", &["x", "y"]), atom("R", &["z", "w"])]);
        let outcome = brute_force_search(&[edge("v")], &q, 2, 100_000);
        assert!(!outcome.refuted());
    }
}
