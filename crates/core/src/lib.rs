//! Bag-semantics query determinacy — the paper's contribution, executable.
//!
//! The central question (Definition 1): given a set of views `V` and a query
//! `q`, does `v(D) = v(D′)` for all `v ∈ V` (as **multisets**) imply
//! `q(D) = q(D′)`?  We write `V ⟶_bag q`.
//!
//! * [`boolean`] — the decision procedure of **Theorem 3**: bag-determinacy of
//!   boolean conjunctive queries is decidable, via the Main Lemma
//!   (`V₀ ⟶_bag q` iff `q⃗ ∈ span{v⃗ : v ∈ V}` over the component basis `W`).
//! * [`witness`] — the constructive half of the proof (Sections 5–7): when the
//!   span test fails, build a certified counterexample pair `D, D′`.
//! * [`paths`] — **Theorem 1**: for path queries, bag- and set-determinacy
//!   coincide and are characterised by reachability in the prefix graph
//!   `G_{q,V}`; includes the q-walk machinery and the Appendix B witness.
//! * [`bruteforce`] — a bounded exhaustive baseline (the "algorithm" one would
//!   use without the paper); used for cross-validation and as the benchmark
//!   baseline.
//! * [`session`] — cross-request caches ([`DecisionContext`]) behind the
//!   session-aware entry point [`decide_bag_determinacy_in`]: batches of
//!   related instances share frozen bodies, canonical keys, components and
//!   containment gates (the substrate of the `cqdet-engine` batch engine).

// Request-reachable code must fail as typed errors, never panics: a serving
// process (`cqdet serve`) survives whatever a request throws at it.  Tests
// and benches are exempt (`cfg_attr(not(test), …)`); the few justified
// library sites carry individual `#[allow]`s with their invariant spelled
// out.
#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]

pub mod boolean;
pub mod bruteforce;
pub mod delta;
pub mod paths;
pub mod session;
pub mod witness;

pub use boolean::{
    decide_bag_determinacy, decide_bag_determinacy_budgeted, decide_bag_determinacy_ctl,
    decide_bag_determinacy_in, BagDeterminacy, DeterminacyError,
};
pub use bruteforce::{brute_force_search, BruteForceOutcome};
pub use delta::{DeltaCounters, MutableSession, DEFAULT_CHECKPOINT_INTERVAL};
pub use paths::{
    decide_path_determinacy, derivation_path, prefix_graph, DerivationStep, PathAnalysis,
};
pub use session::{ContextStats, DecisionContext, FrozenQuery, SessionSnapshot};
pub use witness::{build_counterexample, build_counterexample_ctl, Counterexample, WitnessError};

pub use cqdet_bigint::{Int, Nat};
pub use cqdet_cache::{snapshot::SnapshotError, CacheUsage};
pub use cqdet_linalg::{QMat, QVec, Rat};
pub use cqdet_parallel::{Budget, CancelToken};
pub use cqdet_query::{ConjunctiveQuery, PathQuery, UnionQuery};
pub use cqdet_structure::{Schema, Structure};
