//! Cross-request state for the Theorem 3 decision pipeline.
//!
//! [`crate::decide_bag_determinacy`] is a one-shot function: every call
//! re-freezes its queries, re-canonizes their components and re-runs every
//! `q ⊆_set v` containment gate, because all of that state dies with the
//! call.  Batch workloads — fleets of `(views, query)` tasks sharing views,
//! schemas and isomorphism classes — want the opposite: compute each
//! isomorphism-invariant quantity **once per session**, not once per task.
//!
//! A [`DecisionContext`] owns exactly that shared state:
//!
//! * a **frozen-query cache** — body structure, isomorphism-class key and
//!   connected components per distinct `(schema, body)` pair, so a view
//!   shared by N tasks is frozen, canonized and decomposed once
//!   ([`FrozenQuery`]);
//! * a **containment-gate cache** keyed by the *isomorphism classes* of the
//!   view and query bodies (Definition 25's `q ⊆_set v` test is
//!   isomorphism-invariant in both arguments), so even textually different
//!   alpha-renamings of a view share one `hom_exists` search per query
//!   class;
//! * a session-wide **iso-class table** assigning stable dense ids to
//!   canonical keys, which the pipeline uses to intern view bodies and
//!   which callers can read for capacity accounting ([`ContextStats`]);
//! * a **span-basis cache** holding one incremental echelon form
//!   ([`cqdet_linalg::IncrementalBasis`]) per retained view-class sequence:
//!   the Main Lemma system's columns are eliminated lazily (early exit once
//!   a target enters the span) and *once per session*, so every later task
//!   over the same view pool only reduces its own target vector
//!   ([`DecisionContext::span_solve`]);
//! * a [`SharedCaches`] handle for the hom-count memo, which callers
//!   install around witness construction so separating-structure searches
//!   and evaluation matrices reuse counts across tasks
//!   (`cqdet_structure::with_shared_caches`).
//!
//! The session-aware entry point is
//! [`crate::boolean::decide_bag_determinacy_in`]; the one-shot function is
//! now a thin wrapper that builds a fresh context per call.  The
//! `cqdet-engine` crate wraps a `DecisionContext` into a full batch engine
//! (task fan-out, JSON certificates, cache-hit statistics).

use cqdet_failpoint::fail_point;
use cqdet_linalg::{IncrementalBasis, QVec};
use cqdet_parallel::{Gas, Interrupt};
use cqdet_query::ConjunctiveQuery;
use cqdet_structure::{
    connected_components, hom_exists_gas, IsoClassKey, Schema, SharedCaches, Structure,
};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};

/// Lock with poison recovery: every critical section below is a plain map
/// probe/insert/clear that leaves the map consistent even if the holder
/// panicked, so a poisoned lock carries usable data — a serving process must
/// not cascade one worker's panic into every later request.
fn locked<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // Chaos seam: every session lock acquisition can be delayed or panicked
    // (the latter exercising exactly the poison recovery below).
    fail_point!("session/lock");
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A query body frozen over a schema, with its session-cached derived data:
/// the isomorphism-class key (forced at construction, so clones and lookups
/// never re-canonize) and the connected components (computed on first use).
///
/// Handed out as `Arc<FrozenQuery>` by [`DecisionContext::frozen`]; every
/// task of a batch that mentions the same view body holds the same
/// allocation, so the component decomposition and every canonical key is
/// computed once per session.
pub struct FrozenQuery {
    body: Structure,
    key: IsoClassKey,
    comps: OnceLock<Vec<Structure>>,
}

impl FrozenQuery {
    fn new(body: Structure) -> FrozenQuery {
        let key = body.iso_class_key();
        FrozenQuery {
            body,
            key,
            comps: OnceLock::new(),
        }
    }

    /// The frozen body structure.
    pub fn body(&self) -> &Structure {
        &self.body
    }

    /// The isomorphism-class key of the body (precomputed).
    pub fn iso_key(&self) -> &IsoClassKey {
        &self.key
    }

    /// The connected components of the body (Definition 27's raw material),
    /// computed once and cached for the lifetime of the session.
    pub fn components(&self) -> &[Structure] {
        self.comps.get_or_init(|| connected_components(&self.body))
    }
}

/// Hit/miss counters of a [`DecisionContext`] (see [`DecisionContext::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ContextStats {
    /// Frozen-query cache hits (a task reused a body frozen by an earlier
    /// task of the session).
    pub frozen_hits: u64,
    /// Frozen-query cache misses (the body was frozen and canonized fresh).
    pub frozen_misses: u64,
    /// Containment-gate cache hits (`q ⊆_set v` answered without a search).
    pub gate_hits: u64,
    /// Containment-gate cache misses (one `hom_exists` search ran).
    pub gate_misses: u64,
    /// Span-basis cache hits: the Main Lemma system reused an incremental
    /// echelon form built (possibly partially) by an earlier task over the
    /// same retained view-class sequence — no shared column was
    /// re-eliminated.
    pub span_hits: u64,
    /// Span-basis cache misses (a fresh [`IncrementalBasis`] was started).
    pub span_misses: u64,
    /// Number of distinct isomorphism classes interned in the session table.
    pub iso_classes: u64,
    /// Hom-count memo statistics of the session's [`SharedCaches`] handle.
    pub hom: cqdet_structure::CacheStats,
}

/// Bound on each of the context's maps (frozen bodies, gates, the class
/// table).  When a map fills, it is cleared wholesale — the same policy as
/// the hom-count memo one layer down: entries are cheap to recompute
/// relative to unbounded growth, and a long-lived session fed a stream of
/// ever-new queries must not leak.  Clearing is always safe: live
/// `Arc<FrozenQuery>` handles keep their data, and a class id handed out
/// twice merely costs a duplicate span column (the span is unchanged).
const CONTEXT_CACHE_CAP: usize = 8192;

/// Cross-request caches for [`crate::boolean::decide_bag_determinacy_in`]:
/// see the [module docs](self) for what is shared and why.  All interior
/// state is lock-protected, so one context can serve a scoped fan-out of
/// tasks (`&DecisionContext` is `Sync`), and every map is bounded by
/// [`CONTEXT_CACHE_CAP`].
pub struct DecisionContext {
    caches: Arc<SharedCaches>,
    frozen: Mutex<HashMap<String, Arc<FrozenQuery>>>,
    // The `OnceLock`-cached canonical key behind `IsoClassKey` is forced at
    // construction and immutable afterwards, so the interior-mutability
    // clippy lint does not apply (same reasoning as in `cqdet_structure::iso`).
    #[allow(clippy::mutable_key_type)]
    gate: Mutex<HashMap<(IsoClassKey, IsoClassKey), bool>>,
    /// Class table plus the next id to hand out.  The counter is monotone —
    /// it survives a capacity clear, so an id is never reused for a
    /// different class (a reused id could alias two distinct classes inside
    /// one in-flight call; a class holding two ids merely duplicates a span
    /// column).
    #[allow(clippy::mutable_key_type)]
    classes: Mutex<(HashMap<IsoClassKey, u32>, u32)>,
    /// Cached online echelon forms for the Main Lemma span systems, keyed
    /// by the session class ids of the retained view classes in pipeline
    /// order (which determine the Definition 29 vectors exactly): tasks
    /// sharing a view pool solve against one shared elimination, each
    /// target only reducing against the rows already built —
    /// see [`DecisionContext::span_solve`].
    span: Mutex<HashMap<Vec<u32>, Arc<SpanEntry>>>,
    frozen_hits: AtomicU64,
    frozen_misses: AtomicU64,
    gate_hits: AtomicU64,
    gate_misses: AtomicU64,
    span_hits: AtomicU64,
    span_misses: AtomicU64,
}

/// One cached span system: the lazily fed incremental echelon form over the
/// retained classes' vectors.  The inner mutex serializes feeding; the
/// entry is shared via `Arc` so the outer map lock is never held during
/// elimination.
struct SpanEntry {
    basis: Mutex<IncrementalBasis>,
}

impl Default for DecisionContext {
    fn default() -> Self {
        DecisionContext::new()
    }
}

impl DecisionContext {
    /// A fresh context with empty caches.
    pub fn new() -> DecisionContext {
        DecisionContext {
            caches: Arc::new(SharedCaches::new()),
            frozen: Mutex::new(HashMap::new()),
            gate: Mutex::new(HashMap::new()),
            classes: Mutex::new((HashMap::new(), 0)),
            span: Mutex::new(HashMap::new()),
            frozen_hits: AtomicU64::new(0),
            frozen_misses: AtomicU64::new(0),
            gate_hits: AtomicU64::new(0),
            gate_misses: AtomicU64::new(0),
            span_hits: AtomicU64::new(0),
            span_misses: AtomicU64::new(0),
        }
    }

    /// The session's hom-count cache handle.  Callers running witness
    /// construction (or any other hom-count-heavy work) on behalf of the
    /// session should wrap it in `cqdet_structure::with_shared_caches` with
    /// this handle so counts are shared across tasks.
    pub fn caches(&self) -> &Arc<SharedCaches> {
        &self.caches
    }

    /// The frozen body of `query` over `schema`, from the session cache.
    ///
    /// Keyed by the literal `(schema, body atoms)` rendering — cheap to
    /// compute and exact: equal keys produce identical frozen bodies.
    /// Distinct alpha-renamings of the same query miss here but still
    /// converge downstream, where everything is keyed by isomorphism class.
    pub fn frozen(&self, schema: &Schema, query: &ConjunctiveQuery) -> Arc<FrozenQuery> {
        let fp = fingerprint(schema, query);
        if let Some(hit) = locked(&self.frozen).get(&fp) {
            self.frozen_hits.fetch_add(1, Ordering::Relaxed);
            return hit.clone();
        }
        self.frozen_misses.fetch_add(1, Ordering::Relaxed);
        // Freeze and canonize outside the lock: concurrent workers freezing
        // the same new view both compute, the first insert wins and both
        // results are identical.
        let (body, _) = query.frozen_body_over(schema);
        let entry = Arc::new(FrozenQuery::new(body));
        fail_point!("session/cache-insert");
        let mut map = locked(&self.frozen);
        if map.len() >= CONTEXT_CACHE_CAP {
            map.clear();
        }
        map.entry(fp).or_insert_with(|| entry.clone()).clone()
    }

    /// The session-wide id of an isomorphism class (interning insert on
    /// first sight).  Ids are monotone and never reused, including across
    /// capacity clears.
    pub fn class_id(&self, key: &IsoClassKey) -> u32 {
        let mut table = locked(&self.classes);
        let (map, next) = &mut *table;
        if map.len() >= CONTEXT_CACHE_CAP && !map.contains_key(key) {
            map.clear();
        }
        *map.entry(key.clone()).or_insert_with(|| {
            let id = *next;
            *next += 1;
            id
        })
    }

    /// The Definition 25 containment gate `q ⊆_set v` (i.e. `hom(v, q) ≠ ∅`
    /// on frozen bodies), cached by the isomorphism classes of both sides.
    pub fn gate(&self, view: &FrozenQuery, query: &FrozenQuery) -> bool {
        match self.gate_gas(view, query, &mut Gas::unlimited()) {
            Ok(answer) => answer,
            // Unlimited gas never expires and has no budget to exhaust.
            Err(stop) => unreachable!("unlimited gas interrupted: {stop}"),
        }
    }

    /// [`DecisionContext::gate`] metered through `gas`: the underlying hom
    /// search charges one step per candidate extension and can stop with a
    /// typed [`Interrupt`] mid-search.  Cache hits are free (the work was
    /// already paid for); only *completed* answers are inserted, so an
    /// interrupted search never poisons the cache with a partial result.
    pub fn gate_gas(
        &self,
        view: &FrozenQuery,
        query: &FrozenQuery,
        gas: &mut Gas,
    ) -> Result<bool, Interrupt> {
        let key = (view.iso_key().clone(), query.iso_key().clone());
        if let Some(&hit) = locked(&self.gate).get(&key) {
            self.gate_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(hit);
        }
        self.gate_misses.fetch_add(1, Ordering::Relaxed);
        let answer = hom_exists_gas(view.body(), query.body(), gas)?;
        fail_point!("session/cache-insert");
        let mut map = locked(&self.gate);
        if map.len() >= CONTEXT_CACHE_CAP {
            map.clear();
        }
        map.insert(key, answer);
        Ok(answer)
    }

    /// Solve the Main Lemma span system `target = Σ αᵢ·vectorsᵢ` against
    /// the session's cached incremental echelon form for this retained
    /// view-class sequence.
    ///
    /// `key` is the sequence of session class ids of the retained classes
    /// in pipeline order — it determines `vectors` exactly (Definition 29
    /// vectors are isomorphism-invariant and the basis prefix order follows
    /// the class order), so a cache hit may reuse every echelon row an
    /// earlier task built.  Vectors are fed lazily with early exit
    /// ([`IncrementalBasis::solve_extend`]): the first task stops
    /// eliminating the moment its target enters the span, later tasks
    /// resume from wherever the basis stands.  Returns coefficients over
    /// `vectors` (zero for never-fed generators) or `None` when the target
    /// is outside the span of all of them.
    pub fn span_solve(&self, key: &[u32], vectors: &[QVec], target: &QVec) -> Option<QVec> {
        match self.span_solve_gas(key, vectors, target, &mut Gas::unlimited()) {
            Ok(answer) => answer,
            // Unlimited gas never expires and has no budget to exhaust.
            Err(stop) => unreachable!("unlimited gas interrupted: {stop}"),
        }
    }

    /// [`DecisionContext::span_solve`] metered through `gas`: the exact and
    /// modular eliminations charge one step per row-operation entry and the
    /// byte ledger for coefficient growth, and can stop with a typed
    /// [`Interrupt`] mid-elimination.  The cached [`IncrementalBasis`] stays
    /// consistent across an interrupt (in-flight row restores are completed
    /// before the error surfaces), so later tasks — including a retry of the
    /// interrupted one — resume from whatever was fully fed.
    pub fn span_solve_gas(
        &self,
        key: &[u32],
        vectors: &[QVec],
        target: &QVec,
        gas: &mut Gas,
    ) -> Result<Option<QVec>, Interrupt> {
        let dim = target.dim();
        let entry = {
            let mut map = locked(&self.span);
            if let Some(entry) = map.get(key) {
                self.span_hits.fetch_add(1, Ordering::Relaxed);
                entry.clone()
            } else {
                self.span_misses.fetch_add(1, Ordering::Relaxed);
                if map.len() >= CONTEXT_CACHE_CAP {
                    map.clear();
                }
                map.entry(key.to_vec())
                    .or_insert_with(|| {
                        Arc::new(SpanEntry {
                            basis: Mutex::new(IncrementalBasis::new(dim)),
                        })
                    })
                    .clone()
            }
        };
        let mut basis = locked(&entry.basis);
        debug_assert_eq!(basis.dim(), dim, "key must determine the basis prefix");
        debug_assert!(basis.len() <= vectors.len());
        let fed = basis.len();
        let Some(alpha) = basis.solve_extend_gas(target, &vectors[fed..], gas)? else {
            return Ok(None);
        };
        let mut out = alpha.0;
        out.resize(vectors.len(), cqdet_linalg::Rat::zero());
        Ok(Some(QVec(out)))
    }

    /// Current cache counters.
    pub fn stats(&self) -> ContextStats {
        ContextStats {
            frozen_hits: self.frozen_hits.load(Ordering::Relaxed),
            frozen_misses: self.frozen_misses.load(Ordering::Relaxed),
            gate_hits: self.gate_hits.load(Ordering::Relaxed),
            gate_misses: self.gate_misses.load(Ordering::Relaxed),
            span_hits: self.span_hits.load(Ordering::Relaxed),
            span_misses: self.span_misses.load(Ordering::Relaxed),
            iso_classes: locked(&self.classes).0.len() as u64,
            hom: self.caches.stats(),
        }
    }
}

/// The frozen-cache key: schema relations plus the body atoms, rendered.
/// Equal fingerprints guarantee identical frozen bodies (freezing is a
/// deterministic function of exactly these inputs).
fn fingerprint(schema: &Schema, query: &ConjunctiveQuery) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(64);
    for (rel, arity) in schema.relations() {
        let _ = write!(out, "{rel}/{arity};");
    }
    out.push('|');
    for atom in query.atoms() {
        let _ = write!(out, "{atom},");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqdet_query::cq::Atom;

    fn edge(name: &str) -> ConjunctiveQuery {
        ConjunctiveQuery::boolean(name, vec![Atom::new("R", &["x", "y"])])
    }

    fn two_path(name: &str) -> ConjunctiveQuery {
        ConjunctiveQuery::boolean(
            name,
            vec![Atom::new("R", &["x", "y"]), Atom::new("R", &["y", "z"])],
        )
    }

    #[test]
    fn frozen_bodies_are_shared_and_counted() {
        let cx = DecisionContext::new();
        let schema = Schema::binary(["R"]);
        let a = cx.frozen(&schema, &edge("v"));
        let b = cx.frozen(&schema, &edge("w"));
        assert!(
            Arc::ptr_eq(&a, &b),
            "same body, different names → one entry"
        );
        let stats = cx.stats();
        assert_eq!((stats.frozen_hits, stats.frozen_misses), (1, 1));
        // A different body misses.
        let c = cx.frozen(&schema, &two_path("p"));
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cx.stats().frozen_misses, 2);
        // Components are computed once and cached on the shared entry.
        assert_eq!(a.components().len(), 1);
        assert_eq!(c.components().len(), 1);
    }

    #[test]
    fn gate_cache_is_isomorphism_invariant() {
        let cx = DecisionContext::new();
        let schema = Schema::binary(["R"]);
        let q = cx.frozen(&schema, &two_path("q"));
        let v1 = cx.frozen(&schema, &edge("v1"));
        // Alpha-renamed copy: different fingerprint, same isomorphism class.
        let v2 = cx.frozen(
            &schema,
            &ConjunctiveQuery::boolean("v2", vec![Atom::new("R", &["a", "b"])]),
        );
        assert!(cx.gate(&v1, &q), "q ⊆_set edge");
        assert!(cx.gate(&v2, &q), "isomorphic view shares the gate entry");
        let stats = cx.stats();
        assert_eq!((stats.gate_hits, stats.gate_misses), (1, 1));
    }

    #[test]
    fn class_ids_are_stable_and_dense() {
        let cx = DecisionContext::new();
        let schema = Schema::binary(["R"]);
        let a = cx.frozen(&schema, &edge("a"));
        let b = cx.frozen(&schema, &two_path("b"));
        let id_a = cx.class_id(a.iso_key());
        let id_b = cx.class_id(b.iso_key());
        assert_ne!(id_a, id_b);
        assert_eq!(cx.class_id(a.iso_key()), id_a);
        assert_eq!(cx.stats().iso_classes, 2);
    }
}
