//! Cross-request state for the Theorem 3 decision pipeline.
//!
//! [`crate::decide_bag_determinacy`] is a one-shot function: every call
//! re-freezes its queries, re-canonizes their components and re-runs every
//! `q ⊆_set v` containment gate, because all of that state dies with the
//! call.  Batch workloads — fleets of `(views, query)` tasks sharing views,
//! schemas and isomorphism classes — want the opposite: compute each
//! isomorphism-invariant quantity **once per session**, not once per task.
//!
//! A [`DecisionContext`] owns exactly that shared state:
//!
//! * a **frozen-query cache** — body structure, isomorphism-class key and
//!   connected components per distinct `(schema, body)` pair, so a view
//!   shared by N tasks is frozen, canonized and decomposed once
//!   ([`FrozenQuery`]);
//! * a **containment-gate cache** keyed by the *isomorphism classes* of the
//!   view and query bodies (Definition 25's `q ⊆_set v` test is
//!   isomorphism-invariant in both arguments), so even textually different
//!   alpha-renamings of a view share one `hom_exists` search per query
//!   class;
//! * a session-wide **iso-class table** assigning stable dense ids to
//!   canonical keys, which the pipeline uses to intern view bodies and
//!   which callers can read for capacity accounting ([`ContextStats`]);
//! * a **span-basis cache** holding one incremental echelon form
//!   ([`cqdet_linalg::IncrementalBasis`]) per retained view-class sequence:
//!   the Main Lemma system's columns are eliminated lazily (early exit once
//!   a target enters the span) and *once per session*, so every later task
//!   over the same view pool only reduces its own target vector
//!   ([`DecisionContext::span_solve`]);
//! * a [`SharedCaches`] handle for the hom-count memo, which callers
//!   install around witness construction so separating-structure searches
//!   and evaluation matrices reuse counts across tasks
//!   (`cqdet_structure::with_shared_caches`).
//!
//! The session-aware entry point is
//! [`crate::boolean::decide_bag_determinacy_in`]; the one-shot function is
//! now a thin wrapper that builds a fresh context per call.  The
//! `cqdet-engine` crate wraps a `DecisionContext` into a full batch engine
//! (task fan-out, JSON certificates, cache-hit statistics).

use cqdet_bigint::{Nat, Sign};
use cqdet_cache::snapshot::{Reader, SnapshotError, Writer};
use cqdet_cache::{CacheUsage, ShardedCache};
use cqdet_failpoint::fail_point;
use cqdet_linalg::{IncrementalBasis, QVec, Rat};
use cqdet_parallel::{Gas, Interrupt};
use cqdet_query::ConjunctiveQuery;
use cqdet_structure::{
    cand_cache_usage, connected_components, hom_exists_gas, set_cand_cache_bytes, IsoClassKey,
    Schema, SharedCaches, Structure,
};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};

/// Lock with poison recovery: every critical section below is a plain map
/// probe/insert/clear that leaves the map consistent even if the holder
/// panicked, so a poisoned lock carries usable data — a serving process must
/// not cascade one worker's panic into every later request.
fn locked<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // Chaos seam: every session lock acquisition can be delayed or panicked
    // (the latter exercising exactly the poison recovery below).
    fail_point!("session/lock");
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A query body frozen over a schema, with its session-cached derived data:
/// the isomorphism-class key (forced at construction, so clones and lookups
/// never re-canonize) and the connected components (computed on first use).
///
/// Handed out as `Arc<FrozenQuery>` by [`DecisionContext::frozen`]; every
/// task of a batch that mentions the same view body holds the same
/// allocation, so the component decomposition and every canonical key is
/// computed once per session.
pub struct FrozenQuery {
    body: Structure,
    key: IsoClassKey,
    comps: OnceLock<Vec<Structure>>,
}

impl FrozenQuery {
    fn new(body: Structure) -> FrozenQuery {
        let key = body.iso_class_key();
        FrozenQuery {
            body,
            key,
            comps: OnceLock::new(),
        }
    }

    /// The frozen body structure.
    pub fn body(&self) -> &Structure {
        &self.body
    }

    /// The isomorphism-class key of the body (precomputed).
    pub fn iso_key(&self) -> &IsoClassKey {
        &self.key
    }

    /// The connected components of the body (Definition 27's raw material),
    /// computed once and cached for the lifetime of the session.
    pub fn components(&self) -> &[Structure] {
        self.comps.get_or_init(|| connected_components(&self.body))
    }
}

/// Hit/miss counters of a [`DecisionContext`] (see [`DecisionContext::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ContextStats {
    /// Frozen-query cache hits (a task reused a body frozen by an earlier
    /// task of the session).
    pub frozen_hits: u64,
    /// Frozen-query cache misses (the body was frozen and canonized fresh).
    pub frozen_misses: u64,
    /// Containment-gate cache hits (`q ⊆_set v` answered without a search).
    pub gate_hits: u64,
    /// Containment-gate cache misses (one `hom_exists` search ran).
    pub gate_misses: u64,
    /// Span-basis cache hits: the Main Lemma system reused an incremental
    /// echelon form built (possibly partially) by an earlier task over the
    /// same retained view-class sequence — no shared column was
    /// re-eliminated.
    pub span_hits: u64,
    /// Span-basis cache misses (a fresh [`IncrementalBasis`] was started).
    pub span_misses: u64,
    /// Number of distinct isomorphism classes interned in the session table.
    pub iso_classes: u64,
    /// Hom-count memo statistics of the session's [`SharedCaches`] handle.
    pub hom: cqdet_structure::CacheStats,
    /// Full governed-cache counters of the frozen-body cache.
    pub frozen_usage: CacheUsage,
    /// Full governed-cache counters of the containment-gate cache.
    pub gate_usage: CacheUsage,
    /// Full governed-cache counters of the span-basis cache.
    pub span_usage: CacheUsage,
    /// Full governed-cache counters of the hom-count memo.
    pub hom_usage: CacheUsage,
    /// Family-wide counters of the per-structure candidate memos.
    pub cand_usage: CacheUsage,
    /// Process-wide total bytes charged by every governed cache.
    pub governed_bytes: u64,
}

/// Bound on the class-interning table.  When the table fills, it is cleared
/// wholesale (the monotone id counter survives, so an id is never reused
/// for a different class) — interning entries are two pointers each, so a
/// count cap is accurate here, unlike the byte-weighed value caches below.
const CONTEXT_CACHE_CAP: usize = 8192;

/// Default byte budgets of the context's governed caches, in force until a
/// serve-level `--cache-bytes` total retargets them
/// ([`DecisionContext::set_cache_bytes`]).  Generous enough that tests and
/// one-shot runs never evict; bounded so a long-lived session fed a stream
/// of ever-new queries cannot leak.
const FROZEN_DEFAULT_BYTES: usize = 16 << 20;
const GATE_DEFAULT_BYTES: usize = 16 << 20;
const SPAN_DEFAULT_BYTES: usize = 64 << 20;
const HOM_DEFAULT_BYTES: usize = 64 << 20;
const CAND_DEFAULT_BYTES: usize = 16 << 20;

/// How a serve-level `--cache-bytes` total is split across the five
/// governed caches, in percent: hom and span carry the expensive entries
/// (backtracking searches, bigint echelon rows), the rest are cheap to
/// recompute.
const SPLIT_HOM: u64 = 40;
const SPLIT_SPAN: u64 = 30;
const SPLIT_FROZEN: u64 = 10;
const SPLIT_GATE: u64 = 10;
const SPLIT_CAND: u64 = 10;

/// Approximate byte cost of one frozen body: the fingerprint key plus a
/// fixed estimate of the structure, key and component storage (bodies are
/// query-sized by construction — a handful of atoms).
#[allow(clippy::ptr_arg)] // must match the cache's `fn(&K, &V)` weigher type
fn frozen_weight(key: &String, _v: &Arc<FrozenQuery>) -> usize {
    key.len() + 512
}

/// Byte cost of one gate verdict: two `Arc` key handles plus map-entry
/// bookkeeping (the canonical keys themselves are shared with the frozen
/// cache, so charging them here would double-count).
fn gate_weight(_k: &(IsoClassKey, IsoClassKey), _v: &bool) -> usize {
    96
}

/// Byte cost of one span system: the key, the entry bookkeeping, and the
/// basis' true heap bytes as last published to [`SpanEntry::bytes`] (kept
/// fresh by a `recharge` after every solve, without the weigher ever
/// touching the basis lock).
#[allow(clippy::ptr_arg)] // must match the cache's `fn(&K, &V)` weigher type
fn span_weight(key: &Vec<u32>, entry: &Arc<SpanEntry>) -> usize {
    key.len() * 4 + entry.bytes.load(Ordering::Relaxed) + 96
}

/// Cross-request caches for [`crate::boolean::decide_bag_determinacy_in`]:
/// see the [module docs](self) for what is shared and why.  All interior
/// state is lock-protected, so one context can serve a scoped fan-out of
/// tasks (`&DecisionContext` is `Sync`).  The value caches (frozen bodies,
/// gate verdicts, span systems, hom counts) are governed
/// [`ShardedCache`]s — byte-capped, clock-evicting, never refusing — and
/// the interning class table is bounded by [`CONTEXT_CACHE_CAP`].
pub struct DecisionContext {
    caches: Arc<SharedCaches>,
    frozen: ShardedCache<String, Arc<FrozenQuery>>,
    // The `OnceLock`-cached canonical key behind `IsoClassKey` is forced at
    // construction and immutable afterwards, so the interior-mutability
    // clippy lint does not apply (same reasoning as in `cqdet_structure::iso`).
    #[allow(clippy::mutable_key_type)]
    gate: ShardedCache<(IsoClassKey, IsoClassKey), bool>,
    /// Gate verdicts restored from a warm-start snapshot, keyed by the
    /// concatenated canonical bytes of both classes ([`pair_key`]).
    /// Consulted only on a gate-cache miss; a hit is promoted into the
    /// live cache, so a preloaded verdict costs its one map probe once.
    gate_preload: Mutex<HashMap<Box<[u8]>, bool>>,
    /// Class table plus the next id to hand out.  The counter is monotone —
    /// it survives a capacity clear, so an id is never reused for a
    /// different class (a reused id could alias two distinct classes inside
    /// one in-flight call; a class holding two ids merely duplicates a span
    /// column).
    #[allow(clippy::mutable_key_type)]
    classes: Mutex<(HashMap<IsoClassKey, u32>, u32)>,
    /// Class ids restored from a warm-start snapshot, keyed by canonical
    /// bytes: [`DecisionContext::class_id`] honors these on first sight, so
    /// the ids the snapshot's span keys were built from stay valid in this
    /// process.
    preassigned: Mutex<HashMap<Box<[u8]>, u32>>,
    /// Cached online echelon forms for the Main Lemma span systems, keyed
    /// by the session class ids of the retained view classes in pipeline
    /// order (which determine the Definition 29 vectors exactly): tasks
    /// sharing a view pool solve against one shared elimination, each
    /// target only reducing against the rows already built —
    /// see [`DecisionContext::span_solve`].
    span: ShardedCache<Vec<u32>, Arc<SpanEntry>>,
}

/// One cached span system: the lazily fed incremental echelon form over the
/// retained classes' vectors.  The inner mutex serializes feeding; the
/// entry is shared via `Arc` so no cache shard lock is ever held during
/// elimination.  `bytes` is the basis' heap footprint as of the last solve,
/// published *after* releasing the basis lock so the cache weigher
/// ([`span_weight`]) reads an atomic instead of contending on the basis.
struct SpanEntry {
    basis: Mutex<IncrementalBasis>,
    bytes: AtomicUsize,
}

impl Default for DecisionContext {
    fn default() -> Self {
        DecisionContext::new()
    }
}

impl DecisionContext {
    /// A fresh context with empty caches under the default byte budgets.
    pub fn new() -> DecisionContext {
        DecisionContext {
            caches: Arc::new(SharedCaches::new()),
            frozen: ShardedCache::new(FROZEN_DEFAULT_BYTES, frozen_weight),
            gate: ShardedCache::new(GATE_DEFAULT_BYTES, gate_weight),
            gate_preload: Mutex::new(HashMap::new()),
            classes: Mutex::new((HashMap::new(), 0)),
            preassigned: Mutex::new(HashMap::new()),
            span: ShardedCache::new(SPAN_DEFAULT_BYTES, span_weight),
        }
    }

    /// A fresh context whose five governed caches split `total` bytes
    /// ([`SPLIT_HOM`] et al.); `None` keeps the defaults.
    pub fn with_cache_bytes(total: Option<u64>) -> DecisionContext {
        let cx = DecisionContext::new();
        cx.set_cache_bytes(total);
        cx
    }

    /// Retarget every governed cache live: `Some(total)` splits the budget
    /// across the five caches and arms the process watermark at `total`;
    /// `None` restores the defaults and disarms the watermark.  Over-budget
    /// caches evict immediately.
    pub fn set_cache_bytes(&self, total: Option<u64>) {
        match total {
            Some(total) => {
                let part = |pct: u64| ((total * pct / 100) as usize).max(4096);
                self.caches.set_cap_bytes(part(SPLIT_HOM));
                self.span.set_cap(part(SPLIT_SPAN));
                self.frozen.set_cap(part(SPLIT_FROZEN));
                self.gate.set_cap(part(SPLIT_GATE));
                set_cand_cache_bytes(part(SPLIT_CAND));
                cqdet_cache::set_watermark(total);
            }
            None => {
                self.caches.set_cap_bytes(HOM_DEFAULT_BYTES);
                self.span.set_cap(SPAN_DEFAULT_BYTES);
                self.frozen.set_cap(FROZEN_DEFAULT_BYTES);
                self.gate.set_cap(GATE_DEFAULT_BYTES);
                set_cand_cache_bytes(CAND_DEFAULT_BYTES);
                cqdet_cache::set_watermark(0);
            }
        }
    }

    /// The session's hom-count cache handle.  Callers running witness
    /// construction (or any other hom-count-heavy work) on behalf of the
    /// session should wrap it in `cqdet_structure::with_shared_caches` with
    /// this handle so counts are shared across tasks.
    pub fn caches(&self) -> &Arc<SharedCaches> {
        &self.caches
    }

    /// The frozen body of `query` over `schema`, from the session cache.
    ///
    /// Keyed by the literal `(schema, body atoms)` rendering — cheap to
    /// compute and exact: equal keys produce identical frozen bodies.
    /// Distinct alpha-renamings of the same query miss here but still
    /// converge downstream, where everything is keyed by isomorphism class.
    pub fn frozen(&self, schema: &Schema, query: &ConjunctiveQuery) -> Arc<FrozenQuery> {
        let fp = fingerprint(schema, query);
        if let Some(hit) = self.frozen.probe(&fp) {
            return hit;
        }
        // Freeze and canonize outside any shard lock: concurrent workers
        // freezing the same new view both compute, the first insert wins
        // and both results are identical.
        let (body, _) = query.frozen_body_over(schema);
        let entry = Arc::new(FrozenQuery::new(body));
        fail_point!("session/cache-insert");
        self.frozen.insert_or_get(fp, entry)
    }

    /// The session-wide id of an isomorphism class (interning insert on
    /// first sight, honoring a snapshot-preassigned id if one exists).  Ids
    /// are monotone and never reused, including across capacity clears.
    pub fn class_id(&self, key: &IsoClassKey) -> u32 {
        let mut table = locked(&self.classes);
        let (map, next) = &mut *table;
        if map.len() >= CONTEXT_CACHE_CAP && !map.contains_key(key) {
            map.clear();
        }
        if let Some(&id) = map.get(key) {
            return id;
        }
        // A warm-started session re-interns a snapshot class under the id
        // its span keys were built from; `next` was advanced past every
        // preassigned id at install time, so monotonicity holds.
        let preassigned = locked(&self.preassigned).get(key.canon_bytes()).copied();
        let id = preassigned.unwrap_or_else(|| {
            let id = *next;
            *next += 1;
            id
        });
        map.insert(key.clone(), id);
        id
    }

    /// The Definition 25 containment gate `q ⊆_set v` (i.e. `hom(v, q) ≠ ∅`
    /// on frozen bodies), cached by the isomorphism classes of both sides.
    pub fn gate(&self, view: &FrozenQuery, query: &FrozenQuery) -> bool {
        match self.gate_gas(view, query, &mut Gas::unlimited()) {
            Ok(answer) => answer,
            // Unlimited gas never expires and has no budget to exhaust.
            Err(stop) => unreachable!("unlimited gas interrupted: {stop}"),
        }
    }

    /// [`DecisionContext::gate`] metered through `gas`: the underlying hom
    /// search charges one step per candidate extension and can stop with a
    /// typed [`Interrupt`] mid-search.  Cache hits are free (the work was
    /// already paid for); only *completed* answers are inserted, so an
    /// interrupted search never poisons the cache with a partial result.
    pub fn gate_gas(
        &self,
        view: &FrozenQuery,
        query: &FrozenQuery,
        gas: &mut Gas,
    ) -> Result<bool, Interrupt> {
        let key = (view.iso_key().clone(), query.iso_key().clone());
        if let Some(hit) = self.gate.probe(&key) {
            return Ok(hit);
        }
        // A warm-started session answers the miss from the snapshot's
        // verdicts (promoting the entry into the live cache) before paying
        // for a search.  The preload map is empty outside warm starts, so
        // the cold path costs one `is_empty` check.
        {
            let preload = locked(&self.gate_preload);
            if !preload.is_empty() {
                let pk = pair_key(view.iso_key().canon_bytes(), query.iso_key().canon_bytes());
                if let Some(&answer) = preload.get(&pk) {
                    drop(preload);
                    fail_point!("session/cache-insert");
                    return Ok(self.gate.insert_or_get(key, answer));
                }
            }
        }
        let answer = hom_exists_gas(view.body(), query.body(), gas)?;
        fail_point!("session/cache-insert");
        Ok(self.gate.insert_or_get(key, answer))
    }

    /// Solve the Main Lemma span system `target = Σ αᵢ·vectorsᵢ` against
    /// the session's cached incremental echelon form for this retained
    /// view-class sequence.
    ///
    /// `key` is the sequence of session class ids of the retained classes
    /// in pipeline order — it determines `vectors` exactly (Definition 29
    /// vectors are isomorphism-invariant and the basis prefix order follows
    /// the class order), so a cache hit may reuse every echelon row an
    /// earlier task built.  Vectors are fed lazily with early exit
    /// ([`IncrementalBasis::solve_extend`]): the first task stops
    /// eliminating the moment its target enters the span, later tasks
    /// resume from wherever the basis stands.  Returns coefficients over
    /// `vectors` (zero for never-fed generators) or `None` when the target
    /// is outside the span of all of them.
    pub fn span_solve(&self, key: &[u32], vectors: &[QVec], target: &QVec) -> Option<QVec> {
        match self.span_solve_gas(key, vectors, target, &mut Gas::unlimited()) {
            Ok(answer) => answer,
            // Unlimited gas never expires and has no budget to exhaust.
            Err(stop) => unreachable!("unlimited gas interrupted: {stop}"),
        }
    }

    /// [`DecisionContext::span_solve`] metered through `gas`: the exact and
    /// modular eliminations charge one step per row-operation entry and the
    /// byte ledger for coefficient growth, and can stop with a typed
    /// [`Interrupt`] mid-elimination.  The cached [`IncrementalBasis`] stays
    /// consistent across an interrupt (in-flight row restores are completed
    /// before the error surfaces), so later tasks — including a retry of the
    /// interrupted one — resume from whatever was fully fed.
    pub fn span_solve_gas(
        &self,
        key: &[u32],
        vectors: &[QVec],
        target: &QVec,
        gas: &mut Gas,
    ) -> Result<Option<QVec>, Interrupt> {
        let dim = target.dim();
        let entry = match self.span.probe(key) {
            Some(entry) => entry,
            None => self.span.insert_or_get(
                key.to_vec(),
                Arc::new(SpanEntry {
                    basis: Mutex::new(IncrementalBasis::new(dim)),
                    bytes: AtomicUsize::new(0),
                }),
            ),
        };
        let mut basis = locked(&entry.basis);
        debug_assert_eq!(basis.dim(), dim, "key must determine the basis prefix");
        debug_assert!(basis.len() <= vectors.len());
        let fed = basis.len();
        let solved = basis.solve_extend_gas(target, &vectors[fed..], gas);
        // Publish the basis' grown footprint and re-weigh the cache entry —
        // even on an interrupt, whose partial feeding also grew the rows.
        // The shard lock is taken only after the basis lock is released.
        entry.bytes.store(basis.heap_bytes(), Ordering::Relaxed);
        drop(basis);
        self.span.recharge(&key.to_vec());
        let Some(alpha) = solved? else {
            return Ok(None);
        };
        let mut out = alpha.0;
        out.resize(vectors.len(), cqdet_linalg::Rat::zero());
        Ok(Some(QVec(out)))
    }

    /// Current cache counters.
    pub fn stats(&self) -> ContextStats {
        let frozen = self.frozen.stats();
        let gate = self.gate.stats();
        let span = self.span.stats();
        ContextStats {
            frozen_hits: frozen.hits,
            frozen_misses: frozen.misses,
            gate_hits: gate.hits,
            gate_misses: gate.misses,
            span_hits: span.hits,
            span_misses: span.misses,
            iso_classes: locked(&self.classes).0.len() as u64,
            hom: self.caches.stats(),
            frozen_usage: frozen,
            gate_usage: gate,
            span_usage: span,
            hom_usage: self.caches.usage(),
            cand_usage: cand_cache_usage(),
            governed_bytes: cqdet_cache::governed_bytes(),
        }
    }
}

/// Concatenated pair key `[u32 LE first length][first][second]` for the
/// gate-preload map (tuple keys cannot be probed with borrowed parts).
fn pair_key(first: &[u8], second: &[u8]) -> Box<[u8]> {
    let mut key = Vec::with_capacity(4 + first.len() + second.len());
    key.extend_from_slice(&(first.len() as u32).to_le_bytes());
    key.extend_from_slice(first);
    key.extend_from_slice(second);
    key.into_boxed_slice()
}

/// Split a [`pair_key`] back apart; `None` on a malformed prefix.
fn split_pair_key(key: &[u8]) -> Option<(&[u8], &[u8])> {
    let first_len = u32::from_le_bytes(key.get(..4)?.try_into().ok()?) as usize;
    let rest = key.get(4..)?;
    if first_len > rest.len() {
        return None;
    }
    Some(rest.split_at(first_len))
}

// ---- warm-start snapshot ---------------------------------------------------

/// The warm-startable portion of a session's caches: canonical class ids,
/// gate verdicts, hom counts and span echelon forms — everything that is
/// expensive to recompute, deterministic, and keyed by process-independent
/// canonical bytes (span keys become process-independent through the
/// persisted class table).  Frozen bodies and candidate lists are cheap to
/// rebuild and are deliberately *not* persisted.
///
/// Produced by [`DecisionContext::export_snapshot`], restored by
/// [`DecisionContext::install_snapshot`]; the byte codec
/// ([`SessionSnapshot::to_payload`] / [`SessionSnapshot::from_payload`])
/// emits the payload the `cqdet-cache` envelope seals on disk.
#[derive(Default)]
pub struct SessionSnapshot {
    /// `(canonical bytes, session id)` per interned isomorphism class.
    pub classes: Vec<(Box<[u8]>, u32)>,
    /// The id counter to resume from (past every persisted id).
    pub next_class_id: u32,
    /// `(view canon, query canon, verdict)` per cached containment gate.
    #[allow(clippy::type_complexity)]
    pub gate: Vec<(Box<[u8]>, Box<[u8]>, bool)>,
    /// `(target canon, source canon, count)` per memoized hom count.
    #[allow(clippy::type_complexity)]
    pub hom: Vec<(Box<[u8]>, Box<[u8]>, Nat)>,
    /// `(key, dim, inserted, rows)` per cached span system, rows as
    /// exported by [`IncrementalBasis::export_rows`].
    #[allow(clippy::type_complexity)]
    pub span: Vec<(Vec<u32>, usize, usize, Vec<(usize, QVec, Vec<Rat>)>)>,
}

/// Sanity bounds on snapshot payload counts: a checksum-valid file from a
/// buggy (or hostile) writer must not trigger huge allocations.
const SNAP_MAX_ENTRIES: u64 = 1 << 22;
const SNAP_MAX_DIM: u64 = 1 << 20;

impl SessionSnapshot {
    /// Total entries across all sections (observability; zero means a cold
    /// snapshot not worth writing).
    pub fn len(&self) -> usize {
        self.classes.len() + self.gate.len() + self.hom.len() + self.span.len()
    }

    /// Whether the snapshot carries nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Serialize to the envelope payload (see `cqdet_cache::snapshot`).
    pub fn to_payload(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u64(self.classes.len() as u64);
        for (canon, id) in &self.classes {
            w.bytes(canon);
            w.u32(*id);
        }
        w.u32(self.next_class_id);
        w.u64(self.gate.len() as u64);
        for (view, query, verdict) in &self.gate {
            w.bytes(view);
            w.bytes(query);
            w.u8(u8::from(*verdict));
        }
        w.u64(self.hom.len() as u64);
        for (tgt, src, count) in &self.hom {
            w.bytes(tgt);
            w.bytes(src);
            write_nat(&mut w, count);
        }
        w.u64(self.span.len() as u64);
        for (key, dim, inserted, rows) in &self.span {
            w.u64(key.len() as u64);
            for id in key {
                w.u32(*id);
            }
            w.u64(*dim as u64);
            w.u64(*inserted as u64);
            w.u64(rows.len() as u64);
            for (pivot, vec, coords) in rows {
                w.u64(*pivot as u64);
                for r in vec.iter() {
                    write_rat(&mut w, r);
                }
                w.u64(coords.len() as u64);
                for r in coords {
                    write_rat(&mut w, r);
                }
            }
        }
        w.finish()
    }

    /// Parse an envelope payload.  Every read is bounds-checked and every
    /// count is sanity-limited; structural validation of the span rows
    /// happens later, in [`DecisionContext::install_snapshot`].
    pub fn from_payload(payload: &[u8]) -> Result<SessionSnapshot, SnapshotError> {
        let mut r = Reader::new(payload);
        let mut snap = SessionSnapshot::default();
        for _ in 0..r.count(SNAP_MAX_ENTRIES)? {
            let canon = r.bytes()?.into();
            let id = r.u32()?;
            snap.classes.push((canon, id));
        }
        snap.next_class_id = r.u32()?;
        for _ in 0..r.count(SNAP_MAX_ENTRIES)? {
            let view = r.bytes()?.into();
            let query = r.bytes()?.into();
            let verdict = match r.u8()? {
                0 => false,
                1 => true,
                other => {
                    return Err(SnapshotError::Malformed(format!(
                        "gate verdict byte {other}"
                    )))
                }
            };
            snap.gate.push((view, query, verdict));
        }
        for _ in 0..r.count(SNAP_MAX_ENTRIES)? {
            let tgt = r.bytes()?.into();
            let src = r.bytes()?.into();
            let count = read_nat(&mut r)?;
            snap.hom.push((tgt, src, count));
        }
        for _ in 0..r.count(SNAP_MAX_ENTRIES)? {
            let key_len = r.count(SNAP_MAX_ENTRIES)?;
            let mut key = Vec::with_capacity(key_len);
            for _ in 0..key_len {
                key.push(r.u32()?);
            }
            let dim = r.count(SNAP_MAX_DIM)?;
            let inserted = r.count(SNAP_MAX_ENTRIES)?;
            let n_rows = r.count(SNAP_MAX_DIM)?;
            let mut rows = Vec::with_capacity(n_rows);
            for _ in 0..n_rows {
                let pivot = r.count(SNAP_MAX_DIM)?;
                let mut vec = Vec::with_capacity(dim);
                for _ in 0..dim {
                    vec.push(read_rat(&mut r)?);
                }
                let coords_len = r.count(SNAP_MAX_ENTRIES)?;
                let mut coords = Vec::with_capacity(coords_len);
                for _ in 0..coords_len {
                    coords.push(read_rat(&mut r)?);
                }
                rows.push((pivot, QVec(vec), coords));
            }
            snap.span.push((key, dim, inserted, rows));
        }
        if !r.is_exhausted() {
            return Err(SnapshotError::Truncated);
        }
        Ok(snap)
    }
}

/// Nat codec: `u64` limb count then little-endian `u32` limbs.
fn write_nat(w: &mut Writer, n: &Nat) {
    let limbs = n.to_limbs();
    w.u64(limbs.len() as u64);
    for limb in limbs {
        w.u32(limb);
    }
}

fn read_nat(r: &mut Reader<'_>) -> Result<Nat, SnapshotError> {
    let n = r.count(SNAP_MAX_ENTRIES)?;
    let mut limbs = Vec::with_capacity(n);
    for _ in 0..n {
        limbs.push(r.u32()?);
    }
    Ok(Nat::from_limbs(limbs))
}

/// Rat codec: `i8` sign, numerator magnitude, denominator (both as Nats).
/// Decoding re-reduces through `Rat::new`, so even a checksum-valid payload
/// with a non-reduced fraction reconstructs a canonical value.
fn write_rat(w: &mut Writer, r: &Rat) {
    let sign: i8 = match r.numer().sign() {
        Sign::Negative => -1,
        Sign::Zero => 0,
        Sign::Positive => 1,
    };
    w.u8(sign as u8);
    write_nat(w, r.numer().magnitude());
    write_nat(w, r.denom());
}

fn read_rat(r: &mut Reader<'_>) -> Result<Rat, SnapshotError> {
    let sign = match r.u8()? as i8 {
        -1 => Sign::Negative,
        0 => Sign::Zero,
        1 => Sign::Positive,
        other => {
            return Err(SnapshotError::Malformed(format!("rat sign byte {other}")));
        }
    };
    let num = read_nat(r)?;
    let den = read_nat(r)?;
    if den.is_zero() {
        return Err(SnapshotError::Malformed("zero denominator".into()));
    }
    if (sign == Sign::Zero) != num.is_zero() {
        return Err(SnapshotError::Malformed("sign/magnitude mismatch".into()));
    }
    Ok(Rat::new(
        cqdet_bigint::Int::from_sign_mag(sign, num),
        cqdet_bigint::Int::from_nat(den),
    ))
}

impl DecisionContext {
    /// Export the warm-startable caches (see [`SessionSnapshot`]).  Runs
    /// concurrently with traffic — each shard is visited under its own
    /// lock, so the result is a consistent-per-entry, possibly
    /// non-atomic-across-caches view, which is all a warm start needs.
    pub fn export_snapshot(&self) -> SessionSnapshot {
        let mut snap = SessionSnapshot::default();
        {
            let table = locked(&self.classes);
            snap.next_class_id = table.1;
            for (key, id) in table.0.iter() {
                snap.classes.push((key.canon_bytes().into(), *id));
            }
        }
        // Preassigned ids not (yet) re-interned this session are still
        // live identities for the persisted span keys — carry them over.
        for (canon, id) in locked(&self.preassigned).iter() {
            if !snap.classes.iter().any(|(c, _)| c == canon) {
                snap.classes.push((canon.clone(), *id));
            }
        }
        self.gate.for_each(|(view, query), verdict| {
            snap.gate.push((
                view.canon_bytes().into(),
                query.canon_bytes().into(),
                *verdict,
            ));
        });
        for (pk, verdict) in locked(&self.gate_preload).iter() {
            if let Some((view, query)) = split_pair_key(pk) {
                snap.gate.push((view.into(), query.into(), *verdict));
            }
        }
        self.caches.export_counts(|tgt, src, count| {
            snap.hom.push((tgt.into(), src.into(), count.clone()));
        });
        self.span.for_each(|key, entry| {
            let basis = locked(&entry.basis);
            snap.span
                .push((key.clone(), basis.dim(), basis.len(), basis.export_rows()));
        });
        snap
    }

    /// Install a warm-start snapshot into this (typically fresh) context.
    /// Structurally invalid span entries are dropped individually — the
    /// checksum already vouches for transport integrity, and a dropped
    /// entry merely cold-starts that one key.  Returns the number of
    /// entries installed.
    pub fn install_snapshot(&self, snap: SessionSnapshot) -> usize {
        let mut installed = 0usize;
        {
            let mut preassigned = locked(&self.preassigned);
            let mut table = locked(&self.classes);
            for (canon, id) in snap.classes {
                table.1 = table.1.max(id.saturating_add(1));
                preassigned.insert(canon, id);
                installed += 1;
            }
            table.1 = table.1.max(snap.next_class_id);
        }
        {
            let mut preload = locked(&self.gate_preload);
            for (view, query, verdict) in snap.gate {
                preload.insert(pair_key(&view, &query), verdict);
                installed += 1;
            }
        }
        for (tgt, src, count) in snap.hom {
            self.caches.preload_count(&tgt, &src, count);
            installed += 1;
        }
        for (key, dim, inserted, rows) in snap.span {
            if let Some(basis) = IncrementalBasis::from_parts(dim, inserted, rows) {
                let bytes = basis.heap_bytes();
                self.span.insert_or_get(
                    key,
                    Arc::new(SpanEntry {
                        basis: Mutex::new(basis),
                        bytes: AtomicUsize::new(bytes),
                    }),
                );
                installed += 1;
            }
        }
        installed
    }
}

/// The frozen-cache key: schema relations plus the body atoms, rendered.
/// Equal fingerprints guarantee identical frozen bodies (freezing is a
/// deterministic function of exactly these inputs).
fn fingerprint(schema: &Schema, query: &ConjunctiveQuery) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(64);
    for (rel, arity) in schema.relations() {
        let _ = write!(out, "{rel}/{arity};");
    }
    out.push('|');
    for atom in query.atoms() {
        let _ = write!(out, "{atom},");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqdet_query::cq::Atom;

    fn edge(name: &str) -> ConjunctiveQuery {
        ConjunctiveQuery::boolean(name, vec![Atom::new("R", &["x", "y"])])
    }

    fn two_path(name: &str) -> ConjunctiveQuery {
        ConjunctiveQuery::boolean(
            name,
            vec![Atom::new("R", &["x", "y"]), Atom::new("R", &["y", "z"])],
        )
    }

    #[test]
    fn frozen_bodies_are_shared_and_counted() {
        let cx = DecisionContext::new();
        let schema = Schema::binary(["R"]);
        let a = cx.frozen(&schema, &edge("v"));
        let b = cx.frozen(&schema, &edge("w"));
        assert!(
            Arc::ptr_eq(&a, &b),
            "same body, different names → one entry"
        );
        let stats = cx.stats();
        assert_eq!((stats.frozen_hits, stats.frozen_misses), (1, 1));
        // A different body misses.
        let c = cx.frozen(&schema, &two_path("p"));
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cx.stats().frozen_misses, 2);
        // Components are computed once and cached on the shared entry.
        assert_eq!(a.components().len(), 1);
        assert_eq!(c.components().len(), 1);
    }

    #[test]
    fn gate_cache_is_isomorphism_invariant() {
        let cx = DecisionContext::new();
        let schema = Schema::binary(["R"]);
        let q = cx.frozen(&schema, &two_path("q"));
        let v1 = cx.frozen(&schema, &edge("v1"));
        // Alpha-renamed copy: different fingerprint, same isomorphism class.
        let v2 = cx.frozen(
            &schema,
            &ConjunctiveQuery::boolean("v2", vec![Atom::new("R", &["a", "b"])]),
        );
        assert!(cx.gate(&v1, &q), "q ⊆_set edge");
        assert!(cx.gate(&v2, &q), "isomorphic view shares the gate entry");
        let stats = cx.stats();
        assert_eq!((stats.gate_hits, stats.gate_misses), (1, 1));
    }

    #[test]
    fn class_ids_are_stable_and_dense() {
        let cx = DecisionContext::new();
        let schema = Schema::binary(["R"]);
        let a = cx.frozen(&schema, &edge("a"));
        let b = cx.frozen(&schema, &two_path("b"));
        let id_a = cx.class_id(a.iso_key());
        let id_b = cx.class_id(b.iso_key());
        assert_ne!(id_a, id_b);
        assert_eq!(cx.class_id(a.iso_key()), id_a);
        assert_eq!(cx.stats().iso_classes, 2);
    }

    /// A context with some of everything in its caches.
    fn populated_context() -> (DecisionContext, Schema) {
        let cx = DecisionContext::new();
        let schema = Schema::binary(["R"]);
        let q = cx.frozen(&schema, &two_path("q"));
        let v = cx.frozen(&schema, &edge("v"));
        assert!(cx.gate(&v, &q));
        let id = cx.class_id(v.iso_key());
        cx.caches().hom_count(v.body(), q.body());
        let vectors = [
            QVec::from_i64s(&[1, 0, 2]),
            QVec::from_i64s(&[0, 1, 1]),
            QVec::from_i64s(&[1, 1, 3]),
        ];
        assert!(cx
            .span_solve(&[id, id + 1], &vectors, &QVec::from_i64s(&[1, 1, 3]))
            .is_some());
        (cx, schema)
    }

    #[test]
    fn snapshot_round_trip_restores_every_section() {
        let (cx, schema) = populated_context();
        let snap = cx.export_snapshot();
        assert!(!snap.is_empty());
        assert!(!snap.classes.is_empty() && !snap.gate.is_empty());
        assert!(!snap.hom.is_empty() && !snap.span.is_empty());
        let payload = snap.to_payload();
        let decoded = SessionSnapshot::from_payload(&payload).expect("round trip");
        let fresh = DecisionContext::new();
        let installed = fresh.install_snapshot(decoded);
        assert_eq!(installed, snap.len(), "every entry installs");
        // Gate verdict answered from the preload — no hom search runs.
        let q = fresh.frozen(&schema, &two_path("q"));
        let v = fresh.frozen(&schema, &edge("v"));
        assert!(fresh.gate(&v, &q));
        // Class ids restored verbatim: span keys from the snapshot stay valid.
        assert_eq!(fresh.class_id(v.iso_key()), cx.class_id(v.iso_key()));
        // The restored span basis is a cache hit and already spans the old
        // target, so the solve resumes past every previously fed generator.
        let id = fresh.class_id(v.iso_key());
        let vectors = [
            QVec::from_i64s(&[1, 0, 2]),
            QVec::from_i64s(&[0, 1, 1]),
            QVec::from_i64s(&[1, 1, 3]),
        ];
        let restored = fresh.span_solve(&[id, id + 1], &vectors, &QVec::from_i64s(&[1, 1, 3]));
        assert!(restored.is_some(), "restored echelon spans the old target");
        assert_eq!(fresh.stats().span_hits, 1);
    }

    #[test]
    fn corrupted_snapshot_payload_never_panics() {
        let (cx, _) = populated_context();
        let payload = cx.export_snapshot().to_payload();
        // Truncations at every boundary parse to a typed error, not a panic.
        for len in 0..payload.len() {
            assert!(SessionSnapshot::from_payload(&payload[..len]).is_err());
        }
        // Byte flips either fail to parse or decode to installable-or-
        // droppable data; install must not panic either way.
        for i in (0..payload.len()).step_by(7) {
            let mut bad = payload.clone();
            bad[i] ^= 0x55;
            if let Ok(snap) = SessionSnapshot::from_payload(&bad) {
                DecisionContext::new().install_snapshot(snap);
            }
        }
    }

    #[test]
    fn tiny_cache_caps_degrade_without_wrong_answers() {
        let capped = DecisionContext::with_cache_bytes(Some(8192));
        let uncapped = DecisionContext::new();
        let schema = Schema::binary(["R"]);
        for i in 0..50 {
            let q = ConjunctiveQuery::boolean(
                "q",
                vec![
                    Atom::new("R", &[format!("x{i}").as_str(), "y"]),
                    Atom::new("R", &["y", "z"]),
                ],
            );
            let fq_c = capped.frozen(&schema, &q);
            let fq_u = uncapped.frozen(&schema, &q);
            let v_c = capped.frozen(&schema, &edge("v"));
            let v_u = uncapped.frozen(&schema, &edge("v"));
            assert_eq!(capped.gate(&v_c, &fq_c), uncapped.gate(&v_u, &fq_u));
        }
        capped.set_cache_bytes(None);
    }
}
