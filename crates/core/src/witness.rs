//! Constructive non-determinacy witnesses (Sections 5–7 of the paper).
//!
//! When the Main Lemma's span test fails (`q⃗ ∉ span{v⃗ : v ∈ V}`), the paper
//! does not merely conclude `V₀ ⟶̸_bag q` — it *builds* a counterexample pair
//! `D, D′` with `v(D) = v(D′)` for every `v ∈ V₀` and `q(D) ≠ q(D′)`.  This
//! module follows that construction step by step:
//!
//! 1. **Good basis `S`** (Lemma 40, Section 6): separating structures for every
//!    pair of basis queries (Lemma 43), combined radix-`T` (Step 2), raised to
//!    powers `0..k-1` (Step 3, nonsingular by the Vandermonde Lemma 46) and
//!    multiplied by `q` (Step 4, which makes `S` *decent*).
//! 2. **Perturbation** (Section 7): an integer vector `z⃗` orthogonal to all
//!    view vectors but not to `q⃗` (Fact 5), a rational interior point
//!    `p⃗ = M·𝟙` of the cone `C = M(ℝ≥0^k)` (Corollary 8), and
//!    `p⃗′ = t^{z⃗} ∘ p⃗` for a rational `t ≈ 1` (Lemma 57).
//! 3. **Scaling** (Lemma 55): multiply by a common denominator so both points
//!    become answer vectors of actual structures `D, D′ ∈ span_ℕ(S)`.
//!
//! The structures are kept **symbolic** ([`StructureExpr`]) because the basis
//! elements are huge; the returned [`Counterexample`] carries a certificate
//! that can be checked exactly (and, for small instances, cross-checked by
//! materialising the structures and recounting homomorphisms).

use crate::boolean::BagDeterminacy;
use cqdet_bigint::Nat;
use cqdet_linalg::{
    cone_coordinates, dot, interior_cone_point, orthogonal_witness, perturb_along, QMat, QVec, Rat,
};
use cqdet_parallel::CancelToken;
use cqdet_query::ConjunctiveQuery;
use cqdet_structure::{all_loops_point, hom_count, product, Schema, Structure, StructureExpr};
use std::fmt;

/// Why a witness could not be constructed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WitnessError {
    /// The instance is determined — no counterexample exists (Lemma 31 (⇐)).
    InstanceIsDetermined,
    /// The separating-structure search (Lemma 43) exhausted its candidate
    /// budget.  Raising `separator_domain_limit` makes the search complete for
    /// larger schemas at exponential cost.
    SeparatorNotFound {
        /// Indices (into the basis) of the pair that could not be separated.
        pair: (usize, usize),
    },
    /// The request's [`cqdet_parallel::CancelToken`] expired during witness
    /// construction.
    DeadlineExceeded {
        /// The boundary that observed the expiry (always a `"witness"`
        /// sub-stage).
        stage: &'static str,
    },
    /// An invariant of the construction failed — a bug (or an `analysis`
    /// that does not belong to the given query), reported as data instead
    /// of a panic so a serving process survives it.
    Internal(String),
}

impl fmt::Display for WitnessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WitnessError::InstanceIsDetermined => {
                write!(f, "the instance is determined; no counterexample exists")
            }
            WitnessError::SeparatorNotFound { pair } => write!(
                f,
                "could not find a structure separating basis elements {} and {} within the search budget",
                pair.0, pair.1
            ),
            WitnessError::DeadlineExceeded { stage } => {
                write!(f, "deadline exceeded at stage {stage}")
            }
            WitnessError::Internal(message) => write!(f, "internal error: {message}"),
        }
    }
}

impl std::error::Error for WitnessError {}

impl From<cqdet_parallel::Expired> for WitnessError {
    fn from(e: cqdet_parallel::Expired) -> WitnessError {
        WitnessError::DeadlineExceeded { stage: e.stage }
    }
}

/// Configuration of the witness construction.
#[derive(Debug, Clone)]
pub struct WitnessConfig {
    /// Maximum domain size for the exhaustive separating-structure fallback.
    pub separator_domain_limit: usize,
    /// Maximum number of domain elements a structure may have to be
    /// materialised during [`Counterexample::verify_by_materialization`].
    pub materialization_limit: usize,
}

impl Default for WitnessConfig {
    fn default() -> Self {
        WitnessConfig {
            separator_domain_limit: 3,
            materialization_limit: 2_000,
        }
    }
}

/// A certified counterexample to bag-determinacy.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// The schema of the instance.
    pub schema: Schema,
    /// The basis `W` (connected components, Definition 27).
    pub basis: Vec<Structure>,
    /// The good basis structures `S = {s₁, …, s_k}` (symbolic).
    pub good_basis: Vec<StructureExpr>,
    /// The evaluation matrix `M(i,j) = |hom(wᵢ, sⱼ)|` (Definition 37).
    pub evaluation_matrix: QMat,
    /// The integer vector `z⃗` orthogonal to every retained view vector but not
    /// to `q⃗` (Fact 5).
    pub z: QVec,
    /// The rational perturbation factor `t ≠ 1` of Lemma 57.
    pub t: Rat,
    /// Multiplicities `α⃗ ∈ ℕ^k` of the basis structures in `D`.
    pub alpha: Vec<Nat>,
    /// Multiplicities `α⃗′ ∈ ℕ^k` of the basis structures in `D′`.
    pub alpha_prime: Vec<Nat>,
    /// The first structure `D = Σ αᵢ·sᵢ` (symbolic).
    pub d: StructureExpr,
    /// The second structure `D′ = Σ α′ᵢ·sᵢ` (symbolic).
    pub d_prime: StructureExpr,
}

impl Counterexample {
    /// Evaluate a boolean query symbolically on `D` (i.e. compute `φ(D)`).
    pub fn eval_on_d(&self, query: &ConjunctiveQuery) -> Nat {
        let (body, _) = query.frozen_body_over(&self.schema);
        self.d.hom_count_from(&body)
    }

    /// Evaluate a boolean query symbolically on `D′`.
    pub fn eval_on_d_prime(&self, query: &ConjunctiveQuery) -> Nat {
        let (body, _) = query.frozen_body_over(&self.schema);
        self.d_prime.hom_count_from(&body)
    }

    /// Check the counterexample against the original instance: every view of
    /// `views` (retained or not) must agree on `D` and `D′`, and `query` must
    /// not.  All evaluations are symbolic but exact.
    pub fn verify(&self, views: &[ConjunctiveQuery], query: &ConjunctiveQuery) -> bool {
        for v in views {
            if self.eval_on_d(v) != self.eval_on_d_prime(v) {
                return false;
            }
        }
        self.eval_on_d(query) != self.eval_on_d_prime(query)
    }

    /// Cross-check by materialising `D` and `D′` (when small enough) and
    /// recounting every homomorphism by brute force.
    ///
    /// Returns `None` when either structure exceeds `config.materialization_limit`
    /// domain elements; otherwise `Some(result_of_the_check)`.
    pub fn verify_by_materialization(
        &self,
        views: &[ConjunctiveQuery],
        query: &ConjunctiveQuery,
        config: &WitnessConfig,
    ) -> Option<bool> {
        let d = self
            .d
            .materialize(&self.schema, config.materialization_limit)?;
        let d_prime = self
            .d_prime
            .materialize(&self.schema, config.materialization_limit)?;
        for v in views {
            let (body, _) = v.frozen_body_over(&self.schema);
            if hom_count(&body, &d) != hom_count(&body, &d_prime) {
                return Some(false);
            }
        }
        let (qbody, _) = query.frozen_body_over(&self.schema);
        Some(hom_count(&qbody, &d) != hom_count(&qbody, &d_prime))
    }

    /// The answer vectors `(w₁(D), …, w_k(D))` and the same for `D′` — the
    /// points of the space `P` (Definition 51) the construction produced.
    pub fn answer_vectors(&self) -> (Vec<Nat>, Vec<Nat>) {
        let on = |expr: &StructureExpr| -> Vec<Nat> {
            self.basis
                .iter()
                .map(|w| expr.hom_count_from_connected(w))
                .collect()
        };
        (on(&self.d), on(&self.d_prime))
    }
}

/// Search for a structure `H` with `|hom(a, H)| ≠ |hom(b, H)|` (Lemma 43
/// guarantees one exists for non-isomorphic `a`, `b`).
///
/// The search tries cheap candidates first (the basis elements themselves,
/// their pairwise products) and falls back to exhaustive enumeration of all
/// structures over the schema with at most `domain_limit` elements.
pub fn find_separating_structure(
    a: &Structure,
    b: &Structure,
    candidates: &[Structure],
    schema: &Schema,
    domain_limit: usize,
) -> Option<Structure> {
    let separates = |h: &Structure| hom_count(a, h) != hom_count(b, h);
    for c in candidates {
        if separates(c) {
            return Some(c.clone());
        }
    }
    for (i, c1) in candidates.iter().enumerate() {
        for c2 in &candidates[i..] {
            let p = product(c1, c2);
            if separates(&p) {
                return Some(p);
            }
        }
    }
    // Complete fallback: enumerate every structure with ≤ domain_limit elements.
    for n in 1..=domain_limit {
        let mut tuples: Vec<(String, Vec<u64>)> = Vec::new();
        for (rel, arity) in schema.relations() {
            let mut idx = vec![0usize; arity];
            loop {
                tuples.push((rel.to_string(), idx.iter().map(|&x| x as u64).collect()));
                let mut pos = 0;
                loop {
                    if pos == arity {
                        break;
                    }
                    idx[pos] += 1;
                    if idx[pos] < n {
                        break;
                    }
                    idx[pos] = 0;
                    pos += 1;
                }
                if arity == 0 || pos == arity {
                    break;
                }
            }
        }
        let total = tuples.len();
        if total > 24 {
            // 2^24 structures is already unreasonable; give up on this size.
            continue;
        }
        for mask in 0u64..(1u64 << total) {
            let mut h = Structure::new(schema.clone());
            for c in 0..n {
                h.add_isolated(c as u64);
            }
            for (bit, (rel, args)) in tuples.iter().enumerate() {
                if mask >> bit & 1 == 1 {
                    h.add(rel, args);
                }
            }
            if separates(&h) {
                return Some(h);
            }
        }
    }
    None
}

/// Lemma 40: construct a *good* set of basis structures for the basis `W` and
/// query body `q` — decent (every non-retained view vanishes on it) and with a
/// nonsingular evaluation matrix.
///
/// Returns the symbolic basis structures and the evaluation matrix.
pub fn construct_good_basis(
    basis: &[Structure],
    query_body: &Structure,
    schema: &Schema,
    config: &WitnessConfig,
) -> Result<(Vec<StructureExpr>, QMat), WitnessError> {
    construct_good_basis_ctl(basis, query_body, schema, config, &CancelToken::none())
}

/// [`construct_good_basis`] under a request-scoped [`CancelToken`], checked
/// before every separating-structure search (the exponential-in-the-limit
/// part of the construction) and at each later step.
pub fn construct_good_basis_ctl(
    basis: &[Structure],
    query_body: &Structure,
    schema: &Schema,
    config: &WitnessConfig,
    ctl: &CancelToken,
) -> Result<(Vec<StructureExpr>, QMat), WitnessError> {
    let k = basis.len();

    // Step 1: separating structures for every pair.
    let mut candidates: Vec<Structure> = basis.to_vec();
    candidates.push(query_body.clone());
    candidates.push(all_loops_point(schema));
    let mut s1: Vec<Structure> = Vec::new();
    for i in 0..k {
        for j in i + 1..k {
            ctl.check("witness/separators")?;
            let already = s1
                .iter()
                .any(|h| hom_count(&basis[i], h) != hom_count(&basis[j], h));
            if already {
                continue;
            }
            match find_separating_structure(
                &basis[i],
                &basis[j],
                &candidates,
                schema,
                config.separator_domain_limit,
            ) {
                Some(h) => s1.push(h),
                None => return Err(WitnessError::SeparatorNotFound { pair: (i, j) }),
            }
        }
    }
    if s1.is_empty() {
        // k ≤ 1: any single structure will do as S⁽¹⁾.
        s1.push(query_body.clone());
    }

    // Step 2: T greater than every entry of M_{S⁽¹⁾}; s⁽²⁾ = Σ Tⁱ·s⁽¹⁾ᵢ.
    ctl.check("witness/matrix")?;
    let mut t_big = Nat::zero();
    for w in basis {
        for s in &s1 {
            let c = hom_count(w, s);
            if c > t_big {
                t_big = c;
            }
        }
    }
    let t_radix = t_big + Nat::one();
    let s2 = StructureExpr::weighted_sum(
        s1.iter()
            .enumerate()
            .map(|(i, s)| (t_radix.pow(i as u64 + 1), StructureExpr::base(s.clone())))
            .collect(),
    );

    // Step 3: s⁽³⁾ⱼ = (s⁽²⁾)^{j-1} for j = 1..k  (nonsingular by Lemma 46).
    // Step 4: s⁽⁴⁾ᵢ = s⁽³⁾ᵢ × q  (decency).
    let q_expr = StructureExpr::base(query_body.clone());
    let good: Vec<StructureExpr> = (0..k)
        .map(|j| StructureExpr::product2(s2.clone().pow(j as u64), q_expr.clone()))
        .collect();

    // Evaluation matrix M(i,j) = |hom(wᵢ, sⱼ)|  (Definition 37).
    let mut m = QMat::zeros(k, k);
    for (i, w) in basis.iter().enumerate() {
        for (j, s) in good.iter().enumerate() {
            let count = s.hom_count_from_connected(w);
            m.set(i, j, Rat::from_nat(count));
        }
    }
    Ok((good, m))
}

/// Build a certified counterexample for a non-determined instance, from the
/// analysis returned by [`crate::decide_bag_determinacy`].
///
/// `analysis` must come from the same `views`/`query` pair; the function
/// returns [`WitnessError::InstanceIsDetermined`] if the analysis says the
/// instance is determined.
pub fn build_counterexample(
    analysis: &BagDeterminacy,
    query: &ConjunctiveQuery,
    config: &WitnessConfig,
) -> Result<Counterexample, WitnessError> {
    build_counterexample_ctl(analysis, query, config, &CancelToken::none())
}

/// [`build_counterexample`] under a request-scoped [`CancelToken`], checked
/// at the construction's internal stage boundaries (separator search, the
/// evaluation matrix, the perturbation/scaling arithmetic), so a serving
/// process can bound witness construction — by far the heaviest part of an
/// undetermined request — without killing the worker.
pub fn build_counterexample_ctl(
    analysis: &BagDeterminacy,
    query: &ConjunctiveQuery,
    config: &WitnessConfig,
    ctl: &CancelToken,
) -> Result<Counterexample, WitnessError> {
    if analysis.determined {
        return Err(WitnessError::InstanceIsDetermined);
    }
    let schema = &analysis.schema;
    let (query_body, _) = query.frozen_body_over(schema);

    // Invariant failures below are typed `Internal` errors, not panics: they
    // are unreachable from a consistent `analysis`, but `analysis` and
    // `query` arrive as separate arguments and a serving process must
    // survive a mismatched pair.
    let internal = |what: &str| WitnessError::Internal(what.to_string());

    // Lemma 40: a good basis and its evaluation matrix.
    let (good, m) = construct_good_basis_ctl(&analysis.basis, &query_body, schema, config, ctl)?;
    debug_assert!(
        m.is_nonsingular(),
        "Step 3 guarantees nonsingularity (Lemma 46)"
    );

    // Fact 5: z⃗ orthogonal to the view vectors but not to q⃗, scaled to ℤ^k.
    let z0 = orthogonal_witness(&analysis.view_vectors, &analysis.query_vector)
        .ok_or_else(|| internal("no orthogonal witness although q⃗ ∉ span{v⃗} (Fact 5)"))?;
    let z = z0.scale(&Rat::from_int(z0.common_denominator()));
    debug_assert!(z.is_integral());

    // Corollary 8 + Lemma 57: p⃗ interior to the cone, p⃗′ = t^z⃗ ∘ p⃗ ∈ C.
    ctl.check("witness/perturbation")?;
    let p = interior_cone_point(&m);
    let (t, p_prime) = perturb_along(&m, &p, &z);

    // Lemma 55: scale both points into P = {M·u⃗ : u⃗ ∈ ℕ^k}.
    let alpha_p =
        cone_coordinates(&m, &p).ok_or_else(|| internal("interior point left the cone"))?;
    let alpha_p_prime = cone_coordinates(&m, &p_prime)
        .ok_or_else(|| internal("perturbed point left the cone (Lemma 57)"))?;
    let c = alpha_p.common_denominator();
    let c_prime = alpha_p_prime.common_denominator();
    let cc = Rat::from_int(c.mul_ref(&c_prime));
    let scale_to_nats = |v: &QVec| -> Result<Vec<Nat>, WitnessError> {
        v.scale(&cc)
            .to_ints()
            .ok_or_else(|| internal("common denominator failed to clear denominators"))?
            .into_iter()
            .map(|i| {
                i.to_nat()
                    .ok_or_else(|| internal("negative cone coordinate"))
            })
            .collect()
    };
    let alpha = scale_to_nats(&alpha_p)?;
    let alpha_prime = scale_to_nats(&alpha_p_prime)?;

    let d = StructureExpr::weighted_sum(
        alpha
            .iter()
            .cloned()
            .zip(good.iter().cloned())
            .collect::<Vec<_>>(),
    );
    let d_prime = StructureExpr::weighted_sum(
        alpha_prime
            .iter()
            .cloned()
            .zip(good.iter().cloned())
            .collect::<Vec<_>>(),
    );

    Ok(Counterexample {
        schema: schema.clone(),
        basis: analysis.basis.clone(),
        good_basis: good,
        evaluation_matrix: m,
        z,
        t,
        alpha,
        alpha_prime,
        d,
        d_prime,
    })
}

/// Check the arithmetic identities that make the certificate sound:
/// `⟨z⃗, v⃗⟩ = 0` for every retained view vector, `⟨z⃗, q⃗⟩ ≠ 0`, and `M`
/// nonsingular.  (The semantic conditions are checked by
/// [`Counterexample::verify`].)
pub fn check_certificate_arithmetic(witness: &Counterexample, analysis: &BagDeterminacy) -> bool {
    if !witness.evaluation_matrix.is_nonsingular() {
        return false;
    }
    if witness.t == Rat::one() {
        return false;
    }
    for v in &analysis.view_vectors {
        if !dot(&witness.z, v).is_zero() {
            return false;
        }
    }
    !dot(&witness.z, &analysis.query_vector).is_zero()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boolean::decide_bag_determinacy;
    use cqdet_query::cq::Atom;

    fn atom(rel: &str, vars: &[&str]) -> Atom {
        Atom::new(rel, vars)
    }

    fn edge(name: &str) -> ConjunctiveQuery {
        ConjunctiveQuery::boolean(name, vec![atom("R", &["x", "y"])])
    }

    fn two_path(name: &str) -> ConjunctiveQuery {
        ConjunctiveQuery::boolean(name, vec![atom("R", &["x", "y"]), atom("R", &["y", "z"])])
    }

    #[test]
    fn witness_for_edge_vs_two_path() {
        // q = 2-path, V0 = {edge}: q ⊆_set edge, but q⃗ = (1,0) ∉ span{(0,1)}.
        let q = two_path("q");
        let v = edge("v");
        let analysis = decide_bag_determinacy(std::slice::from_ref(&v), &q).unwrap();
        assert!(!analysis.determined);
        let config = WitnessConfig::default();
        let witness = build_counterexample(&analysis, &q, &config).unwrap();
        assert!(check_certificate_arithmetic(&witness, &analysis));
        assert!(
            witness.verify(std::slice::from_ref(&v), &q),
            "symbolic verification"
        );
        // The two structures really differ on q and agree on the view.
        assert_eq!(witness.eval_on_d(&v), witness.eval_on_d_prime(&v));
        assert_ne!(witness.eval_on_d(&q), witness.eval_on_d_prime(&q));
    }

    #[test]
    fn witness_respects_non_retained_views() {
        // An extra view over a different relation is not retained (q ⊄_set v2);
        // decency (Step 4) must make it vanish on both structures.
        let q = two_path("q");
        let v1 = edge("v1");
        let v2 = ConjunctiveQuery::boolean("v2", vec![atom("S", &["x", "y"])]);
        let analysis = decide_bag_determinacy(&[v1.clone(), v2.clone()], &q).unwrap();
        assert!(!analysis.determined);
        let witness = build_counterexample(&analysis, &q, &WitnessConfig::default()).unwrap();
        assert_eq!(witness.eval_on_d(&v2), Nat::zero());
        assert_eq!(witness.eval_on_d_prime(&v2), Nat::zero());
        assert!(witness.verify(&[v1, v2], &q));
    }

    #[test]
    fn determined_instance_yields_error() {
        let q = edge("q");
        let v = edge("v");
        let analysis = decide_bag_determinacy(&[v], &q).unwrap();
        let err = build_counterexample(&analysis, &q, &WitnessConfig::default()).unwrap_err();
        assert_eq!(err, WitnessError::InstanceIsDetermined);
        assert!(err.to_string().contains("determined"));
    }

    #[test]
    fn separating_structure_search() {
        let schema = Schema::binary(["R"]);
        let mut loop1 = Structure::new(schema.clone());
        loop1.add("R", &[0, 0]);
        let mut edge1 = Structure::new(schema.clone());
        edge1.add("R", &[0, 1]);
        // The loop itself separates them: hom(loop, loop)=1, hom(edge, loop)=1?
        // Actually hom(edge, loop)=1 too; but hom into the edge differs:
        // hom(loop, edge)=0 vs hom(edge, edge)=1.
        let h =
            find_separating_structure(&loop1, &edge1, &[loop1.clone(), edge1.clone()], &schema, 2)
                .unwrap();
        assert_ne!(hom_count(&loop1, &h), hom_count(&edge1, &h));
        // Exhaustive fallback: no candidates provided at all.
        let h2 = find_separating_structure(&loop1, &edge1, &[], &schema, 2).unwrap();
        assert_ne!(hom_count(&loop1, &h2), hom_count(&edge1, &h2));
    }

    #[test]
    fn good_basis_is_nonsingular_and_decent() {
        let q = two_path("q");
        let v = edge("v");
        let analysis = decide_bag_determinacy(&[v], &q).unwrap();
        let (qbody, _) = q.frozen_body_over(&analysis.schema);
        let (good, m) = construct_good_basis(
            &analysis.basis,
            &qbody,
            &analysis.schema,
            &WitnessConfig::default(),
        )
        .unwrap();
        assert_eq!(good.len(), analysis.basis.len());
        assert!(m.is_nonsingular());
        // Decency is exercised through witness_respects_non_retained_views.
    }

    #[test]
    fn answer_vectors_are_consistent_with_matrix() {
        let q = two_path("q");
        let v = edge("v");
        let analysis = decide_bag_determinacy(&[v], &q).unwrap();
        let witness = build_counterexample(&analysis, &q, &WitnessConfig::default()).unwrap();
        let (y, y_prime) = witness.answer_vectors();
        // y = M·α and y′ = M·α′ (Lemma 50).
        let alpha_vec = QVec(
            witness
                .alpha
                .iter()
                .map(|a| Rat::from_nat(a.clone()))
                .collect(),
        );
        let alpha_prime_vec = QVec(
            witness
                .alpha_prime
                .iter()
                .map(|a| Rat::from_nat(a.clone()))
                .collect(),
        );
        let m_alpha = witness.evaluation_matrix.mul_vec(&alpha_vec);
        let m_alpha_prime = witness.evaluation_matrix.mul_vec(&alpha_prime_vec);
        for i in 0..y.len() {
            assert_eq!(m_alpha[i], Rat::from_nat(y[i].clone()));
            assert_eq!(m_alpha_prime[i], Rat::from_nat(y_prime[i].clone()));
        }
        assert_ne!(y, y_prime);
    }
}
