//! Mutable decision sessions: incremental view-set deltas with online basis
//! repair.
//!
//! The one-shot pipeline ([`crate::decide_bag_determinacy_in`]) rebuilds the
//! Definition 27 basis from scratch on every call, even though the span
//! system is an online echelon ([`cqdet_linalg::IncrementalBasis`]) and the
//! common client loop is *iterated what-if probing*: add a view, drop a
//! view, re-ask.  A [`MutableSession`] keeps the whole decision state alive
//! across such mutations:
//!
//! * the immutable per-class quantities — frozen bodies, canonical keys,
//!   gate verdicts, interned class ids — live in the shared
//!   [`DecisionContext`] and survive every mutation for free;
//! * the span echelon lives in a session-owned
//!   [`cqdet_linalg::CheckpointedBasis`]: `view_add` **extends it in
//!   place** (one metered insert per new retained class), `view_remove`
//!   repairs it by coordinate compaction when the removed generator slots
//!   were dependent, and falls back to **checkpointed prefix replay**
//!   otherwise (snapshots every K fed generators, K tunable);
//! * `redecide` then reduces just the current query vector against the live
//!   rows — no re-freezing, no re-gating, no re-elimination — and produces
//!   a [`BagDeterminacy`] **byte-identical** to a fresh one-shot decide on
//!   the same view set: both paths run the shared
//!   [`crate::boolean::prepare`]/[`crate::boolean::finish`] stages, and a
//!   fully reduced (Gauss–Jordan) echelon yields the same coefficients
//!   whether its generators were fed eagerly (here) or lazily with early
//!   exit (the one-shot span cache).
//!
//! # Layout reconciliation
//!
//! A mutation changes the canonical generator-slot order (retained classes,
//! first-occurrence over views) and coordinate order (basis components,
//! first-occurrence over views).  The session repairs in place exactly when
//! the new layout is the old one **minus removed entries plus appended
//! ones** — the shape every single `view_add`/`view_remove` produces unless
//! a class's first occurrence migrates between surviving views.  Any other
//! transition (a reorder) rebuilds the echelon from scratch, fuel-charged;
//! correctness never depends on the repair path taken.
//!
//! # Interrupt and panic semantics
//!
//! Mutations follow a take/commit discipline: the span state is taken out
//! of the session before any mutable work, and the view list is updated
//! only as the final commit step.  A panic mid-mutation therefore leaves
//! the session **fully rolled back** (old views, state rebuilt on demand);
//! a fuel/deadline interrupt surfaces as a typed [`DeterminacyError`] with
//! the view list unchanged and the state dropped — the session stays
//! usable, the next operation simply rebuilds.  A `redecide` interrupt
//! keeps the (consistent, resumable) echelon, so a retry with a larger
//! budget resumes rather than restarts.

use crate::boolean::{finish, prepare, BagDeterminacy, DeterminacyError};
use crate::session::DecisionContext;
use cqdet_failpoint::fail_point;
use cqdet_linalg::{CheckpointedBasis, QVec, RemovalKind};
use cqdet_parallel::{Budget, CancelToken, Gas};
use cqdet_query::ConjunctiveQuery;

/// Default checkpoint cadence: snapshot the echelon every K fed generators.
pub const DEFAULT_CHECKPOINT_INTERVAL: usize = 8;

/// Per-session operation counters (reported on the wire `stats`/`explain`
/// surfaces by the serving layer).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeltaCounters {
    /// Completed `view_add` mutations.
    pub adds: u64,
    /// Completed `view_remove` mutations.
    pub removes: u64,
    /// Completed `redecide` calls.
    pub redecides: u64,
    /// Removals repaired by coordinate compaction (no re-elimination).
    pub fast_removals: u64,
    /// Removals repaired by checkpointed prefix replay.
    pub replays: u64,
    /// Echelon rebuilds from scratch (layout reorders, post-error repairs).
    pub rebuilds: u64,
}

/// The session-owned span echelon plus the layout it is expressed over.
struct SpanState {
    /// Session-wide class ids of the generator slots, pipeline order —
    /// must equal [`crate::boolean::Prepared::retained_class_ids`] before
    /// the echelon is consulted.
    slot_ids: Vec<u32>,
    /// Session-wide class ids of the coordinates, basis order.
    coord_ids: Vec<u32>,
    basis: CheckpointedBasis,
}

/// A first-class mutable decision session; see the [module docs](self).
pub struct MutableSession {
    views: Vec<ConjunctiveQuery>,
    query: ConjunctiveQuery,
    state: Option<SpanState>,
    interval: usize,
    counters: DeltaCounters,
}

impl MutableSession {
    /// Open a session over an initial view set and a fixed query.  Validates
    /// the same preconditions as a one-shot decide (boolean queries, no
    /// nullary relations) by running the shared preparation once — which
    /// also warms every immutable cache the first `redecide` will touch.
    pub fn open(
        cx: &DecisionContext,
        views: Vec<ConjunctiveQuery>,
        query: ConjunctiveQuery,
        interval: usize,
        ctl: &CancelToken,
        budget: &Budget,
    ) -> Result<MutableSession, DeterminacyError> {
        fail_point!("session/open", |msg| Err(DeterminacyError::Internal(msg)));
        prepare(cx, &views, &query, ctl, budget)?;
        Ok(MutableSession {
            views,
            query,
            state: None,
            interval: interval.max(1),
            counters: DeltaCounters::default(),
        })
    }

    /// The current view set.
    pub fn views(&self) -> &[ConjunctiveQuery] {
        &self.views
    }

    /// The session's query.
    pub fn query(&self) -> &ConjunctiveQuery {
        &self.query
    }

    /// The session's operation counters.
    pub fn counters(&self) -> DeltaCounters {
        self.counters
    }

    /// Heap bytes held by the session's span echelon (for governed-cache
    /// byte accounting); the immutable caches are owned by the shared
    /// context and accounted there.
    pub fn heap_bytes(&self) -> usize {
        self.state.as_ref().map_or(0, |s| {
            s.basis.heap_bytes() + (s.slot_ids.len() + s.coord_ids.len()) * 4
        })
    }

    /// Add a view.  Extends the echelon in place (one metered insert per
    /// new retained class) after reconciling the layout; on a typed error
    /// the view list is unchanged and the session stays usable.
    pub fn view_add(
        &mut self,
        cx: &DecisionContext,
        view: ConjunctiveQuery,
        ctl: &CancelToken,
        budget: &Budget,
    ) -> Result<(), DeterminacyError> {
        fail_point!("session/mutate", |msg| Err(DeterminacyError::Internal(msg)));
        let mut prospective = self.views.clone();
        prospective.push(view);
        self.mutate_to(cx, prospective, ctl, budget)?;
        self.counters.adds += 1;
        Ok(())
    }

    /// Remove the view at `index` (the caller resolves names to indices).
    /// Repairs the echelon by compaction or checkpointed replay; on a typed
    /// error the view list is unchanged and the session stays usable.
    pub fn view_remove(
        &mut self,
        cx: &DecisionContext,
        index: usize,
        ctl: &CancelToken,
        budget: &Budget,
    ) -> Result<(), DeterminacyError> {
        assert!(index < self.views.len(), "view index out of range");
        fail_point!("session/mutate", |msg| Err(DeterminacyError::Internal(msg)));
        let mut prospective = self.views.clone();
        prospective.remove(index);
        self.mutate_to(cx, prospective, ctl, budget)?;
        self.counters.removes += 1;
        Ok(())
    }

    /// Re-decide determinacy for the current view set against the live
    /// echelon.  Byte-identical to a fresh one-shot decide (see the module
    /// docs); an interrupt keeps the consistent echelon, so a retry with a
    /// larger budget resumes.
    pub fn redecide(
        &mut self,
        cx: &DecisionContext,
        ctl: &CancelToken,
        budget: &Budget,
    ) -> Result<BagDeterminacy, DeterminacyError> {
        let prep = prepare(cx, &self.views, &self.query, ctl, budget)?;
        ctl.check("span")?;
        fail_point!("decide/span", |msg| Err(DeterminacyError::Internal(msg)));
        let class_coefficients = if prep.class_vectors.is_empty() {
            prep.query_vector.is_zero().then(|| QVec(Vec::new()))
        } else if !prep.covered() {
            None
        } else {
            // Reconcile-then-solve against the session echelon.  The state
            // is taken out for the duration: a panic leaves it absent
            // (rebuilt on demand), an interrupt puts the consistent,
            // resumable echelon back before the typed error surfaces.
            let taken = self.state.take();
            let mut gas = Gas::new(ctl, budget, "span");
            let mut st = self.reconcile(cx, taken, &prep, &mut gas)?;
            let solved = st.basis.solve_gas(&prep.query_vector, &mut gas);
            self.state = Some(st);
            solved.map_err(DeterminacyError::from)?
        };
        self.counters.redecides += 1;
        Ok(finish(prep, class_coefficients))
    }

    /// Shared mutation body: prepare the prospective view set, reconcile
    /// the echelon to its layout, and commit the view list last.  The span
    /// state is taken out up front, so a panic anywhere in here leaves the
    /// session fully rolled back (old views, state rebuilt on demand); a
    /// typed error likewise keeps the old views, dropping only the echelon.
    fn mutate_to(
        &mut self,
        cx: &DecisionContext,
        prospective: Vec<ConjunctiveQuery>,
        ctl: &CancelToken,
        budget: &Budget,
    ) -> Result<(), DeterminacyError> {
        let taken = self.state.take();
        let prep = prepare(cx, &prospective, &self.query, ctl, budget)?;
        if prep.class_vectors.is_empty() || !prep.covered() {
            // The span system will not run for this view set: keep the
            // echelon as-is (its layout tag still describes it), so a later
            // mutation back into the covered regime can repair in place.
            self.state = taken;
        } else {
            let mut gas = Gas::new(ctl, budget, "mutate");
            let st = self.reconcile(cx, taken, &prep, &mut gas)?;
            self.state = Some(st);
        }
        self.views = prospective;
        Ok(())
    }

    /// Bring the echelon in line with the target layout: repair in place
    /// when the transition is removals-plus-appends on both the slot and
    /// coordinate sequences, rebuild from scratch otherwise.  Consumes the
    /// taken-out state and returns the reconciled one; on `Err` the state
    /// is dropped (the caller's take/commit discipline turns that into a
    /// clean rollback).
    fn reconcile(
        &mut self,
        cx: &DecisionContext,
        taken: Option<SpanState>,
        prep: &crate::boolean::Prepared,
        gas: &mut Gas,
    ) -> Result<SpanState, DeterminacyError> {
        let target_slots: &[u32] = &prep.retained_class_ids;
        let target_coords = prep.coord_class_ids(cx);
        let mut st = match taken {
            Some(st) => st,
            None => {
                return self.rebuild(target_slots, &target_coords, &prep.class_vectors, gas);
            }
        };
        if st.slot_ids == target_slots && st.coord_ids == target_coords {
            st.basis.catch_up_gas(gas)?;
            return Ok(st);
        }
        let slot_plan = subseq_plan(&st.slot_ids, target_slots);
        let coord_plan = subseq_plan(&st.coord_ids, &target_coords);
        let (Some((removed_slots, new_slots)), Some((dropped_coords, new_coords))) =
            (slot_plan, coord_plan)
        else {
            // A first occurrence migrated between surviving views: the
            // canonical layout reordered, which in-place repair cannot
            // express.  Rebuild — still fuel-charged, still exact.
            return self.rebuild(target_slots, &target_coords, &prep.class_vectors, gas);
        };
        // Order matters: removing generator slots first makes the dropped
        // coordinate columns all-zero among the survivors (a coordinate is
        // dropped exactly when no surviving class touches it), which
        // `drop_columns` requires.
        if !removed_slots.is_empty() {
            // Chaos seam on the removal-repair path (compaction or replay).
            fail_point!("session/replay", |msg| Err(DeterminacyError::Internal(msg)));
            match st.basis.remove_slots_gas(&removed_slots, gas)? {
                RemovalKind::Compacted => self.counters.fast_removals += 1,
                RemovalKind::Replayed => self.counters.replays += 1,
            }
        }
        if !dropped_coords.is_empty() {
            st.basis.drop_columns(&dropped_coords);
        }
        if !new_coords.is_empty() {
            st.basis.grow_dim(target_coords.len());
        }
        for &slot in &new_slots {
            st.basis.push_generator(prep.class_vectors[slot].clone());
        }
        st.slot_ids = target_slots.to_vec();
        st.coord_ids = target_coords;
        st.basis.catch_up_gas(gas)?;
        Ok(st)
    }

    /// A fresh echelon over the target layout, fed to completion.
    fn rebuild(
        &mut self,
        slots: &[u32],
        coords: &[u32],
        class_vectors: &[QVec],
        gas: &mut Gas,
    ) -> Result<SpanState, DeterminacyError> {
        self.counters.rebuilds += 1;
        let mut basis = CheckpointedBasis::new(coords.len(), self.interval);
        for v in class_vectors {
            basis.push_generator(v.clone());
        }
        basis.catch_up_gas(gas).map_err(DeterminacyError::from)?;
        Ok(SpanState {
            slot_ids: slots.to_vec(),
            coord_ids: coords.to_vec(),
            basis,
        })
    }
}

/// Decompose the transition `old → new` as "remove some of `old`, then
/// append the rest of `new`": returns `(removed positions in old, appended
/// positions in new)` when `new` is an order-preserved subsequence of `old`
/// followed by entries not in `old`; `None` when the transition reorders.
/// Ids are unique within each sequence (session class ids are never reused
/// and classes are deduplicated), so matching by equality is unambiguous.
fn subseq_plan(old: &[u32], new: &[u32]) -> Option<(Vec<usize>, Vec<usize>)> {
    let mut kept = Vec::new();
    let mut removed = Vec::new();
    for (i, id) in old.iter().enumerate() {
        if new.contains(id) {
            kept.push(*id);
        } else {
            removed.push(i);
        }
    }
    if new.len() < kept.len() || new[..kept.len()] != kept[..] {
        return None;
    }
    let appended: Vec<usize> = (kept.len()..new.len()).collect();
    if appended.iter().any(|&p| old.contains(&new[p])) {
        return None;
    }
    Some((removed, appended))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boolean::decide_bag_determinacy_in;
    use cqdet_query::cq::Atom;

    fn atom(rel: &str, vars: &[&str]) -> Atom {
        Atom::new(rel, vars)
    }

    /// A boolean query that is a disjoint sum of directed paths: one path of
    /// each length in `lens` (fresh variables per path).
    fn path_sum(name: &str, lens: &[usize]) -> ConjunctiveQuery {
        let mut atoms = Vec::new();
        for (p, &len) in lens.iter().enumerate() {
            for i in 0..len {
                atoms.push(Atom {
                    relation: "E".to_string(),
                    vars: vec![format!("p{p}x{i}"), format!("p{p}x{}", i + 1)],
                });
            }
        }
        ConjunctiveQuery::boolean(name, atoms)
    }

    fn oracle(
        cx: &DecisionContext,
        views: &[ConjunctiveQuery],
        query: &ConjunctiveQuery,
    ) -> BagDeterminacy {
        decide_bag_determinacy_in(cx, views, query).unwrap()
    }

    fn assert_agrees(a: &BagDeterminacy, b: &BagDeterminacy) {
        assert_eq!(a.determined, b.determined);
        assert_eq!(a.retained_views, b.retained_views);
        assert_eq!(a.query_vector, b.query_vector);
        assert_eq!(a.view_vectors, b.view_vectors);
        assert_eq!(a.coefficients, b.coefficients);
        assert_eq!(a.basis_size(), b.basis_size());
    }

    #[test]
    fn session_redecide_matches_one_shot_through_churn() {
        let cx = DecisionContext::new();
        // Prefix-sum views over path components: v_i = P_1 ⊕ … ⊕ P_i.
        let view = |i: usize| path_sum(&format!("v{i}"), &(1..=i).collect::<Vec<_>>());
        let query = path_sum("q", &(1..=4).collect::<Vec<_>>());
        let mut session = MutableSession::open(
            &cx,
            (1..=4).map(view).collect(),
            query.clone(),
            2,
            &CancelToken::none(),
            &Budget::none(),
        )
        .unwrap();
        let ctl = CancelToken::none();
        let nb = Budget::none();
        // Initial redecide: q = v4's shape, determined.
        let got = session.redecide(&cx, &ctl, &nb).unwrap();
        assert!(got.determined);
        assert_agrees(&got, &oracle(&cx, session.views(), &query));
        // Add a fifth view: one new class, one in-place insert.
        session.view_add(&cx, view(5), &ctl, &nb).unwrap();
        let got = session.redecide(&cx, &ctl, &nb).unwrap();
        assert_agrees(&got, &oracle(&cx, session.views(), &query));
        // Remove a middle view (pivotal generator → replay or rebuild).
        session.view_remove(&cx, 1, &ctl, &nb).unwrap();
        let got = session.redecide(&cx, &ctl, &nb).unwrap();
        assert_agrees(&got, &oracle(&cx, session.views(), &query));
        // Remove the view whose shape the query needs: undetermined now.
        session.view_remove(&cx, 2, &ctl, &nb).unwrap();
        let got = session.redecide(&cx, &ctl, &nb).unwrap();
        assert_agrees(&got, &oracle(&cx, session.views(), &query));
        let counters = session.counters();
        assert_eq!(counters.adds, 1);
        assert_eq!(counters.removes, 2);
        assert_eq!(counters.redecides, 4);
    }

    #[test]
    fn duplicate_class_removal_takes_the_fast_path() {
        let cx = DecisionContext::new();
        let edge = |n: &str| ConjunctiveQuery::boolean(n, vec![atom("R", &["x", "y"])]);
        let ctl = CancelToken::none();
        let nb = Budget::none();
        // Two isomorphic views: one class, one generator; removing either
        // view keeps the class and must not touch the echelon at all.
        let q = edge("q");
        let mut session =
            MutableSession::open(&cx, vec![edge("a"), edge("b")], q.clone(), 8, &ctl, &nb).unwrap();
        assert!(session.redecide(&cx, &ctl, &nb).unwrap().determined);
        session.view_remove(&cx, 0, &ctl, &nb).unwrap();
        let got = session.redecide(&cx, &ctl, &nb).unwrap();
        assert!(got.determined);
        assert_agrees(&got, &oracle(&cx, session.views(), &q));
        let counters = session.counters();
        assert_eq!(
            (counters.fast_removals, counters.replays),
            (0, 0),
            "same class set: no repair ran at all"
        );
    }

    #[test]
    fn uncovered_interludes_keep_the_echelon() {
        let cx = DecisionContext::new();
        let edge = |n: &str| ConjunctiveQuery::boolean(n, vec![atom("R", &["x", "y"])]);
        let looped = ConjunctiveQuery::boolean("w", vec![atom("R", &["l", "l"])]);
        let q =
            ConjunctiveQuery::boolean("q", vec![atom("R", &["x", "y"]), atom("R", &["l", "l"])]);
        let ctl = CancelToken::none();
        let nb = Budget::none();
        let mut session = MutableSession::open(
            &cx,
            vec![edge("v"), looped.clone()],
            q.clone(),
            8,
            &ctl,
            &nb,
        )
        .unwrap();
        assert!(session.redecide(&cx, &ctl, &nb).unwrap().determined);
        // Remove the loop view: the query's loop component is uncovered,
        // redecide short-circuits without consulting the echelon.
        session.view_remove(&cx, 1, &ctl, &nb).unwrap();
        let got = session.redecide(&cx, &ctl, &nb).unwrap();
        assert!(!got.determined);
        assert_agrees(&got, &oracle(&cx, session.views(), &q));
        // Adding it back repairs in place from the kept state.
        session.view_add(&cx, looped, &ctl, &nb).unwrap();
        let got = session.redecide(&cx, &ctl, &nb).unwrap();
        assert!(got.determined);
        assert_agrees(&got, &oracle(&cx, session.views(), &q));
        assert_eq!(session.counters().rebuilds, 1, "only the initial build");
    }

    #[test]
    fn fuel_exhaustion_mid_mutation_is_typed_and_leaves_session_usable() {
        let cx = DecisionContext::new();
        let view = |i: usize| path_sum(&format!("v{i}"), &(1..=i).collect::<Vec<_>>());
        let query = path_sum("q", &(1..=6).collect::<Vec<_>>());
        let ctl = CancelToken::none();
        let nb = Budget::none();
        let mut session = MutableSession::open(
            &cx,
            (1..=6).map(view).collect(),
            query.clone(),
            2,
            &ctl,
            &nb,
        )
        .unwrap();
        assert!(session.redecide(&cx, &ctl, &nb).unwrap().determined);
        // A tiny step budget trips inside the mutation's elimination.
        let tiny = Budget::with_limits(Some(4), None);
        let err = session.view_remove(&cx, 0, &ctl, &tiny).unwrap_err();
        assert!(
            matches!(err, DeterminacyError::ResourceExhausted { .. }),
            "typed exhaustion, got {err:?}"
        );
        assert_eq!(
            session.views().len(),
            6,
            "failed mutation left views unchanged"
        );
        // The session is fully usable afterwards: the retry completes and
        // agrees with the oracle, as does a redecide.
        session.view_remove(&cx, 0, &ctl, &nb).unwrap();
        let got = session.redecide(&cx, &ctl, &nb).unwrap();
        assert_agrees(&got, &oracle(&cx, session.views(), &query));
    }

    #[test]
    fn first_occurrence_migration_triggers_rebuild_and_stays_exact() {
        let cx = DecisionContext::new();
        let ctl = CancelToken::none();
        let nb = Budget::none();
        // v0 contributes {P1}, v1 contributes {P2}, v2 contributes {P1, P2}:
        // removing v0 migrates P1's first occurrence to v2, *after* P2 —
        // a coordinate reorder that must force a rebuild, not corruption.
        let v0 = path_sum("v0", &[1]);
        let v1 = path_sum("v1", &[2]);
        let v2 = path_sum("v2", &[1, 2]);
        let q = path_sum("q", &[1, 2]);
        let mut session =
            MutableSession::open(&cx, vec![v0, v1, v2], q.clone(), 8, &ctl, &nb).unwrap();
        assert!(session.redecide(&cx, &ctl, &nb).unwrap().determined);
        let before = session.counters().rebuilds;
        session.view_remove(&cx, 0, &ctl, &nb).unwrap();
        let got = session.redecide(&cx, &ctl, &nb).unwrap();
        assert_agrees(&got, &oracle(&cx, session.views(), &q));
        assert!(
            session.counters().rebuilds > before,
            "coordinate reorder must rebuild"
        );
    }

    #[test]
    fn subseq_plan_classifies_transitions() {
        // Pure removal.
        assert_eq!(
            subseq_plan(&[1, 2, 3], &[1, 3]),
            Some((vec![1], Vec::new()))
        );
        // Pure append.
        assert_eq!(
            subseq_plan(&[1, 2], &[1, 2, 9]),
            Some((Vec::new(), vec![2]))
        );
        // Remove + append.
        assert_eq!(
            subseq_plan(&[1, 2, 3], &[2, 3, 7]),
            Some((vec![0], vec![2]))
        );
        // Reorder: not expressible.
        assert_eq!(subseq_plan(&[1, 2], &[2, 1]), None);
        // Re-insertion of a removed id ahead of kept ones: reorder.
        assert_eq!(subseq_plan(&[1, 2, 3], &[2, 1, 3]), None);
        // Identity.
        assert_eq!(
            subseq_plan(&[4, 5], &[4, 5]),
            Some((Vec::new(), Vec::new()))
        );
    }
}
