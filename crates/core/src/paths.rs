//! Path-query determinacy (Theorem 1, Section 3 and Appendices B–C).
//!
//! For path queries, determinacy under bag semantics **coincides** with
//! determinacy under set semantics, and both are characterised by the same
//! combinatorial condition (Fact 10 / Lemma 11): there is a path from `ε` to
//! `q` in the undirected prefix graph `G_{q,V}` whose vertices are the
//! prefixes of `q` and whose edges connect `w` with `w·v` for `v ∈ V`.
//!
//! This module implements
//!
//! * the prefix graph and the reachability decision,
//! * derivations (`ε ⇝ q` paths) and the induced q-walks (Definition 12),
//! * the `+/-` and `-/+` reductions of Definition 14 together with Lemma 15,
//! * the Appendix B witness pair `(D, D′)` for non-determined instances,
//! * matrix-based path-query evaluation (Fact 18), used as a fast evaluator
//!   and benchmarked against naive homomorphism counting.

use cqdet_bigint::Nat;
use cqdet_linalg::Rat;
use cqdet_query::eval::BagAnswers;
use cqdet_query::PathQuery;
use cqdet_structure::adjacency::word_matrix;
use cqdet_structure::{Const, Schema, Structure};
use std::collections::VecDeque;

/// One step of a derivation in `G_{q,V}`: from the prefix of length
/// `from_len` to the prefix of length `to_len`, using view `view` in the
/// forward (`sign = +1`, `w → w·v`) or backward (`sign = -1`, `w·v → w`)
/// direction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DerivationStep {
    /// Length of the source prefix.
    pub from_len: usize,
    /// Length of the target prefix.
    pub to_len: usize,
    /// Index of the view used.
    pub view: usize,
    /// `+1` when the view is appended, `-1` when it is removed.
    pub sign: i8,
}

/// The result of analysing a path-determinacy instance.
#[derive(Debug, Clone)]
pub struct PathAnalysis {
    /// Whether `V ⟶ q` — by Theorem 1 the answer is the same under set and
    /// bag semantics.
    pub determined: bool,
    /// The edges of `G_{q,V}`, as `(shorter_prefix_len, longer_prefix_len, view_idx)`.
    pub edges: Vec<(usize, usize, usize)>,
    /// A derivation `ε ⇝ q` when the instance is determined.
    pub derivation: Option<Vec<DerivationStep>>,
}

/// The edges of the prefix graph `G_{q,V}` (Definition 9): `w — w·v` for every
/// prefix `w` of `q` and every `v ∈ V` such that `w·v` is again a prefix of `q`.
pub fn prefix_graph(views: &[PathQuery], query: &PathQuery) -> Vec<(usize, usize, usize)> {
    let mut edges = Vec::new();
    let n = query.len();
    for from in 0..=n {
        let w = query.prefix(from);
        for (vi, v) in views.iter().enumerate() {
            let to = from + v.len();
            if to > n {
                continue;
            }
            if w.concat(v) == query.prefix(to) {
                edges.push((from, to, vi));
            }
        }
    }
    edges
}

/// Decide path-query determinacy (Theorem 1) and, when determined, return a
/// derivation `ε ⇝ q`.
pub fn decide_path_determinacy(views: &[PathQuery], query: &PathQuery) -> PathAnalysis {
    let edges = prefix_graph(views, query);
    let derivation = derivation_path(views, query);
    PathAnalysis {
        determined: derivation.is_some(),
        edges,
        derivation,
    }
}

/// A shortest path from `ε` to `q` in `G_{q,V}`, as a list of derivation
/// steps, or `None` if `q` is unreachable (not determined).
pub fn derivation_path(views: &[PathQuery], query: &PathQuery) -> Option<Vec<DerivationStep>> {
    let n = query.len();
    let edges = prefix_graph(views, query);
    // Adjacency as (neighbour, view, sign as seen from the current vertex).
    let mut adj: Vec<Vec<(usize, usize, i8)>> = vec![Vec::new(); n + 1];
    for &(a, b, v) in &edges {
        adj[a].push((b, v, 1));
        adj[b].push((a, v, -1));
    }
    let mut prev: Vec<Option<(usize, usize, i8)>> = vec![None; n + 1];
    let mut seen = vec![false; n + 1];
    let mut queue = VecDeque::from([0usize]);
    seen[0] = true;
    while let Some(x) = queue.pop_front() {
        if x == n {
            break;
        }
        for &(y, v, sign) in &adj[x] {
            if !seen[y] {
                seen[y] = true;
                prev[y] = Some((x, v, sign));
                queue.push_back(y);
            }
        }
    }
    if n != 0 && !seen[n] {
        return None;
    }
    // Reconstruct the path.
    let mut steps = Vec::new();
    let mut cur = n;
    while cur != 0 {
        // BFS reached `n`, so every vertex on the reconstruction chain has a
        // predecessor; an unvisited vertex here would be a bug — treat it as
        // "no derivation" rather than panicking.
        let (from, view, sign) = prev[cur]?;
        steps.push(DerivationStep {
            from_len: from,
            to_len: cur,
            view,
            sign,
        });
        cur = from;
    }
    steps.reverse();
    Some(steps)
}

/// A letter of the extended alphabet `Σ̄ = Σ ∪ Σ⁻¹`: a relation name with an
/// exponent `+1` or `-1`.
pub type SignedLetter = (String, i8);

/// The q-walk induced by a derivation (Section 3.1): the concatenation
/// `(v_{p₁})^{ε₁}(v_{p₂})^{ε₂}…`, where a view used backwards contributes its
/// letters reversed and inverted.
pub fn derivation_to_q_walk(views: &[PathQuery], steps: &[DerivationStep]) -> Vec<SignedLetter> {
    let mut walk = Vec::new();
    for s in steps {
        let letters = views[s.view].letters();
        if s.sign > 0 {
            for l in letters {
                walk.push((l.clone(), 1));
            }
        } else {
            for l in letters.iter().rev() {
                walk.push((l.clone(), -1));
            }
        }
    }
    walk
}

/// Whether `walk` is a q-walk for `query` (Definition 12): partial sums of the
/// exponents stay within `[0, |q|]`, the total is `|q|`, and each letter
/// matches the appropriate symbol of `q`.
pub fn is_q_walk(walk: &[SignedLetter], query: &PathQuery) -> bool {
    let n = query.len() as i64;
    let mut height: i64 = 0;
    for (letter, sign) in walk {
        let expected_index = if *sign == 1 { height } else { height - 1 };
        if expected_index < 0 || expected_index >= n {
            return false;
        }
        if query.letters()[expected_index as usize] != *letter {
            return false;
        }
        height += i64::from(*sign);
        if height < 0 || height > n {
            return false;
        }
    }
    height == n
}

/// Apply `+/-` reductions (`w A A⁻¹ w′ → w w′`, Definition 14) until no more
/// apply.  Lemma 15 guarantees that a q-walk reduces to `q` itself.
pub fn reduce_q_walk(walk: &[SignedLetter]) -> Vec<SignedLetter> {
    let mut out: Vec<SignedLetter> = Vec::with_capacity(walk.len());
    for item in walk {
        if let Some(last) = out.last() {
            if last.1 == 1 && item.1 == -1 && last.0 == item.0 {
                out.pop();
                continue;
            }
        }
        out.push(item.clone());
    }
    out
}

/// The Appendix B witness: when `q` is *not* reachable from `ε` in `G_{q,V}`,
/// produce structures `D = q + q` and a "rewired" `D′` such that every view
/// returns the same bag of answers on both while `q` does not.
///
/// Returns `None` when the instance is determined (no witness exists).
pub fn non_determinacy_witness(
    views: &[PathQuery],
    query: &PathQuery,
) -> Option<(Structure, Structure)> {
    if derivation_path(views, query).is_some() {
        return None;
    }
    let n = query.len();
    let schema = path_schema(views, query);
    // Reachability classes of prefixes (the relation ∼ of Appendix B).
    let edges = prefix_graph(views, query);
    let mut reach = vec![false; n + 1];
    reach[0] = true;
    let mut changed = true;
    while changed {
        changed = false;
        for &(a, b, _) in &edges {
            if reach[a] != reach[b] {
                reach[a] = true;
                reach[b] = true;
                changed = true;
            }
        }
    }

    // Domain element [w, j] for the prefix of length w and j ∈ {0, 1}.
    let enc = |len: usize, j: usize| -> Const { (2 * len + j) as Const };
    let mut d = Structure::new(schema.clone());
    let mut d_prime = Structure::new(schema.clone());
    for len in 0..n {
        let rel = &query.letters()[len];
        let similar = reach[len] == reach[len + 1];
        for j in 0..2usize {
            // D is simply q + q.
            d.add(rel, &[enc(len, j), enc(len + 1, j)]);
            // D′ keeps the copy when w ∼ wR and crosses otherwise.
            if similar {
                d_prime.add(rel, &[enc(len, j), enc(len + 1, j)]);
            } else {
                d_prime.add(rel, &[enc(len, j), enc(len + 1, 1 - j)]);
            }
        }
    }
    Some((d, d_prime))
}

/// The binary schema containing every relation mentioned by the instance.
pub fn path_schema(views: &[PathQuery], query: &PathQuery) -> Schema {
    let mut names: Vec<&str> = query.letters().iter().map(String::as_str).collect();
    for v in views {
        names.extend(v.letters().iter().map(String::as_str));
    }
    Schema::binary(names)
}

/// Evaluate a path query over a structure using incidence matrices (Fact 18):
/// the multiplicity of the answer `(aᵢ, aⱼ)` is the `(i,j)` entry of `M^D_w`.
///
/// This is the fast evaluator benchmarked against naive homomorphism counting;
/// both must agree (and tests check that they do).
pub fn eval_path_matrix(query: &PathQuery, d: &Structure) -> BagAnswers {
    let dom: Vec<Const> = d.domain().into_iter().collect();
    let m = word_matrix(d, query.letters(), &dom);
    let mut out = BagAnswers::new();
    for (i, &a) in dom.iter().enumerate() {
        for (j, &b) in dom.iter().enumerate() {
            let entry = m.get(i, j);
            if entry.is_zero() {
                continue;
            }
            let count = rat_to_nat(entry);
            out.add(vec![a, b], count);
        }
    }
    out
}

// Word-matrix entries are sums of products of homomorphism counts, hence
// naturals by construction; this helper is not on a request path (the serve
// layer's path requests go through `decide_path_determinacy`).
#[allow(clippy::expect_used)]
fn rat_to_nat(r: &Rat) -> Nat {
    r.to_nat()
        .expect("path-query matrix entries are non-negative integers")
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqdet_query::eval::eval_cq;
    use cqdet_structure::StructureGenerator;

    fn pq(s: &str) -> PathQuery {
        PathQuery::from_compact(s)
    }

    #[test]
    fn example_13_derivation_and_q_walk() {
        // q = ABCD, V = {ABC, BC, BCD}: the paper's path ε → ABC → A → ABCD.
        let q = pq("ABCD");
        let views = vec![pq("ABC"), pq("BC"), pq("BCD")];
        let analysis = decide_path_determinacy(&views, &q);
        assert!(analysis.determined);
        let steps = analysis.derivation.unwrap();
        // Reachability: the BFS finds some ε ⇝ q path; its induced q-walk must
        // be a genuine q-walk and must reduce to q (Lemma 15).
        let walk = derivation_to_q_walk(&views, &steps);
        assert!(
            is_q_walk(&walk, &q),
            "induced walk {walk:?} must be a q-walk"
        );
        let reduced = reduce_q_walk(&walk);
        let expected: Vec<SignedLetter> = q.letters().iter().map(|l| (l.clone(), 1)).collect();
        assert_eq!(reduced, expected);
        // The specific walk from Example 13 is also a q-walk: ABC C⁻¹B⁻¹ BCD.
        let example_walk: Vec<SignedLetter> = vec![
            ("A".into(), 1),
            ("B".into(), 1),
            ("C".into(), 1),
            ("C".into(), -1),
            ("B".into(), -1),
            ("B".into(), 1),
            ("C".into(), 1),
            ("D".into(), 1),
        ];
        assert!(is_q_walk(&example_walk, &q));
        assert_eq!(reduce_q_walk(&example_walk), expected);
    }

    #[test]
    fn undetermined_instance_has_no_derivation() {
        // q = AB, V = {A}: prefixes ε, A, AB; edges ε—A only; AB unreachable.
        let q = pq("AB");
        let views = vec![pq("A")];
        let analysis = decide_path_determinacy(&views, &q);
        assert!(!analysis.determined);
        assert!(analysis.derivation.is_none());
        assert_eq!(analysis.edges, vec![(0, 1, 0)]);
    }

    #[test]
    fn determined_by_concatenation_and_by_subtraction() {
        // Concatenation: V = {A, B} determines AB.
        assert!(decide_path_determinacy(&[pq("A"), pq("B")], &pq("AB")).determined);
        // Subtraction: V = {AB, B} — path ε → AB; or ε→AB→A? For q = A:
        // prefixes ε, A; AB is not a prefix of A so only ε—A via... no view A.
        // q = A with V = {AB, B} is NOT determined (cannot reach A).
        assert!(!decide_path_determinacy(&[pq("AB"), pq("B")], &pq("A")).determined);
        // But q = A with V = {AB, B} over prefixes of AB... the classic
        // subtraction pattern works for q = ABB with V = {ABB}, trivially:
        assert!(decide_path_determinacy(&[pq("ABB")], &pq("ABB")).determined);
        // And the genuinely non-trivial backwards step: q = A, V = {AB, ABB}?
        // prefixes ε, A: edge ε—? AB not prefix... not determined either.
        assert!(!decide_path_determinacy(&[pq("AB"), pq("ABB")], &pq("A")).determined);
    }

    #[test]
    fn backwards_steps_are_needed_sometimes() {
        // q = AB, V = {ABB, B}: ε —ABB→ ? ABB is not a prefix of AB, so that
        // edge does not exist; but with V = {ABC, C, ...} style instances the
        // path must go above and come back.  Use the paper's Example 13 shape:
        // q = AD is NOT derivable from {ABC}, while q = ABCD from Example 13 is.
        let q = pq("ABCD");
        assert!(decide_path_determinacy(&[pq("ABC"), pq("BC"), pq("BCD")], &q).determined);
        assert!(!decide_path_determinacy(&[pq("ABC"), pq("BCD")], &q).determined);
    }

    #[test]
    fn empty_query_is_always_determined() {
        // q = ε: the start vertex is the target.
        let analysis = decide_path_determinacy(&[pq("A")], &PathQuery::epsilon());
        assert!(analysis.determined);
        assert_eq!(analysis.derivation.unwrap().len(), 0);
    }

    #[test]
    fn witness_pair_for_undetermined_instance() {
        let q = pq("AB");
        let views = vec![pq("A")];
        let (d, d2) = non_determinacy_witness(&views, &q).unwrap();
        let schema = path_schema(&views, &q);
        // q distinguishes them…
        let q_cq = q.to_cq("q");
        assert_ne!(eval_cq(&q_cq, &schema, &d), eval_cq(&q_cq, &schema, &d2));
        // …but every view returns the same bag of answers.
        for v in &views {
            let v_cq = v.to_cq("v");
            assert_eq!(eval_cq(&v_cq, &schema, &d), eval_cq(&v_cq, &schema, &d2));
        }
        // And there is no witness for a determined instance.
        assert!(non_determinacy_witness(&[pq("A"), pq("B")], &q).is_none());
    }

    #[test]
    fn witness_pair_larger_instance() {
        // q = ABC, V = {AB, BC, ABCA}; prefixes: ε,A,AB,ABC.
        // Edges: ε—AB(view AB), A—ABC(view BC).  ABC is not reachable from ε.
        let q = pq("ABC");
        let views = vec![pq("AB"), pq("BC")];
        let analysis = decide_path_determinacy(&views, &q);
        assert!(!analysis.determined);
        let (d, d2) = non_determinacy_witness(&views, &q).unwrap();
        let schema = path_schema(&views, &q);
        assert_ne!(
            eval_cq(&q.to_cq("q"), &schema, &d),
            eval_cq(&q.to_cq("q"), &schema, &d2)
        );
        for v in &views {
            assert_eq!(
                eval_cq(&v.to_cq("v"), &schema, &d),
                eval_cq(&v.to_cq("v"), &schema, &d2),
                "view {v} must not distinguish D and D'"
            );
        }
    }

    #[test]
    fn matrix_evaluation_matches_naive_evaluation() {
        let schema = Schema::binary(["A", "B"]);
        let mut gen = StructureGenerator::new(schema.clone(), 99);
        for (i, word) in ["A", "AB", "ABA", "BBA"].iter().enumerate() {
            let q = pq(word);
            let d = gen.random_with_facts(4 + i, 8 + 2 * i);
            let by_matrix = eval_path_matrix(&q, &d);
            let by_hom = eval_cq(&q.to_cq("q"), &schema, &d);
            assert_eq!(by_matrix, by_hom, "word {word}, structure {d:?}");
        }
    }

    #[test]
    fn q_walk_validation_rejects_bad_walks() {
        let q = pq("AB");
        // Goes below zero.
        assert!(!is_q_walk(&[("A".into(), -1)], &q));
        // Wrong letter.
        assert!(!is_q_walk(&[("B".into(), 1), ("B".into(), 1)], &q));
        // Does not end at |q|.
        assert!(!is_q_walk(&[("A".into(), 1)], &q));
        // Exceeds |q|.
        assert!(!is_q_walk(
            &[("A".into(), 1), ("B".into(), 1), ("B".into(), 1)],
            &q
        ));
        // The trivial walk.
        assert!(is_q_walk(&[("A".into(), 1), ("B".into(), 1)], &q));
    }
}
