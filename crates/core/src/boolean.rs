//! The decision procedure of Theorem 3: bag-determinacy of boolean CQs.
//!
//! Pipeline (Section 4):
//!
//! 1. `V ← {v ∈ V₀ : q ⊆_set v}` (Definition 25) — views that cannot return 0
//!    on any structure satisfying `q`.
//! 2. `W ←` the pairwise non-isomorphic connected components of
//!    `Σ_{v ∈ V ∪ {q}} v` (Definition 27) — the basis queries.
//! 3. Every `v ∈ V ∪ {q}` gets its vector representation `v⃗ ∈ ℕ^k`
//!    (Definition 29): the multiplicities of the basis components in `v`.
//! 4. **Main Lemma (Lemma 31)**: `V₀ ⟶_bag q` iff `q⃗ ∈ span_ℚ{v⃗ : v ∈ V}`.
//!
//! The answer comes with the full analysis (retained views, basis, vectors,
//! and — when determined — explicit span coefficients realising Example 32's
//! "q(D) = Π v(D)^{αᵥ}" rewriting), so callers can inspect *why*.

use crate::session::{DecisionContext, FrozenQuery};
use cqdet_failpoint::fail_point;
use cqdet_linalg::{QVec, Rat};
use cqdet_parallel::{par_map, Budget, CancelToken, Exhausted, Expired, Gas, Interrupt};
use cqdet_query::cq::common_schema;
use cqdet_query::ConjunctiveQuery;
use cqdet_structure::{dedup_up_to_iso_refs, BasisIndex, Schema, Structure};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Why an instance cannot be handled by the Theorem 3 procedure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeterminacyError {
    /// The query has free variables; Theorem 3 is about boolean CQs.
    QueryNotBoolean(String),
    /// Some view has free variables.
    ViewNotBoolean(String),
    /// A relation of arity zero occurs: Lemma 4's sum rules (and hence
    /// Observation 30) require every connected component to contain at least
    /// one variable.
    NullaryRelation(String),
    /// The request's [`CancelToken`] expired; the pipeline stopped at the
    /// named stage boundary (`"gate"`, `"basis"`, `"span"`) or inside the
    /// stage's kernels (which poll the token every ~4k fuel steps).
    DeadlineExceeded {
        /// The stage whose boundary check observed the expiry.
        stage: &'static str,
    },
    /// The request's fuel [`Budget`] ran out inside a kernel (hom search or
    /// exact elimination); the work done so far stays in the session caches,
    /// so a retry with a larger budget resumes rather than restarts.
    ResourceExhausted {
        /// Which ledger ran out: `"steps"` or `"bytes"`.
        what: &'static str,
        /// Total charged against the budget when the check fired.
        spent: u64,
        /// The configured limit.
        limit: u64,
    },
    /// An internal invariant of the pipeline failed — a bug, not a property
    /// of the instance; reported as data instead of a panic so a serving
    /// process survives it.
    Internal(String),
}

impl fmt::Display for DeterminacyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeterminacyError::QueryNotBoolean(n) => {
                write!(
                    f,
                    "query {n} is not boolean (Theorem 3 handles boolean CQs)"
                )
            }
            DeterminacyError::ViewNotBoolean(n) => {
                write!(f, "view {n} is not boolean (Theorem 3 handles boolean CQs)")
            }
            DeterminacyError::NullaryRelation(r) => {
                write!(
                    f,
                    "relation {r} has arity 0; the component basis requires positive arities"
                )
            }
            DeterminacyError::DeadlineExceeded { stage } => {
                write!(f, "deadline exceeded at stage {stage}")
            }
            DeterminacyError::ResourceExhausted { what, spent, limit } => {
                write!(
                    f,
                    "fuel {what} budget exhausted ({spent} spent, limit {limit})"
                )
            }
            DeterminacyError::Internal(message) => write!(f, "internal error: {message}"),
        }
    }
}

impl std::error::Error for DeterminacyError {}

impl From<Expired> for DeterminacyError {
    fn from(e: Expired) -> DeterminacyError {
        DeterminacyError::DeadlineExceeded { stage: e.stage }
    }
}

impl From<Exhausted> for DeterminacyError {
    fn from(e: Exhausted) -> DeterminacyError {
        DeterminacyError::ResourceExhausted {
            what: e.what,
            spent: e.spent,
            limit: e.limit,
        }
    }
}

impl From<Interrupt> for DeterminacyError {
    fn from(i: Interrupt) -> DeterminacyError {
        match i {
            Interrupt::Expired(e) => e.into(),
            Interrupt::Exhausted(e) => e.into(),
        }
    }
}

/// The outcome of the Theorem 3 decision procedure, with the full analysis.
#[derive(Debug, Clone)]
pub struct BagDeterminacy {
    /// Whether `V₀ ⟶_bag q`.
    pub determined: bool,
    /// The common schema over which everything was frozen.
    pub schema: Schema,
    /// Indices (into the input slice) of the retained views
    /// `V = {v ∈ V₀ : q ⊆_set v}`.
    pub retained_views: Vec<usize>,
    /// The basis `W`: pairwise non-isomorphic connected components of
    /// `Σ_{v ∈ V ∪ {q}} v`, as structures.
    pub basis: Vec<Structure>,
    /// The vector representation `q⃗` of the query.
    pub query_vector: QVec,
    /// The vector representations `v⃗` of the retained views (same order as
    /// `retained_views`).
    pub view_vectors: Vec<QVec>,
    /// When determined: rational coefficients `α⃗` with
    /// `q⃗ = Σ αᵢ·v⃗ᵢ`, i.e. `q(D) = Π vᵢ(D)^{αᵢ}` whenever no `vᵢ(D)` is zero
    /// (Lemma 31 (⇐), Example 32).
    pub coefficients: Option<QVec>,
}

impl BagDeterminacy {
    /// The dimension `k = |W|` of the basis.
    pub fn basis_size(&self) -> usize {
        self.basis.len()
    }

    /// Human-readable rendition of the rewriting `q(D) = Π vᵢ(D)^{αᵢ}` when
    /// the instance is determined (and `None` otherwise).
    pub fn rewriting(&self, views: &[ConjunctiveQuery]) -> Option<String> {
        let coeffs = self.coefficients.as_ref()?;
        let mut parts = Vec::new();
        for (pos, &vi) in self.retained_views.iter().enumerate() {
            let c = &coeffs[pos];
            if c.is_zero() {
                continue;
            }
            parts.push(format!("{}(D)^({})", views[vi].name(), c));
        }
        if parts.is_empty() {
            Some("q(D) = 1".to_string())
        } else {
            Some(format!("q(D) = {}", parts.join(" · ")))
        }
    }
}

fn vector_of(basis: &BasisIndex, comps: &[Structure]) -> Result<QVec, DeterminacyError> {
    // Every component of a query in V' is isomorphic to a basis element by
    // construction (Definition 27); a miss here is a pipeline bug, surfaced
    // as a typed error so a serving process keeps running.
    let mult = basis.vector(comps).ok_or_else(|| {
        DeterminacyError::Internal(
            "a connected component matched no basis element (Definition 27 violated)".into(),
        )
    })?;
    Ok(QVec(
        mult.into_iter().map(|m| Rat::from_i64(m as i64)).collect(),
    ))
}

/// Decide whether `views ⟶_bag query` for boolean conjunctive queries
/// (Theorem 3).
///
/// Returns the decision together with the full analysis ([`BagDeterminacy`]).
///
/// One-shot wrapper around [`decide_bag_determinacy_in`] with a fresh
/// [`DecisionContext`]; batch callers deciding many related instances should
/// create one context (or a `cqdet-engine` session) and reuse it, so frozen
/// bodies, canonical keys and containment gates are shared across calls.
pub fn decide_bag_determinacy(
    views: &[ConjunctiveQuery],
    query: &ConjunctiveQuery,
) -> Result<BagDeterminacy, DeterminacyError> {
    decide_bag_determinacy_in(&DecisionContext::new(), views, query)
}

/// [`decide_bag_determinacy`] against session-owned caches: every
/// isomorphism-invariant intermediate — frozen bodies, canonical keys,
/// connected components, `q ⊆_set v` gates — is looked up in (and fills)
/// `cx`, so a batch of tasks sharing views pays for each class once.
pub fn decide_bag_determinacy_in(
    cx: &DecisionContext,
    views: &[ConjunctiveQuery],
    query: &ConjunctiveQuery,
) -> Result<BagDeterminacy, DeterminacyError> {
    decide_bag_determinacy_ctl(cx, views, query, &CancelToken::none())
}

/// [`decide_bag_determinacy_in`] under a request-scoped [`CancelToken`]:
/// the token is checked at every pipeline **stage boundary** (gate → basis →
/// span), so a request whose deadline passes stops at the next boundary with
/// [`DeterminacyError::DeadlineExceeded`] instead of running to completion.
/// Work already done on behalf of the request stays in the session caches —
/// a retry resumes from where the budget ran out.
pub fn decide_bag_determinacy_ctl(
    cx: &DecisionContext,
    views: &[ConjunctiveQuery],
    query: &ConjunctiveQuery,
    ctl: &CancelToken,
) -> Result<BagDeterminacy, DeterminacyError> {
    decide_bag_determinacy_budgeted(cx, views, query, ctl, &Budget::none())
}

/// [`decide_bag_determinacy_ctl`] under a fuel [`Budget`] as well: the hot
/// kernels (hom searches in the gate stage, exact/modular elimination in the
/// span stage) charge the shared step and byte ledgers as they work and stop
/// with [`DeterminacyError::ResourceExhausted`] within ~4k steps of the limit
/// — microseconds, not stage boundaries.  The same ~4k-step cadence also
/// polls `ctl`, so a passed deadline now surfaces *inside* a kernel as
/// [`DeterminacyError::DeadlineExceeded`] instead of waiting for the next
/// stage boundary.  As with deadlines, completed work stays in the session
/// caches: a retry with a larger budget resumes where the fuel ran out.
pub fn decide_bag_determinacy_budgeted(
    cx: &DecisionContext,
    views: &[ConjunctiveQuery],
    query: &ConjunctiveQuery,
    ctl: &CancelToken,
    budget: &Budget,
) -> Result<BagDeterminacy, DeterminacyError> {
    let prep = prepare(cx, views, query, ctl, budget)?;

    // Step 4: the Main Lemma's span test.  Duplicate columns do not change a
    // span, so the system is solved over one vector per class, through the
    // session's incremental echelon form (`DecisionContext::span_solve`):
    // vectors are inserted one at a time with early exit once q⃗ enters the
    // span, and the rows are cached per retained-class sequence, so batch
    // tasks sharing views never re-eliminate shared columns.
    //
    // A query-only basis element (position ≥ prefix_dim) short-circuits the
    // system: q⃗ has multiplicity ≥ 1 there while every view vector is 0, so
    // q⃗ cannot be in the span.
    ctl.check("span")?;
    fail_point!("decide/span", |msg| Err(DeterminacyError::Internal(msg)));
    let class_coefficients = if prep.class_vectors.is_empty() {
        prep.query_vector.is_zero().then(|| QVec(Vec::new()))
    } else if !prep.covered() {
        debug_assert!(
            (prep.prefix_dim..prep.basis.len()).all(|j| !prep.query_vector[j].is_zero()),
            "tail basis elements exist only because q contributed them"
        );
        None
    } else {
        let key = prep.span_key(cx);
        cx.span_solve_gas(
            &key,
            &prep.class_vectors,
            &prep.query_vector,
            &mut Gas::new(ctl, budget, "span"),
        )?
    };
    Ok(finish(prep, class_coefficients))
}

/// Everything the Theorem 3 pipeline computes *before* the span test:
/// validation, freezing, class interning, the Definition 25 gate, the
/// Definition 27 basis and the Definition 29 vectors.  Shared between the
/// one-shot decision above and the mutable-session redecide path
/// ([`crate::delta::MutableSession`]), which substitutes its own long-lived
/// echelon for the span cache — both paths scatter coefficients through
/// [`finish`], so their certificates agree byte for byte by construction.
pub(crate) struct Prepared {
    pub(crate) schema: Schema,
    /// Indices (into the input slice) of the retained views.
    pub(crate) retained_views: Vec<usize>,
    /// The Definition 27 basis in first-occurrence order (view-contributed
    /// prefix first).
    pub(crate) basis: Vec<Structure>,
    /// Length of the view-contributed basis prefix.
    pub(crate) prefix_dim: usize,
    pub(crate) query_vector: QVec,
    pub(crate) view_vectors: Vec<QVec>,
    /// One Definition 29 vector per retained class, pipeline order — the
    /// span system's generators.
    pub(crate) class_vectors: Vec<QVec>,
    /// Session-wide class ids of the retained classes, same order as
    /// `class_vectors` — the generator-slot layout of a session echelon.
    pub(crate) retained_class_ids: Vec<u32>,
    /// Per input view: its call-local class index.
    pub(crate) class_of: Vec<usize>,
    /// Per call-local class: its row in `class_vectors` (`usize::MAX` when
    /// the class was not retained).
    pub(crate) retained_pos: Vec<usize>,
    /// Number of call-local classes.
    pub(crate) reps_len: usize,
}

impl Prepared {
    /// Whether every basis element is view-contributed (no query-only tail):
    /// only then does the span system run; otherwise q⃗ is trivially outside.
    pub(crate) fn covered(&self) -> bool {
        self.basis.len() == self.prefix_dim
    }

    /// Session-wide class ids of the basis elements in coordinate order —
    /// the coordinate layout of a session echelon.  Only meaningful to
    /// compute when the span system will actually run.
    pub(crate) fn coord_class_ids(&self, cx: &DecisionContext) -> Vec<u32> {
        self.basis
            .iter()
            .map(|w| cx.class_id(&w.iso_class_key()))
            .collect()
    }

    /// The span-cache key: the retained class-id sequence pins the columns,
    /// and the appended basis class ids (behind a separator no real id can
    /// collide with) pin the *coordinate order* — isomorphic view bodies
    /// written with different atom orders can enumerate their components
    /// differently, and a cached echelon row must only be reused against
    /// vectors expressed over the same basis order.
    pub(crate) fn span_key(&self, cx: &DecisionContext) -> Vec<u32> {
        let mut key = self.retained_class_ids.clone();
        key.push(u32::MAX);
        key.extend(self.coord_class_ids(cx));
        key
    }
}

/// Stages 0–3 of the pipeline (see [`Prepared`]); the caller supplies the
/// span verdict and scatters it through [`finish`].
pub(crate) fn prepare(
    cx: &DecisionContext,
    views: &[ConjunctiveQuery],
    query: &ConjunctiveQuery,
    ctl: &CancelToken,
    budget: &Budget,
) -> Result<Prepared, DeterminacyError> {
    if !query.is_boolean() {
        return Err(DeterminacyError::QueryNotBoolean(query.name().to_string()));
    }
    for v in views {
        if !v.is_boolean() {
            return Err(DeterminacyError::ViewNotBoolean(v.name().to_string()));
        }
    }
    let all: Vec<&ConjunctiveQuery> = views.iter().chain(std::iter::once(query)).collect();
    let schema = common_schema(&all);
    for (rel, arity) in schema.relations() {
        if arity == 0 {
            return Err(DeterminacyError::NullaryRelation(rel.to_string()));
        }
    }

    // Freeze every query exactly once over the common schema — or reuse the
    // session's frozen copy when an earlier call already did.  All later
    // steps (containment, components, vectors) reuse the frozen bodies.
    // Every per-view stage from here on fans out over scoped threads
    // (`cqdet_parallel::par_map`, serial below its cutoff): each view is
    // independent until the basis is assembled, and the shared state
    // (schema, context caches, basis) is `Sync`.
    let q_frozen = cx.frozen(&schema, query);
    let view_frozen: Vec<Arc<FrozenQuery>> = par_map(views, |v| cx.frozen(&schema, v));

    // Intern the frozen bodies by isomorphism class: every remaining
    // per-view quantity (the ⊆_set gate, the component decomposition, the
    // multiplicity vector) is isomorphism-invariant, so it is computed once
    // per class and shared by all views of the class.  Classes are named by
    // the session-wide table (`DecisionContext::class_id`), then compressed
    // to call-local indices; canonization itself happened (in parallel, or
    // in an earlier call) when the frozen entries were constructed.
    let mut class_of: Vec<usize> = Vec::with_capacity(views.len());
    let mut reps: Vec<usize> = Vec::new(); // class → first view with that body
    let mut class_session_ids: Vec<u32> = Vec::new(); // class → session-wide id
    let mut intern: HashMap<u32, usize> = HashMap::new();
    for (i, frozen) in view_frozen.iter().enumerate() {
        let session_id = cx.class_id(frozen.iso_key());
        let next = reps.len();
        let c = *intern.entry(session_id).or_insert(next);
        if c == next {
            reps.push(i);
            class_session_ids.push(session_id);
        }
        class_of.push(c);
    }

    // Step 1: V = {v ∈ V₀ | q ⊆_set v}  (Definition 25):
    // q ⊆_set v  iff  hom(v, q) ≠ ∅ — one search per (class, query class),
    // cached across the session.
    ctl.check("gate")?;
    fail_point!("decide/gate", |msg| Err(DeterminacyError::Internal(msg)));
    let rep_frozen: Vec<&FrozenQuery> = reps.iter().map(|&i| &*view_frozen[i]).collect();
    // Each parallel worker meters its search through its own gas handle; the
    // handles share one ledger (the request budget), so the limit bounds the
    // *total* work of the fan-out, not per-view work.
    let class_retained: Vec<bool> = par_map(&rep_frozen, |f| {
        cx.gate_gas(f, &q_frozen, &mut Gas::new(ctl, budget, "gate"))
    })
    .into_iter()
    .collect::<Result<_, _>>()?;
    let retained_views: Vec<usize> = (0..views.len())
        .filter(|&i| class_retained[class_of[i]])
        .collect();
    let retained_classes: Vec<usize> = (0..reps.len()).filter(|&c| class_retained[c]).collect();

    // Step 2: the basis W (Definition 27) over V' = V ∪ {q}, with the
    // connected components of each class computed exactly once per session
    // (cached on the shared `FrozenQuery` entries).
    ctl.check("basis")?;
    fail_point!("decide/basis", |msg| Err(DeterminacyError::Internal(msg)));
    let retained_rep_frozen: Vec<&FrozenQuery> =
        retained_classes.iter().map(|&c| rep_frozen[c]).collect();
    let class_comps: Vec<&[Structure]> = par_map(&retained_rep_frozen, |f| f.components());
    let q_comps = q_frozen.components();
    // Warm every component's canonical key in parallel, then de-duplicate by
    // key ([`cqdet_structure::dedup_up_to_iso`]'s exact first-occurrence
    // semantics) cloning only the basis members; the clones share the cached
    // keys with their originals (and with every other task holding the same
    // frozen entries), so the multiplicity vectors below are pure hash
    // lookups.
    {
        let all: Vec<&Structure> = class_comps
            .iter()
            .flat_map(|c| c.iter())
            .chain(q_comps.iter())
            .collect();
        par_map(&all, |c| {
            c.iso_class_key();
        });
    }
    // First-occurrence order lists every view-contributed basis element
    // before any query-only one: the first `prefix_dim` elements (the
    // *prefix basis*) are exactly the classes of the retained views'
    // components, so they — and the view vectors over them — are
    // independent of the query.  That is what makes the span system
    // shareable across tasks below.  One dedup pass builds both: the
    // prefix length is recorded after the view components, then the query
    // components extend the same first-occurrence scan.
    let (basis, prefix_dim) = {
        let view_refs = dedup_up_to_iso_refs(class_comps.iter().flat_map(|c| c.iter()));
        let prefix_dim = view_refs.len();
        let refs = dedup_up_to_iso_refs(view_refs.into_iter().chain(q_comps.iter()));
        let basis: Vec<Structure> = refs.into_iter().cloned().collect();
        (basis, prefix_dim)
    };

    // Step 3: vector representations (Definition 29), one per class, via a
    // canonical-key index over the basis built exactly once.
    let basis_index = BasisIndex::new(&basis);
    let class_vectors: Vec<QVec> = par_map(&class_comps, |comps| vector_of(&basis_index, comps))
        .into_iter()
        .collect::<Result<_, _>>()?;
    let query_vector = vector_of(&basis_index, q_comps)?;
    let mut retained_pos = vec![usize::MAX; reps.len()]; // class → row in class_vectors
    for (p, &c) in retained_classes.iter().enumerate() {
        retained_pos[c] = p;
    }
    let view_vectors: Vec<QVec> = retained_views
        .iter()
        .map(|&i| class_vectors[retained_pos[class_of[i]]].clone())
        .collect();

    let retained_class_ids: Vec<u32> = retained_classes
        .iter()
        .map(|&c| class_session_ids[c])
        .collect();
    Ok(Prepared {
        schema,
        retained_views,
        basis,
        prefix_dim,
        query_vector,
        view_vectors,
        class_vectors,
        retained_class_ids,
        class_of,
        retained_pos,
        reps_len: reps.len(),
    })
}

/// Scatter the span verdict over the retained views and assemble the final
/// analysis.  `class_coefficients` is the solution over
/// [`Prepared::class_vectors`] (or `None` when q⃗ is outside the span); each
/// class coefficient lands on the first retained view of its class, the
/// other members get 0 (any distribution over equal vectors realises the
/// same combination).
pub(crate) fn finish(prep: Prepared, class_coefficients: Option<QVec>) -> BagDeterminacy {
    let Prepared {
        schema,
        retained_views,
        basis,
        query_vector,
        view_vectors,
        class_of,
        retained_pos,
        reps_len,
        ..
    } = prep;
    let determined = class_coefficients.is_some();
    let coefficients = class_coefficients.map(|cc| {
        let mut out = vec![Rat::zero(); retained_views.len()];
        let mut placed = vec![false; reps_len];
        for (pos, &i) in retained_views.iter().enumerate() {
            let c = class_of[i];
            if !placed[c] {
                placed[c] = true;
                out[pos] = cc[retained_pos[c]].clone();
            }
        }
        QVec(out)
    });

    BagDeterminacy {
        determined,
        schema,
        retained_views,
        basis,
        query_vector,
        view_vectors,
        coefficients,
    }
}

/// Corollary 33: if all queries involved are *connected*, the only non-trivial
/// way to be determined is to literally contain (a query set-isomorphic to)
/// `q` among the views.
///
/// This is a convenience wrapper around [`decide_bag_determinacy`] that also
/// reports whether the corollary's hypothesis applies.
pub fn connected_case(
    views: &[ConjunctiveQuery],
    query: &ConjunctiveQuery,
) -> Result<(bool, bool), DeterminacyError> {
    let all_connected = query.is_connected() && views.iter().all(|v| v.is_connected());
    let result = decide_bag_determinacy(views, query)?;
    Ok((all_connected, result.determined))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqdet_query::cq::Atom;

    fn atom(rel: &str, vars: &[&str]) -> Atom {
        Atom::new(rel, vars)
    }

    fn edge(name: &str) -> ConjunctiveQuery {
        ConjunctiveQuery::boolean(name, vec![atom("R", &["x", "y"])])
    }

    fn two_path(name: &str) -> ConjunctiveQuery {
        ConjunctiveQuery::boolean(name, vec![atom("R", &["x", "y"]), atom("R", &["y", "z"])])
    }

    #[test]
    fn query_among_views_is_determined() {
        let q = edge("q");
        let v = edge("v");
        let res = decide_bag_determinacy(&[v], &q).unwrap();
        assert!(res.determined);
        assert_eq!(res.retained_views, vec![0]);
        assert_eq!(res.basis_size(), 1);
        assert_eq!(res.coefficients.as_ref().unwrap()[0], Rat::one());
    }

    #[test]
    fn single_different_connected_view_does_not_determine() {
        // Corollary 33: connected views determine a connected q only if q ∈ V₀.
        let q = edge("q");
        let v = two_path("v");
        let res = decide_bag_determinacy(std::slice::from_ref(&v), &q).unwrap();
        assert!(!res.determined);
        let (hypothesis, determined) = connected_case(&[v], &q).unwrap();
        assert!(hypothesis);
        assert!(!determined);
    }

    #[test]
    fn example_32_style_span_instance() {
        // q  = w1 + w2 + 2*w3, v1 = 2*w1 + w2 + 3*w3, v2 = 5*w1 + 2*w2 + 7*w3
        // with w1 = R-edge, w2 = R-loop, w3 = 2-path; q⃗ = 3·v⃗1 − v⃗2.
        fn raw(rel: &str, a: String, b: String) -> Atom {
            Atom {
                relation: rel.to_string(),
                vars: vec![a, b],
            }
        }
        fn copies(template: &[(&str, usize)], tag: &str) -> Vec<Atom> {
            // template entries: ("edge"|"loop"|"path2", count)
            let mut atoms = Vec::new();
            for (kind, count) in template {
                for i in 0..*count {
                    match *kind {
                        "edge" => {
                            atoms.push(raw("R", format!("{tag}e{i}x"), format!("{tag}e{i}y")))
                        }
                        "loop" => atoms.push(raw("R", format!("{tag}l{i}"), format!("{tag}l{i}"))),
                        "path2" => {
                            atoms.push(raw("R", format!("{tag}p{i}x"), format!("{tag}p{i}y")));
                            atoms.push(raw("R", format!("{tag}p{i}y"), format!("{tag}p{i}z")));
                        }
                        _ => unreachable!(),
                    }
                }
            }
            atoms
        }
        let q =
            ConjunctiveQuery::boolean("q", copies(&[("edge", 1), ("loop", 1), ("path2", 2)], "q"));
        let v1 = ConjunctiveQuery::boolean(
            "v1",
            copies(&[("edge", 2), ("loop", 1), ("path2", 3)], "v1"),
        );
        let v2 = ConjunctiveQuery::boolean(
            "v2",
            copies(&[("edge", 5), ("loop", 2), ("path2", 7)], "v2"),
        );
        let res = decide_bag_determinacy(&[v1, v2], &q).unwrap();
        assert!(res.determined, "q⃗ = 3·v⃗1 − v⃗2 is in the span");
        assert_eq!(res.basis_size(), 3);
        let coeffs = res.coefficients.clone().unwrap();
        assert_eq!(coeffs[0], Rat::from_i64(3));
        assert_eq!(coeffs[1], Rat::from_i64(-1));
        assert!(res
            .rewriting(&[edge("v1"), edge("v2")])
            .unwrap()
            .contains("v1(D)^(3)"));
    }

    #[test]
    fn views_not_containing_q_are_dropped() {
        // v uses a different relation S, so q ⊄_set v and v is dropped; the
        // remaining (empty) view set cannot determine q.
        let q = edge("q");
        let v = ConjunctiveQuery::boolean("v", vec![atom("S", &["x", "y"])]);
        let res = decide_bag_determinacy(&[v], &q).unwrap();
        assert!(res.retained_views.is_empty());
        assert!(!res.determined);
    }

    #[test]
    fn example_42_shape_instance_not_determined() {
        // The shape of Example 42: q = w1, V₀ = {w2}, where w1 ⊆_set w2, both
        // are connected and non-isomorphic.  Then W = {w1, w2}, V = V₀, and
        // q⃗ = (1,0) ∉ span{(0,1)} — not determined (the Main Lemma), even
        // though every structure satisfying q satisfies the view.
        let w1 = ConjunctiveQuery::boolean(
            "w1",
            vec![atom("Red", &["a", "b"]), atom("Green", &["b", "b"])],
        );
        let w2 = ConjunctiveQuery::boolean(
            "w2",
            vec![
                atom("Red", &["a", "b"]),
                atom("Green", &["b", "b"]),
                atom("Green", &["b", "c"]),
            ],
        );
        let res = decide_bag_determinacy(&[w2], &w1).unwrap();
        assert_eq!(res.retained_views, vec![0], "w1 ⊆_set w2");
        assert_eq!(res.basis_size(), 2);
        assert!(!res.determined);
    }

    #[test]
    fn multiple_views_spanning() {
        // q = 2 disjoint edges; v1 = edge; determined: q⃗ = 2·v⃗1.
        let q =
            ConjunctiveQuery::boolean("q", vec![atom("R", &["x", "y"]), atom("R", &["z", "w"])]);
        let v1 = edge("v1");
        let res = decide_bag_determinacy(&[v1], &q).unwrap();
        assert!(res.determined);
        assert_eq!(res.coefficients.as_ref().unwrap()[0], Rat::from_i64(2));
    }

    #[test]
    fn errors_for_non_boolean_and_nullary() {
        let unary = ConjunctiveQuery::new("u", &["x"], vec![atom("R", &["x", "y"])]);
        let q = edge("q");
        assert!(matches!(
            decide_bag_determinacy(&[], &unary),
            Err(DeterminacyError::QueryNotBoolean(_))
        ));
        assert!(matches!(
            decide_bag_determinacy(&[unary], &q),
            Err(DeterminacyError::ViewNotBoolean(_))
        ));
        let nullary = ConjunctiveQuery::boolean("n", vec![Atom::new("H", &[])]);
        let err = decide_bag_determinacy(&[nullary], &q).unwrap_err();
        assert!(matches!(err, DeterminacyError::NullaryRelation(_)));
        assert!(err.to_string().contains("arity 0"));
    }

    #[test]
    fn empty_view_set() {
        let q = edge("q");
        let res = decide_bag_determinacy(&[], &q).unwrap();
        assert!(!res.determined);
        assert!(res.retained_views.is_empty());
        assert_eq!(res.basis_size(), 1);
    }

    #[test]
    fn span_basis_is_reused_across_shared_view_tasks() {
        // Two tasks over the same views: the second solves its span system
        // against the first task's cached incremental echelon (hit counter)
        // and no column is re-eliminated.  A third task with different
        // views misses.
        let cx = DecisionContext::new();
        let views = [edge("v1"), two_path("v2")];
        // Both queries contain an edge and a 2-path component, so both
        // retain both views and share the cache key.
        let q1 = ConjunctiveQuery::boolean(
            "q1",
            vec![
                atom("R", &["x", "y"]),
                atom("R", &["a", "b"]),
                atom("R", &["b", "c"]),
            ],
        );
        let q2 = ConjunctiveQuery::boolean(
            "q2",
            vec![
                atom("R", &["x", "y"]),
                atom("R", &["z", "w"]),
                atom("R", &["a", "b"]),
                atom("R", &["b", "c"]),
            ],
        );
        let r1 = decide_bag_determinacy_in(&cx, &views, &q1).unwrap();
        assert!(r1.determined);
        let stats = cx.stats();
        assert_eq!((stats.span_hits, stats.span_misses), (0, 1));
        let r2 = decide_bag_determinacy_in(&cx, &views, &q2).unwrap();
        assert!(r2.determined);
        let stats = cx.stats();
        assert_eq!((stats.span_hits, stats.span_misses), (1, 1));
        // Same instance again: pure reuse.
        let r1b = decide_bag_determinacy_in(&cx, &views, &q1).unwrap();
        assert_eq!(r1b.coefficients.unwrap(), r1.coefficients.unwrap());
        assert_eq!(cx.stats().span_hits, 2);
        // A different view pool starts a fresh basis.
        let other = [two_path("w")];
        let _ = decide_bag_determinacy_in(&cx, &other, &two_path("q")).unwrap();
        assert_eq!(cx.stats().span_misses, 2);
    }

    #[test]
    fn span_cache_is_coordinate_order_safe() {
        // Two isomorphic view bodies written with different atom orders
        // share a session class id but can enumerate their connected
        // components — and hence the basis prefix coordinates — in
        // different orders.  The span cache must not reduce one task's
        // target against echelon rows built in the other task's coordinate
        // system (regression: a permuted reuse returned `determined =
        // false` for a query identical to its own view).
        let cx = DecisionContext::new();
        let edge_first = vec![
            atom("R", &["x", "y"]),
            atom("R", &["z", "w"]),
            atom("R", &["l", "l"]),
        ];
        let loop_first = vec![
            atom("R", &["l", "l"]),
            atom("R", &["a", "b"]),
            atom("R", &["c", "d"]),
        ];
        let v1 = ConjunctiveQuery::boolean("v1", edge_first.clone());
        let q1 = ConjunctiveQuery::boolean("q1", edge_first);
        let r1 = decide_bag_determinacy_in(&cx, &[v1], &q1).unwrap();
        assert!(r1.determined, "a query equal to its view is determined");
        let v2 = ConjunctiveQuery::boolean("v2", loop_first.clone());
        let q2 = ConjunctiveQuery::boolean("q2", loop_first);
        let r2 = decide_bag_determinacy_in(&cx, &[v2], &q2).unwrap();
        assert!(
            r2.determined,
            "isomorphic instance must not be corrupted by a permuted cached basis"
        );
        assert_eq!(r2.coefficients.unwrap()[0], Rat::one());
    }

    #[test]
    fn query_only_basis_elements_short_circuit_the_span() {
        // The query has a component (an R-loop) no view shares: the span
        // test must reject without consulting the cached basis.
        let cx = DecisionContext::new();
        let views = [edge("v")];
        let q =
            ConjunctiveQuery::boolean("q", vec![atom("R", &["x", "y"]), atom("R", &["l", "l"])]);
        let res = decide_bag_determinacy_in(&cx, &views, &q).unwrap();
        assert!(!res.determined);
        assert_eq!(res.basis_size(), 2);
        let stats = cx.stats();
        assert_eq!(
            (stats.span_hits, stats.span_misses),
            (0, 0),
            "tail short-circuit must not touch the span cache"
        );
    }

    #[test]
    fn tiny_fuel_budget_stops_typed_and_caches_stay_usable() {
        // hom(K8, K7) is empty (no proper 7-colouring of K8) but the
        // backtracking search visits >10k candidate extensions before it can
        // say so — plenty to trip a tiny step budget inside the gate stage.
        fn clique(name: &str, n: usize) -> ConjunctiveQuery {
            let mut atoms = Vec::new();
            for i in 0..n {
                for j in 0..n {
                    if i != j {
                        atoms.push(Atom {
                            relation: "R".to_string(),
                            vars: vec![format!("x{i}"), format!("x{j}")],
                        });
                    }
                }
            }
            ConjunctiveQuery::boolean(name, atoms)
        }
        let cx = DecisionContext::new();
        let v = clique("v", 8);
        let q = clique("q", 7);
        let tiny = Budget::with_limits(Some(64), None);
        let err = decide_bag_determinacy_budgeted(
            &cx,
            std::slice::from_ref(&v),
            &q,
            &CancelToken::none(),
            &tiny,
        )
        .unwrap_err();
        match err {
            DeterminacyError::ResourceExhausted { what, spent, limit } => {
                assert_eq!(what, "steps");
                assert_eq!(limit, 64);
                assert!(spent >= limit, "{spent} charged against limit {limit}");
            }
            other => panic!("expected ResourceExhausted, got {other:?}"),
        }
        // The interrupted search must not have poisoned the session caches:
        // the same context completes the instance unmetered...
        let res = decide_bag_determinacy_in(&cx, std::slice::from_ref(&v), &q).unwrap();
        assert!(res.retained_views.is_empty(), "hom(K8, K7) is empty");
        assert!(!res.determined);
        // ...and a generous budget on a fresh context matches the unbudgeted
        // answer while actually charging fuel.
        let cx2 = DecisionContext::new();
        let generous = Budget::with_limits(Some(100_000_000), None);
        let res2 = decide_bag_determinacy_budgeted(
            &cx2,
            std::slice::from_ref(&v),
            &q,
            &CancelToken::none(),
            &generous,
        )
        .unwrap();
        assert_eq!(res2.determined, res.determined);
        assert_eq!(res2.retained_views, res.retained_views);
        assert!(generous.steps_spent() > 0, "the gate search charged fuel");
    }

    #[test]
    fn bag_determinacy_implies_set_but_not_conversely_example_2_boolean_variant() {
        // Boolean analogue of Example 2's phenomenon: V determines q under set
        // semantics (q ⊨ both views and their "join" recovers q's satisfaction
        // on the canonical structures) but not under bag semantics.
        let q = ConjunctiveQuery::boolean(
            "q",
            vec![
                atom("P", &["u", "x"]),
                atom("R", &["x", "y"]),
                atom("S", &["y", "z"]),
            ],
        );
        let v1 =
            ConjunctiveQuery::boolean("v1", vec![atom("P", &["u", "x"]), atom("R", &["x", "y"])]);
        let v2 =
            ConjunctiveQuery::boolean("v2", vec![atom("R", &["x", "y"]), atom("S", &["y", "z"])]);
        let res = decide_bag_determinacy(&[v1, v2], &q).unwrap();
        // Both views are retained (q ⊆_set v1, v2) and the three queries are
        // connected and pairwise non-isomorphic, so by Corollary 33 the answer
        // is "not determined".
        assert_eq!(res.retained_views, vec![0, 1]);
        assert!(!res.determined);
    }
}
