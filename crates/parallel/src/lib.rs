//! Scoped-thread fan-out: a dependency-free `par_map` in the spirit of the
//! offline stand-ins under `crates/shims/` (the sandbox this workspace builds
//! in has no crates.io access, so no `rayon`).
//!
//! The model is deliberately minimal: [`par_map`] spreads one closure over a
//! slice using `std::thread::scope`, with workers pulling item indices from a
//! shared atomic cursor (natural load balancing when item costs are skewed,
//! which they are for per-view homomorphism searches).  Results come back in
//! input order.  Small inputs — and every input when `CQDET_SERIAL=1` is set
//! or the machine reports a single hardware thread — run inline on the
//! calling thread, so unit-test-sized workloads never pay thread spawn
//! latency and the escape hatch gives benchmarks a serial baseline.
//!
//! The decision procedure (`cqdet-core`) uses this to fan out its per-view
//! stages: query freezing, the `hom_exists` retention gate, connected-
//! component decomposition, and multiplicity-vector construction; the batch
//! engine (`cqdet-engine`) fans out across whole tasks.  Anything
//! shared read-only across workers (schemas, frozen bodies, the basis) only
//! needs `Sync`; per-structure lazy state (`flat()`, canonical keys) lives in
//! `OnceLock`s, which are safe to race on.
//!
//! **Nested fan-outs run inline.**  A [`par_map`] call made from inside a
//! [`par_map`] worker executes serially on that worker: the two levels of
//! the batch engine (tasks × views) would otherwise spawn `cores²` threads,
//! and per-thread state installed by the outer worker (the shared-cache
//! override of `cqdet-structure`) would not reach grandchild threads.  One
//! fan-out level — the outermost — always wins the hardware.
//!
//! ```
//! // Results come back in input order, whatever the interleaving was.
//! let squares = cqdet_parallel::par_map(&[1u64, 2, 3, 4], |x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

pub mod deadline;
pub mod fuel;
pub mod pool;

pub use deadline::{CancelToken, Expired};
pub use fuel::{Budget, Exhausted, Gas, Interrupt};
pub use pool::{BoundedQueue, TryPushError};

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Inputs shorter than this run inline: thread spawn latency (~tens of µs)
/// dwarfs per-item work on the unit-test-sized instances that dominate call
/// sites, and keeping them on the calling thread also keeps their
/// thread-local caches warm.
const SERIAL_CUTOFF: usize = 8;

thread_local! {
    /// Whether the current thread is itself a [`par_map`] worker.  Nested
    /// fan-outs run inline on their worker: without the guard, a batch-level
    /// fan-out (one worker per task, `cqdet-engine`) whose tasks each fan
    /// out their per-view stages would spawn `cores × cores` threads, and
    /// per-thread state installed on the worker (the shared-cache override
    /// of `cqdet-structure`) would not propagate to the grandchildren.
    static IS_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Whether the `CQDET_SERIAL=1` escape hatch is active (checked once).
fn serial_override() -> bool {
    static FLAG: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *FLAG.get_or_init(|| {
        std::env::var("CQDET_SERIAL")
            .map(|v| v == "1")
            .unwrap_or(false)
    })
}

/// The number of worker threads a fan-out may use (hardware parallelism,
/// `1` when it cannot be determined or `CQDET_SERIAL=1` is set).
///
/// Cached after the first call: `std::thread::available_parallelism` re-reads
/// cgroup limits from `/sys` every time, which costs ~10µs per call in a
/// container — far more than a small serial fan-out itself.
pub fn max_parallelism() -> usize {
    static CACHED: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *CACHED.get_or_init(|| {
        if serial_override() {
            return 1;
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Map `f` over `items`, in parallel when it pays, returning results in
/// input order.  Panics in `f` propagate to the caller.
///
/// Runs inline (no threads) when the input is shorter than the serial
/// cutoff, when the machine has a single hardware thread, when
/// `CQDET_SERIAL=1` is set, or when the caller is itself a `par_map`
/// worker (see the [module docs](self) on nesting).
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_indexed(items, |_, item| f(item))
}

/// [`par_map`] with the item index passed to the closure.
///
/// ```
/// let labelled = cqdet_parallel::par_map_indexed(&["a", "b"], |i, s| format!("{i}:{s}"));
/// assert_eq!(labelled, vec!["0:a", "1:b"]);
/// ```
pub fn par_map_indexed<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    let workers = max_parallelism().min(n);
    if n < SERIAL_CUTOFF || workers < 2 || IS_WORKER.with(Cell::get) {
        return items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut results: Vec<(usize, R)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    IS_WORKER.with(|w| w.set(true));
                    let mut local = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(i, &items[i])));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| match h.join() {
                Ok(local) => local,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    results.sort_unstable_by_key(|&(i, _)| i);
    results.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_serial_map_and_preserves_order() {
        for n in [0usize, 1, 7, 8, 9, 100, 1000] {
            let items: Vec<u64> = (0..n as u64).collect();
            let expected: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
            assert_eq!(par_map(&items, |x| x * x + 1), expected, "n={n}");
        }
    }

    #[test]
    fn indexed_variant_sees_correct_indices() {
        let items = vec!["a"; 64];
        let out = par_map_indexed(&items, |i, s| format!("{s}{i}"));
        for (i, v) in out.iter().enumerate() {
            assert_eq!(v, &format!("a{i}"));
        }
    }

    #[test]
    fn non_clone_results_are_supported() {
        struct NoClone(usize);
        let items: Vec<usize> = (0..50).collect();
        let out = par_map(&items, |&x| NoClone(x + 1));
        assert!(out.iter().enumerate().all(|(i, r)| r.0 == i + 1));
    }

    #[test]
    fn skewed_workloads_balance() {
        // Item cost varies by orders of magnitude; results must still be
        // complete and ordered.
        let items: Vec<u64> = (0..64).collect();
        let out = par_map(&items, |&x| {
            let spins = if x % 13 == 0 { 200_000 } else { 10 };
            (0..spins).fold(x, |acc, i| acc.wrapping_mul(31).wrapping_add(i))
        });
        let serial: Vec<u64> = items
            .iter()
            .map(|&x| {
                let spins = if x % 13 == 0 { 200_000 } else { 10 };
                (0..spins).fold(x, |acc, i| acc.wrapping_mul(31).wrapping_add(i))
            })
            .collect();
        assert_eq!(out, serial);
    }

    #[test]
    fn nested_fanouts_run_inline_on_workers() {
        // An outer fan-out's workers must not spawn their own worker pools:
        // the inner par_map runs inline, so per-thread state set up by the
        // outer worker (here a thread-local marker; in production the
        // shared-cache override) is visible to every inner item.
        thread_local! {
            static MARKER: Cell<u64> = const { Cell::new(0) };
        }
        let outer: Vec<u64> = (0..32).collect();
        let sums = par_map(&outer, |&x| {
            MARKER.with(|m| m.set(x + 1));
            let inner: Vec<u64> = (0..16).collect();
            let seen = par_map(&inner, |_| MARKER.with(Cell::get));
            assert!(
                seen.iter().all(|&v| v == x + 1),
                "inner items left the outer worker thread"
            );
            seen.iter().sum::<u64>()
        });
        for (x, s) in outer.iter().zip(&sums) {
            assert_eq!(*s, 16 * (x + 1));
        }
    }

    #[test]
    #[should_panic(expected = "boom 37")]
    fn worker_panics_propagate() {
        let items: Vec<usize> = (0..64).collect();
        let _ = par_map(&items, |&x| {
            if x == 37 {
                panic!("boom {x}");
            }
            x
        });
    }
}
