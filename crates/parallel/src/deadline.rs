//! Request-scoped deadlines and cooperative cancellation.
//!
//! The serving layers (`cqdet-engine`, `cqdet-service`) bound every request:
//! a [`CancelToken`] travels with the work and is **checked at pipeline stage
//! boundaries** (gate → basis → span → witness in the Theorem 3 pipeline),
//! so a request that blows its budget stops at the next boundary instead of
//! monopolising a worker.  Cancellation is cooperative — nothing is killed
//! mid-elimination — which keeps every cache the request touched consistent.
//!
//! The token is a cheap handle (`Clone` is an `Arc` bump; the never-cancelled
//! [`CancelToken::none`] doesn't allocate at all), so one-shot entry points
//! can thread it through without a cost on the hot path.
//!
//! ```
//! use cqdet_parallel::CancelToken;
//! use std::time::Duration;
//!
//! let token = CancelToken::with_deadline(Duration::from_secs(5));
//! assert!(token.check("gate").is_ok());
//!
//! let cancelled = CancelToken::new();
//! cancelled.cancel();
//! assert_eq!(cancelled.check("basis").unwrap_err().stage, "basis");
//!
//! // The free token never fires and costs nothing to clone.
//! assert!(CancelToken::none().check("span").is_ok());
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A cooperative cancellation signal raised when a token's deadline passes or
/// [`CancelToken::cancel`] is called.  Carries the pipeline stage at which
/// the work observed the signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Expired {
    /// The stage boundary where the check fired (`"gate"`, `"basis"`,
    /// `"span"`, `"witness"`, …).
    pub stage: &'static str,
}

impl std::fmt::Display for Expired {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deadline exceeded at stage {}", self.stage)
    }
}

impl std::error::Error for Expired {}

#[derive(Debug)]
struct TokenInner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

/// A shareable cancellation/deadline handle.  See the [module docs](self).
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    /// `None` = the never-cancelled token (no allocation, checks are free).
    inner: Option<Arc<TokenInner>>,
}

impl CancelToken {
    /// A token that never cancels — the default for one-shot entry points.
    pub fn none() -> CancelToken {
        CancelToken { inner: None }
    }

    /// A cancellable token with no deadline (fire it with
    /// [`CancelToken::cancel`]).
    #[allow(clippy::new_without_default)] // `default()` is `none()`, deliberately distinct
    pub fn new() -> CancelToken {
        CancelToken {
            inner: Some(Arc::new(TokenInner {
                cancelled: AtomicBool::new(false),
                deadline: None,
            })),
        }
    }

    /// A token that expires `budget` from now (and can also be cancelled
    /// early).
    pub fn with_deadline(budget: Duration) -> CancelToken {
        CancelToken::expiring_at(Instant::now() + budget)
    }

    /// A token that expires at `deadline`.
    pub fn expiring_at(deadline: Instant) -> CancelToken {
        CancelToken {
            inner: Some(Arc::new(TokenInner {
                cancelled: AtomicBool::new(false),
                deadline: Some(deadline),
            })),
        }
    }

    /// Raise the signal: every holder of this token (or a clone) observes
    /// expiry from its next check on.
    pub fn cancel(&self) {
        if let Some(inner) = &self.inner {
            inner.cancelled.store(true, Ordering::Relaxed);
        }
    }

    /// Whether the token has been cancelled or its deadline has passed.
    pub fn is_expired(&self) -> bool {
        match &self.inner {
            None => false,
            Some(inner) => {
                inner.cancelled.load(Ordering::Relaxed)
                    || inner.deadline.is_some_and(|d| Instant::now() >= d)
            }
        }
    }

    /// Stage-boundary check: `Err(Expired { stage })` once the token has
    /// expired, `Ok(())` before.  Free for the [`CancelToken::none`] token.
    pub fn check(&self, stage: &'static str) -> Result<(), Expired> {
        if self.is_expired() {
            Err(Expired { stage })
        } else {
            Ok(())
        }
    }

    /// Time left until the deadline (`None` for tokens without one; zero
    /// once it has passed or the token was cancelled).
    pub fn remaining(&self) -> Option<Duration> {
        let inner = self.inner.as_ref()?;
        if inner.cancelled.load(Ordering::Relaxed) {
            return Some(Duration::ZERO);
        }
        inner
            .deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_token_never_expires() {
        let t = CancelToken::none();
        assert!(!t.is_expired());
        assert!(t.check("gate").is_ok());
        assert_eq!(t.remaining(), None);
        t.cancel(); // no-op
        assert!(!t.is_expired());
    }

    #[test]
    fn cancellation_propagates_to_clones() {
        let t = CancelToken::new();
        let c = t.clone();
        assert!(c.check("basis").is_ok());
        t.cancel();
        let err = c.check("basis").unwrap_err();
        assert_eq!(err.stage, "basis");
        assert!(err.to_string().contains("basis"));
        assert_eq!(c.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn elapsed_deadline_fires() {
        let t = CancelToken::with_deadline(Duration::ZERO);
        assert!(t.is_expired());
        assert_eq!(t.check("span").unwrap_err().stage, "span");
        // A generous deadline does not fire.
        let slow = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(slow.check("span").is_ok());
        assert!(slow.remaining().unwrap() > Duration::from_secs(3000));
    }
}
