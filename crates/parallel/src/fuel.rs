//! Fuel-based resource governance for the decision kernels.
//!
//! Deadlines ([`CancelToken`]) are checked at pipeline *stage boundaries*,
//! which bounds how long a request holds a worker only as tightly as the
//! longest stage.  Determinacy is undecidable in general, so a single
//! pathological hom count or exact elimination can legitimately run for
//! seconds — the expected adversarial workload, not an edge case.  A
//! [`Budget`] closes that gap: a cheap shared step counter (plus byte
//! accounting for bigint growth) that the kernels charge from *inside* their
//! hot loops, so expiry and exhaustion surface within microseconds.
//!
//! The design mirrors [`CancelToken`]: a [`Budget`] is `Option<Arc<…>>`, so
//! the unlimited [`Budget::none`] costs nothing to clone or check, and one
//! budget shared across the scoped-thread fan-outs of `par_map` accounts
//! globally.  Kernels do not touch the shared atomics per iteration; they
//! hold a [`Gas`] handle that counts locally and flushes every
//! [`GAS_FLUSH_EVERY`] steps — one atomic add plus one limit compare plus
//! one deadline check per ~4k iterations.
//!
//! ```
//! use cqdet_parallel::{Budget, CancelToken, Gas, Interrupt};
//!
//! let budget = Budget::with_limits(Some(10_000), None);
//! let ctl = CancelToken::none();
//! let mut gas = Gas::new(&ctl, &budget, "span");
//! let mut stopped = None;
//! for _ in 0..1_000_000 {
//!     if let Err(stop) = gas.step() {
//!         stopped = Some(stop);
//!         break;
//!     }
//! }
//! match stopped {
//!     Some(Interrupt::Exhausted(e)) => {
//!         assert_eq!(e.what, "steps");
//!         assert!(e.spent >= e.limit);
//!     }
//!     other => panic!("expected exhaustion, got {other:?}"),
//! }
//! ```

use crate::deadline::{CancelToken, Expired};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// How many locally counted steps a [`Gas`] handle accumulates before it
/// touches the shared [`Budget`] atomics and the [`CancelToken`].  Power of
/// two so the check compiles to a mask test.
pub const GAS_FLUSH_EVERY: u64 = 4096;

/// A budget ran out.  Carries which ledger fired and the totals, so the
/// typed `resource_exhausted` wire error can report `{what, spent, limit}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exhausted {
    /// Which ledger was exhausted: `"steps"` or `"bytes"`.
    pub what: &'static str,
    /// Total charged against the budget when the limit check fired.
    pub spent: u64,
    /// The configured limit.
    pub limit: u64,
}

impl std::fmt::Display for Exhausted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "fuel {} budget exhausted ({} spent, limit {})",
            self.what, self.spent, self.limit
        )
    }
}

impl std::error::Error for Exhausted {}

/// Why a fuelled kernel stopped early: the request's deadline/cancellation
/// fired, or its fuel budget ran out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interrupt {
    /// The [`CancelToken`] expired (deadline or explicit cancel).
    Expired(Expired),
    /// The [`Budget`] ran out.
    Exhausted(Exhausted),
}

impl std::fmt::Display for Interrupt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Interrupt::Expired(e) => e.fmt(f),
            Interrupt::Exhausted(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for Interrupt {}

impl From<Expired> for Interrupt {
    fn from(e: Expired) -> Interrupt {
        Interrupt::Expired(e)
    }
}

impl From<Exhausted> for Interrupt {
    fn from(e: Exhausted) -> Interrupt {
        Interrupt::Exhausted(e)
    }
}

#[derive(Debug)]
struct BudgetInner {
    /// Step limit (`u64::MAX` = unlimited steps but byte-limited).
    step_limit: u64,
    /// Byte limit for bigint material (`u64::MAX` = unlimited).
    byte_limit: u64,
    steps: AtomicU64,
    bytes: AtomicU64,
}

/// A shareable per-request resource budget.  See the [module docs](self).
#[derive(Debug, Clone, Default)]
pub struct Budget {
    /// `None` = the unlimited budget (no allocation, charges are free).
    inner: Option<Arc<BudgetInner>>,
}

impl Budget {
    /// The unlimited budget — the default for one-shot entry points.
    pub fn none() -> Budget {
        Budget { inner: None }
    }

    /// A budget with the given limits.  `(None, None)` yields the unlimited
    /// budget (identical to [`Budget::none`]).
    pub fn with_limits(steps: Option<u64>, bytes: Option<u64>) -> Budget {
        if steps.is_none() && bytes.is_none() {
            return Budget::none();
        }
        Budget {
            inner: Some(Arc::new(BudgetInner {
                step_limit: steps.unwrap_or(u64::MAX),
                byte_limit: bytes.unwrap_or(u64::MAX),
                steps: AtomicU64::new(0),
                bytes: AtomicU64::new(0),
            })),
        }
    }

    /// Whether this is the unlimited budget.
    pub fn is_unlimited(&self) -> bool {
        self.inner.is_none()
    }

    /// The configured step limit, if any.
    pub fn step_limit(&self) -> Option<u64> {
        self.inner
            .as_ref()
            .map(|i| i.step_limit)
            .filter(|&l| l != u64::MAX)
    }

    /// The configured byte limit, if any.
    pub fn byte_limit(&self) -> Option<u64> {
        self.inner
            .as_ref()
            .map(|i| i.byte_limit)
            .filter(|&l| l != u64::MAX)
    }

    /// Steps charged so far across every holder of this budget.
    pub fn steps_spent(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.steps.load(Ordering::Relaxed))
    }

    /// Bytes charged so far across every holder of this budget.
    pub fn bytes_spent(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.bytes.load(Ordering::Relaxed))
    }

    /// Charge `steps` and `bytes` against the budget, failing once either
    /// ledger passes its limit.  Free for the unlimited budget.
    pub fn charge(&self, steps: u64, bytes: u64) -> Result<(), Exhausted> {
        let Some(inner) = &self.inner else {
            return Ok(());
        };
        let spent_steps = inner.steps.fetch_add(steps, Ordering::Relaxed) + steps;
        if spent_steps > inner.step_limit {
            return Err(Exhausted {
                what: "steps",
                spent: spent_steps,
                limit: inner.step_limit,
            });
        }
        let spent_bytes = inner.bytes.fetch_add(bytes, Ordering::Relaxed) + bytes;
        if spent_bytes > inner.byte_limit {
            return Err(Exhausted {
                what: "bytes",
                spent: spent_bytes,
                limit: inner.byte_limit,
            });
        }
        Ok(())
    }
}

/// A hot-loop metering handle: counts steps and bytes locally, flushing to
/// the shared [`Budget`] and checking the [`CancelToken`] every
/// [`GAS_FLUSH_EVERY`] steps.  Cheap to construct per kernel call (two
/// `Option<Arc>` clones); **not** shared across threads — each `par_map`
/// worker builds its own from the same budget/token pair.
#[derive(Debug, Clone)]
pub struct Gas {
    ctl: CancelToken,
    budget: Budget,
    stage: &'static str,
    pending_steps: u64,
    pending_bytes: u64,
}

impl Gas {
    /// A handle charging against `budget` under `ctl`, reporting expiry at
    /// `stage`.
    pub fn new(ctl: &CancelToken, budget: &Budget, stage: &'static str) -> Gas {
        Gas {
            ctl: ctl.clone(),
            budget: budget.clone(),
            stage,
            pending_steps: 0,
            pending_bytes: 0,
        }
    }

    /// The free handle: never expires, never exhausts.  The per-step cost is
    /// one local add and one mask test.
    pub fn unlimited() -> Gas {
        Gas::new(&CancelToken::none(), &Budget::none(), "")
    }

    /// A derived handle on the same budget and token, reporting a different
    /// stage label (for kernels that call sub-kernels).
    pub fn at_stage(&self, stage: &'static str) -> Gas {
        Gas::new(&self.ctl, &self.budget, stage)
    }

    /// Count one unit of kernel work (a candidate extension, a row
    /// operation).  Flushes every [`GAS_FLUSH_EVERY`] calls.
    #[inline]
    pub fn step(&mut self) -> Result<(), Interrupt> {
        self.pending_steps += 1;
        if self.pending_steps & (GAS_FLUSH_EVERY - 1) == 0 {
            self.flush()
        } else {
            Ok(())
        }
    }

    /// Count `n` units at once (a row operation over `n` entries).  Flushes
    /// whenever the local count crosses a [`GAS_FLUSH_EVERY`] boundary, so
    /// bulk charges keep the same check cadence as unit steps.
    #[inline]
    pub fn steps(&mut self, n: u64) -> Result<(), Interrupt> {
        let before = self.pending_steps;
        self.pending_steps += n;
        if (before / GAS_FLUSH_EVERY) != (self.pending_steps / GAS_FLUSH_EVERY) {
            self.flush()
        } else {
            Ok(())
        }
    }

    /// Account `n` bytes of bigint material (charged at the next flush).
    #[inline]
    pub fn charge_bytes(&mut self, n: u64) {
        self.pending_bytes += n;
    }

    /// Push the locally pending counts to the shared budget and check the
    /// cancel token.  Call once at kernel exit so tail work below the flush
    /// granularity is still accounted.
    pub fn flush(&mut self) -> Result<(), Interrupt> {
        if self.pending_steps != 0 || self.pending_bytes != 0 {
            self.budget.charge(self.pending_steps, self.pending_bytes)?;
            self.pending_steps = 0;
            self.pending_bytes = 0;
        }
        self.ctl.check(self.stage)?;
        Ok(())
    }
}

impl Default for Gas {
    fn default() -> Gas {
        Gas::unlimited()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn unlimited_budget_is_free_and_never_fires() {
        let b = Budget::none();
        assert!(b.is_unlimited());
        assert!(b.charge(u64::MAX, u64::MAX).is_ok());
        assert_eq!(b.steps_spent(), 0);
        assert_eq!(b.step_limit(), None);
        let mut gas = Gas::unlimited();
        for _ in 0..100_000 {
            assert!(gas.step().is_ok());
        }
        assert!(gas.flush().is_ok());
    }

    #[test]
    fn step_budget_fires_with_flush_granularity() {
        let b = Budget::with_limits(Some(10_000), None);
        let ctl = CancelToken::none();
        let mut gas = Gas::new(&ctl, &b, "hom");
        let mut taken = 0u64;
        let stop = loop {
            match gas.step() {
                Ok(()) => taken += 1,
                Err(stop) => break stop,
            }
            assert!(taken < 1_000_000, "budget never fired");
        };
        let Interrupt::Exhausted(e) = stop else {
            panic!("wrong interrupt: {stop:?}");
        };
        assert_eq!(e.what, "steps");
        assert_eq!(e.limit, 10_000);
        assert!(e.spent > 10_000 && e.spent <= 10_000 + GAS_FLUSH_EVERY);
        // The overshoot is bounded by one flush window.
        assert!(taken < 10_000 + GAS_FLUSH_EVERY);
    }

    #[test]
    fn bulk_steps_keep_the_flush_cadence() {
        let b = Budget::with_limits(Some(10_000), None);
        let ctl = CancelToken::none();
        let mut gas = Gas::new(&ctl, &b, "rref");
        let mut taken = 0u64;
        let stop = loop {
            match gas.steps(37) {
                Ok(()) => taken += 37,
                Err(stop) => break stop,
            }
            assert!(taken < 1_000_000, "budget never fired");
        };
        let Interrupt::Exhausted(e) = stop else {
            panic!("wrong interrupt: {stop:?}");
        };
        assert_eq!(e.what, "steps");
        // Same overshoot bound as unit stepping: one flush window + one charge.
        assert!(e.spent <= 10_000 + GAS_FLUSH_EVERY + 37);
    }

    #[test]
    fn byte_budget_fires() {
        let b = Budget::with_limits(None, Some(1 << 20));
        let ctl = CancelToken::none();
        let mut gas = Gas::new(&ctl, &b, "span");
        gas.charge_bytes(2 << 20);
        let err = gas.flush().unwrap_err();
        assert!(matches!(
            err,
            Interrupt::Exhausted(Exhausted { what: "bytes", .. })
        ));
        assert_eq!(b.bytes_spent(), 2 << 20);
    }

    #[test]
    fn shared_budget_accounts_across_handles() {
        let b = Budget::with_limits(Some(100), None);
        let ctl = CancelToken::none();
        let mut g1 = Gas::new(&ctl, &b, "a");
        let mut g2 = Gas::new(&ctl, &b, "b");
        for _ in 0..60 {
            let _ = g1.step();
            let _ = g2.step();
        }
        // Neither handle reached the flush window, so force both out.
        let r1 = g1.flush();
        let r2 = g2.flush();
        assert!(
            r1.is_err() || r2.is_err(),
            "120 shared steps over a 100-step budget must exhaust"
        );
        assert_eq!(b.steps_spent(), 120);
    }

    #[test]
    fn deadline_surfaces_through_gas() {
        let ctl = CancelToken::with_deadline(Duration::ZERO);
        let b = Budget::none();
        let mut gas = Gas::new(&ctl, &b, "basis");
        let mut fired = None;
        for _ in 0..2 * GAS_FLUSH_EVERY {
            if let Err(stop) = gas.step() {
                fired = Some(stop);
                break;
            }
        }
        match fired {
            Some(Interrupt::Expired(e)) => assert_eq!(e.stage, "basis"),
            other => panic!("expected expiry, got {other:?}"),
        }
    }

    #[test]
    fn exhaustion_reports_totals_and_renders() {
        let e = Exhausted {
            what: "steps",
            spent: 12_288,
            limit: 10_000,
        };
        let msg = e.to_string();
        assert!(msg.contains("steps") && msg.contains("12288") && msg.contains("10000"));
        let i: Interrupt = e.into();
        assert_eq!(i.to_string(), msg);
    }
}
