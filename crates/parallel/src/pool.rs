//! A bounded MPMC queue for fixed worker pools, dependency-free (no
//! crossbeam in the sandbox): a `Mutex<VecDeque>` with two condvars.
//!
//! The shape is deliberately asymmetric, matching the serve reactor that
//! motivated it (`cqdet-service`): producers are *non-blocking*
//! ([`BoundedQueue::try_push`] — an event loop must never park on a full
//! queue, it applies backpressure upstream instead), consumers *block*
//! ([`BoundedQueue::pop`] — worker threads sleep until work or close).
//! Blocking [`BoundedQueue::push`] exists for symmetric producer/consumer
//! pipelines.
//!
//! Closing the queue ([`BoundedQueue::close`]) wakes every sleeper: `pop`
//! drains what remains and then returns `None`, so a worker loop
//! `while let Some(job) = q.pop()` terminates exactly when the queue is
//! closed *and* empty — the graceful-shutdown contract of the serve loop.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, PoisonError};

/// Why a [`BoundedQueue::try_push`] was refused; the item comes back to the
/// caller either way.
#[derive(Debug, PartialEq, Eq)]
pub enum TryPushError<T> {
    /// The queue is at capacity; retry after consumers make room.
    Full(T),
    /// The queue was closed; no further items will ever be accepted.
    Closed(T),
}

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer multi-consumer FIFO.  See the [module
/// docs](self).
pub struct BoundedQueue<T> {
    state: Mutex<QueueState<T>>,
    /// Signalled when an item arrives or the queue closes (consumers wait).
    not_empty: Condvar,
    /// Signalled when an item leaves or the queue closes (producers wait).
    not_full: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue admitting at most `capacity` (≥ 1) queued items.
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        BoundedQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::with_capacity(capacity.max(1)),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Queue state is plain data (the items themselves); recover it from a
    /// poisoned lock rather than propagating a panicked peer.
    fn lock(&self) -> std::sync::MutexGuard<'_, QueueState<T>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Non-blocking enqueue: `Err(Full)` at capacity, `Err(Closed)` after
    /// [`BoundedQueue::close`]; the item is returned in both.
    pub fn try_push(&self, item: T) -> Result<(), TryPushError<T>> {
        let mut state = self.lock();
        if state.closed {
            return Err(TryPushError::Closed(item));
        }
        if state.items.len() >= self.capacity {
            return Err(TryPushError::Full(item));
        }
        state.items.push_back(item);
        drop(state);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocking enqueue: waits for room; `Err` (with the item) only if the
    /// queue closes while waiting.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut state = self.lock();
        loop {
            if state.closed {
                return Err(item);
            }
            if state.items.len() < self.capacity {
                state.items.push_back(item);
                drop(state);
                self.not_empty.notify_one();
                return Ok(());
            }
            state = self
                .not_full
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Blocking dequeue: waits for an item; `None` once the queue is closed
    /// **and** drained (the worker-loop termination signal).
    pub fn pop(&self) -> Option<T> {
        let mut state = self.lock();
        loop {
            if let Some(item) = state.items.pop_front() {
                drop(state);
                self.not_full.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self
                .not_empty
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Non-blocking dequeue.
    pub fn try_pop(&self) -> Option<T> {
        let mut state = self.lock();
        let item = state.items.pop_front();
        if item.is_some() {
            drop(state);
            self.not_full.notify_one();
        }
        item
    }

    /// Items currently queued (racy by nature; for monitoring and tests).
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// Whether the queue is currently empty (racy by nature).
    pub fn is_empty(&self) -> bool {
        self.lock().items.is_empty()
    }

    /// Close the queue: every waiting producer fails, every waiting consumer
    /// drains the remainder and then sees `None`.  Idempotent.
    pub fn close(&self) {
        self.lock().closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Whether [`BoundedQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn fifo_order_and_capacity() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.try_push(1), Ok(()));
        assert_eq!(q.try_push(2), Ok(()));
        assert_eq!(q.try_push(3), Err(TryPushError::Full(3)));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.try_push(3), Ok(()));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert!(q.is_empty());
    }

    #[test]
    fn close_drains_then_stops() {
        let q = BoundedQueue::new(4);
        q.try_push("a").unwrap();
        q.close();
        assert_eq!(q.try_push("b"), Err(TryPushError::Closed("b")));
        assert_eq!(q.push("c"), Err("c"));
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None, "close is sticky");
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let q = BoundedQueue::<u32>::new(1);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..3).map(|_| scope.spawn(|| q.pop())).collect();
            // Give the consumers a moment to park, then close.
            std::thread::sleep(std::time::Duration::from_millis(20));
            q.close();
            for h in handles {
                assert_eq!(h.join().unwrap(), None);
            }
        });
    }

    #[test]
    fn mpmc_under_contention_delivers_every_item_once() {
        let q = BoundedQueue::new(8);
        let produced = 4 * 500usize;
        let consumed = AtomicUsize::new(0);
        let sum = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for p in 0..4usize {
                let q = &q;
                scope.spawn(move || {
                    for i in 0..500usize {
                        q.push(p * 500 + i).unwrap();
                    }
                });
            }
            let consumers: Vec<_> = (0..3)
                .map(|_| {
                    let (q, consumed, sum) = (&q, &consumed, &sum);
                    scope.spawn(move || {
                        while let Some(v) = q.pop() {
                            consumed.fetch_add(1, Ordering::Relaxed);
                            sum.fetch_add(v, Ordering::Relaxed);
                        }
                    })
                })
                .collect();
            // Producers finish, then close; consumers drain the tail.
            // (The scope would deadlock if close didn't wake them.)
            scope.spawn(|| {
                // Wait for all items to be produced before closing: the
                // producers' joins happen at scope exit, so poll the count.
                while consumed.load(Ordering::Relaxed) + q.len() < produced {
                    std::thread::yield_now();
                }
                q.close();
            });
            for c in consumers {
                c.join().unwrap();
            }
        });
        assert_eq!(consumed.load(Ordering::Relaxed), produced);
        assert_eq!(sum.load(Ordering::Relaxed), (0..produced).sum::<usize>());
    }
}
