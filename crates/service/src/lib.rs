//! # cqdet-service — the unified typed request/response API
//!
//! Everything the workspace can do — bag determinacy (Theorem 3), batches,
//! path queries (Theorem 1), the Hilbert-Tenth reduction (Theorem 2),
//! narrated explanations, statistics — behind **one** typed protocol:
//!
//! * [`Request`] / [`RequestKind`] — one variant per workload family, with
//!   JSON-lines decoding (ids for pipelining, optional `deadline_ms`);
//! * [`Response`] — typed payloads (certificate records, analyses,
//!   witnesses) with a wire JSON projection;
//! * [`CqdetError`] — the typed error hierarchy (`parse` with line/column/
//!   token and caret rendering, `schema`, `resource_exhausted`, `deadline`,
//!   `internal`) every lower-layer error converts into;
//! * [`Engine`] — the facade: `Engine::submit(Request) -> Response` over a
//!   long-lived [`cqdet_engine::DecisionSession`], with per-request
//!   deadlines checked at pipeline stage boundaries (gate → basis → span →
//!   witness) and panic containment;
//! * [`serve`] / [`reactor`] — the JSON-lines server (`cqdet serve`):
//!   stdin/stdout and TCP transports over one shared engine.  TCP is an
//!   event-driven reactor feeding a fixed worker pool, with admission
//!   control (in-flight budget, typed `resource_exhausted` shedding),
//!   round-robin fairness, and graceful shutdown; the thread-per-
//!   connection twin is retained as the benchmark baseline.
//!
//! The `cqdet` binary is a thin transport over this crate: every subcommand
//! constructs a [`Request`] and goes through [`Engine::submit`] — one code
//! path, every scenario.
//!
//! ```
//! use cqdet_service::{Engine, Request, RequestKind, Response};
//!
//! let engine = Engine::new();
//! let response = engine.submit(Request {
//!     id: "r1".into(),
//!     deadline_ms: Some(5_000),
//!     budget: None,
//!     kind: RequestKind::Decide {
//!         program: "v() :- R(x,y)\nq() :- R(x,y), R(u,w)".into(),
//!         query: "q".into(),
//!         witness: true,
//!     },
//! });
//! let Response::Decide { record, .. } = response else { panic!() };
//! assert_eq!(record.status, cqdet_engine::TaskStatus::Determined);
//! // The same response, as its JSON-lines wire form:
//! assert!(record.to_json().render().contains("\"version\":1"));
//! ```

// The serving layer is the last line of defence: requests must come back as
// typed errors, never panics.  Tests are exempt.
#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]

pub mod engine;
pub mod error;
pub mod frame;
pub mod reactor;
pub mod request;
pub mod response;
pub mod serve;
pub mod sessions;

pub use engine::{parse_monomial, parse_program, Engine, EngineCounters};
pub use error::CqdetError;
pub use frame::{FrameBuffer, FrameError};
pub use reactor::serve_tcp_reactor;
pub use request::{BudgetSpec, Request, RequestKind, PROTOCOL_VERSION};
pub use response::{counters_json, delta_counters_json, error_json, HilbertRefutation, Response};
pub use serve::{
    failpoint_names, respond_to_line, serve_lines, serve_tcp, serve_tcp_threaded, ServeOptions,
};
pub use sessions::{SessionRegistry, SessionSlot, DEFAULT_MAX_SESSIONS, DEFAULT_SESSION_TTL};
