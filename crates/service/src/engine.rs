//! The [`Engine`] facade: one long-lived entry point for every workload.
//!
//! `Engine::submit(Request) -> Response` is the single code path behind all
//! six CLI subcommands *and* the JSON-lines server: it owns a
//! [`DecisionSession`] (the shared cross-request caches of PR 3/4), turns a
//! request's `deadline_ms` into a [`CancelToken`] checked at the pipeline's
//! stage boundaries, routes each [`RequestKind`] to its workload family, and
//! converts every failure — malformed input, fragment violations, expired
//! deadlines, even worker panics — into a typed [`Response::Error`].
//! Submitting never panics and never blocks past the deadline by more than
//! one pipeline stage.

use crate::error::CqdetError;
use crate::request::{BudgetSpec, Request, RequestKind};
use crate::response::{HilbertRefutation, Response};
use crate::sessions::SessionRegistry;
use cqdet_core::witness::{build_counterexample_ctl, check_certificate_arithmetic, WitnessConfig};
use cqdet_core::{decide_path_determinacy, paths, MutableSession, SessionSnapshot};
use cqdet_engine::{DecisionSession, SessionConfig, Task};
use cqdet_failpoint::fail_point;
use cqdet_hilbert::{encode, DiophantineInstance, Monomial};
use cqdet_parallel::{Budget, CancelToken};
use cqdet_query::{parse_queries, ConjunctiveQuery, PathQuery};
use std::fmt::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Monotone per-reason robustness counters of an [`Engine`], surfaced on
/// `stats` responses (and the `cqdet stats` subcommand): how often the
/// serving process *survived* something — shed load, contained a panic,
/// stopped a runaway request.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineCounters {
    /// Requests answered with a `timeout` response (expired deadline),
    /// batch tasks cut short by the shared deadline included.
    pub timeouts: u64,
    /// Requests (or batch tasks) stopped by an exhausted fuel budget.
    pub fuel_exhausted: u64,
    /// Worker panics caught and converted into typed `internal` errors.
    pub panics_contained: u64,
    /// Connections shed at the [`crate::ServeOptions::max_connections`] cap.
    pub shed_connections: u64,
    /// Individual requests shed by admission control at the
    /// [`crate::ServeOptions::inflight_budget`] cap — each one answered
    /// with a typed `resource_exhausted` error, never stalled or dropped.
    pub shed_requests: u64,
    /// Request lines rejected for exceeding
    /// [`crate::ServeOptions::max_request_bytes`].
    pub oversized_requests: u64,
    /// Transient accept-loop errors absorbed by backoff instead of taking
    /// the server down.
    pub accept_retries: u64,
    /// Warm-start snapshots loaded successfully at boot.
    pub snapshot_loaded: u64,
    /// Warm-start snapshots *rejected* — corruption, truncation, version
    /// skew, I/O failure or an armed `snapshot/load` fault.  Every
    /// rejection is a cold start, never a panic or a wedged server.
    pub snapshot_rejected: u64,
    /// Mutable decision sessions currently open (a gauge, not a tally).
    pub sessions_open: u64,
    /// Sessions reaped so far: idle-TTL sweeps plus byte-pressure
    /// evictions by the governed registry cache.
    pub sessions_reaped: u64,
}

/// The atomic cells behind [`EngineCounters`].
#[derive(Default)]
struct CounterCells {
    timeouts: AtomicU64,
    fuel_exhausted: AtomicU64,
    panics_contained: AtomicU64,
    shed_connections: AtomicU64,
    shed_requests: AtomicU64,
    oversized_requests: AtomicU64,
    accept_retries: AtomicU64,
    snapshot_loaded: AtomicU64,
    snapshot_rejected: AtomicU64,
}

/// The unified serving engine.  See the [module docs](self) and the crate
/// quickstart.
///
/// ```
/// use cqdet_service::{Engine, Request, RequestKind, Response};
///
/// let engine = Engine::new();
/// let response = engine.submit(Request {
///     id: "r1".into(),
///     deadline_ms: None,
///     budget: None,
///     kind: RequestKind::Decide {
///         program: "v() :- R(x,y)\nq() :- R(x,y), R(u,w)".into(),
///         query: "q".into(),
///         witness: false,
///     },
/// });
/// let Response::Decide { record, .. } = response else { panic!() };
/// assert_eq!(record.status, cqdet_engine::TaskStatus::Determined);
/// ```
#[derive(Default)]
pub struct Engine {
    session: DecisionSession,
    /// Open mutable decision sessions (the `session_open` … family); their
    /// immutable substrate — frozen bodies, gate verdicts, interned
    /// classes, span cache — lives in `session`'s shared context, so a
    /// warm-start snapshot restores it for reopened sessions too.
    sessions: SessionRegistry,
    shutdown: AtomicBool,
    requests: AtomicU64,
    counters: CounterCells,
    /// Default fuel budget applied to requests that carry no `budget`
    /// member of their own (the `--fuel-steps`/`--fuel-bytes` serve flags).
    default_budget: Mutex<Option<BudgetSpec>>,
}

impl Engine {
    /// An engine over a fresh [`DecisionSession`] with default policy.
    /// `CQDET_CACHE_BYTES=<n>` in the environment installs a total cache
    /// budget of `n` bytes ([`Engine::set_cache_bytes`]).
    pub fn new() -> Engine {
        let engine = Engine::default();
        engine.apply_env_policy();
        engine
    }

    /// An engine whose session uses `config` as the *default* policy
    /// (per-request flags still override witnesses/verification).
    pub fn with_config(config: SessionConfig) -> Engine {
        let engine = Engine {
            session: DecisionSession::with_config(config),
            ..Engine::default()
        };
        engine.apply_env_policy();
        engine
    }

    fn apply_env_policy(&self) {
        if let Some(bytes) = std::env::var("CQDET_CACHE_BYTES")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
        {
            self.set_cache_bytes(Some(bytes));
        }
    }

    /// Install (or, with `None`, restore the defaults of) a total byte
    /// budget over every governed session cache: the budget is split
    /// between the frozen-body, containment-gate, span-basis, hom-count
    /// and candidate caches, and doubles as the global memory watermark —
    /// over-budget entries are evicted (and recomputed on re-use), never
    /// refused.
    pub fn set_cache_bytes(&self, total: Option<u64>) {
        self.session.context().set_cache_bytes(total);
    }

    /// The underlying session (cache statistics, direct library access).
    pub fn session(&self) -> &DecisionSession {
        &self.session
    }

    /// Whether a `shutdown` request has been accepted.  Serve loops poll
    /// this to stop accepting and drain.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }

    /// Raise the shutdown flag programmatically (the `shutdown` request's
    /// effect without a connection): serve loops stop accepting and drain
    /// in-flight work.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
    }

    /// Requests submitted so far.
    pub fn request_count(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// A snapshot of the per-reason robustness counters.
    pub fn counters(&self) -> EngineCounters {
        let c = &self.counters;
        EngineCounters {
            timeouts: c.timeouts.load(Ordering::Relaxed),
            fuel_exhausted: c.fuel_exhausted.load(Ordering::Relaxed),
            panics_contained: c.panics_contained.load(Ordering::Relaxed),
            shed_connections: c.shed_connections.load(Ordering::Relaxed),
            shed_requests: c.shed_requests.load(Ordering::Relaxed),
            oversized_requests: c.oversized_requests.load(Ordering::Relaxed),
            accept_retries: c.accept_retries.load(Ordering::Relaxed),
            snapshot_loaded: c.snapshot_loaded.load(Ordering::Relaxed),
            snapshot_rejected: c.snapshot_rejected.load(Ordering::Relaxed),
            sessions_open: self.sessions.open_count(),
            sessions_reaped: self.sessions.reaped_count(),
        }
    }

    /// Retarget the mutable-session idle TTL (the `--session-ttl-ms` serve
    /// flag).
    pub fn set_session_ttl(&self, ttl: Duration) {
        self.sessions.set_ttl(ttl);
    }

    /// Retarget the cap on concurrently open mutable sessions (the
    /// `--max-sessions` serve flag).
    pub fn set_max_sessions(&self, n: usize) {
        self.sessions.set_max_sessions(n);
    }

    /// The default fuel budget for requests without a `budget` member.
    pub fn default_budget(&self) -> Option<BudgetSpec> {
        // Budget state is plain data: recover the value on poisoning rather
        // than propagating a paniced writer.
        match self.default_budget.lock() {
            Ok(guard) => *guard,
            Err(poisoned) => *poisoned.into_inner(),
        }
    }

    /// Install (or clear) the default fuel budget.
    pub fn set_default_budget(&self, budget: Option<BudgetSpec>) {
        match self.default_budget.lock() {
            Ok(mut guard) => *guard = budget,
            Err(poisoned) => *poisoned.into_inner() = budget,
        }
    }

    pub(crate) fn note_shed_connection(&self) {
        self.counters
            .shed_connections
            .fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_shed_request(&self) {
        self.counters.shed_requests.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_oversized_request(&self) {
        self.counters
            .oversized_requests
            .fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_accept_retry(&self) {
        self.counters.accept_retries.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_panic_contained(&self) {
        self.counters
            .panics_contained
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Persist the session's warm-start state (canonical class keys, hom
    /// counts, containment verdicts, span echelons) to `path` atomically:
    /// the checksummed envelope is written to a temp file, fsynced, then
    /// renamed — a crash mid-save leaves the previous snapshot intact.
    /// Returns the number of entries written.
    pub fn save_snapshot(&self, path: &Path) -> Result<usize, CqdetError> {
        fail_point!("snapshot/save", |msg: String| Err(CqdetError::internal(
            msg
        )));
        let snap = self.session.context().export_snapshot();
        let entries = snap.len();
        cqdet_cache::snapshot::save_atomic(path, &snap.to_payload())
            .map_err(|e| CqdetError::internal(format!("snapshot save failed: {e}")))?;
        Ok(entries)
    }

    /// Load a warm-start snapshot from `path` into the session caches.
    /// Any failure — unreadable file, bad magic, version skew, truncation,
    /// checksum mismatch, malformed interior, an armed `snapshot/load`
    /// fault — bumps `snapshot_rejected` and returns a typed error: the
    /// caller keeps its cold (but fully correct) caches.  Success bumps
    /// `snapshot_loaded` and returns the number of entries installed.
    pub fn load_snapshot(&self, path: &Path) -> Result<usize, CqdetError> {
        let loaded: Result<usize, CqdetError> = (|| {
            fail_point!("snapshot/load", |msg: String| Err(CqdetError::internal(
                msg
            )));
            let payload = cqdet_cache::snapshot::open(path)
                .map_err(|e| CqdetError::internal(format!("snapshot rejected: {e}")))?;
            let snap = SessionSnapshot::from_payload(&payload)
                .map_err(|e| CqdetError::internal(format!("snapshot rejected: {e}")))?;
            Ok(self.session.context().install_snapshot(snap))
        })();
        match loaded {
            Ok(n) => {
                self.counters
                    .snapshot_loaded
                    .fetch_add(1, Ordering::Relaxed);
                Ok(n)
            }
            Err(e) => {
                self.counters
                    .snapshot_rejected
                    .fetch_add(1, Ordering::Relaxed);
                Err(e)
            }
        }
    }

    /// Boot-time warm start: a missing snapshot is an ordinary first boot
    /// (quiet cold start, no counter); any load failure **or panic** is
    /// contained into a counted cold start.  Never fails the boot.
    pub fn warm_start(&self, path: &Path) -> Option<usize> {
        if !path.exists() {
            return None;
        }
        match catch_unwind(AssertUnwindSafe(|| self.load_snapshot(path))) {
            Ok(Ok(n)) => Some(n),
            Ok(Err(_)) => None,
            Err(_) => {
                // The panic pre-empted load_snapshot's own bookkeeping.
                self.note_panic_contained();
                self.counters
                    .snapshot_rejected
                    .fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Shutdown-time persistence: best effort, panics contained — a failed
    /// or faulted save must never block the server from exiting (the next
    /// boot simply starts cold, or from the previous intact snapshot).
    pub fn save_snapshot_quiet(&self, path: &Path) -> bool {
        match catch_unwind(AssertUnwindSafe(|| self.save_snapshot(path))) {
            Ok(Ok(_)) => true,
            Ok(Err(_)) => false,
            Err(_) => {
                self.note_panic_contained();
                false
            }
        }
    }

    /// Submit one request and get its response.  Never panics: workload
    /// panics are caught and become typed [`CqdetError::Internal`] errors
    /// (`&self` stays usable — all session caches recover from poisoning).
    pub fn submit(&self, request: Request) -> Response {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let Request {
            id,
            deadline_ms,
            budget,
            kind,
        } = request;
        let ctl = match deadline_ms {
            Some(ms) => CancelToken::with_deadline(Duration::from_millis(ms)),
            None => CancelToken::none(),
        };
        let budget = budget
            .or_else(|| self.default_budget())
            .map(BudgetSpec::to_budget)
            .unwrap_or_else(Budget::none);
        let outcome = catch_unwind(AssertUnwindSafe(|| self.dispatch(&id, kind, &ctl, &budget)));
        let response = match outcome {
            Ok(Ok(response)) => response,
            Ok(Err(error)) => Response::Error {
                id: Some(id),
                error,
            },
            Err(payload) => {
                self.counters
                    .panics_contained
                    .fetch_add(1, Ordering::Relaxed);
                let message = if let Some(s) = payload.downcast_ref::<&str>() {
                    (*s).to_string()
                } else if let Some(s) = payload.downcast_ref::<String>() {
                    s.clone()
                } else {
                    "worker panicked".to_string()
                };
                Response::Error {
                    id: Some(id),
                    error: CqdetError::Internal {
                        message: format!("request handler panicked: {message}"),
                    },
                }
            }
        };
        if let Response::Error { error, .. } = &response {
            match error {
                CqdetError::Deadline { .. } => {
                    self.counters.timeouts.fetch_add(1, Ordering::Relaxed);
                }
                // Fuel exhaustion carries its ledger; capacity-style
                // resource errors (no accounting) are counted where they
                // occur (shed connections, oversized lines).
                CqdetError::ResourceExhausted { spent: Some(_), .. } => {
                    self.counters.fuel_exhausted.fetch_add(1, Ordering::Relaxed);
                }
                _ => {}
            }
        }
        response
    }

    fn dispatch(
        &self,
        id: &str,
        kind: RequestKind,
        ctl: &CancelToken,
        budget: &Budget,
    ) -> Result<Response, CqdetError> {
        fail_point!("engine/submit", |msg: String| Err(CqdetError::internal(
            msg
        )));
        // A deadline of zero (or one that passed while queued) fails fast at
        // the submit boundary instead of starting work it cannot finish.
        ctl.check("submit").map_err(|e| CqdetError::Deadline {
            stage: e.stage.to_string(),
        })?;
        match kind {
            RequestKind::Decide {
                program,
                query,
                witness,
            } => self.decide(id, &program, &query, witness, ctl, budget),
            RequestKind::Batch {
                tasks,
                witnesses,
                verify,
            } => self.batch(id, &tasks, witnesses, verify, ctl, budget),
            RequestKind::Path { query, views } => self.path(id, &query, &views),
            RequestKind::Hilbert { bound, monomials } => self.hilbert(id, bound, &monomials),
            RequestKind::Explain { program, query } => {
                self.explain(id, &program, &query, ctl, budget)
            }
            RequestKind::SessionOpen {
                program,
                query,
                checkpoint_interval,
            } => self.session_open(id, &program, &query, checkpoint_interval, ctl, budget),
            RequestKind::ViewAdd { session, view } => {
                self.session_mutate(id, session, &view, true, ctl, budget)
            }
            RequestKind::ViewRemove { session, view } => {
                self.session_mutate(id, session, &view, false, ctl, budget)
            }
            RequestKind::Redecide { session, witness } => {
                self.session_redecide(id, session, witness, ctl, budget)
            }
            RequestKind::SessionClose { session } => {
                self.sessions.close(session)?;
                Ok(Response::SessionClosed {
                    id: id.to_string(),
                    session,
                })
            }
            RequestKind::Stats => {
                // A stats probe also sweeps idle sessions, so TTL expiry is
                // observable without waiting for the next session request.
                self.sessions.reap_idle();
                Ok(Response::Stats {
                    id: id.to_string(),
                    stats: self.session.stats(),
                    requests: self.request_count(),
                    counters: self.counters(),
                })
            }
            RequestKind::Shutdown => {
                self.request_shutdown();
                Ok(Response::Shutdown { id: id.to_string() })
            }
        }
    }

    fn decide(
        &self,
        id: &str,
        program: &str,
        query_name: &str,
        witness: bool,
        ctl: &CancelToken,
        budget: &Budget,
    ) -> Result<Response, CqdetError> {
        let (views, query) = parse_program(program, query_name)?;
        // The record's task id is the query's name — the same convention the
        // CLI has always used, so certificates stay byte-comparable.
        let task = Task {
            id: query_name.to_string(),
            views: views.clone(),
            query: query.clone(),
        };
        let config = SessionConfig {
            witnesses: witness,
            verify: true,
            witness: WitnessConfig::default(),
        };
        let record = self.session.run_task_budgeted(&task, ctl, budget, &config);
        if record.analysis.is_none() {
            // Nothing useful was computed: a pure timeout / fuel-exhausted
            // response.  (When the decision finished and only the witness
            // timed out, the partial record is delivered instead — its
            // `timeout_stage` member says what's missing.)
            if let Some(fuel) = record.fuel_exhausted {
                return Err(cqdet_core::DeterminacyError::ResourceExhausted {
                    what: fuel.what,
                    spent: fuel.spent,
                    limit: fuel.limit,
                }
                .into());
            }
            if let Some(stage) = record.timeout_stage {
                return Err(CqdetError::Deadline {
                    stage: stage.to_string(),
                });
            }
        }
        Ok(Response::Decide {
            id: id.to_string(),
            record: Box::new(record),
            views,
            query: Box::new(query),
        })
    }

    fn session_open(
        &self,
        id: &str,
        program: &str,
        query_name: &str,
        checkpoint_interval: Option<u64>,
        ctl: &CancelToken,
        budget: &Budget,
    ) -> Result<Response, CqdetError> {
        let (views, query) = parse_program(program, query_name)?;
        let interval = checkpoint_interval
            .map(|k| k as usize)
            .unwrap_or(cqdet_core::DEFAULT_CHECKPOINT_INTERVAL);
        let cx = self.session.context();
        // Opening validates the instance and warms the shared immutable
        // caches (frozen bodies, gate verdicts, class ids) — which is also
        // why a warm-start snapshot benefits reopened sessions.
        let opened = cqdet_structure::with_shared_caches(cx.caches(), || {
            MutableSession::open(cx, views, query, interval, ctl, budget)
        })?;
        let view_names = opened
            .views()
            .iter()
            .map(|v| v.name().to_string())
            .collect();
        let query_name = opened.query().name().to_string();
        let slot = self.sessions.insert(opened)?;
        Ok(Response::SessionOpen {
            id: id.to_string(),
            session: slot.id,
            views: view_names,
            query: query_name,
        })
    }

    /// Shared body of `view_add` / `view_remove`: resolve the session, run
    /// the mutation under its own lock (unrelated requests never wait), and
    /// re-publish its governed byte cost.
    fn session_mutate(
        &self,
        id: &str,
        session: u64,
        view: &str,
        add: bool,
        ctl: &CancelToken,
        budget: &Budget,
    ) -> Result<Response, CqdetError> {
        let slot = self.sessions.lookup(session)?;
        let cx = self.session.context();
        let mut guard = slot.lock();
        if add {
            let parsed = parse_view_definition(view)?;
            let name = parsed.name();
            if guard.views().iter().any(|v| v.name() == name) || guard.query().name() == name {
                return Err(CqdetError::schema(format!(
                    "a definition named {name:?} already exists in session {session} \
                     (view names must stay unique so view_remove is unambiguous)"
                )));
            }
            cqdet_structure::with_shared_caches(cx.caches(), || {
                guard.view_add(cx, parsed, ctl, budget)
            })?;
        } else {
            let index = guard
                .views()
                .iter()
                .position(|v| v.name() == view)
                .ok_or_else(|| {
                    CqdetError::schema(format!("no view named {view:?} in session {session}"))
                })?;
            cqdet_structure::with_shared_caches(cx.caches(), || {
                guard.view_remove(cx, index, ctl, budget)
            })?;
        }
        self.sessions.publish(&slot, &guard);
        Ok(Response::SessionDelta {
            id: id.to_string(),
            session,
            action: if add { "view_add" } else { "view_remove" },
            views: guard.views().iter().map(|v| v.name().to_string()).collect(),
            counters: guard.counters(),
        })
    }

    fn session_redecide(
        &self,
        id: &str,
        session: u64,
        witness: bool,
        ctl: &CancelToken,
        budget: &Budget,
    ) -> Result<Response, CqdetError> {
        let slot = self.sessions.lookup(session)?;
        let cx = self.session.context();
        let mut guard = slot.lock();
        let outcome =
            cqdet_structure::with_shared_caches(cx.caches(), || guard.redecide(cx, ctl, budget));
        // An interrupted redecide keeps its (consistent, resumable)
        // echelon, so the byte cost is re-published on every outcome.
        self.sessions.publish(&slot, &guard);
        let task = Task {
            id: guard.query().name().to_string(),
            views: guard.views().to_vec(),
            query: guard.query().clone(),
        };
        drop(guard);
        let config = SessionConfig {
            witnesses: witness,
            verify: true,
            witness: WitnessConfig::default(),
        };
        // The same certification machinery as one-shot decide: rewriting
        // re-verification, witness construction, the full record schema.
        let record = self
            .session
            .record_from_outcome(&task, outcome, ctl, &config);
        if record.analysis.is_none() {
            if let Some(fuel) = record.fuel_exhausted {
                return Err(cqdet_core::DeterminacyError::ResourceExhausted {
                    what: fuel.what,
                    spent: fuel.spent,
                    limit: fuel.limit,
                }
                .into());
            }
            if let Some(stage) = record.timeout_stage {
                return Err(CqdetError::Deadline {
                    stage: stage.to_string(),
                });
            }
        }
        Ok(Response::SessionDecide {
            id: id.to_string(),
            session,
            record: Box::new(record),
        })
    }

    fn batch(
        &self,
        id: &str,
        tasks_text: &str,
        witnesses: bool,
        verify: bool,
        ctl: &CancelToken,
        budget: &Budget,
    ) -> Result<Response, CqdetError> {
        let file = cqdet_engine::parse_task_file(tasks_text)?;
        let config = SessionConfig {
            witnesses,
            verify,
            witness: WitnessConfig::default(),
        };
        // One budget for the whole batch: the limit bounds *total* decision
        // work, so a runaway task drains the ledger for its siblings.
        let report = self
            .session
            .decide_batch_budgeted(&file.tasks, ctl, budget, &config);
        let deadline_exceeded = report.records.iter().any(|r| r.timeout_stage.is_some());
        let fuel_exhausted = report
            .records
            .iter()
            .filter(|r| r.fuel_exhausted.is_some())
            .count() as u64;
        // Batch-internal stoppages surface as record members, not an error
        // response — count them here so the stats ledger still sees them.
        self.counters
            .fuel_exhausted
            .fetch_add(fuel_exhausted, Ordering::Relaxed);
        Ok(Response::Batch {
            id: id.to_string(),
            records: report.records,
            stats: report.stats,
            deadline_exceeded,
            fuel_exhausted: fuel_exhausted > 0,
        })
    }

    fn path(&self, id: &str, query: &str, views: &[String]) -> Result<Response, CqdetError> {
        if views.is_empty() {
            return Err(CqdetError::schema("path needs at least one view word"));
        }
        let q = PathQuery::from_compact(query);
        let vs: Vec<PathQuery> = views.iter().map(|w| PathQuery::from_compact(w)).collect();
        let analysis = decide_path_determinacy(&vs, &q);
        let witness = if analysis.determined {
            None
        } else {
            Some(paths::non_determinacy_witness(&vs, &q).ok_or_else(|| {
                CqdetError::internal("no Appendix B witness for an undetermined path instance")
            })?)
        };
        Ok(Response::Path {
            id: id.to_string(),
            query: q,
            views: vs,
            analysis,
            witness,
        })
    }

    fn hilbert(&self, id: &str, bound: u64, monomials: &[String]) -> Result<Response, CqdetError> {
        if monomials.is_empty() {
            return Err(CqdetError::schema("hilbert needs at least one monomial"));
        }
        let parsed = monomials
            .iter()
            .map(|m| parse_monomial(m))
            .collect::<Result<Vec<_>, _>>()?;
        let instance = DiophantineInstance::new(parsed);
        let encoding = encode(&instance);
        let refutation = cqdet_hilbert::structures::bounded_refutation(&instance, bound).map(
            |(enc, d, d_prime)| {
                let verified = cqdet_hilbert::structures::verify_counterexample(&enc, &d, &d_prime);
                HilbertRefutation {
                    d,
                    d_prime,
                    verified,
                }
            },
        );
        Ok(Response::Hilbert {
            id: id.to_string(),
            instance: instance.to_string(),
            views: encoding.views.len(),
            disjuncts: encoding.total_disjuncts(),
            schema: encoding.schema.to_string(),
            bound,
            refutation,
        })
    }

    fn explain(
        &self,
        id: &str,
        program: &str,
        query_name: &str,
        ctl: &CancelToken,
        budget: &Budget,
    ) -> Result<Response, CqdetError> {
        let (views, query) = parse_program(program, query_name)?;
        let text = self.explain_text(&views, &query, ctl, budget)?;
        Ok(Response::Explain {
            id: id.to_string(),
            text,
        })
    }

    /// The full `explain` narration (the pipeline, step by step).  One
    /// String, newline-terminated — exactly what `cqdet explain` prints.
    fn explain_text(
        &self,
        views: &[ConjunctiveQuery],
        query: &ConjunctiveQuery,
        ctl: &CancelToken,
        budget: &Budget,
    ) -> Result<String, CqdetError> {
        let analysis = self.session.decide_budgeted(views, query, ctl, budget)?;
        let mut out = String::new();
        // Infallible writes: `write!` to a String cannot fail.
        let w = &mut out;
        let _ = writeln!(w, "# Instance");
        let _ = writeln!(w, "schema: {}", analysis.schema);
        let _ = writeln!(w, "query:  {query}");
        for v in views {
            let _ = writeln!(w, "view:   {v}");
        }
        let _ = writeln!(w);
        let _ = writeln!(
            w,
            "# Step 1 — retention gate (Definition 25: q ⊆_set v ⇔ hom(v,q) ≠ ∅)"
        );
        for (i, v) in views.iter().enumerate() {
            let kept = analysis.retained_views.contains(&i);
            let _ = writeln!(
                w,
                "  {} {}: {}",
                if kept { "✓" } else { "✗" },
                v.name(),
                if kept { "retained" } else { "dropped" }
            );
        }
        let _ = writeln!(w);
        let _ = writeln!(
            w,
            "# Step 2 — basis W (Definition 27): {} pairwise non-isomorphic connected component(s)",
            analysis.basis_size()
        );
        for (k, basis_w) in analysis.basis.iter().enumerate() {
            let _ = writeln!(w, "  w{k} = {basis_w}");
        }
        let _ = writeln!(w);
        let _ = writeln!(w, "# Step 3 — vector representations (Definition 29)");
        let _ = writeln!(w, "  q⃗ = {}", analysis.query_vector);
        for (pos, &vi) in analysis.retained_views.iter().enumerate() {
            let _ = writeln!(w, "  {}⃗ = {}", views[vi].name(), analysis.view_vectors[pos]);
        }
        let _ = writeln!(w);
        let _ = writeln!(w, "# Step 4 — Main Lemma span test: q⃗ ∈ span_ℚ{{v⃗}} ?");
        if analysis.determined {
            let _ = writeln!(w, "  YES — determined.  Coefficients:");
            let coefficients = analysis.coefficients.as_ref().ok_or_else(|| {
                CqdetError::internal("determined analysis carries no coefficients")
            })?;
            for (pos, &vi) in analysis.retained_views.iter().enumerate() {
                let _ = writeln!(w, "    α_{} = {}", views[vi].name(), coefficients[pos]);
            }
            if let Some(rewriting) = analysis.rewriting(views) {
                let _ = writeln!(w, "  rewriting: {rewriting}");
            }
        } else {
            let _ = writeln!(
                w,
                "  NO — not determined.  Constructing the counterexample (Sections 5–7):"
            );
            let caches = self.session.context().caches().clone();
            let witness = cqdet_structure::with_shared_caches(&caches, || {
                build_counterexample_ctl(&analysis, query, &WitnessConfig::default(), ctl)
            })?;
            let _ = writeln!(
                w,
                "  z⃗ = {}   (⊥ to every v⃗, ⟨z⃗,q⃗⟩ ≠ 0 — Fact 5)",
                witness.z
            );
            let _ = writeln!(w, "  t  = {}   (perturbation factor, Lemma 57)", witness.t);
            let (d, dp) = cqdet_structure::with_shared_caches(&caches, || witness.answer_vectors());
            let render = |v: &[cqdet_bigint::Nat]| {
                v.iter()
                    .map(|n| n.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            };
            let _ = writeln!(w, "  answer vectors (w⃗ evaluated on D and D′):");
            let _ = writeln!(w, "    w⃗(D)  = [{}]", render(&d));
            let _ = writeln!(w, "    w⃗(D′) = [{}]", render(&dp));
            let _ = writeln!(w, "  D  = {}", witness.d);
            let _ = writeln!(w, "  D' = {}", witness.d_prime);
            let (q_d, q_dp) = cqdet_structure::with_shared_caches(&caches, || {
                (witness.eval_on_d(query), witness.eval_on_d_prime(query))
            });
            let _ = writeln!(w, "  q(D) = {q_d} ≠ {q_dp} = q(D′)");
            let _ = writeln!(
                w,
                "  certificate arithmetic verified: {}",
                check_certificate_arithmetic(&witness, &analysis)
            );
            let verified =
                cqdet_structure::with_shared_caches(&caches, || witness.verify(views, query));
            let _ = writeln!(
                w,
                "  symbolic verification (all views agree, q differs): {verified}"
            );
        }
        Ok(out)
    }
}

/// Parse a program text into `(views, query)`: the definition named
/// `query_name` is the query, everything else is a view — the shared
/// front end of the `decide` and `explain` families.
pub fn parse_program(
    text: &str,
    query_name: &str,
) -> Result<(Vec<ConjunctiveQuery>, ConjunctiveQuery), CqdetError> {
    let program = parse_queries(text)?;
    let mut views = Vec::new();
    let mut query = None;
    for u in &program {
        if !u.is_single_cq() {
            return Err(CqdetError::schema(format!(
                "{} is a union query; Theorem 3 handles conjunctive queries \
                 (unions are undecidable — Theorem 2)",
                u.name()
            )));
        }
        let cq = u.disjuncts()[0].clone();
        if u.name() == query_name {
            query = Some(cq);
        } else {
            views.push(cq);
        }
    }
    let query = query.ok_or_else(|| {
        CqdetError::schema(format!("no definition named {query_name:?} in the program"))
    })?;
    Ok((views, query))
}

/// Parse the `view` member of a `view_add` request: exactly one
/// conjunctive definition, same syntax as a `program` line.
fn parse_view_definition(text: &str) -> Result<ConjunctiveQuery, CqdetError> {
    let program = parse_queries(text)?;
    match program.as_slice() {
        [u] if u.is_single_cq() => Ok(u.disjuncts()[0].clone()),
        [u] => Err(CqdetError::schema(format!(
            "{} is a union query; views must be conjunctive",
            u.name()
        ))),
        _ => Err(CqdetError::schema(
            "the view member must contain exactly one definition",
        )),
    }
}

/// Parse `"+2:x^1,y^3"` / `"-12:"` into a monomial (the `hilbert` request's
/// wire syntax, shared with the CLI).
pub fn parse_monomial(text: &str) -> Result<Monomial, CqdetError> {
    let (coeff, vars) = text.split_once(':').ok_or_else(|| {
        CqdetError::schema(format!(
            "monomial {text:?} must look like coeff:var^deg,..."
        ))
    })?;
    let coefficient: i64 = coeff
        .parse()
        .map_err(|_| CqdetError::schema(format!("bad coefficient {coeff:?}")))?;
    // `Monomial::new` panics on a zero coefficient or degree (documented
    // precondition); requests must be rejected with a typed error instead.
    if coefficient == 0 {
        return Err(CqdetError::schema(format!(
            "monomial {text:?} has coefficient 0"
        )));
    }
    let mut degrees = Vec::new();
    for part in vars.split(',').filter(|p| !p.trim().is_empty()) {
        let (name, degree) = match part.split_once('^') {
            Some((n, d)) => (
                n.trim().to_string(),
                d.trim()
                    .parse::<u32>()
                    .map_err(|_| CqdetError::schema(format!("bad degree in {part:?}")))?,
            ),
            None => (part.trim().to_string(), 1),
        };
        if degree == 0 {
            return Err(CqdetError::schema(format!(
                "unknown {name:?} in monomial {text:?} has degree 0 \
                 (omit it instead)"
            )));
        }
        degrees.push((name, degree));
    }
    let borrowed: Vec<(&str, u32)> = degrees.iter().map(|(n, d)| (n.as_str(), *d)).collect();
    Ok(Monomial::new(coefficient, &borrowed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqdet_engine::TaskStatus;

    const PROGRAM: &str = "v1() :- R(x,y)\nv2() :- R(x,y), R(y,z)\nq() :- R(x,y), R(u,w)\n";

    fn submit(engine: &Engine, kind: RequestKind) -> Response {
        engine.submit(Request {
            id: "r".into(),
            deadline_ms: None,
            budget: None,
            kind,
        })
    }

    #[test]
    fn decide_request_round_trips_through_the_engine() {
        let engine = Engine::new();
        let response = submit(
            &engine,
            RequestKind::Decide {
                program: PROGRAM.into(),
                query: "q".into(),
                witness: false,
            },
        );
        let Response::Decide {
            record,
            views,
            query,
            ..
        } = response
        else {
            panic!("expected a decide response");
        };
        assert_eq!(record.status, TaskStatus::Determined);
        assert_eq!(record.id, "q", "task id is the query name");
        assert_eq!(views.len(), 2);
        assert_eq!(query.name(), "q");
        assert_eq!(engine.request_count(), 1);
    }

    #[test]
    fn parse_errors_come_back_typed_with_position() {
        let engine = Engine::new();
        let response = submit(
            &engine,
            RequestKind::Decide {
                program: "v() :- R(x,y)\nq() : R(x,y)\n".into(),
                query: "q".into(),
                witness: false,
            },
        );
        let Response::Error { id, error } = response else {
            panic!("expected an error response");
        };
        assert_eq!(id.as_deref(), Some("r"));
        assert!(
            matches!(error, CqdetError::Parse { line: 2, .. }),
            "{error:?}"
        );
    }

    #[test]
    fn zero_deadline_times_out_at_the_submit_boundary() {
        let engine = Engine::new();
        let response = engine.submit(Request {
            id: "t".into(),
            deadline_ms: Some(0),
            budget: None,
            kind: RequestKind::Decide {
                program: PROGRAM.into(),
                query: "q".into(),
                witness: false,
            },
        });
        let Response::Error { error, .. } = &response else {
            panic!("expected a timeout");
        };
        assert_eq!(error.code(), "deadline");
        assert_eq!(response.type_str(), "timeout");
    }

    #[test]
    fn stats_then_shutdown() {
        let engine = Engine::new();
        let _ = submit(
            &engine,
            RequestKind::Decide {
                program: PROGRAM.into(),
                query: "q".into(),
                witness: false,
            },
        );
        let Response::Stats {
            requests, stats, ..
        } = submit(&engine, RequestKind::Stats)
        else {
            panic!("expected stats");
        };
        assert_eq!(requests, 2);
        assert!(stats.frozen_misses > 0);
        assert!(!engine.shutdown_requested());
        let Response::Shutdown { .. } = submit(&engine, RequestKind::Shutdown) else {
            panic!("expected shutdown ack");
        };
        assert!(engine.shutdown_requested());
    }

    #[test]
    fn explain_matches_the_one_shot_pipeline() {
        let engine = Engine::new();
        let Response::Explain { text, .. } = submit(
            &engine,
            RequestKind::Explain {
                program: PROGRAM.into(),
                query: "q".into(),
            },
        ) else {
            panic!("expected explain");
        };
        for needle in [
            "# Step 1",
            "retention gate",
            "# Step 2",
            "# Step 3",
            "Main Lemma span test",
            "YES — determined",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn path_and_hilbert_requests_answer() {
        let engine = Engine::new();
        let Response::Path {
            analysis, witness, ..
        } = submit(
            &engine,
            RequestKind::Path {
                query: "AB".into(),
                views: vec!["A".into(), "AB".into()],
            },
        )
        else {
            panic!("expected path");
        };
        assert!(analysis.determined);
        assert!(witness.is_none());

        let Response::Hilbert { refutation, .. } = submit(
            &engine,
            RequestKind::Hilbert {
                bound: 4,
                monomials: vec!["+1:x".into(), "-2:".into()],
            },
        ) else {
            panic!("expected hilbert");
        };
        // x = 2 solves x - 2 = 0 within the box → refuted and verified.
        let refutation = refutation.expect("x=2 is within the bound");
        assert!(refutation.verified);
    }

    #[test]
    fn degenerate_monomials_are_rejected_not_panicked() {
        // `Monomial::new` panics on zero coefficients/degrees; the request
        // path must reject them with a typed schema error instead.
        let engine = Engine::new();
        for bad in ["+0:x", "+1:x^0", "0:"] {
            let response = submit(
                &engine,
                RequestKind::Hilbert {
                    bound: 2,
                    monomials: vec![bad.into()],
                },
            );
            let Response::Error { error, .. } = response else {
                panic!("{bad:?} must be rejected");
            };
            assert_eq!(error.code(), "schema", "{bad:?}: {error}");
        }
    }

    #[test]
    fn session_lifecycle_matches_one_shot_decide() {
        let engine = Engine::new();
        let Response::SessionOpen { session, views, .. } = submit(
            &engine,
            RequestKind::SessionOpen {
                program: PROGRAM.into(),
                query: "q".into(),
                checkpoint_interval: None,
            },
        ) else {
            panic!("expected a session_open response");
        };
        assert_eq!(views, ["v1", "v2"]);
        assert_eq!(engine.counters().sessions_open, 1);

        // redecide and one-shot decide produce byte-identical certificates.
        let one_shot = |program: &str| {
            let Response::Decide { record, .. } = submit(
                &engine,
                RequestKind::Decide {
                    program: program.into(),
                    query: "q".into(),
                    witness: true,
                },
            ) else {
                panic!("expected a decide response");
            };
            record
        };
        let redecide = || {
            let Response::SessionDecide { record, .. } = submit(
                &engine,
                RequestKind::Redecide {
                    session,
                    witness: true,
                },
            ) else {
                panic!("expected a redecide response");
            };
            record
        };
        assert_eq!(
            redecide().to_json().render(),
            one_shot(PROGRAM).to_json().render()
        );

        // Mutate: add a view, drop one, and stay byte-identical throughout.
        let Response::SessionDelta { views, action, .. } = submit(
            &engine,
            RequestKind::ViewAdd {
                session,
                view: "v3() :- R(x,y), R(y,z), R(z,w)".into(),
            },
        ) else {
            panic!("expected a view_add response");
        };
        assert_eq!(action, "view_add");
        assert_eq!(views, ["v1", "v2", "v3"]);
        assert_eq!(
            redecide().to_json().render(),
            one_shot(
                "v1() :- R(x,y)\nv2() :- R(x,y), R(y,z)\n\
                 v3() :- R(x,y), R(y,z), R(z,w)\nq() :- R(x,y), R(u,w)\n"
            )
            .to_json()
            .render()
        );
        let Response::SessionDelta { views, .. } = submit(
            &engine,
            RequestKind::ViewRemove {
                session,
                view: "v1".into(),
            },
        ) else {
            panic!("expected a view_remove response");
        };
        assert_eq!(views, ["v2", "v3"]);
        assert_eq!(
            redecide().to_json().render(),
            one_shot(
                "v2() :- R(x,y), R(y,z)\nv3() :- R(x,y), R(y,z), R(z,w)\n\
                 q() :- R(x,y), R(u,w)\n"
            )
            .to_json()
            .render()
        );

        // Unknown names and duplicate adds are typed schema errors.
        let Response::Error { error, .. } = submit(
            &engine,
            RequestKind::ViewRemove {
                session,
                view: "v1".into(),
            },
        ) else {
            panic!("removing a removed view must fail");
        };
        assert_eq!(error.code(), "schema");
        let Response::Error { error, .. } = submit(
            &engine,
            RequestKind::ViewAdd {
                session,
                view: "v2() :- S(x,y)".into(),
            },
        ) else {
            panic!("duplicate view names must be rejected");
        };
        assert_eq!(error.code(), "schema");

        // Close releases the state; the id stops resolving.
        let Response::SessionClosed { .. } = submit(&engine, RequestKind::SessionClose { session })
        else {
            panic!("expected a session_close ack");
        };
        assert_eq!(engine.counters().sessions_open, 0);
        let Response::Error { error, .. } = submit(
            &engine,
            RequestKind::Redecide {
                session,
                witness: false,
            },
        ) else {
            panic!("a closed session must not resolve");
        };
        assert!(error.to_string().contains("unknown session"), "{error}");
    }

    #[test]
    fn engine_shares_caches_across_requests() {
        let engine = Engine::new();
        for _ in 0..3 {
            let _ = submit(
                &engine,
                RequestKind::Decide {
                    program: PROGRAM.into(),
                    query: "q".into(),
                    witness: false,
                },
            );
        }
        let stats = engine.session().stats();
        assert!(
            stats.frozen_hits > 0,
            "repeated requests must hit the session caches: {stats:?}"
        );
    }
}
