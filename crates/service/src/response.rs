//! Typed responses: one variant per request family, echoing the request id,
//! with wire JSON projections.
//!
//! A response on the wire is one JSON object per line with the envelope
//! `{"version":1,"id":...,"type":...}` plus the payload members of its
//! variant:
//!
//! * `decide` — the full certificate record ([`cqdet_engine::TaskRecord`]);
//! * `batch` — `records` (array of certificate records), `stats`, and a
//!   `deadline_exceeded` flag when the shared deadline cut the batch short
//!   (completed records survive — partial, not void);
//! * `path` — the Theorem 1 outcome, derivation steps or Appendix B witness;
//! * `hilbert` — the encoding summary and the bounded refutation, if found;
//! * `explain` — the narration as one text member;
//! * `stats` — session cache counters plus the server's request count;
//! * `shutdown` — an acknowledgement;
//! * `error` / `timeout` — the typed [`CqdetError`]; a
//!   [`CqdetError::Deadline`] renders with type `timeout`, everything else
//!   with type `error`.
//!
//! In process, the variants carry the **typed** payloads (records, analyses,
//! parsed queries), so front ends — the CLI included — render without
//! re-parsing; [`Response::to_json`] is the wire projection.

use crate::engine::EngineCounters;
use crate::error::CqdetError;
use crate::request::PROTOCOL_VERSION;
use cqdet_core::{ContextStats, PathAnalysis};
use cqdet_engine::{stats_json, Json, TaskRecord};
use cqdet_query::{ConjunctiveQuery, PathQuery};
use cqdet_structure::Structure;

/// A bounded refutation found by a `hilbert` request: the counterexample
/// pair and its verification outcome.
#[derive(Debug, Clone)]
pub struct HilbertRefutation {
    /// The structure `D`.
    pub d: Structure,
    /// The structure `D′`.
    pub d_prime: Structure,
    /// Outcome of `verify_counterexample` on the pair.
    pub verified: bool,
}

/// A typed response.  See the [module docs](self) for the wire shape.
#[derive(Debug)]
pub enum Response {
    /// Answer to a `decide` request.
    Decide {
        /// The request id, echoed.
        id: String,
        /// The full certificate record.
        record: Box<TaskRecord>,
        /// The parsed views, in program order (in-process only).
        views: Vec<ConjunctiveQuery>,
        /// The parsed query (in-process only).
        query: Box<ConjunctiveQuery>,
    },
    /// Answer to a `batch` request.
    Batch {
        /// The request id, echoed.
        id: String,
        /// One certificate record per task, in task-file order.
        records: Vec<TaskRecord>,
        /// Session cache counters after the batch.
        stats: ContextStats,
        /// Whether the request's deadline expired mid-batch (some records
        /// then carry `timeout_stage`; completed ones are intact).
        deadline_exceeded: bool,
        /// Whether the request's shared fuel budget ran out mid-batch (some
        /// records then carry `fuel_exhausted`; completed ones are intact).
        fuel_exhausted: bool,
    },
    /// Answer to a `path` request.
    Path {
        /// The request id, echoed.
        id: String,
        /// The parsed query word.
        query: PathQuery,
        /// The parsed view words.
        views: Vec<PathQuery>,
        /// The Theorem 1 analysis (derivation steps when determined).
        analysis: PathAnalysis,
        /// The Appendix B witness pair when not determined.
        witness: Option<(Structure, Structure)>,
    },
    /// Answer to a `hilbert` request.
    Hilbert {
        /// The request id, echoed.
        id: String,
        /// The instance, rendered.
        instance: String,
        /// Number of views in the Theorem 2 encoding.
        views: usize,
        /// Total CQ disjuncts across the encoding.
        disjuncts: usize,
        /// The encoding's schema, rendered.
        schema: String,
        /// The search bound that was used.
        bound: u64,
        /// The refutation, when one exists within the bound.
        refutation: Option<HilbertRefutation>,
    },
    /// Answer to an `explain` request: the narration.
    Explain {
        /// The request id, echoed.
        id: String,
        /// The full narration (the `cqdet explain` stdout).
        text: String,
    },
    /// Answer to a `stats` request.
    Stats {
        /// The request id, echoed.
        id: String,
        /// Session cache counters.
        stats: ContextStats,
        /// Requests served by this engine so far (this one included).
        requests: u64,
        /// Per-reason robustness counters (timeouts, contained panics,
        /// shed load, …).
        counters: EngineCounters,
    },
    /// Answer to a `session_open` request.
    SessionOpen {
        /// The request id, echoed.
        id: String,
        /// The freshly allocated session id (the handle every later
        /// mutation addresses).
        session: u64,
        /// The session's view names, program order.
        views: Vec<String>,
        /// The session's query name.
        query: String,
    },
    /// Answer to a `view_add` / `view_remove` request.
    SessionDelta {
        /// The request id, echoed.
        id: String,
        /// The target session id, echoed.
        session: u64,
        /// Which mutation ran: `"view_add"` or `"view_remove"` (doubles as
        /// the wire `type`).
        action: &'static str,
        /// The session's view names *after* the mutation.
        views: Vec<String>,
        /// The session's cumulative delta counters (adds, removes,
        /// fast removals, replays, rebuilds) — how the echelon was
        /// repaired is observable, not guessed.
        counters: cqdet_core::DeltaCounters,
    },
    /// Answer to a `redecide` request: the full certificate record against
    /// the session's current view set.
    SessionDecide {
        /// The request id, echoed.
        id: String,
        /// The target session id, echoed.
        session: u64,
        /// The full certificate record (same schema as `decide`).
        record: Box<TaskRecord>,
    },
    /// Acknowledgement of a `session_close` request.
    SessionClosed {
        /// The request id, echoed.
        id: String,
        /// The closed session id, echoed.
        session: u64,
    },
    /// Acknowledgement of a `shutdown` request.
    Shutdown {
        /// The request id, echoed.
        id: String,
    },
    /// A failed request: the typed error, echoing the id when one was
    /// decodable.
    Error {
        /// The request id, when the request got far enough to have one.
        id: Option<String>,
        /// What went wrong.
        error: CqdetError,
    },
}

impl Response {
    /// The echoed request id (`None` only for undecodable requests).
    pub fn id(&self) -> Option<&str> {
        match self {
            Response::Decide { id, .. }
            | Response::Batch { id, .. }
            | Response::Path { id, .. }
            | Response::Hilbert { id, .. }
            | Response::Explain { id, .. }
            | Response::SessionOpen { id, .. }
            | Response::SessionDelta { id, .. }
            | Response::SessionDecide { id, .. }
            | Response::SessionClosed { id, .. }
            | Response::Stats { id, .. }
            | Response::Shutdown { id } => Some(id),
            Response::Error { id, .. } => id.as_deref(),
        }
    }

    /// The wire `"type"` string (`"timeout"` for deadline errors).
    pub fn type_str(&self) -> &'static str {
        match self {
            Response::Decide { .. } => "decide",
            Response::Batch { .. } => "batch",
            Response::Path { .. } => "path",
            Response::Hilbert { .. } => "hilbert",
            Response::Explain { .. } => "explain",
            Response::SessionOpen { .. } => "session_open",
            Response::SessionDelta { action, .. } => action,
            Response::SessionDecide { .. } => "redecide",
            Response::SessionClosed { .. } => "session_close",
            Response::Stats { .. } => "stats",
            Response::Shutdown { .. } => "shutdown",
            Response::Error { error, .. } => match error {
                CqdetError::Deadline { .. } => "timeout",
                _ => "error",
            },
        }
    }

    /// Whether this is an error (or timeout) response.
    pub fn is_error(&self) -> bool {
        matches!(self, Response::Error { .. })
    }

    /// The wire JSON of this response (the envelope plus the payload).
    pub fn to_json(&self) -> Json {
        let mut members: Vec<(String, Json)> = vec![
            ("version".into(), Json::num(PROTOCOL_VERSION)),
            (
                "id".into(),
                match self.id() {
                    Some(id) => Json::str(id),
                    None => Json::Null,
                },
            ),
            ("type".into(), Json::str(self.type_str())),
        ];
        match self {
            Response::Decide { record, .. } => {
                members.push(("record".into(), record.to_json()));
            }
            Response::Batch {
                records,
                stats,
                deadline_exceeded,
                fuel_exhausted,
                ..
            } => {
                members.push((
                    "records".into(),
                    Json::Arr(records.iter().map(TaskRecord::to_json).collect()),
                ));
                members.push(("stats".into(), stats_json(stats)));
                if *deadline_exceeded {
                    members.push(("deadline_exceeded".into(), Json::Bool(true)));
                }
                if *fuel_exhausted {
                    members.push(("fuel_exhausted".into(), Json::Bool(true)));
                }
            }
            Response::Path {
                query,
                views,
                analysis,
                witness,
                ..
            } => {
                members.push(("query".into(), Json::str(query.to_string())));
                members.push((
                    "views".into(),
                    Json::Arr(views.iter().map(|v| Json::str(v.to_string())).collect()),
                ));
                members.push(("determined".into(), Json::Bool(analysis.determined)));
                if let Some(steps) = &analysis.derivation {
                    members.push((
                        "derivation".into(),
                        Json::Arr(
                            steps
                                .iter()
                                .map(|s| {
                                    Json::obj([
                                        ("view", Json::num(s.view as i64)),
                                        ("sign", Json::num(s.sign as i64)),
                                        ("from_len", Json::num(s.from_len as i64)),
                                        ("to_len", Json::num(s.to_len as i64)),
                                    ])
                                })
                                .collect(),
                        ),
                    ));
                }
                if let Some((d, d_prime)) = witness {
                    members.push((
                        "witness".into(),
                        Json::obj([
                            ("d", Json::str(d.to_string())),
                            ("d_prime", Json::str(d_prime.to_string())),
                        ]),
                    ));
                }
            }
            Response::Hilbert {
                instance,
                views,
                disjuncts,
                schema,
                bound,
                refutation,
                ..
            } => {
                members.push(("instance".into(), Json::str(instance)));
                members.push(("views".into(), Json::num(*views as i64)));
                members.push(("disjuncts".into(), Json::num(*disjuncts as i64)));
                members.push(("schema".into(), Json::str(schema)));
                members.push(("bound".into(), Json::num(*bound as i64)));
                match refutation {
                    Some(r) => members.push((
                        "refutation".into(),
                        Json::obj([
                            ("d", Json::str(r.d.to_string())),
                            ("d_prime", Json::str(r.d_prime.to_string())),
                            ("verified", Json::Bool(r.verified)),
                        ]),
                    )),
                    None => members.push(("refutation".into(), Json::Null)),
                }
            }
            Response::Explain { text, .. } => {
                members.push(("text".into(), Json::str(text)));
            }
            Response::Stats {
                stats,
                requests,
                counters,
                ..
            } => {
                members.push(("stats".into(), stats_json(stats)));
                members.push(("requests".into(), Json::num(*requests as i64)));
                members.push(("counters".into(), counters_json(counters)));
            }
            Response::SessionOpen {
                session,
                views,
                query,
                ..
            } => {
                members.push(("session".into(), Json::num(*session as i64)));
                members.push((
                    "views".into(),
                    Json::Arr(views.iter().map(Json::str).collect()),
                ));
                members.push(("query".into(), Json::str(query)));
            }
            Response::SessionDelta {
                session,
                views,
                counters,
                ..
            } => {
                members.push(("session".into(), Json::num(*session as i64)));
                members.push((
                    "views".into(),
                    Json::Arr(views.iter().map(Json::str).collect()),
                ));
                members.push(("delta_counters".into(), delta_counters_json(counters)));
            }
            Response::SessionDecide {
                session, record, ..
            } => {
                members.push(("session".into(), Json::num(*session as i64)));
                members.push(("record".into(), record.to_json()));
            }
            Response::SessionClosed { session, .. } => {
                members.push(("session".into(), Json::num(*session as i64)));
            }
            Response::Shutdown { .. } => {}
            Response::Error { error, .. } => {
                members.push(("error".into(), error_json(error)));
            }
        }
        Json::Obj(members)
    }
}

/// The wire JSON of a [`CqdetError`]: the stable `code` plus the variant's
/// structured members and a rendered `message`.
pub fn error_json(error: &CqdetError) -> Json {
    let mut members: Vec<(String, Json)> = vec![("code".into(), Json::str(error.code()))];
    match error {
        CqdetError::Parse {
            line, col, token, ..
        } => {
            members.push(("line".into(), Json::num(*line as i64)));
            members.push(("col".into(), Json::num(*col as i64)));
            if !token.is_empty() {
                members.push(("token".into(), Json::str(token)));
            }
        }
        CqdetError::Deadline { stage } => {
            members.push(("stage".into(), Json::str(stage)));
        }
        CqdetError::ResourceExhausted { spent, limit, .. } => {
            // Fuel exhaustion carries its ledger so clients can resubmit
            // with an informed budget; capacity errors carry neither.
            if let Some(spent) = spent {
                members.push(("spent".into(), Json::num(*spent as i64)));
            }
            if let Some(limit) = limit {
                members.push(("limit".into(), Json::num(*limit as i64)));
            }
        }
        CqdetError::Schema { .. } | CqdetError::Internal { .. } => {}
    }
    members.push(("message".into(), Json::str(error.to_string())));
    Json::Obj(members)
}

/// The wire JSON of a session's cumulative delta counters (the
/// `"delta_counters"` member of `view_add` / `view_remove` responses).
pub fn delta_counters_json(counters: &cqdet_core::DeltaCounters) -> Json {
    Json::obj([
        ("adds", Json::num(counters.adds as i64)),
        ("removes", Json::num(counters.removes as i64)),
        ("redecides", Json::num(counters.redecides as i64)),
        ("fast_removals", Json::num(counters.fast_removals as i64)),
        ("replays", Json::num(counters.replays as i64)),
        ("rebuilds", Json::num(counters.rebuilds as i64)),
    ])
}

/// The wire JSON of the per-reason robustness counters (the `"counters"`
/// member of `stats` responses).
pub fn counters_json(counters: &EngineCounters) -> Json {
    Json::obj([
        ("timeouts", Json::num(counters.timeouts as i64)),
        ("fuel_exhausted", Json::num(counters.fuel_exhausted as i64)),
        (
            "panics_contained",
            Json::num(counters.panics_contained as i64),
        ),
        (
            "shed_connections",
            Json::num(counters.shed_connections as i64),
        ),
        ("shed_requests", Json::num(counters.shed_requests as i64)),
        (
            "oversized_requests",
            Json::num(counters.oversized_requests as i64),
        ),
        ("accept_retries", Json::num(counters.accept_retries as i64)),
        (
            "snapshot_loaded",
            Json::num(counters.snapshot_loaded as i64),
        ),
        (
            "snapshot_rejected",
            Json::num(counters.snapshot_rejected as i64),
        ),
        ("sessions_open", Json::num(counters.sessions_open as i64)),
        (
            "sessions_reaped",
            Json::num(counters.sessions_reaped as i64),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_envelope_distinguishes_timeouts() {
        let timeout = Response::Error {
            id: Some("r1".into()),
            error: CqdetError::Deadline {
                stage: "gate".into(),
            },
        };
        let json = timeout.to_json();
        assert_eq!(json.get("type").unwrap().as_str(), Some("timeout"));
        assert_eq!(json.get("id").unwrap().as_str(), Some("r1"));
        let err = json.get("error").unwrap();
        assert_eq!(err.get("code").unwrap().as_str(), Some("deadline"));
        assert_eq!(err.get("stage").unwrap().as_str(), Some("gate"));

        let plain = Response::Error {
            id: None,
            error: CqdetError::schema("nope"),
        };
        let json = plain.to_json();
        assert_eq!(json.get("type").unwrap().as_str(), Some("error"));
        assert_eq!(json.get("id"), Some(&Json::Null));
        // Every envelope carries the protocol version and round-trips.
        assert_eq!(json.get("version").unwrap().as_u64(), Some(1));
        assert_eq!(Json::parse(&json.render()).unwrap(), json);
    }

    #[test]
    fn parse_errors_carry_position_on_the_wire() {
        let e = CqdetError::Parse {
            line: 3,
            col: 7,
            token: "junk".into(),
            message: "unexpected input after atom".into(),
        };
        let json = error_json(&e);
        assert_eq!(json.get("line").unwrap().as_u64(), Some(3));
        assert_eq!(json.get("col").unwrap().as_u64(), Some(7));
        assert_eq!(json.get("token").unwrap().as_str(), Some("junk"));
    }
}
