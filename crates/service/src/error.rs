//! The typed error hierarchy of the service protocol.
//!
//! Every failure a request can provoke collapses into one [`CqdetError`],
//! with a stable machine-readable [`CqdetError::code`] on the wire and
//! enough structure for a front end to act on it:
//!
//! | variant                | code                 | meaning |
//! |------------------------|----------------------|---------|
//! | [`CqdetError::Parse`]  | `parse`              | the program / task file / request JSON failed to parse; carries line, column and the offending token |
//! | [`CqdetError::Schema`] | `schema`             | well-formed input outside the decidable fragment or the protocol schema (free variables, union queries, nullary relations, unknown request members) |
//! | [`CqdetError::ResourceExhausted`] | `resource_exhausted` | a search budget or serving capacity ran out (separator search, connection cap) |
//! | [`CqdetError::Deadline`] | `deadline`         | the request's deadline expired; carries the pipeline stage that observed it — rendered as a `timeout` response |
//! | [`CqdetError::Internal`] | `internal`         | an invariant failed or a worker panicked; the process survives and reports it |
//!
//! Conversions from every lower-layer error type (`ParseQueryError`,
//! `TaskFileError`, `JsonError`, `DeterminacyError`, `WitnessError`) are
//! provided, so `?` composes the hierarchy from the leaves.

use cqdet_core::{DeterminacyError, WitnessError};
use cqdet_engine::{JsonError, TaskFileError};
use cqdet_query::ParseQueryError;
use std::fmt;

/// The service-level error hierarchy.  See the [module docs](self).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CqdetError {
    /// Input text failed to parse.
    Parse {
        /// 1-based line of the failure in the submitted text.
        line: usize,
        /// 1-based character column within that line.
        col: usize,
        /// The offending token (possibly empty at end of input).
        token: String,
        /// What the parser expected or found.
        message: String,
    },
    /// Well-formed input that the decidable fragment or the protocol schema
    /// rejects.
    Schema {
        /// The rejection, in full.
        message: String,
    },
    /// A bounded search, fuel budget or serving resource ran out.
    ResourceExhausted {
        /// Which budget was exhausted.
        what: String,
        /// For fuel budgets: total charged when the limit check fired.
        spent: Option<u64>,
        /// For fuel budgets: the configured limit.
        limit: Option<u64>,
    },
    /// The request's deadline expired (or its token was cancelled).
    Deadline {
        /// The pipeline stage boundary that observed the expiry
        /// (`"gate"`, `"basis"`, `"span"`, `"witness/…"`, `"submit"`).
        stage: String,
    },
    /// An internal invariant failed; the serving process survives it.
    Internal {
        /// The failure, for the logs.
        message: String,
    },
}

impl CqdetError {
    /// The stable machine-readable error code on the wire.
    pub fn code(&self) -> &'static str {
        match self {
            CqdetError::Parse { .. } => "parse",
            CqdetError::Schema { .. } => "schema",
            CqdetError::ResourceExhausted { .. } => "resource_exhausted",
            CqdetError::Deadline { .. } => "deadline",
            CqdetError::Internal { .. } => "internal",
        }
    }

    /// Shorthand for a [`CqdetError::Schema`] rejection.
    pub fn schema(message: impl Into<String>) -> CqdetError {
        CqdetError::Schema {
            message: message.into(),
        }
    }

    /// Shorthand for a [`CqdetError::Internal`] failure.
    pub fn internal(message: impl Into<String>) -> CqdetError {
        CqdetError::Internal {
            message: message.into(),
        }
    }

    /// Shorthand for a [`CqdetError::ResourceExhausted`] without fuel
    /// accounting (capacity limits, search budgets).
    pub fn resource(what: impl Into<String>) -> CqdetError {
        CqdetError::ResourceExhausted {
            what: what.into(),
            spent: None,
            limit: None,
        }
    }

    /// Render the error against the source text it refers to, with a caret
    /// marking the failing column of parse errors:
    ///
    /// ```text
    /// parse error at line 2, column 9: expected '(' after relation R (found "x")
    ///   |   q() :- R x,y)
    ///   |           ^
    /// ```
    ///
    /// Falls back to the plain [`fmt::Display`] rendering when the error is
    /// not positional or the line is missing from `source`.
    pub fn render(&self, source: Option<&str>) -> String {
        let CqdetError::Parse { line, col, .. } = self else {
            return self.to_string();
        };
        let Some(src_line) = source.and_then(|s| s.lines().nth(line.saturating_sub(1))) else {
            return self.to_string();
        };
        let caret_pad: String = src_line
            .chars()
            .take(col.saturating_sub(1))
            // Preserve hard tabs so the caret stays aligned with the source.
            .map(|c| if c == '\t' { '\t' } else { ' ' })
            .collect();
        format!("{self}\n  |  {src_line}\n  |  {caret_pad}^")
    }
}

impl fmt::Display for CqdetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CqdetError::Parse {
                line,
                col,
                token,
                message,
            } => {
                write!(f, "parse error at line {line}, column {col}: {message}")?;
                if !token.is_empty() {
                    write!(f, " (found {token:?})")?;
                }
                Ok(())
            }
            CqdetError::Schema { message } => write!(f, "schema error: {message}"),
            CqdetError::ResourceExhausted { what, spent, limit } => {
                write!(f, "resource exhausted: {what}")?;
                if let (Some(spent), Some(limit)) = (spent, limit) {
                    write!(f, " ({spent} spent, limit {limit})")?;
                }
                Ok(())
            }
            CqdetError::Deadline { stage } => {
                write!(f, "deadline exceeded at stage {stage}")
            }
            CqdetError::Internal { message } => write!(f, "internal error: {message}"),
        }
    }
}

impl std::error::Error for CqdetError {}

impl From<ParseQueryError> for CqdetError {
    fn from(e: ParseQueryError) -> CqdetError {
        CqdetError::Parse {
            line: e.line(),
            col: e.col(),
            token: e.token().to_string(),
            message: e.message().to_string(),
        }
    }
}

impl From<TaskFileError> for CqdetError {
    fn from(e: TaskFileError) -> CqdetError {
        match e {
            TaskFileError::BadDefinition { error, .. } => error.into(),
            other => CqdetError::Schema {
                message: other.to_string(),
            },
        }
    }
}

impl From<JsonError> for CqdetError {
    fn from(e: JsonError) -> CqdetError {
        // Requests are single JSON lines, so the byte offset is a line-1
        // column (1-based; close enough for ASCII protocol text).
        CqdetError::Parse {
            line: 1,
            col: e.offset + 1,
            token: String::new(),
            message: format!("invalid JSON: {}", e.message),
        }
    }
}

impl From<DeterminacyError> for CqdetError {
    fn from(e: DeterminacyError) -> CqdetError {
        match e {
            DeterminacyError::DeadlineExceeded { stage } => CqdetError::Deadline {
                stage: stage.to_string(),
            },
            DeterminacyError::ResourceExhausted { what, spent, limit } => {
                CqdetError::ResourceExhausted {
                    what: format!("fuel {what} budget"),
                    spent: Some(spent),
                    limit: Some(limit),
                }
            }
            DeterminacyError::Internal(message) => CqdetError::Internal { message },
            schema_violation => CqdetError::Schema {
                message: schema_violation.to_string(),
            },
        }
    }
}

impl From<WitnessError> for CqdetError {
    fn from(e: WitnessError) -> CqdetError {
        match e {
            WitnessError::DeadlineExceeded { stage } => CqdetError::Deadline {
                stage: stage.to_string(),
            },
            WitnessError::SeparatorNotFound { pair } => CqdetError::resource(format!(
                "separator search budget for basis pair ({}, {})",
                pair.0, pair.1
            )),
            WitnessError::Internal(message) => CqdetError::Internal { message },
            WitnessError::InstanceIsDetermined => CqdetError::Internal {
                message: "witness requested for a determined instance".to_string(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqdet_query::parse_query;

    #[test]
    fn codes_are_stable() {
        let parse = CqdetError::from(parse_query("q() : R(x,y)").unwrap_err());
        assert_eq!(parse.code(), "parse");
        assert_eq!(CqdetError::schema("x").code(), "schema");
        assert_eq!(
            CqdetError::Deadline {
                stage: "gate".into()
            }
            .code(),
            "deadline"
        );
        assert_eq!(CqdetError::internal("x").code(), "internal");
        assert_eq!(CqdetError::resource("x").code(), "resource_exhausted");
        let fuel: CqdetError = cqdet_core::DeterminacyError::ResourceExhausted {
            what: "steps",
            spent: 4096,
            limit: 64,
        }
        .into();
        assert_eq!(fuel.code(), "resource_exhausted");
        assert_eq!(
            fuel.to_string(),
            "resource exhausted: fuel steps budget (4096 spent, limit 64)"
        );
    }

    #[test]
    fn caret_rendering_points_at_the_token() {
        let source = "v() :- R(x,y)\n  q() : R(x,y)\n";
        let err = CqdetError::from(cqdet_query::parse_queries(source).unwrap_err());
        let rendered = err.render(Some(source));
        let lines: Vec<&str> = rendered.lines().collect();
        assert!(lines[0].contains("line 2"), "{rendered}");
        assert_eq!(lines[1], "  |    q() : R(x,y)");
        // The caret sits under column 3 (the 'q').
        assert_eq!(lines[2], "  |    ^");
        // Non-positional errors render flat.
        assert_eq!(
            CqdetError::schema("nope").render(Some(source)),
            "schema error: nope"
        );
    }

    #[test]
    fn conversions_pick_the_right_variant() {
        let e: CqdetError = cqdet_core::DeterminacyError::DeadlineExceeded { stage: "span" }.into();
        assert!(matches!(e, CqdetError::Deadline { ref stage } if stage == "span"));
        let e: CqdetError = cqdet_core::DeterminacyError::NullaryRelation("H".into()).into();
        assert_eq!(e.code(), "schema");
        let e: CqdetError = WitnessError::SeparatorNotFound { pair: (0, 1) }.into();
        assert_eq!(e.code(), "resource_exhausted");
        let e: CqdetError = cqdet_engine::parse_task_file("v() :- R(x,y)")
            .unwrap_err()
            .into();
        assert_eq!(e.code(), "schema");
        let e: CqdetError = cqdet_engine::parse_task_file("q() : R\ntask a: q <- *")
            .unwrap_err()
            .into();
        assert_eq!(e.code(), "parse");
        let e: CqdetError = cqdet_engine::Json::parse("{nope").unwrap_err().into();
        assert_eq!(e.code(), "parse");
    }
}
