//! The long-lived JSON-lines server: `cqdet serve`.
//!
//! Two dependency-free transports speak the same protocol
//! ([`crate::request`] / [`crate::response`], one JSON object per line):
//!
//! * [`serve_lines`] — stdin/stdout (or any `BufRead`/`Write` pair): the
//!   zero-setup mode, also what CI smoke-tests pipe requests through;
//! * [`serve_tcp`] — the event-driven core (see [`crate::reactor`]): a
//!   non-blocking readiness-polling reactor owns all connection I/O and
//!   feeds a fixed worker pool through a bounded queue, with a global
//!   in-flight admission budget ([`ServeOptions::inflight_budget`]),
//!   round-robin per-connection fairness, and typed `resource_exhausted`
//!   load-shedding.  Every connection talks to the **same** [`Engine`], so
//!   the session caches (frozen bodies, containment gates, span bases, the
//!   hom memo) are shared across connections — exactly the cross-request
//!   regime the PR 3/4 caches were built for.
//!
//! The previous transport — one scoped thread per connection — is retained
//! as [`serve_tcp_threaded`]: it is the §SOAK baseline the reactor is
//! benchmarked against, and `CQDET_THREADED_SERVE=1` routes [`serve_tcp`]
//! back to it as an operational escape hatch.
//!
//! Error containment: a malformed line, a request outside the decidable
//! fragment, an expired deadline or even a panicking worker each produce a
//! typed error/timeout **response** on the same connection — never a dropped
//! connection, never a dead server.
//!
//! Graceful shutdown: a `shutdown` request (on any connection) is
//! acknowledged, the accept loop stops accepting, every connection finishes
//! its in-flight request and drains the lines it has already read, and
//! [`serve_tcp`] returns once all handlers have exited.

use crate::engine::Engine;
use crate::error::CqdetError;
use crate::request::{BudgetSpec, Request};
use crate::response::Response;
use cqdet_engine::Json;
use cqdet_failpoint::fail_point;
use std::io::{self, BufRead, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

/// Knobs of the TCP transport.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Maximum concurrently served connections; an accept beyond the cap is
    /// answered with one `resource_exhausted` error response and closed.
    pub max_connections: usize,
    /// How often blocked reads and the accept loop re-check the shutdown
    /// flag (also each connection's read timeout).
    pub poll_interval: Duration,
    /// Maximum bytes one request line may span; a connection that exceeds
    /// it (e.g. an endless stream with no newline) is answered with one
    /// `resource_exhausted` error response and closed, bounding per-
    /// connection memory.
    pub max_request_bytes: usize,
    /// Default fuel budget installed on the engine when serving starts:
    /// applied to every request that carries no `budget` member of its own
    /// (the `--fuel-steps` / `--fuel-bytes` serve flags).
    pub default_budget: Option<BudgetSpec>,
    /// Cap on the exponential backoff the accept loop sleeps after a
    /// *transient* accept error (aborted handshakes under load); the first
    /// retry waits 1 ms, doubling up to this cap, reset on any successful
    /// accept.
    pub accept_backoff_max: Duration,
    /// Worker threads the reactor dispatches requests to; `0` sizes the
    /// pool from `cqdet_parallel::max_parallelism()`.  Ignored by the
    /// thread-per-connection twin.
    pub worker_threads: usize,
    /// Global admission budget: the maximum number of requests admitted
    /// (dispatched or queued) but not yet answered, across all
    /// connections.  A frame arriving over budget is *shed* — answered
    /// immediately with a typed `resource_exhausted` error, never stalled
    /// or dropped.  Ignored by the thread-per-connection twin.
    pub inflight_budget: usize,
    /// Total byte budget across every governed session cache (the
    /// `--cache-bytes` serve flag): split between the frozen-body,
    /// containment-gate, span-basis, hom-count and candidate caches, with
    /// the total doubling as a global memory watermark.  Over-budget
    /// entries are evicted and recomputed on demand — a tiny cap degrades
    /// throughput, never correctness.  `None` keeps the per-cache defaults.
    pub cache_bytes: Option<u64>,
    /// Warm-start snapshot path (the `--snapshot` serve flag): loaded at
    /// boot (a missing, corrupted or truncated file is a counted cold
    /// start, never a failed boot) and rewritten atomically when the serve
    /// loop exits.
    pub snapshot_path: Option<PathBuf>,
    /// Idle time-to-live of mutable decision sessions: a session untouched
    /// this long is reaped on the next sweep (any session or stats
    /// request), its bytes discharged from the governed ledger.
    pub session_ttl: Duration,
    /// Cap on concurrently open mutable sessions; an open beyond the cap
    /// (after reaping) is answered with a typed `resource_exhausted` error.
    pub max_sessions: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            // Connections mostly wait on pipelined request I/O while the
            // engine fans work out internally, so over-subscribe the cores.
            max_connections: cqdet_parallel::max_parallelism().saturating_mul(4).max(8),
            poll_interval: Duration::from_millis(25),
            // Generous: task files are text, and the biggest legitimate
            // requests (bulk batches) are a few MiB.
            max_request_bytes: 64 << 20,
            default_budget: None,
            accept_backoff_max: Duration::from_millis(100),
            worker_threads: 0,
            // Far above any honest pipelining depth, low enough to refuse
            // an unbounded backlog long before memory pressure.
            inflight_budget: 4096,
            cache_bytes: None,
            snapshot_path: None,
            session_ttl: crate::sessions::DEFAULT_SESSION_TTL,
            max_sessions: crate::sessions::DEFAULT_MAX_SESSIONS,
        }
    }
}

/// Every fault-injection seam reachable from a served request, for chaos
/// harnesses to cycle through (see `cqdet-failpoint`).  Grouped by layer:
/// reactor core, connection I/O, line handling, engine dispatch, decision
/// stages, session cache internals, cache governance.  `serve/shed` only
/// fires on the admission-control shed path, so the generic chaos matrix
/// (which drives ordinary under-budget traffic) exercises it via a
/// dedicated over-budget scenario rather than this list's round-trip
/// probe; likewise `cache/evict` only fires while a byte cap forces
/// evictions (arm it with a tiny [`ServeOptions::cache_bytes`]), and the
/// `snapshot/*` seams fire at boot/shutdown rather than per request, so
/// they get their own save/corrupt/reload scenarios.  The `session/open`,
/// `session/mutate` and `session/replay` seams fire only on mutable-session
/// requests (`session_open`, `view_add`, `view_remove`), so the generic
/// matrix skips them too; the dedicated session chaos scenario drives them
/// with real mutation traffic and asserts apply-or-rollback atomicity.
pub fn failpoint_names() -> &'static [&'static str] {
    &[
        "serve/poll",
        "serve/dispatch",
        "serve/shed",
        "serve/conn/read",
        "serve/conn/write",
        "serve/parse",
        "serve/emit",
        "engine/submit",
        "decide/gate",
        "decide/basis",
        "decide/span",
        "session/lock",
        "session/cache-insert",
        "session/open",
        "session/mutate",
        "session/replay",
        "cache/evict",
        "snapshot/save",
        "snapshot/load",
    ]
}

/// Boot-time engine policy shared by every transport: install the default
/// fuel budget, apply the cache byte budget, warm-start from the snapshot
/// (missing/corrupt → counted cold start, never a failed boot).
pub(crate) fn boot_engine(engine: &Engine, options: &ServeOptions) {
    if options.default_budget.is_some() {
        engine.set_default_budget(options.default_budget);
    }
    if let Some(bytes) = options.cache_bytes {
        engine.set_cache_bytes(Some(bytes));
    }
    engine.set_session_ttl(options.session_ttl);
    engine.set_max_sessions(options.max_sessions);
    if let Some(path) = &options.snapshot_path {
        let _ = engine.warm_start(path);
    }
}

/// Exit-time persistence shared by every transport: rewrite the snapshot
/// atomically.  Best effort — a failed or faulted save never blocks the
/// server from exiting.
pub(crate) fn persist_engine(engine: &Engine, options: &ServeOptions) {
    if let Some(path) = &options.snapshot_path {
        let _ = engine.save_snapshot_quiet(path);
    }
}

/// Decode one request line and produce its response.  Blank lines produce
/// `None`.  The id is echoed on error responses whenever the line was at
/// least a JSON object with an `"id"` member.
pub fn respond_to_line(engine: &Engine, line: &str) -> Option<Response> {
    let line = line.trim();
    if line.is_empty() {
        return None;
    }
    fail_point!("serve/parse", |msg: String| Some(Response::Error {
        id: None,
        error: CqdetError::internal(msg),
    }));
    Some(match Json::parse(line) {
        Err(e) => Response::Error {
            id: None,
            error: e.into(),
        },
        Ok(json) => {
            let id = json.get("id").and_then(Json::as_str).map(str::to_string);
            match Request::from_json(&json) {
                Ok(request) => engine.submit(request),
                Err(error) => Response::Error { id, error },
            }
        }
    })
}

/// Decode, dispatch and render one line to its wire JSON, containing
/// panics from *any* layer under it (the parse seam, engine dispatch, JSON
/// rendering, the emit seam): a panic becomes a typed internal-error line,
/// never a dead connection.  `(rendered, shutdown)`; `None` for blank lines.
/// The reactor's worker pool runs exactly this per job.
pub(crate) fn render_line(engine: &Engine, line: &str) -> Option<(String, bool)> {
    let rendered = catch_unwind(AssertUnwindSafe(|| {
        let response = respond_to_line(engine, line)?;
        let done = matches!(response, Response::Shutdown { .. });
        fail_point!("serve/emit", |msg: String| Some((
            Response::Error {
                id: None,
                error: CqdetError::internal(msg),
            }
            .to_json()
            .render(),
            done,
        )));
        Some((response.to_json().render(), done))
    }));
    match rendered {
        Ok(out) => out,
        Err(_) => {
            engine.note_panic_contained();
            let response = Response::Error {
                id: None,
                error: CqdetError::internal("response handling panicked"),
            };
            Some((response.to_json().render(), false))
        }
    }
}

/// Serve JSON-lines over an arbitrary reader/writer pair (the stdio
/// transport).  Returns the number of requests answered.  The loop ends on
/// EOF or after acknowledging a `shutdown` request.  Input is read as raw
/// bytes (invalid UTF-8 is replaced, answered as a parse error, and the
/// loop continues — a malformed line must never kill the server).
pub fn serve_lines<R: BufRead, W: Write>(
    engine: &Engine,
    mut reader: R,
    mut writer: W,
) -> io::Result<u64> {
    let mut served = 0u64;
    let mut buf = Vec::new();
    loop {
        buf.clear();
        if reader.read_until(b'\n', &mut buf)? == 0 {
            break; // EOF
        }
        let line = String::from_utf8_lossy(&buf);
        let Some((rendered, shutdown)) = render_line(engine, &line) else {
            continue;
        };
        let done = shutdown || engine.shutdown_requested();
        writer.write_all(rendered.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        served += 1;
        if done {
            break;
        }
    }
    Ok(served)
}

/// Serve the protocol on a TCP listener bound to `addr` (e.g.
/// `127.0.0.1:0` for an ephemeral port).  `on_ready` receives the bound
/// address before the first accept — front ends print their "serving" line
/// from it, tests learn the ephemeral port.  Returns after a graceful
/// shutdown with the number of requests answered.
///
/// This runs the event-driven reactor core ([`crate::reactor`]);
/// `CQDET_THREADED_SERVE=1` routes to the retained thread-per-connection
/// twin ([`serve_tcp_threaded`]) instead.
pub fn serve_tcp<F: FnOnce(SocketAddr)>(
    engine: &Engine,
    addr: &str,
    options: &ServeOptions,
    on_ready: F,
) -> io::Result<u64> {
    if std::env::var_os("CQDET_THREADED_SERVE").is_some_and(|v| v == "1") {
        serve_tcp_threaded(engine, addr, options, on_ready)
    } else {
        crate::reactor::serve_tcp_reactor(engine, addr, options, on_ready)
    }
}

/// The previous TCP transport — one scoped thread per connection, blocking
/// reads with a poll-interval timeout — retained as the reactor's
/// behavioral twin and §SOAK throughput baseline.
pub fn serve_tcp_threaded<F: FnOnce(SocketAddr)>(
    engine: &Engine,
    addr: &str,
    options: &ServeOptions,
    on_ready: F,
) -> io::Result<u64> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    boot_engine(engine, options);
    on_ready(listener.local_addr()?);
    let active = AtomicUsize::new(0);
    let served = AtomicU64::new(0);
    let mut transient_retries: u32 = 0;
    // On a fatal accept error the loop must still unwedge the scope join:
    // connection handlers only exit on client disconnect or the shutdown
    // flag, so the flag is raised before bailing out with the error.
    let fatal: Option<io::Error> = std::thread::scope(|scope| {
        loop {
            if engine.shutdown_requested() {
                return None;
            }
            match listener.accept() {
                Ok((stream, _peer)) => {
                    transient_retries = 0;
                    if active.load(Ordering::Relaxed) >= options.max_connections {
                        // Over capacity: answer with a typed error, close —
                        // the client got a response, not a hang-up.
                        engine.note_shed_connection();
                        let _ = reject_connection(stream);
                        continue;
                    }
                    active.fetch_add(1, Ordering::Relaxed);
                    let (active, served) = (&active, &served);
                    scope.spawn(move || {
                        // A handler panic (e.g. an armed `serve/conn/*`
                        // failpoint) must cost one connection, not the whole
                        // accept scope.
                        let n = catch_unwind(AssertUnwindSafe(|| {
                            handle_connection(engine, stream, options)
                        }))
                        .unwrap_or_else(|_| {
                            engine.note_panic_contained();
                            0
                        });
                        served.fetch_add(n, Ordering::Relaxed);
                        active.fetch_sub(1, Ordering::Relaxed);
                    });
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(options.poll_interval);
                }
                // Transient per-connection failures (the peer aborted
                // between SYN and accept) must not take the server down —
                // but under an accept storm they also must not busy-spin the
                // accept thread: sleep with capped exponential backoff plus
                // a small deterministic jitter (so multiple servers sharing
                // a host don't re-accept in lockstep), reset on success.
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::Interrupted
                            | io::ErrorKind::ConnectionAborted
                            | io::ErrorKind::ConnectionReset
                    ) =>
                {
                    transient_retries = transient_retries.saturating_add(1);
                    engine.note_accept_retry();
                    let exp =
                        Duration::from_millis(1u64 << transient_retries.min(10).saturating_sub(1));
                    let jitter = Duration::from_micros(
                        u64::from(transient_retries).wrapping_mul(2_654_435_761) % 1_000,
                    );
                    std::thread::sleep(exp.min(options.accept_backoff_max) + jitter);
                }
                Err(e) => {
                    engine.request_shutdown();
                    return Some(e);
                }
            }
        }
    });
    persist_engine(engine, options);
    match fatal {
        Some(e) => Err(e),
        None => Ok(served.load(Ordering::Relaxed)),
    }
}

pub(crate) fn reject_connection(mut stream: TcpStream) -> io::Result<()> {
    let response = Response::Error {
        id: None,
        error: CqdetError::resource("connection slots (try again shortly)"),
    };
    stream.write_all(response.to_json().render().as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()
}

/// One connection: read lines, answer each, poll the shutdown flag while
/// idle.  Responses are written in request order (pipelining-safe).
/// Returns the number of requests answered.
fn handle_connection(engine: &Engine, mut stream: TcpStream, options: &ServeOptions) -> u64 {
    // Blocking reads with a timeout: the handler wakes up at `poll` cadence
    // to notice a shutdown requested on *another* connection.
    if stream
        .set_read_timeout(Some(options.poll_interval))
        .is_err()
    {
        return 0;
    }
    let mut served = 0u64;
    let mut pending: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 8192];
    let mut eof = false;
    loop {
        // Drain every complete line already buffered.
        while let Some(pos) = pending.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = pending.drain(..=pos).collect();
            let line = String::from_utf8_lossy(&line[..line.len() - 1]).into_owned();
            match answer(engine, &stream, &line) {
                Ok(done) => {
                    served += done.0;
                    if done.1 {
                        return served;
                    }
                }
                // The client went away mid-write; nothing left to serve.
                Err(_) => return served,
            }
        }
        if eof {
            // Trailing request without a final newline: still answer it.
            if !pending.is_empty() {
                let line = String::from_utf8_lossy(&pending).into_owned();
                if let Ok(done) = answer(engine, &stream, &line) {
                    served += done.0;
                }
            }
            return served;
        }
        // Complete lines were all drained above, so an oversized `pending`
        // means one request line exceeds the cap: answer with a typed
        // error and close, bounding per-connection memory.
        if pending.len() > options.max_request_bytes {
            engine.note_oversized_request();
            let response = Response::Error {
                id: None,
                error: CqdetError::resource(format!(
                    "request line exceeds {} bytes",
                    options.max_request_bytes
                )),
            };
            let _ = stream.write_all(response.to_json().render().as_bytes());
            let _ = stream.write_all(b"\n");
            let _ = stream.flush();
            return served;
        }
        if engine.shutdown_requested() {
            return served;
        }
        fail_point!("serve/conn/read");
        match stream.read(&mut chunk) {
            Ok(0) => eof = true,
            Ok(n) => pending.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut
                    || e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return served,
        }
    }
}

/// Answer one line on a connection: `(requests_answered, shutdown)`.
fn answer(engine: &Engine, mut stream: &TcpStream, line: &str) -> io::Result<(u64, bool)> {
    let Some((rendered, done)) = render_line(engine, line) else {
        return Ok((0, false));
    };
    fail_point!("serve/conn/write");
    stream.write_all(rendered.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()?;
    Ok((1, done))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    const PROGRAM: &str = "v() :- R(x,y)\\nq() :- R(x,y), R(u,w)";

    #[test]
    fn stdio_transport_answers_and_shuts_down() {
        let engine = Engine::new();
        let input = format!(
            "{}\n\n{}\n{}\n",
            format_args!(r#"{{"id":"r1","type":"decide","program":"{PROGRAM}"}}"#),
            r#"{"id":"r2","type":"stats"}"#,
            r#"{"id":"r3","type":"shutdown"}"#,
        );
        let mut out = Vec::new();
        let served = serve_lines(&engine, Cursor::new(input), &mut out).unwrap();
        assert_eq!(served, 3);
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "{text}");
        let first = Json::parse(lines[0]).unwrap();
        assert_eq!(first.get("id").unwrap().as_str(), Some("r1"));
        assert_eq!(first.get("type").unwrap().as_str(), Some("decide"));
        assert_eq!(
            first.get("record").unwrap().get("status").unwrap().as_str(),
            Some("determined")
        );
        let last = Json::parse(lines[2]).unwrap();
        assert_eq!(last.get("type").unwrap().as_str(), Some("shutdown"));
        assert!(engine.shutdown_requested());
    }

    #[test]
    fn malformed_lines_get_error_responses_not_disconnects() {
        let engine = Engine::new();
        let input = "this is not json\n{\"id\":\"ok\",\"type\":\"stats\"}\n";
        let mut out = Vec::new();
        let served = serve_lines(&engine, Cursor::new(input), &mut out).unwrap();
        assert_eq!(served, 2, "the bad line answered, the loop continued");
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        let err = Json::parse(lines[0]).unwrap();
        assert_eq!(err.get("type").unwrap().as_str(), Some("error"));
        assert_eq!(
            err.get("error").unwrap().get("code").unwrap().as_str(),
            Some("parse")
        );
        let ok = Json::parse(lines[1]).unwrap();
        assert_eq!(ok.get("type").unwrap().as_str(), Some("stats"));
    }

    #[test]
    fn invalid_utf8_gets_an_error_response_not_a_dead_server() {
        let engine = Engine::new();
        let mut input: Vec<u8> = b"\xff\xfe not utf-8\n".to_vec();
        input.extend_from_slice(b"{\"id\":\"ok\",\"type\":\"stats\"}\n");
        let mut out = Vec::new();
        let served = serve_lines(&engine, Cursor::new(input), &mut out).unwrap();
        assert_eq!(served, 2, "the bad bytes answered, the loop continued");
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        let err = Json::parse(lines[0]).unwrap();
        assert_eq!(err.get("type").unwrap().as_str(), Some("error"));
        let ok = Json::parse(lines[1]).unwrap();
        assert_eq!(ok.get("type").unwrap().as_str(), Some("stats"));
    }

    #[test]
    fn unknown_type_echoes_the_request_id() {
        let engine = Engine::new();
        let response = respond_to_line(&engine, r#"{"id":"who","type":"frobnicate"}"#).unwrap();
        assert_eq!(response.id(), Some("who"));
        assert!(response.is_error());
        assert!(respond_to_line(&engine, "   ").is_none());
    }
}
