//! Typed requests: one variant per workload family, with JSON-lines
//! decoding/encoding.
//!
//! A request on the wire is one JSON object per line:
//!
//! ```text
//! {"id":"r1","type":"decide","program":"v() :- R(x,y)\nq() :- R(x,y), R(u,w)","query":"q","witness":true}
//! {"id":"r2","type":"batch","tasks":"v() :- R(x,y)\nq() :- R(x,y), R(u,w)\ntask t: q <- v","deadline_ms":5000}
//! {"id":"r3","type":"path","query":"ABCD","views":["ABC","BC","BCD"]}
//! {"id":"r4","type":"hilbert","bound":6,"monomials":["+2:x,y","-12:"]}
//! {"id":"r5","type":"explain","program":"...","query":"q"}
//! {"id":"r6","type":"stats"}
//! {"id":"r7","type":"shutdown"}
//! ```
//!
//! * `id` — caller-chosen, echoed verbatim on the response (pipelining);
//! * `deadline_ms` — optional per-request deadline; checked at the
//!   pipeline's stage boundaries *and* every ~4k fuel steps inside the
//!   kernels; expiry yields a `timeout` response;
//! * `budget` — optional per-request fuel budget: a number (a step limit)
//!   or an object `{"steps": n, "bytes": m}` (either member optional).
//!   Kernels charge steps per unit of work and bytes for big-number growth;
//!   an exhausted ledger yields a `resource_exhausted` error response
//!   within microseconds, with `spent`/`limit` attached;
//! * unknown members are rejected (a typed `schema` error), so typos never
//!   silently change behaviour.
//!
//! Program text travels inside requests (`program`, `tasks`) in the same
//! Datalog-style syntax the CLI reads from files; parse failures come back
//! as positioned `parse` errors against that text.

use crate::error::CqdetError;
use cqdet_engine::Json;

/// Version of the request/response protocol (the `"version"` member of every
/// response envelope).  Currently `1`; requests do not carry a version —
/// unknown members and types are rejected instead.
pub const PROTOCOL_VERSION: i64 = 1;

/// One request: an id for pipelining, optional deadline and fuel budget,
/// and the typed payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Caller-chosen identifier, echoed on the response.
    pub id: String,
    /// Optional deadline in milliseconds; checked at pipeline stage
    /// boundaries (gate → basis → span → witness) and inside the metered
    /// kernels every ~4k fuel steps.
    pub deadline_ms: Option<u64>,
    /// Optional fuel budget for the decision kernels (wire member
    /// `budget`); `None` falls back to the engine's default budget.
    pub budget: Option<BudgetSpec>,
    /// The workload payload.
    pub kind: RequestKind,
}

/// A fuel budget on the wire: step and/or byte limits for the decision
/// kernels.  Encoded as a bare number (steps only) or an object
/// `{"steps": n, "bytes": m}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetSpec {
    /// Step-ledger limit (one step ≈ one candidate extension in a hom
    /// search, one row-entry update in an elimination).
    pub steps: Option<u64>,
    /// Byte-ledger limit (charged for big-number coefficient growth in
    /// exact elimination).
    pub bytes: Option<u64>,
}

impl BudgetSpec {
    /// The in-process [`cqdet_parallel::Budget`] of this spec.
    pub fn to_budget(self) -> cqdet_parallel::Budget {
        cqdet_parallel::Budget::with_limits(self.steps, self.bytes)
    }
}

/// The workload families of the protocol — one variant per subcommand of the
/// `cqdet` CLI, which routes through exactly this type.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestKind {
    /// Decide one instance (Theorem 3): `program` defines one boolean CQ per
    /// line; the definition named `query` is the query, the rest are views.
    Decide {
        /// The program text.
        program: String,
        /// The query definition's name.
        query: String,
        /// Build (and verify) a counterexample when not determined.
        witness: bool,
    },
    /// Run a batch task file through the shared session.
    Batch {
        /// The task-file text (`cqdet_engine::taskfile` grammar).
        tasks: String,
        /// Build counterexamples for undetermined tasks (default `true`).
        witnesses: bool,
        /// Run the full symbolic re-verification (default `true`).
        verify: bool,
    },
    /// Path-query determinacy (Theorem 1) on compact words.
    Path {
        /// The query word (e.g. `"ABCD"`).
        query: String,
        /// The view words.
        views: Vec<String>,
    },
    /// The Theorem 2 reduction: search for a bounded refutation.
    Hilbert {
        /// Box bound on the unknowns.
        bound: u64,
        /// Monomials in `coeff:var^deg,...` syntax.
        monomials: Vec<String>,
    },
    /// The full analysis, narrated (the `explain` subcommand).
    Explain {
        /// The program text.
        program: String,
        /// The query definition's name.
        query: String,
    },
    /// Open a mutable decision session: the program's views and query
    /// become first-class server-side state addressable by the returned
    /// session id (echoed in the response envelope's payload).
    SessionOpen {
        /// The program text (views plus the query definition).
        program: String,
        /// The query definition's name.
        query: String,
        /// Checkpoint cadence of the session's span echelon (snapshot every
        /// K fed generators); `None` uses the engine default.
        checkpoint_interval: Option<u64>,
    },
    /// Add one view to an open session, extending its span echelon in
    /// place.
    ViewAdd {
        /// The target session id.
        session: u64,
        /// One CQ definition (the same syntax as a `program` line).
        view: String,
    },
    /// Remove a view (by name) from an open session, repairing its span
    /// echelon by compaction or checkpointed replay.
    ViewRemove {
        /// The target session id.
        session: u64,
        /// The name of the view definition to remove.
        view: String,
    },
    /// Re-decide determinacy for a session's current view set against its
    /// live echelon — byte-identical to a fresh one-shot `decide`.
    Redecide {
        /// The target session id.
        session: u64,
        /// Build (and verify) a counterexample when not determined.
        witness: bool,
    },
    /// Close a session, releasing its server-side state.
    SessionClose {
        /// The target session id.
        session: u64,
    },
    /// Session statistics (cache counters, request count).
    Stats,
    /// Graceful shutdown: the server finishes in-flight requests, answers
    /// this one, and stops accepting.
    Shutdown,
}

impl RequestKind {
    /// The wire `"type"` string of this request kind.
    pub fn type_str(&self) -> &'static str {
        match self {
            RequestKind::Decide { .. } => "decide",
            RequestKind::Batch { .. } => "batch",
            RequestKind::Path { .. } => "path",
            RequestKind::Hilbert { .. } => "hilbert",
            RequestKind::Explain { .. } => "explain",
            RequestKind::SessionOpen { .. } => "session_open",
            RequestKind::ViewAdd { .. } => "view_add",
            RequestKind::ViewRemove { .. } => "view_remove",
            RequestKind::Redecide { .. } => "redecide",
            RequestKind::SessionClose { .. } => "session_close",
            RequestKind::Stats => "stats",
            RequestKind::Shutdown => "shutdown",
        }
    }
}

/// Accessor helpers over a request object that track which members were
/// consumed, so unknown members can be rejected explicitly.
struct Fields<'a> {
    members: &'a [(String, Json)],
    consumed: Vec<&'a str>,
}

impl<'a> Fields<'a> {
    fn new(json: &'a Json) -> Result<Fields<'a>, CqdetError> {
        match json {
            Json::Obj(members) => Ok(Fields {
                members,
                consumed: Vec::new(),
            }),
            other => Err(CqdetError::schema(format!(
                "a request must be a JSON object, got {other:?}"
            ))),
        }
    }

    fn get(&mut self, key: &'static str) -> Option<&'a Json> {
        self.consumed.push(key);
        self.members.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    fn str(&mut self, key: &'static str) -> Result<String, CqdetError> {
        self.opt_str(key)?
            .ok_or_else(|| CqdetError::schema(format!("request member {key:?} is required")))
    }

    fn opt_str(&mut self, key: &'static str) -> Result<Option<String>, CqdetError> {
        match self.get(key) {
            None => Ok(None),
            Some(Json::Str(s)) => Ok(Some(s.clone())),
            Some(other) => Err(CqdetError::schema(format!(
                "request member {key:?} must be a string, got {other:?}"
            ))),
        }
    }

    fn opt_bool(&mut self, key: &'static str, default: bool) -> Result<bool, CqdetError> {
        match self.get(key) {
            None => Ok(default),
            Some(Json::Bool(b)) => Ok(*b),
            Some(other) => Err(CqdetError::schema(format!(
                "request member {key:?} must be a boolean, got {other:?}"
            ))),
        }
    }

    fn opt_u64(&mut self, key: &'static str) -> Result<Option<u64>, CqdetError> {
        match self.get(key) {
            None => Ok(None),
            Some(v) => v.as_u64().map(Some).ok_or_else(|| {
                CqdetError::schema(format!(
                    "request member {key:?} must be a non-negative integer"
                ))
            }),
        }
    }

    fn u64(&mut self, key: &'static str) -> Result<u64, CqdetError> {
        self.opt_u64(key)?
            .ok_or_else(|| CqdetError::schema(format!("request member {key:?} is required")))
    }

    /// The `budget` member: a bare number (steps) or an object with
    /// optional `steps`/`bytes` members.
    fn opt_budget(&mut self) -> Result<Option<BudgetSpec>, CqdetError> {
        let Some(value) = self.get("budget") else {
            return Ok(None);
        };
        if let Some(n) = value.as_u64() {
            return Ok(Some(BudgetSpec {
                steps: Some(n),
                bytes: None,
            }));
        }
        let Json::Obj(members) = value else {
            return Err(CqdetError::schema(format!(
                "request member \"budget\" must be a non-negative integer \
                 (steps) or an object with \"steps\"/\"bytes\" members, got {value:?}"
            )));
        };
        let mut spec = BudgetSpec {
            steps: None,
            bytes: None,
        };
        for (k, v) in members {
            let slot = match k.as_str() {
                "steps" => &mut spec.steps,
                "bytes" => &mut spec.bytes,
                other => {
                    return Err(CqdetError::schema(format!(
                        "unknown budget member {other:?} (expected \"steps\" or \"bytes\")"
                    )))
                }
            };
            *slot = Some(v.as_u64().ok_or_else(|| {
                CqdetError::schema(format!(
                    "budget member {k:?} must be a non-negative integer"
                ))
            })?);
        }
        Ok(Some(spec))
    }

    fn str_array(&mut self, key: &'static str) -> Result<Vec<String>, CqdetError> {
        let items = match self.get(key) {
            Some(Json::Arr(items)) => items,
            Some(other) => {
                return Err(CqdetError::schema(format!(
                    "request member {key:?} must be an array of strings, got {other:?}"
                )))
            }
            None => {
                return Err(CqdetError::schema(format!(
                    "request member {key:?} is required"
                )))
            }
        };
        items
            .iter()
            .map(|v| {
                v.as_str().map(str::to_string).ok_or_else(|| {
                    CqdetError::schema(format!("request member {key:?} must contain only strings"))
                })
            })
            .collect()
    }

    /// Reject members that no accessor asked about.
    fn reject_unknown(&self) -> Result<(), CqdetError> {
        for (k, _) in self.members {
            if !self.consumed.contains(&k.as_str()) {
                return Err(CqdetError::schema(format!("unknown request member {k:?}")));
            }
        }
        Ok(())
    }
}

impl Request {
    /// Decode one request from its parsed JSON object.
    pub fn from_json(json: &Json) -> Result<Request, CqdetError> {
        let mut fields = Fields::new(json)?;
        let id = fields.opt_str("id")?.unwrap_or_default();
        let deadline_ms = fields.opt_u64("deadline_ms")?;
        let budget = fields.opt_budget()?;
        let kind_str = fields.str("type")?;
        let kind = match kind_str.as_str() {
            "decide" => RequestKind::Decide {
                program: fields.str("program")?,
                query: fields.opt_str("query")?.unwrap_or_else(|| "q".to_string()),
                witness: fields.opt_bool("witness", false)?,
            },
            "batch" => RequestKind::Batch {
                tasks: fields.str("tasks")?,
                witnesses: fields.opt_bool("witnesses", true)?,
                verify: fields.opt_bool("verify", true)?,
            },
            "path" => RequestKind::Path {
                query: fields.str("query")?,
                views: fields.str_array("views")?,
            },
            "hilbert" => RequestKind::Hilbert {
                bound: fields.u64("bound")?,
                monomials: fields.str_array("monomials")?,
            },
            "explain" => RequestKind::Explain {
                program: fields.str("program")?,
                query: fields.opt_str("query")?.unwrap_or_else(|| "q".to_string()),
            },
            "session_open" => RequestKind::SessionOpen {
                program: fields.str("program")?,
                query: fields.opt_str("query")?.unwrap_or_else(|| "q".to_string()),
                checkpoint_interval: fields.opt_u64("checkpoint_interval")?,
            },
            "view_add" => RequestKind::ViewAdd {
                session: fields.u64("session")?,
                view: fields.str("view")?,
            },
            "view_remove" => RequestKind::ViewRemove {
                session: fields.u64("session")?,
                view: fields.str("view")?,
            },
            "redecide" => RequestKind::Redecide {
                session: fields.u64("session")?,
                witness: fields.opt_bool("witness", false)?,
            },
            "session_close" => RequestKind::SessionClose {
                session: fields.u64("session")?,
            },
            "stats" => RequestKind::Stats,
            "shutdown" => RequestKind::Shutdown,
            other => {
                return Err(CqdetError::schema(format!(
                    "unknown request type {other:?} \
                     (expected decide|batch|path|hilbert|explain|session_open|\
                      view_add|view_remove|redecide|session_close|stats|shutdown)"
                )))
            }
        };
        fields.reject_unknown()?;
        Ok(Request {
            id,
            deadline_ms,
            budget,
            kind,
        })
    }

    /// Decode one JSON-lines request (parse, then [`Request::from_json`]).
    pub fn from_line(line: &str) -> Result<Request, CqdetError> {
        let json = Json::parse(line)?;
        Request::from_json(&json)
    }

    /// Encode the request back to its wire JSON (clients, tests, the bench
    /// harness).  `from_json(to_json(r)) == r` for every request.
    pub fn to_json(&self) -> Json {
        let mut members: Vec<(String, Json)> = vec![("id".into(), Json::str(&self.id))];
        if let Some(ms) = self.deadline_ms {
            members.push(("deadline_ms".into(), Json::num(ms as i64)));
        }
        if let Some(budget) = self.budget {
            // Canonical encoding: bare number when only steps are limited,
            // the explicit object otherwise.
            let value = match budget {
                BudgetSpec {
                    steps: Some(steps),
                    bytes: None,
                } => Json::num(steps as i64),
                BudgetSpec { steps, bytes } => {
                    let mut m = Vec::new();
                    if let Some(steps) = steps {
                        m.push(("steps".to_string(), Json::num(steps as i64)));
                    }
                    if let Some(bytes) = bytes {
                        m.push(("bytes".to_string(), Json::num(bytes as i64)));
                    }
                    Json::Obj(m)
                }
            };
            members.push(("budget".into(), value));
        }
        members.push(("type".into(), Json::str(self.kind.type_str())));
        match &self.kind {
            RequestKind::Decide {
                program,
                query,
                witness,
            } => {
                members.push(("program".into(), Json::str(program)));
                members.push(("query".into(), Json::str(query)));
                members.push(("witness".into(), Json::Bool(*witness)));
            }
            RequestKind::Batch {
                tasks,
                witnesses,
                verify,
            } => {
                members.push(("tasks".into(), Json::str(tasks)));
                members.push(("witnesses".into(), Json::Bool(*witnesses)));
                members.push(("verify".into(), Json::Bool(*verify)));
            }
            RequestKind::Path { query, views } => {
                members.push(("query".into(), Json::str(query)));
                members.push((
                    "views".into(),
                    Json::Arr(views.iter().map(Json::str).collect()),
                ));
            }
            RequestKind::Hilbert { bound, monomials } => {
                members.push(("bound".into(), Json::num(*bound as i64)));
                members.push((
                    "monomials".into(),
                    Json::Arr(monomials.iter().map(Json::str).collect()),
                ));
            }
            RequestKind::Explain { program, query } => {
                members.push(("program".into(), Json::str(program)));
                members.push(("query".into(), Json::str(query)));
            }
            RequestKind::SessionOpen {
                program,
                query,
                checkpoint_interval,
            } => {
                members.push(("program".into(), Json::str(program)));
                members.push(("query".into(), Json::str(query)));
                if let Some(k) = checkpoint_interval {
                    members.push(("checkpoint_interval".into(), Json::num(*k as i64)));
                }
            }
            RequestKind::ViewAdd { session, view } | RequestKind::ViewRemove { session, view } => {
                members.push(("session".into(), Json::num(*session as i64)));
                members.push(("view".into(), Json::str(view)));
            }
            RequestKind::Redecide { session, witness } => {
                members.push(("session".into(), Json::num(*session as i64)));
                members.push(("witness".into(), Json::Bool(*witness)));
            }
            RequestKind::SessionClose { session } => {
                members.push(("session".into(), Json::num(*session as i64)));
            }
            RequestKind::Stats | RequestKind::Shutdown => {}
        }
        Json::Obj(members)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decodes_every_request_type() {
        let r = Request::from_line(
            r#"{"id":"a","type":"decide","program":"q() :- R(x,y)","witness":true}"#,
        )
        .unwrap();
        assert_eq!(r.id, "a");
        assert_eq!(r.deadline_ms, None);
        assert!(
            matches!(r.kind, RequestKind::Decide { ref query, witness: true, .. } if query == "q")
        );

        let r = Request::from_line(r#"{"id":"b","type":"batch","tasks":"x","deadline_ms":250}"#)
            .unwrap();
        assert_eq!(r.deadline_ms, Some(250));
        assert!(matches!(
            r.kind,
            RequestKind::Batch {
                witnesses: true,
                verify: true,
                ..
            }
        ));

        let r = Request::from_line(r#"{"id":"c","type":"path","query":"AB","views":["A","B"]}"#)
            .unwrap();
        assert!(matches!(r.kind, RequestKind::Path { ref views, .. } if views.len() == 2));

        let r = Request::from_line(
            r#"{"id":"d","type":"hilbert","bound":6,"monomials":["+2:x","-12:"]}"#,
        )
        .unwrap();
        assert!(matches!(r.kind, RequestKind::Hilbert { bound: 6, .. }));

        for t in ["stats", "shutdown"] {
            let r = Request::from_line(&format!(r#"{{"id":"e","type":"{t}"}}"#)).unwrap();
            assert_eq!(r.kind.type_str(), t);
        }
    }

    #[test]
    fn decodes_the_session_request_family() {
        let r = Request::from_line(
            r#"{"id":"s1","type":"session_open","program":"v() :- R(x,y)","query":"q","checkpoint_interval":4}"#,
        )
        .unwrap();
        assert!(matches!(
            r.kind,
            RequestKind::SessionOpen {
                checkpoint_interval: Some(4),
                ..
            }
        ));

        let r = Request::from_line(
            r#"{"id":"s2","type":"view_add","session":7,"view":"v2() :- R(x,y), R(y,z)"}"#,
        )
        .unwrap();
        assert!(matches!(r.kind, RequestKind::ViewAdd { session: 7, .. }));

        let r = Request::from_line(r#"{"id":"s3","type":"view_remove","session":7,"view":"v2"}"#)
            .unwrap();
        assert!(matches!(
            r.kind,
            RequestKind::ViewRemove { session: 7, ref view } if view == "v2"
        ));

        let r = Request::from_line(r#"{"id":"s4","type":"redecide","session":7,"witness":true}"#)
            .unwrap();
        assert!(matches!(
            r.kind,
            RequestKind::Redecide {
                session: 7,
                witness: true
            }
        ));

        let r = Request::from_line(r#"{"id":"s5","type":"session_close","session":7}"#).unwrap();
        assert!(matches!(r.kind, RequestKind::SessionClose { session: 7 }));

        // The session id is mandatory on every mutation kind.
        for t in ["view_add", "view_remove", "redecide", "session_close"] {
            let err = Request::from_line(&format!(
                r#"{{"id":"x","type":"{t}","view":"v() :- R(x,y)"}}"#
            ))
            .unwrap_err();
            assert_eq!(err.code(), "schema", "{t} without a session id");
        }
    }

    #[test]
    fn rejects_malformed_requests_with_typed_errors() {
        // Not JSON at all → parse.
        assert_eq!(Request::from_line("{nope").unwrap_err().code(), "parse");
        // Not an object → schema.
        assert_eq!(Request::from_line("[1,2]").unwrap_err().code(), "schema");
        // Unknown type → schema.
        assert_eq!(
            Request::from_line(r#"{"id":"x","type":"frobnicate"}"#)
                .unwrap_err()
                .code(),
            "schema"
        );
        // Missing required member → schema.
        assert_eq!(
            Request::from_line(r#"{"id":"x","type":"decide"}"#)
                .unwrap_err()
                .code(),
            "schema"
        );
        // Wrong member type → schema.
        assert_eq!(
            Request::from_line(r#"{"id":"x","type":"decide","program":7}"#)
                .unwrap_err()
                .code(),
            "schema"
        );
        // Unknown member → schema (typos never silently change behaviour).
        let err = Request::from_line(r#"{"id":"x","type":"stats","bogus":1}"#).unwrap_err();
        assert_eq!(err.code(), "schema");
        assert!(err.to_string().contains("bogus"), "{err}");
        // Negative deadline → schema.
        assert_eq!(
            Request::from_line(r#"{"id":"x","type":"stats","deadline_ms":-5}"#)
                .unwrap_err()
                .code(),
            "schema"
        );
    }

    #[test]
    fn wire_round_trip_is_the_identity() {
        let requests = vec![
            Request {
                id: "r1".into(),
                deadline_ms: Some(1000),
                budget: Some(BudgetSpec {
                    steps: Some(4096),
                    bytes: None,
                }),
                kind: RequestKind::Decide {
                    program: "q() :- R(x,y)".into(),
                    query: "q".into(),
                    witness: true,
                },
            },
            Request {
                id: "r2".into(),
                deadline_ms: None,
                budget: Some(BudgetSpec {
                    steps: Some(1_000_000),
                    bytes: Some(1 << 20),
                }),
                kind: RequestKind::Path {
                    query: "ABCD".into(),
                    views: vec!["ABC".into(), "BC".into()],
                },
            },
            Request {
                id: "r3".into(),
                deadline_ms: None,
                budget: None,
                kind: RequestKind::Shutdown,
            },
            Request {
                id: "r4".into(),
                deadline_ms: Some(250),
                budget: None,
                kind: RequestKind::SessionOpen {
                    program: "v() :- R(x,y)\nq() :- R(x,y)".into(),
                    query: "q".into(),
                    checkpoint_interval: Some(4),
                },
            },
            Request {
                id: "r5".into(),
                deadline_ms: None,
                budget: None,
                kind: RequestKind::ViewAdd {
                    session: 9,
                    view: "v2() :- R(x,y), R(y,z)".into(),
                },
            },
            Request {
                id: "r6".into(),
                deadline_ms: None,
                budget: None,
                kind: RequestKind::ViewRemove {
                    session: 9,
                    view: "v2".into(),
                },
            },
            Request {
                id: "r7".into(),
                deadline_ms: None,
                budget: Some(BudgetSpec {
                    steps: Some(1 << 20),
                    bytes: None,
                }),
                kind: RequestKind::Redecide {
                    session: 9,
                    witness: true,
                },
            },
            Request {
                id: "r8".into(),
                deadline_ms: None,
                budget: None,
                kind: RequestKind::SessionClose { session: 9 },
            },
        ];
        for r in requests {
            let line = r.to_json().render();
            assert_eq!(Request::from_line(&line).unwrap(), r, "{line}");
        }
    }

    #[test]
    fn budget_member_decodes_both_forms() {
        // Bare number: a steps-only limit.
        let r = Request::from_line(r#"{"id":"a","type":"stats","budget":500}"#).unwrap();
        assert_eq!(
            r.budget,
            Some(BudgetSpec {
                steps: Some(500),
                bytes: None
            })
        );
        // The steps-only spec re-encodes canonically as the bare number.
        assert!(r.to_json().render().contains(r#""budget":500"#));

        // Object form with either or both members.
        let r = Request::from_line(r#"{"id":"b","type":"stats","budget":{"bytes":1024}}"#).unwrap();
        assert_eq!(
            r.budget,
            Some(BudgetSpec {
                steps: None,
                bytes: Some(1024)
            })
        );
        let r = Request::from_line(r#"{"id":"c","type":"stats","budget":{"steps":9,"bytes":8}}"#)
            .unwrap();
        assert_eq!(
            r.budget,
            Some(BudgetSpec {
                steps: Some(9),
                bytes: Some(8)
            })
        );

        // The spec lowers into a live ledger with the same limits.
        let budget = r.budget.unwrap().to_budget();
        assert!(budget.charge(8, 0).is_ok());
        assert!(budget.charge(8, 0).is_err());
    }

    #[test]
    fn budget_member_rejects_bad_shapes() {
        for line in [
            r#"{"id":"x","type":"stats","budget":"fast"}"#,
            r#"{"id":"x","type":"stats","budget":-3}"#,
            r#"{"id":"x","type":"stats","budget":{"steps":"many"}}"#,
            r#"{"id":"x","type":"stats","budget":{"stepz":5}}"#,
        ] {
            let err = Request::from_line(line).unwrap_err();
            assert_eq!(err.code(), "schema", "{line}: {err}");
        }
    }
}
