//! Incremental JSON-lines frame reassembly for the serve reactor.
//!
//! A [`FrameBuffer`] accumulates whatever byte chunks the socket happens to
//! deliver and hands back complete newline-terminated frames.  The contract
//! that the frame property test (`crates/service/tests/proptest_frame.rs`)
//! pins down is **chunk-boundary invariance**: for any byte stream, the
//! sequence of extracted frames — including where (and whether) the
//! oversized trip fires — is identical no matter how the stream is split
//! into `push` calls.
//!
//! That invariance dictates the oversized rule.  "Reject only a partial
//! line that outgrew the cap" (what the thread-per-connection loop did)
//! is split-*dependent*: a 2 MiB line delivered in one chunk containing
//! its newline would be parsed, while the same line delivered byte-by-byte
//! would trip the cap mid-accumulation.  Here the rule is symmetric and
//! split-invariant: a frame whose payload (newline excluded) exceeds the
//! cap is oversized **whether or not** its newline has arrived yet.
//! Detection is eager — the buffer trips as soon as more than `max_bytes`
//! payload bytes of the current frame are buffered, so a slow-loris client
//! streaming an endless unterminated line is cut off at the cap, not at
//! available memory.
//!
//! Once tripped, the buffer stays tripped ([`FrameError::Oversized`] is
//! sticky): the stream position within a half-consumed frame is
//! unrecoverable, so the connection owner answers with the typed
//! `resource_exhausted` error and closes.  Frames are handed out as
//! `String`s via lossy UTF-8, matching the blocking loop's behavior —
//! invalid bytes become replacement characters and surface as a typed
//! parse error downstream, never a panic.

/// Terminal framing failure; the connection must be answered and closed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// The current frame's payload exceeded the configured cap.  Carries
    /// the cap so the typed error message can name the limit.
    Oversized {
        /// The configured per-frame payload cap, in bytes.
        max_bytes: usize,
    },
}

/// Reassembles newline-delimited frames from arbitrary byte chunks.
#[derive(Debug)]
pub struct FrameBuffer {
    buf: Vec<u8>,
    /// Index of the first unconsumed byte (start of the current frame).
    start: usize,
    /// Scan cursor: bytes in `start..scanned` are known newline-free, so
    /// repeated `next_frame` polls on a dribbling connection never rescan.
    scanned: usize,
    max_bytes: usize,
    tripped: bool,
}

impl FrameBuffer {
    /// A buffer enforcing `max_bytes` of payload per frame (the newline
    /// terminator is not counted).
    pub fn new(max_bytes: usize) -> FrameBuffer {
        FrameBuffer {
            buf: Vec::new(),
            start: 0,
            scanned: 0,
            max_bytes,
            tripped: false,
        }
    }

    /// Append a chunk exactly as it came off the socket.
    pub fn push(&mut self, chunk: &[u8]) {
        if self.tripped {
            // The connection is already condemned; don't hoard its bytes.
            return;
        }
        // Reclaim consumed prefix before growing, once it dominates.
        if self.start > 4096 && self.start * 2 > self.buf.len() {
            self.buf.drain(..self.start);
            self.scanned -= self.start;
            self.start = 0;
        }
        self.buf.extend_from_slice(chunk);
    }

    /// Extract the next complete frame, if one is buffered.
    ///
    /// `Ok(Some(line))` is the frame payload without its `\n` (lossy
    /// UTF-8); `Ok(None)` means more bytes are needed.  Blank frames are
    /// returned as empty strings — skipping them is protocol policy, not
    /// framing policy.
    pub fn next_frame(&mut self) -> Result<Option<String>, FrameError> {
        if self.tripped {
            return Err(FrameError::Oversized {
                max_bytes: self.max_bytes,
            });
        }
        match self.buf[self.scanned..].iter().position(|&b| b == b'\n') {
            Some(offset) => {
                let end = self.scanned + offset;
                if end - self.start > self.max_bytes {
                    self.tripped = true;
                    return Err(FrameError::Oversized {
                        max_bytes: self.max_bytes,
                    });
                }
                let line = String::from_utf8_lossy(&self.buf[self.start..end]).into_owned();
                self.start = end + 1;
                self.scanned = self.start;
                Ok(Some(line))
            }
            None => {
                self.scanned = self.buf.len();
                if self.scanned - self.start > self.max_bytes {
                    self.tripped = true;
                    return Err(FrameError::Oversized {
                        max_bytes: self.max_bytes,
                    });
                }
                Ok(None)
            }
        }
    }

    /// Consume the trailing unterminated frame at EOF, if any.
    ///
    /// A client that writes its last request without a final newline and
    /// shuts down its write side still deserves an answer; `None` if the
    /// stream ended cleanly on a newline (or the buffer tripped).
    pub fn finish(&mut self) -> Option<String> {
        if self.tripped || self.start >= self.buf.len() {
            return None;
        }
        let line = String::from_utf8_lossy(&self.buf[self.start..]).into_owned();
        self.start = self.buf.len();
        self.scanned = self.start;
        Some(line)
    }

    /// Bytes buffered but not yet handed out as frames.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Whether the buffer has permanently tripped the oversized cap.
    pub fn is_tripped(&self) -> bool {
        self.tripped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(fb: &mut FrameBuffer) -> Vec<String> {
        let mut out = Vec::new();
        while let Ok(Some(line)) = fb.next_frame() {
            out.push(line);
        }
        out
    }

    #[test]
    fn frames_survive_arbitrary_chunking() {
        let stream = b"alpha\nbeta\n\ngamma\n";
        for split in 0..stream.len() {
            let mut fb = FrameBuffer::new(1024);
            fb.push(&stream[..split]);
            let mut got = drain(&mut fb);
            fb.push(&stream[split..]);
            got.extend(drain(&mut fb));
            assert_eq!(got, ["alpha", "beta", "", "gamma"], "split at {split}");
            assert_eq!(fb.finish(), None);
        }
    }

    #[test]
    fn finish_yields_unterminated_tail() {
        let mut fb = FrameBuffer::new(1024);
        fb.push(b"first\nlast without newline");
        assert_eq!(fb.next_frame(), Ok(Some("first".into())));
        assert_eq!(fb.next_frame(), Ok(None));
        assert_eq!(fb.finish(), Some("last without newline".into()));
        assert_eq!(fb.finish(), None);
    }

    #[test]
    fn oversized_trips_with_or_without_newline_and_stays_tripped() {
        // Terminated frame over the cap.
        let mut fb = FrameBuffer::new(8);
        fb.push(b"123456789\n");
        assert_eq!(fb.next_frame(), Err(FrameError::Oversized { max_bytes: 8 }));
        assert!(fb.is_tripped());
        // Unterminated accumulation over the cap — same verdict.
        let mut fb = FrameBuffer::new(8);
        fb.push(b"12345");
        assert_eq!(fb.next_frame(), Ok(None));
        fb.push(b"6789");
        assert_eq!(fb.next_frame(), Err(FrameError::Oversized { max_bytes: 8 }));
        // Sticky: later pushes/polls can't resurrect the stream.
        fb.push(b"\nok\n");
        assert_eq!(fb.next_frame(), Err(FrameError::Oversized { max_bytes: 8 }));
        assert_eq!(fb.finish(), None);
    }

    #[test]
    fn frame_exactly_at_cap_is_allowed() {
        let mut fb = FrameBuffer::new(5);
        fb.push(b"12345\n12345");
        assert_eq!(fb.next_frame(), Ok(Some("12345".into())));
        assert_eq!(fb.next_frame(), Ok(None), "tail is at cap, not over");
        assert_eq!(fb.finish(), Some("12345".into()));
    }

    #[test]
    fn compaction_preserves_stream_position() {
        let mut fb = FrameBuffer::new(64);
        // Enough consumed prefix to trigger compaction, across many pushes.
        for i in 0..2048 {
            fb.push(format!("line-{i}\n").as_bytes());
            assert_eq!(fb.next_frame(), Ok(Some(format!("line-{i}"))));
        }
        assert_eq!(fb.buffered(), 0);
        fb.push(b"tail");
        assert_eq!(fb.finish(), Some("tail".into()));
    }

    #[test]
    fn invalid_utf8_is_lossy_not_fatal() {
        let mut fb = FrameBuffer::new(64);
        fb.push(&[0xff, 0xfe, b'x', b'\n']);
        let line = fb.next_frame().unwrap().unwrap();
        assert!(line.ends_with('x'));
        assert!(line.contains('\u{fffd}'));
    }
}
