//! The event-driven TCP core: one reactor thread owning *all* connection
//! I/O, feeding a fixed worker pool through a bounded queue.
//!
//! ```text
//!             ┌────────────────────────── reactor thread ──────────────────────────┐
//!   accept ──▶│ register conn (nonblocking)                                        │
//!             │   │                                                                │
//!   bytes  ──▶│ FrameBuffer ──frames──▶ admission ──┬─ admit ─▶ pending (per conn) │
//!             │                  (in-flight budget) └─ shed ──▶ typed error        │
//!             │                                                                    │
//!             │ round-robin dispatch ──▶ [BoundedQueue] ──▶ workers (render_line)  │
//!             │                                                  │                 │
//!             │ in-order reorder (seq) ◀── completions ◀─────────┘                 │
//!             │   │                                                                │
//!   socket ◀──│ write buffer (nonblocking flush, backpressure above high-water)    │
//!             └────────────────────────────────────────────────────────────────────┘
//! ```
//!
//! Invariants the tests pin down:
//!
//! * **Typed, ordered, never dropped.**  Every admitted or shed frame gets
//!   exactly one response line, written in request order per connection
//!   (the `seq`-keyed reorder map), including frames shed by admission
//!   control — a client over budget reads `resource_exhausted`, it never
//!   hangs.
//! * **Fairness.**  Dispatch takes at most one pending request per
//!   connection per pass, cycling the starting connection, and the job
//!   queue is deliberately shallow — a 1000-deep pipeliner therefore leads
//!   a single-request client by at most (queue depth + workers + one
//!   round) at the wire, not by its whole pipeline.
//! * **Admission is per-tick deterministic.**  `in_flight` is incremented
//!   at admission and decremented when the reactor *collects* a
//!   completion, so all frames extracted in one tick see one consistent
//!   budget — a pipelined burst of k frames under budget b yields exactly
//!   `min(k, b - in_flight)` admissions, whatever the workers race to.
//! * **Containment.**  A panic in a per-connection I/O phase (`serve/conn/
//!   read`, `serve/conn/write`) costs that one connection; a panic at a
//!   reactor seam (`serve/poll`, `serve/dispatch`, `serve/shed`) costs at
//!   most one *request* (typed internal error) and never the loop.
//!
//! The thread-per-connection twin ([`crate::serve::serve_tcp_threaded`],
//! reachable via `CQDET_THREADED_SERVE=1`) is kept as the behavioral
//! baseline: the §SOAK bench family drives both cores over identical
//! workloads and records the throughput/latency gap.

use crate::engine::Engine;
use crate::error::CqdetError;
use crate::frame::{FrameBuffer, FrameError};
use crate::response::Response;
use crate::serve::{boot_engine, persist_engine, reject_connection, render_line, ServeOptions};
use cqdet_engine::Json;
use cqdet_failpoint::fail_point;
use cqdet_parallel::pool::{BoundedQueue, TryPushError};
use std::collections::{BTreeMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// How long the reactor parks when a full tick made no progress.  Worker
/// completions interrupt the park via condvar; only *new client bytes*
/// must wait for it, so this bounds added idle latency, not throughput.
const IDLE_WAIT: Duration = Duration::from_millis(1);

/// Most bytes one connection may feed the framer per tick: a firehosing
/// pipeliner gets its surplus left in the kernel buffer while the reactor
/// visits everyone else.
const READ_BYTES_PER_TICK: usize = 64 * 1024;

/// Above this many unflushed response bytes, a connection stops being
/// *read* (backpressure): a client that sends but never receives cannot
/// grow our buffers without bound.
const WRITE_HIGH_WATER: usize = 1 << 20;

/// A framed request on its way to the pool, tagged with its reorder slot.
struct Job {
    conn: u64,
    seq: u64,
    line: String,
}

/// A finished request on its way back: `render_line`'s verdict (`None`
/// for blank lines), plus the shutdown flag.
struct Done {
    conn: u64,
    seq: u64,
    rendered: Option<(String, bool)>,
}

/// Completion channel: workers push, the reactor drains; the condvar is
/// the reactor's wakeup so completions never wait out a full idle tick.
struct Completions {
    done: Mutex<Vec<Done>>,
    wake: Condvar,
}

impl Completions {
    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<Done>> {
        self.done.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn push(&self, done: Done) {
        self.lock().push(done);
        self.wake.notify_all();
    }
}

/// What occupies a response slot while it waits its turn at the wire.
enum Slot {
    /// Blank line: consumes the sequence number, emits nothing.
    Nothing,
    /// A rendered response line; `bool` is the shutdown flag.
    Line(String, bool),
}

/// Per-connection state machine.  Lifecycle:
/// `reading ──(EOF | oversized | shutdown-drain)──▶ reads-closed
/// ──(all slots written & flushed)──▶ torn down`.
struct Conn {
    stream: TcpStream,
    frames: FrameBuffer,
    /// Next sequence number to assign to an extracted frame.
    next_seq: u64,
    /// Next sequence number to promote to the write buffer.
    next_write: u64,
    /// Admitted frames waiting for a dispatch slot.
    pending: VecDeque<(u64, String)>,
    /// Admitted frames dispatched but not yet collected.
    outstanding: usize,
    /// Out-of-order completion parking lot, promoted in `seq` order.
    ready: BTreeMap<u64, Slot>,
    write_buf: Vec<u8>,
    write_pos: usize,
    /// No more bytes will be read (client EOF, oversized trip, drain).
    reads_closed: bool,
    /// The unterminated tail (if any) was already admitted — only ever
    /// done on a true client EOF, mirroring the blocking transport.
    tail_taken: bool,
    /// Close as soon as the slot with this seq has been flushed, dropping
    /// any later work (shutdown ack / oversized error semantics).
    close_after: Option<u64>,
    /// I/O failed or a conn-level seam panicked: tear down without flush.
    dead: bool,
}

impl Conn {
    fn new(stream: TcpStream, max_request_bytes: usize) -> Conn {
        Conn {
            stream,
            frames: FrameBuffer::new(max_request_bytes),
            next_seq: 0,
            next_write: 0,
            pending: VecDeque::new(),
            outstanding: 0,
            ready: BTreeMap::new(),
            write_buf: Vec::new(),
            write_pos: 0,
            reads_closed: false,
            tail_taken: false,
            close_after: None,
            dead: false,
        }
    }

    fn unflushed(&self) -> usize {
        self.write_buf.len() - self.write_pos
    }

    /// Fully served: nothing pending, in flight, parked or unflushed.
    fn drained(&self) -> bool {
        self.pending.is_empty()
            && self.outstanding == 0
            && self.ready.is_empty()
            && self.unflushed() == 0
    }
}

/// Run a closure that may host an armed failpoint; a panic is contained
/// and counted, never propagated into the reactor loop.  Returns whether
/// a panic was caught, so seam-specific recovery can run.
fn contained(engine: &Engine, f: impl FnOnce()) -> bool {
    let panicked = catch_unwind(AssertUnwindSafe(f)).is_err();
    if panicked {
        engine.note_panic_contained();
    }
    panicked
}

/// Best-effort id echo for responses produced without dispatching (shed,
/// oversized): parse only if the line is small — the whole point of
/// shedding is refusing work, so never JSON-parse a megabyte to refuse it.
fn cheap_request_id(line: &str) -> Option<String> {
    if line.len() > 4096 {
        return None;
    }
    Json::parse(line)
        .ok()?
        .get("id")
        .and_then(Json::as_str)
        .map(str::to_string)
}

fn rendered_error(id: Option<String>, error: CqdetError) -> String {
    Response::Error { id, error }.to_json().render()
}

/// The event-driven implementation behind [`crate::serve::serve_tcp`].
///
/// Public so harnesses (the §SOAK benchmark) can pin this core explicitly
/// and compare it against [`crate::serve::serve_tcp_threaded`] in one
/// process; ordinary callers go through [`crate::serve::serve_tcp`].
pub fn serve_tcp_reactor<F: FnOnce(SocketAddr)>(
    engine: &Engine,
    addr: &str,
    options: &ServeOptions,
    on_ready: F,
) -> io::Result<u64> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    boot_engine(engine, options);
    on_ready(listener.local_addr()?);

    let workers = if options.worker_threads == 0 {
        cqdet_parallel::max_parallelism()
    } else {
        options.worker_threads
    }
    .max(1);
    // Bounded on purpose: the queue is a dispatch conduit, not a backlog —
    // fairness comes from round-robin *dispatch order*, so the backlog
    // stays in the per-connection pending queues where round-robin can see
    // it, and anything already queued is RR-interleaved.  The floor of 64
    // lets workers drain in batches instead of condvar ping-pong per job
    // (on one core that handoff otherwise dominates cheap requests), while
    // still bounding how far dispatch runs ahead of admission.
    let jobs: BoundedQueue<Job> = BoundedQueue::new((workers * 2 + 2).max(64));
    let completions = Completions {
        done: Mutex::new(Vec::new()),
        wake: Condvar::new(),
    };

    let mut served = 0u64;
    let mut fatal: Option<io::Error> = None;
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let (jobs, completions) = (&jobs, &completions);
            scope.spawn(move || {
                while let Some(job) = jobs.pop() {
                    // render_line contains panics from every layer below
                    // it; a worker thread itself never unwinds.
                    let rendered = render_line(engine, &job.line);
                    completions.push(Done {
                        conn: job.conn,
                        seq: job.seq,
                        rendered,
                    });
                }
            });
        }

        let mut conns: BTreeMap<u64, Conn> = BTreeMap::new();
        let mut next_conn_id = 0u64;
        let mut in_flight = 0usize;
        let mut rr_offset = 0usize;
        let mut accept_retries: u32 = 0;
        let mut accept_after: Option<Instant> = None;

        loop {
            let mut progress = false;
            // Reactor heartbeat seam: an armed panic here must cost the
            // tick's seam evaluation, never the loop.
            let _ = contained(engine, || fail_point!("serve/poll"));

            let draining = engine.shutdown_requested() || fatal.is_some();

            // ── Collect completions ───────────────────────────────────
            let batch: Vec<Done> = std::mem::take(&mut *completions.lock());
            for done in batch {
                progress = true;
                in_flight -= 1;
                // The connection may be gone (torn down after a shutdown
                // ack or an I/O error); the budget slot is freed anyway.
                if let Some(conn) = conns.get_mut(&done.conn) {
                    conn.outstanding -= 1;
                    let slot = match done.rendered {
                        None => Slot::Nothing,
                        Some((line, shutdown)) => Slot::Line(line, shutdown),
                    };
                    conn.ready.insert(done.seq, slot);
                }
            }

            // ── Read + frame + admit ──────────────────────────────────
            let ids: Vec<u64> = conns.keys().copied().collect();
            for &id in &ids {
                let Some(conn) = conns.get_mut(&id) else {
                    continue;
                };
                if conn.dead || conn.reads_closed && conn.tail_taken {
                    continue;
                }
                if draining {
                    // Shutdown drain: answer what was already framed, but
                    // read no further and (matching the blocking
                    // transport) leave an unterminated tail unanswered.
                    conn.reads_closed = true;
                    conn.tail_taken = true;
                    continue;
                }
                if conn.unflushed() >= WRITE_HIGH_WATER {
                    continue; // backpressure: catch up on writes first
                }
                let mut read_this_tick = 0usize;
                let mut saw_eof = false;
                let mut chunk = [0u8; 8192];
                // The read seam and the socket read share containment: an
                // armed panic tears down this connection only.
                let mut io_panic = false;
                while !conn.reads_closed && read_this_tick < READ_BYTES_PER_TICK {
                    let outcome = catch_unwind(AssertUnwindSafe(|| {
                        fail_point!("serve/conn/read");
                        conn.stream.read(&mut chunk)
                    }));
                    match outcome {
                        Err(_) => {
                            engine.note_panic_contained();
                            io_panic = true;
                            break;
                        }
                        Ok(Ok(0)) => {
                            saw_eof = true;
                            break;
                        }
                        Ok(Ok(n)) => {
                            read_this_tick += n;
                            progress = true;
                            conn.frames.push(&chunk[..n]);
                        }
                        Ok(Err(e)) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Ok(Err(e)) if e.kind() == io::ErrorKind::Interrupted => continue,
                        Ok(Err(_)) => {
                            conn.dead = true;
                            break;
                        }
                    }
                }
                if io_panic {
                    conn.dead = true;
                    continue;
                }
                if conn.dead {
                    continue;
                }
                // Extract everything framable, admitting or shedding each.
                loop {
                    match conn.frames.next_frame() {
                        Ok(Some(line)) => {
                            progress = true;
                            admit(engine, conn, line, &mut in_flight, options);
                        }
                        Ok(None) => break,
                        Err(FrameError::Oversized { max_bytes }) => {
                            progress = true;
                            engine.note_oversized_request();
                            let seq = conn.next_seq;
                            conn.next_seq += 1;
                            conn.ready.insert(
                                seq,
                                Slot::Line(
                                    rendered_error(
                                        None,
                                        CqdetError::resource(format!(
                                            "request line exceeds {max_bytes} bytes"
                                        )),
                                    ),
                                    false,
                                ),
                            );
                            conn.reads_closed = true;
                            conn.tail_taken = true;
                            conn.close_after = Some(seq);
                            break;
                        }
                    }
                }
                if saw_eof && !conn.reads_closed {
                    conn.reads_closed = true;
                    if !conn.tail_taken {
                        conn.tail_taken = true;
                        // A final request without its newline still gets
                        // an answer — but only on a true EOF.
                        if let Some(line) = conn.frames.finish() {
                            progress = true;
                            admit(engine, conn, line, &mut in_flight, options);
                        }
                    }
                }
            }

            // ── Round-robin dispatch ──────────────────────────────────
            let ids: Vec<u64> = conns.keys().copied().collect();
            if !ids.is_empty() {
                rr_offset = (rr_offset + 1) % ids.len();
                let mut queue_full = false;
                loop {
                    let mut dispatched = false;
                    for i in 0..ids.len() {
                        let id = ids[(rr_offset + i) % ids.len()];
                        let Some(conn) = conns.get_mut(&id) else {
                            continue;
                        };
                        let Some((seq, line)) = conn.pending.pop_front() else {
                            continue;
                        };
                        // Dispatch seam: an armed panic costs this one
                        // request (typed internal error), not the loop.
                        if contained(engine, || fail_point!("serve/dispatch")) {
                            conn.outstanding -= 1;
                            in_flight -= 1;
                            conn.ready.insert(
                                seq,
                                Slot::Line(
                                    rendered_error(
                                        None,
                                        CqdetError::internal("dispatch seam panicked"),
                                    ),
                                    false,
                                ),
                            );
                            dispatched = true;
                            progress = true;
                            continue;
                        }
                        match jobs.try_push(Job {
                            conn: id,
                            seq,
                            line,
                        }) {
                            Ok(()) => {
                                dispatched = true;
                                progress = true;
                            }
                            Err(TryPushError::Full(job)) | Err(TryPushError::Closed(job)) => {
                                conn.pending.push_front((job.seq, job.line));
                                queue_full = true;
                                break;
                            }
                        }
                    }
                    if !dispatched || queue_full {
                        break;
                    }
                }
            }

            // ── Promote + write + teardown ────────────────────────────
            let ids: Vec<u64> = conns.keys().copied().collect();
            for id in ids {
                let Some(conn) = conns.get_mut(&id) else {
                    continue;
                };
                // Promote contiguous completed slots to the wire, in seq
                // order; stop at the close-after slot — later work on a
                // connection that asked to shut down is dropped, exactly
                // like the blocking transport.
                while let Some(slot) = conn.ready.remove(&conn.next_write) {
                    let seq = conn.next_write;
                    conn.next_write += 1;
                    match slot {
                        Slot::Nothing => {}
                        Slot::Line(line, shutdown) => {
                            conn.write_buf.extend_from_slice(line.as_bytes());
                            conn.write_buf.push(b'\n');
                            served += 1;
                            if shutdown {
                                conn.close_after = Some(seq);
                            }
                        }
                    }
                    if conn.close_after == Some(seq) {
                        break;
                    }
                }
                if conn.unflushed() > 0 && !conn.dead {
                    let outcome = catch_unwind(AssertUnwindSafe(|| {
                        fail_point!("serve/conn/write");
                        loop {
                            let buf = &conn.write_buf[conn.write_pos..];
                            if buf.is_empty() {
                                return Ok(());
                            }
                            match conn.stream.write(buf) {
                                Ok(0) => {
                                    return Err(io::Error::new(
                                        io::ErrorKind::WriteZero,
                                        "connection write returned 0",
                                    ))
                                }
                                Ok(n) => conn.write_pos += n,
                                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
                                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                                Err(e) => return Err(e),
                            }
                        }
                    }));
                    match outcome {
                        Err(_) => {
                            engine.note_panic_contained();
                            conn.dead = true;
                        }
                        Ok(Err(_)) => conn.dead = true,
                        Ok(Ok(())) => {
                            if conn.write_pos > 0 {
                                progress = true;
                            }
                            if conn.write_pos == conn.write_buf.len() {
                                conn.write_buf.clear();
                                conn.write_pos = 0;
                            } else if conn.write_pos > 64 * 1024 {
                                conn.write_buf.drain(..conn.write_pos);
                                conn.write_pos = 0;
                            }
                        }
                    }
                }
                let close_flushed = conn
                    .close_after
                    .is_some_and(|seq| conn.next_write > seq && conn.unflushed() == 0);
                let eof_drained = conn.reads_closed && conn.tail_taken && conn.drained();
                if conn.dead || close_flushed || eof_drained {
                    // Admitted-but-never-dispatched frames die with the
                    // connection; free their budget slots.  Dispatched
                    // ones release theirs when collected above.
                    in_flight -= conn.pending.len();
                    conns.remove(&id);
                    progress = true;
                }
            }

            // ── Exit or park ──────────────────────────────────────────
            // ── Accept ────────────────────────────────────────────────
            // Last phase on purpose: EOF teardown above must release the
            // connection slot *before* the capacity check sees a SYN that
            // arrived after the FIN — the ordering the blocking transport
            // gave for free.
            if !draining && accept_after.is_none_or(|t| Instant::now() >= t) {
                accept_after = None;
                loop {
                    match listener.accept() {
                        Ok((stream, _peer)) => {
                            accept_retries = 0;
                            progress = true;
                            if conns.len() >= options.max_connections {
                                engine.note_shed_connection();
                                let _ = reject_connection(stream);
                                continue;
                            }
                            if stream.set_nonblocking(true).is_err() {
                                continue;
                            }
                            let id = next_conn_id;
                            next_conn_id += 1;
                            conns.insert(id, Conn::new(stream, options.max_request_bytes));
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(e)
                            if matches!(
                                e.kind(),
                                io::ErrorKind::Interrupted
                                    | io::ErrorKind::ConnectionAborted
                                    | io::ErrorKind::ConnectionReset
                            ) =>
                        {
                            // Transient (peer aborted mid-handshake): back
                            // off the *accept phase* without blocking the
                            // reactor — connections keep being served.
                            accept_retries = accept_retries.saturating_add(1);
                            engine.note_accept_retry();
                            let exp = Duration::from_millis(
                                1u64 << accept_retries.min(10).saturating_sub(1),
                            );
                            accept_after =
                                Some(Instant::now() + exp.min(options.accept_backoff_max));
                            break;
                        }
                        Err(e) => {
                            // Fatal listener error: stop accepting, drain
                            // what's in the house, then surface the error.
                            engine.request_shutdown();
                            if fatal.is_none() {
                                fatal = Some(e);
                            }
                            break;
                        }
                    }
                }
            }

            // Stray jobs for torn-down connections still hold budget
            // slots; keep collecting until the pool is quiet before
            // leaving the loop.
            if draining && conns.is_empty() && in_flight == 0 {
                break;
            }
            if !progress {
                let guard = completions.lock();
                if guard.is_empty() {
                    let _ = completions
                        .wake
                        .wait_timeout(guard, IDLE_WAIT)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            }
        }
        jobs.close();
    });

    persist_engine(engine, options);
    match fatal {
        Some(e) => Err(e),
        None => Ok(served),
    }
}

/// Admission control: under budget the frame joins the connection's
/// pending queue; at or over budget it is *shed* — answered immediately
/// with the typed `resource_exhausted` error in its own response slot, so
/// the client sees a well-formed, correctly ordered refusal.
fn admit(
    engine: &Engine,
    conn: &mut Conn,
    line: String,
    in_flight: &mut usize,
    options: &ServeOptions,
) {
    let seq = conn.next_seq;
    conn.next_seq += 1;
    if line.trim().is_empty() {
        // Blank lines produce no response but must consume a slot to keep
        // the reorder bookkeeping dense.
        conn.ready.insert(seq, Slot::Nothing);
        return;
    }
    if *in_flight >= options.inflight_budget {
        let _ = contained(engine, || fail_point!("serve/shed"));
        engine.note_shed_request();
        let id = cheap_request_id(&line);
        conn.ready.insert(
            seq,
            Slot::Line(
                rendered_error(
                    id,
                    CqdetError::resource(format!(
                        "in-flight request budget ({} in flight; retry later)",
                        options.inflight_budget
                    )),
                ),
                false,
            ),
        );
        return;
    }
    *in_flight += 1;
    conn.outstanding += 1;
    conn.pending.push_back((seq, line));
}
