//! The mutable-session registry: server-side state behind the
//! `session_open` / `view_add` / `view_remove` / `redecide` /
//! `session_close` request family.
//!
//! Each open [`cqdet_core::MutableSession`] lives in an [`Arc<SessionSlot>`]
//! with its **own** mutex, so concurrent requests against *different*
//! sessions never serialize on each other (and ordinary decide/batch
//! traffic never touches a session lock at all).  The registry itself is a
//! governed [`ShardedCache`] keyed by session id:
//!
//! * every slot's heap bytes (the session's span echelon plus checkpoint
//!   prefixes) are published to the process-wide `cqdet-cache` byte ledger
//!   after each mutation via [`ShardedCache::recharge`], so open sessions
//!   count against the same memory watermark as every value cache;
//! * under byte pressure the cache's clock sweep evicts cold slots — an
//!   evicted session answers later requests with a typed unknown-session
//!   error, exactly like one reaped by TTL;
//! * idle sessions are reaped by TTL: every open/lookup sweeps slots whose
//!   last touch is older than the (tunable) time-to-live;
//! * admission is capped: opening beyond `max_sessions` *after* reaping
//!   answers with a typed `resource_exhausted` error, never unbounded state.

use crate::error::CqdetError;
use cqdet_cache::ShardedCache;
use cqdet_core::MutableSession;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Default idle time-to-live before a session is reaped.
pub const DEFAULT_SESSION_TTL: Duration = Duration::from_secs(15 * 60);

/// Default cap on concurrently open sessions.
pub const DEFAULT_MAX_SESSIONS: usize = 256;

/// Registry byte cap: far above honest session state, low enough that a
/// runaway echelon (huge coefficients across many checkpoints) gets swept
/// before it threatens the process.
const REGISTRY_CAP_BYTES: usize = 256 << 20;

/// One open session: the mutable state behind its own lock, plus the
/// bookkeeping the registry reads without taking that lock.
pub struct SessionSlot {
    /// The session's wire id (echoed in every response about it).
    pub id: u64,
    session: Mutex<MutableSession>,
    /// Milliseconds since the registry epoch of the last touch.
    last_used_ms: AtomicU64,
    /// Heap bytes last published ([`SessionRegistry::publish`]); read by
    /// the cache weigher, so re-weighing never takes the session lock.
    bytes: AtomicUsize,
}

impl SessionSlot {
    /// Lock the session, recovering from poisoning: the mutation paths
    /// follow a take/commit discipline, so a panicking mutation leaves the
    /// session fully rolled back and safe to reuse.
    pub fn lock(&self) -> MutexGuard<'_, MutableSession> {
        match self.session.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

fn weigh(_id: &u64, slot: &Arc<SessionSlot>) -> usize {
    std::mem::size_of::<SessionSlot>() + slot.bytes.load(Ordering::Relaxed)
}

/// The registry of open sessions.  See the [module docs](self).
pub struct SessionRegistry {
    slots: ShardedCache<u64, Arc<SessionSlot>>,
    next_id: AtomicU64,
    epoch: Instant,
    ttl_ms: AtomicU64,
    max_sessions: AtomicUsize,
    ttl_reaped: AtomicU64,
}

impl Default for SessionRegistry {
    fn default() -> Self {
        SessionRegistry {
            slots: ShardedCache::new(REGISTRY_CAP_BYTES, weigh),
            next_id: AtomicU64::new(1),
            epoch: Instant::now(),
            ttl_ms: AtomicU64::new(DEFAULT_SESSION_TTL.as_millis() as u64),
            max_sessions: AtomicUsize::new(DEFAULT_MAX_SESSIONS),
            ttl_reaped: AtomicU64::new(0),
        }
    }
}

impl SessionRegistry {
    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    /// Retarget the idle TTL (live — the next sweep uses it).
    pub fn set_ttl(&self, ttl: Duration) {
        self.ttl_ms.store(ttl.as_millis() as u64, Ordering::Relaxed);
    }

    /// Retarget the admission cap (live — the next open checks it).
    pub fn set_max_sessions(&self, n: usize) {
        self.max_sessions.store(n.max(1), Ordering::Relaxed);
    }

    /// Number of currently open sessions.
    pub fn open_count(&self) -> u64 {
        self.slots.len()
    }

    /// Sessions reaped so far: idle TTL sweeps plus byte-pressure
    /// evictions by the governed cache.
    pub fn reaped_count(&self) -> u64 {
        self.ttl_reaped.load(Ordering::Relaxed) + self.slots.stats().evictions
    }

    /// Sweep sessions whose last touch is older than the TTL.  Returns how
    /// many were reaped.  A slot touched between the scan and the removal
    /// is spared (the re-check under its own snapshot), so an active
    /// session is never reaped out from under a racing request.
    pub fn reap_idle(&self) -> u64 {
        let ttl = self.ttl_ms.load(Ordering::Relaxed);
        let now = self.now_ms();
        let mut stale: Vec<Arc<SessionSlot>> = Vec::new();
        self.slots.for_each(|_, slot| {
            if now.saturating_sub(slot.last_used_ms.load(Ordering::Relaxed)) > ttl {
                stale.push(slot.clone());
            }
        });
        let mut reaped = 0;
        for slot in stale {
            if now.saturating_sub(slot.last_used_ms.load(Ordering::Relaxed)) > ttl
                && self.slots.remove(&slot.id).is_some()
            {
                reaped += 1;
            }
        }
        self.ttl_reaped.fetch_add(reaped, Ordering::Relaxed);
        reaped
    }

    /// Admit a freshly opened session: reap idle slots first, then check
    /// the cap.  Returns the slot whose `id` the wire response echoes.
    pub fn insert(&self, session: MutableSession) -> Result<Arc<SessionSlot>, CqdetError> {
        self.reap_idle();
        let max = self.max_sessions.load(Ordering::Relaxed);
        if self.open_count() >= max as u64 {
            return Err(CqdetError::resource(format!(
                "session slots ({max} open; close one or let idle sessions expire)"
            )));
        }
        let bytes = session.heap_bytes();
        let slot = Arc::new(SessionSlot {
            id: self.next_id.fetch_add(1, Ordering::Relaxed),
            session: Mutex::new(session),
            last_used_ms: AtomicU64::new(self.now_ms()),
            bytes: AtomicUsize::new(bytes),
        });
        self.slots.insert_or_get(slot.id, slot.clone());
        Ok(slot)
    }

    /// Look up an open session by id, touching its TTL clock.  Unknown ids
    /// (never opened, closed, reaped, or evicted) get a typed error that
    /// says so — the client's cue to reopen.
    pub fn lookup(&self, id: u64) -> Result<Arc<SessionSlot>, CqdetError> {
        self.reap_idle();
        let slot = self.slots.probe(&id).ok_or_else(|| {
            CqdetError::schema(format!(
                "unknown session {id} (never opened, closed, or expired)"
            ))
        })?;
        slot.last_used_ms.store(self.now_ms(), Ordering::Relaxed);
        Ok(slot)
    }

    /// Publish a session's heap bytes to the governed ledger after a
    /// mutation (the caller holds the slot's session lock) and touch its
    /// TTL clock.
    pub fn publish(&self, slot: &SessionSlot, session: &MutableSession) {
        slot.bytes.store(session.heap_bytes(), Ordering::Relaxed);
        slot.last_used_ms.store(self.now_ms(), Ordering::Relaxed);
        self.slots.recharge(&slot.id);
    }

    /// Close a session explicitly, discharging its bytes.
    pub fn close(&self, id: u64) -> Result<(), CqdetError> {
        self.slots.remove(&id).map(|_| ()).ok_or_else(|| {
            CqdetError::schema(format!(
                "unknown session {id} (never opened, closed, or expired)"
            ))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqdet_core::{ConjunctiveQuery, DecisionContext};
    use cqdet_parallel::{Budget, CancelToken};

    fn open_session(cx: &DecisionContext, name: &str) -> MutableSession {
        let cq = |n: &str| {
            ConjunctiveQuery::boolean(n, vec![cqdet_query::cq::Atom::new("R", &["x", "y"])])
        };
        MutableSession::open(
            cx,
            vec![cq(name)],
            cq("q"),
            8,
            &CancelToken::none(),
            &Budget::none(),
        )
        .unwrap()
    }

    #[test]
    fn ttl_reaps_idle_sessions_and_counts_them() {
        let cx = DecisionContext::new();
        let registry = SessionRegistry::default();
        let slot = registry.insert(open_session(&cx, "v")).unwrap();
        assert_eq!(registry.open_count(), 1);
        // A zero TTL makes every already-open session stale on the next
        // sweep; the reap is observable in both counters.
        registry.set_ttl(Duration::from_millis(0));
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(registry.reap_idle(), 1);
        assert_eq!(registry.open_count(), 0);
        assert_eq!(registry.reaped_count(), 1);
        assert!(registry.lookup(slot.id).is_err(), "reaped ⇒ unknown");
    }

    #[test]
    fn admission_cap_rejects_with_a_typed_error() {
        let cx = DecisionContext::new();
        let registry = SessionRegistry::default();
        registry.set_max_sessions(2);
        registry.insert(open_session(&cx, "a")).unwrap();
        registry.insert(open_session(&cx, "b")).unwrap();
        let Err(err) = registry.insert(open_session(&cx, "c")) else {
            panic!("the cap must reject the third open");
        };
        assert_eq!(err.code(), "resource_exhausted");
        // Closing one readmits.
        let slot = registry.lookup(1).unwrap();
        registry.close(slot.id).unwrap();
        registry.insert(open_session(&cx, "c")).unwrap();
        assert_eq!(registry.open_count(), 2);
    }

    #[test]
    fn publish_registers_bytes_with_the_governed_ledger() {
        let cx = DecisionContext::new();
        let registry = SessionRegistry::default();
        let slot = registry.insert(open_session(&cx, "v")).unwrap();
        let before = registry.slots.bytes();
        // Warm the echelon so the session owns heap state, then publish.
        {
            let mut session = slot.lock();
            session
                .redecide(&cx, &CancelToken::none(), &Budget::none())
                .unwrap();
            registry.publish(&slot, &session);
        }
        assert!(
            registry.slots.bytes() > before,
            "echelon bytes must reach the registry ledger"
        );
        registry.close(slot.id).unwrap();
        assert_eq!(registry.slots.bytes(), 0, "close discharges every byte");
    }
}
