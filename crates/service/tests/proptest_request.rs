//! Property tests for the protocol decoder: arbitrary bytes and mutated
//! valid requests must decode to `Ok` or a typed error — never a panic —
//! and everything that decodes must re-encode/round-trip.

use cqdet_service::{BudgetSpec, Request, RequestKind};
use proptest::prelude::*;

/// A valid request derived deterministically from a seed, covering every
/// request type.
fn seeded_request(seed: u64) -> Request {
    let kinds = [
        RequestKind::Decide {
            program: format!("v() :- R(x,y)\nq{}() :- R(x,y), R(u,w)", seed % 7),
            query: format!("q{}", seed % 7),
            witness: seed.is_multiple_of(2),
        },
        RequestKind::Batch {
            tasks: "v() :- R(x,y)\nq() :- R(x,y)\ntask a: q <- v".to_string(),
            witnesses: seed.is_multiple_of(3),
            verify: seed.is_multiple_of(5),
        },
        RequestKind::Path {
            query: "ABAB".to_string(),
            views: vec![
                "AB".to_string(),
                format!("A{}", "B".repeat((seed % 4) as usize)),
            ],
        },
        RequestKind::Hilbert {
            bound: seed % 9,
            monomials: vec!["+2:x^2,y".to_string(), "-12:".to_string()],
        },
        RequestKind::Explain {
            program: "q() :- R(x,y)".to_string(),
            query: "q".to_string(),
        },
        RequestKind::Stats,
        RequestKind::Shutdown,
    ];
    let kind = kinds[(seed % kinds.len() as u64) as usize].clone();
    Request {
        id: format!("r{seed}"),
        deadline_ms: (seed % 2 == 1).then_some(seed % 100_000),
        budget: match seed % 4 {
            0 => None,
            1 => Some(BudgetSpec {
                steps: Some(seed % 1_000_000),
                bytes: None,
            }),
            2 => Some(BudgetSpec {
                steps: None,
                bytes: Some(seed % 65_536),
            }),
            _ => Some(BudgetSpec {
                steps: Some(seed % 4_096),
                bytes: Some(seed % 1_000_000),
            }),
        },
        kind,
    }
}

proptest! {
    #[test]
    fn arbitrary_bytes_never_panic_the_decoder(
        bytes in prop::collection::vec(any::<u8>(), 0..256)
    ) {
        let text = String::from_utf8_lossy(&bytes).into_owned();
        // Ok or a typed error — the assertion is "no panic" plus a stable
        // error code on the failure side.
        match Request::from_line(&text) {
            Ok(request) => {
                // Whatever decoded must re-encode and decode back equal.
                let line = request.to_json().render();
                prop_assert_eq!(Request::from_line(&line).unwrap(), request);
            }
            Err(e) => {
                prop_assert!(matches!(e.code(), "parse" | "schema"), "{}", e);
            }
        }
    }

    #[test]
    fn every_request_type_round_trips(seed in any::<u64>()) {
        let request = seeded_request(seed);
        let line = request.to_json().render();
        let decoded = Request::from_line(&line).unwrap();
        prop_assert_eq!(decoded, request);
    }

    #[test]
    fn single_byte_mutations_never_panic(seed in any::<u64>(), pos in any::<u16>(), byte in any::<u8>()) {
        let line = seeded_request(seed).to_json().render();
        let mut bytes = line.into_bytes();
        let idx = pos as usize % bytes.len();
        bytes[idx] = byte;
        let text = String::from_utf8_lossy(&bytes).into_owned();
        if let Ok(request) = Request::from_line(&text) {
            // A mutation that still decodes must still re-encode cleanly.
            let _ = request.to_json().render();
        }
    }
}
