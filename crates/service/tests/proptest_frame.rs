//! Property tests for the reactor's frame reassembly
//! ([`cqdet_service::frame::FrameBuffer`]): the stream of extracted frames
//! — including where the oversized trip fires and what the EOF tail is —
//! must be invariant under arbitrary chunking of the input bytes, and no
//! byte stream (hostile, binary, mutated) may ever panic the framer.

use cqdet_service::frame::{FrameBuffer, FrameError};
use proptest::prelude::*;

/// Everything observable about framing one byte stream: the frames handed
/// out in order, whether the oversized cap tripped, and the EOF tail.
#[derive(Debug, PartialEq, Eq)]
struct Framing {
    frames: Vec<String>,
    tripped: bool,
    tail: Option<String>,
}

/// Feed `stream` through a [`FrameBuffer`] in chunks whose sizes cycle
/// through `cuts` (empty `cuts` = one-shot delivery), pulling every
/// available frame after each push — the access pattern of the reactor's
/// read phase.
fn frame_with_chunking(stream: &[u8], cuts: &[usize], max_bytes: usize) -> Framing {
    let mut fb = FrameBuffer::new(max_bytes);
    let mut frames = Vec::new();
    let mut tripped = false;
    let mut offset = 0;
    let mut cut_idx = 0;
    while offset < stream.len() {
        let take = if cuts.is_empty() {
            stream.len()
        } else {
            cuts[cut_idx % cuts.len()].clamp(1, stream.len() - offset)
        };
        cut_idx += 1;
        fb.push(&stream[offset..offset + take]);
        offset += take;
        loop {
            match fb.next_frame() {
                Ok(Some(frame)) => frames.push(frame),
                Ok(None) => break,
                Err(FrameError::Oversized { .. }) => {
                    tripped = true;
                    break;
                }
            }
        }
        if tripped {
            break;
        }
    }
    Framing {
        frames,
        tripped,
        tail: fb.finish(),
    }
}

/// Bias a raw byte soup toward newline-rich streams so frames actually
/// occur (uniform `u8` terminates a frame only every 256 bytes).
fn with_newlines(bytes: &[u8]) -> Vec<u8> {
    bytes
        .iter()
        .map(|&b| if b % 5 == 0 { b'\n' } else { b })
        .collect()
}

proptest! {
    /// Chunk-boundary invariance: one-shot delivery and any chunked
    /// delivery of the same bytes produce identical framing verdicts.
    #[test]
    fn framing_is_chunk_boundary_invariant(
        bytes in prop::collection::vec(any::<u8>(), 0..512),
        cuts in prop::collection::vec(1usize..64, 1..8),
        max_bytes in 1usize..128,
    ) {
        let stream = with_newlines(&bytes);
        let whole = frame_with_chunking(&stream, &[], max_bytes);
        let chunked = frame_with_chunking(&stream, &cuts, max_bytes);
        prop_assert_eq!(whole, chunked);
    }

    /// Byte-at-a-time is the adversarial extreme of chunking (a slow-loris
    /// client); it too must agree with one-shot delivery.
    #[test]
    fn byte_at_a_time_agrees_with_one_shot(
        bytes in prop::collection::vec(any::<u8>(), 0..256),
        max_bytes in 1usize..128,
    ) {
        let stream = with_newlines(&bytes);
        let whole = frame_with_chunking(&stream, &[], max_bytes);
        let dribbled = frame_with_chunking(&stream, &[1], max_bytes);
        prop_assert_eq!(whole, dribbled);
    }

    /// Arbitrary bytes never panic the framer, and its verdict is sane:
    /// no frame contains a newline, raw frames fit the cap (lossy UTF-8
    /// may widen invalid bytes into 3-byte replacement characters), and
    /// the frames + tail reconstruct the input stream exactly.
    #[test]
    fn arbitrary_bytes_never_panic_and_frames_reconstruct(
        stream in prop::collection::vec(any::<u8>(), 0..512),
        cuts in prop::collection::vec(1usize..32, 1..6),
        max_bytes in 1usize..256,
    ) {
        let framing = frame_with_chunking(&stream, &cuts, max_bytes);
        for frame in &framing.frames {
            prop_assert!(
                frame.len() <= max_bytes || frame.contains('\u{fffd}'),
                "frame exceeds cap: {} bytes",
                frame.len()
            );
            prop_assert!(!frame.contains('\n'));
        }
        if !framing.tripped {
            // Lossy UTF-8 is not byte-reversible, so reconstruct on the
            // lossy image of the input rather than the raw bytes.  The
            // newline separators are hard ASCII boundaries, so lossy
            // decoding per-frame composes to lossy decoding of the whole.
            let mut rebuilt = String::new();
            for frame in &framing.frames {
                rebuilt.push_str(frame);
                rebuilt.push('\n');
            }
            if let Some(tail) = &framing.tail {
                rebuilt.push_str(tail);
            }
            let reference = String::from_utf8_lossy(&stream).into_owned();
            prop_assert_eq!(rebuilt, reference);
        }
    }
}
