//! Finite relational structures (databases) and the graph-theoretic toolkit of
//! the paper's Section 2.
//!
//! This crate provides
//!
//! * [`Schema`] and [`Structure`] — relational schemas and finite structures
//!   (sets of facts over an infinite supply of constants),
//! * homomorphism enumeration, existence and exact counting ([`hom`]),
//!   with a shareable cross-request count memo ([`SharedCaches`]),
//! * true canonical labeling — isomorphism-invariant keys via color
//!   refinement + individualization ([`canon`]),
//! * isomorphism testing and de-duplication up to isomorphism ([`iso`]),
//! * connected components ([`components`]),
//! * the structure algebra of Section 2.2: disjoint union `A + B`, product
//!   `A × B`, scalar multiple `t·A`, power `Aᵗ` and the all-loops point `A⁰`
//!   ([`ops`]),
//! * Lovász's Lemma 4 in executable form, both as a test oracle and as the
//!   evaluation engine behind symbolic structures ([`expr`]),
//! * incidence matrices of binary relations (Definition 16, used by the
//!   path-query machinery) ([`adjacency`]),
//! * random structure generators for benchmarks and property tests
//!   ([`generator`]).

// The hom-search and canonicalization kernels run inside budgeted server
// requests: failures must surface as typed errors (or documented
// assertions), never stray unwraps.  Tests are exempt.
#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]

pub mod adjacency;
pub mod canon;
pub mod components;
pub mod expr;
#[doc(hidden)]
pub mod filter;
pub(crate) mod flat;
pub mod generator;
pub mod hom;
pub mod iso;
pub mod ops;
pub mod schema;
pub mod structure;

pub use adjacency::incidence_matrix;
pub use components::{connected_components, is_connected};
pub use expr::StructureExpr;
pub use flat::{cand_cache_usage, set_cand_cache_bytes};
pub use generator::StructureGenerator;
pub use hom::{
    hom_cache_stats, hom_count, hom_count_cached, hom_count_cached_gas, hom_count_factored,
    hom_count_gas, hom_enumerate, hom_exists, hom_exists_gas, injective_hom_exists,
    injective_probe_count, with_shared_caches, CacheStats, Homomorphism, SharedCaches,
};
pub use iso::{
    dedup_up_to_iso, dedup_up_to_iso_refs, isomorphic, multiplicities, BasisIndex, IsoClassKey,
};
pub use ops::{all_loops_point, disjoint_union, power, product, scalar_multiple};
pub use schema::Schema;
pub use structure::{Const, Fact, Structure};

pub use cqdet_bigint::{Int, Nat};
