//! Incidence (adjacency) matrices of binary relations — Definition 16.
//!
//! For a structure `D` with `dom(D) = {a₁, …, a_n}` and a binary relation `R`,
//! the incidence matrix `M^D_R ∈ ℚ^{n×n}` has `M^D_R(i,j) = 1` iff
//! `R(aᵢ, aⱼ) ∈ D`.  Fact 18 then says that for a word `w ∈ Σ*` (a path
//! query), `w(D)[aᵢ, aⱼ] = M^D_w(i,j)` where `M^D_w` is the corresponding
//! product of incidence matrices — this is both a proof device in Section 3
//! and a fast path-query evaluator (benchmarked against naive homomorphism
//! counting in `cqdet-bench`).

use crate::structure::{Const, Structure};
use cqdet_linalg::{QMat, Rat};

/// The incidence matrix of the binary relation `relation` in `structure`,
/// with rows/columns indexed by `domain_order`.
///
/// Panics if the relation is not binary.
pub fn incidence_matrix(structure: &Structure, relation: &str, domain_order: &[Const]) -> QMat {
    assert_eq!(
        structure.schema().arity(relation),
        Some(2),
        "incidence matrices are defined for binary relations only"
    );
    let n = domain_order.len();
    let index = |c: Const| -> Option<usize> { domain_order.iter().position(|&x| x == c) };
    let mut m = QMat::zeros(n.max(1), n.max(1));
    if n == 0 {
        return QMat::zeros(1, 1);
    }
    let mut m2 = QMat::zeros(n, n);
    for t in structure.relation_tuples(relation) {
        let (Some(i), Some(j)) = (index(t[0]), index(t[1])) else {
            continue;
        };
        m2.set(i, j, Rat::one());
    }
    std::mem::swap(&mut m, &mut m2);
    m
}

/// The incidence matrix of a *word* `w = R₁R₂…R_m` (Definition 17):
/// `M^D_ε = I` and `M^D_{Rw} = M^D_R · M^D_w`.
pub fn word_matrix(structure: &Structure, word: &[String], domain_order: &[Const]) -> QMat {
    let n = domain_order.len().max(1);
    let mut acc = QMat::identity(n);
    for rel in word.iter().rev() {
        let m = incidence_matrix(structure, rel, domain_order);
        acc = m.matmul(&acc);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use cqdet_bigint::Nat;

    fn two_rel_schema() -> Schema {
        Schema::binary(["A", "B"])
    }

    #[test]
    fn incidence_of_small_structure() {
        let mut s = Structure::new(two_rel_schema());
        s.add("A", &[0, 1]);
        s.add("A", &[1, 1]);
        s.add("B", &[1, 0]);
        let dom: Vec<_> = s.domain().into_iter().collect();
        let ma = incidence_matrix(&s, "A", &dom);
        assert_eq!(*ma.get(0, 1), Rat::one());
        assert_eq!(*ma.get(1, 1), Rat::one());
        assert_eq!(*ma.get(0, 0), Rat::zero());
        let mb = incidence_matrix(&s, "B", &dom);
        assert_eq!(*mb.get(1, 0), Rat::one());
        assert_eq!(*mb.get(0, 1), Rat::zero());
    }

    #[test]
    fn word_matrix_counts_paths_fact_18() {
        // 0 -A-> 1 -B-> 2 and 0 -A-> 3 -B-> 2: the word AB has 2 paths 0→2.
        let mut s = Structure::new(two_rel_schema());
        s.add("A", &[0, 1]);
        s.add("B", &[1, 2]);
        s.add("A", &[0, 3]);
        s.add("B", &[3, 2]);
        let dom: Vec<_> = s.domain().into_iter().collect();
        let m = word_matrix(&s, &["A".into(), "B".into()], &dom);
        let i0 = dom.iter().position(|&c| c == 0).unwrap();
        let i2 = dom.iter().position(|&c| c == 2).unwrap();
        assert_eq!(*m.get(i0, i2), Rat::from_i64(2));
        // No BA path anywhere.
        let m_ba = word_matrix(&s, &["B".into(), "A".into()], &dom);
        let total: i64 = (0..dom.len())
            .flat_map(|i| (0..dom.len()).map(move |j| (i, j)))
            .map(|(i, j)| if m_ba.get(i, j).is_zero() { 0 } else { 1 })
            .sum();
        assert_eq!(total, 0);
    }

    #[test]
    fn empty_word_is_identity() {
        let mut s = Structure::new(two_rel_schema());
        s.add("A", &[0, 1]);
        let dom: Vec<_> = s.domain().into_iter().collect();
        assert_eq!(word_matrix(&s, &[], &dom), QMat::identity(2));
    }

    #[test]
    fn word_matrix_total_matches_hom_count() {
        // Sum of all entries of M^D_w equals the number of answers of the
        // path query w over D, which for the frozen body equals hom count.
        let mut s = Structure::new(two_rel_schema());
        s.add("A", &[0, 1]);
        s.add("A", &[1, 2]);
        s.add("B", &[2, 0]);
        s.add("B", &[1, 0]);
        let dom: Vec<_> = s.domain().into_iter().collect();
        let m = word_matrix(&s, &["A".into(), "B".into()], &dom);
        let mut total = Rat::zero();
        for i in 0..dom.len() {
            for j in 0..dom.len() {
                total += m.get(i, j);
            }
        }
        // Frozen body of the path query AB: x -A-> y -B-> z.
        let mut q = Structure::new(two_rel_schema());
        q.add("A", &[10, 11]);
        q.add("B", &[11, 12]);
        let homs = crate::hom::hom_count(&q, &s);
        assert_eq!(total, Rat::from_int(cqdet_linalg::Int::from_nat(homs)));
        assert_eq!(crate::hom::hom_count(&q, &s), Nat::from_u64(2));
    }

    #[test]
    #[should_panic(expected = "binary relations only")]
    fn non_binary_relation_panics() {
        let sch = Schema::with_relations([("P", 1)]);
        let mut s = Structure::new(sch);
        s.add("P", &[0]);
        let dom: Vec<_> = s.domain().into_iter().collect();
        let _ = incidence_matrix(&s, "P", &dom);
    }
}
