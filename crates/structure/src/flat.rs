//! Compiled flat-index form of a [`Structure`].
//!
//! Homomorphism search is the single most used primitive of the whole
//! reproduction, and the original engine paid a `String`-keyed `BTreeMap`
//! lookup plus a `Vec` allocation per backtracking step.  This module
//! compiles a structure once into contiguous arrays:
//!
//! * the domain becomes a sorted `Vec<Const>`, so every constant is a dense
//!   `u32` id (its index),
//! * every relation's tuples become one row-major `Vec<u32>` of dense ids,
//!   rows sorted lexicographically, so a fact-membership test is a binary
//!   search over a flat slice — no allocation, no tree walk,
//! * every element gets an *occurrence bitmask* over `(relation, position)`
//!   slots, the raw material of the degree/arity candidate filter used by the
//!   search ([`crate::hom`]),
//! * a byte encoding of the whole structure under the order-preserving dense
//!   renumbering, keyed by relation *names* — a cheap equality fast path for
//!   the isomorphism test ([`crate::iso`]),
//! * the true isomorphism-invariant canonical key of [`crate::canon`]
//!   (computed on first use, cached), which de-duplication, multiplicity
//!   vectors and the [`crate::hom::hom_count_cached`] memo key on,
//! * a per-target memo of candidate-image lists keyed by occurrence mask
//!   ([`FlatStructure::candidates_for_mask`]), shared across every search
//!   plan targeting the structure.
//!
//! The compiled form is cached on the [`Structure`] itself (invalidated on
//! mutation), so the one-time O(n log n) compile cost is amortised over every
//! query against the same structure.

use crate::canon::{canonical_key, CanonKey};
use crate::schema::RelTable;
use crate::structure::{Const, Structure};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Bound on memoized candidate lists per target structure (each list is at
/// most the domain size; the cap keeps adversarial mask diversity from
/// accumulating unbounded memory on a long-lived target).
const CAND_CACHE_CAP: usize = 1024;

/// Occurrence mask → candidate-image list (see
/// [`FlatStructure::candidates_for_mask`]).
type CandCache = Mutex<HashMap<Box<[u64]>, Arc<Vec<u32>>>>;

/// Poison-recovering lock: the memos in this module are insert-only, so a
/// panicking holder cannot leave them in a corrupt state — recover the
/// guard instead of propagating the panic into request handling.
fn locked<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The compiled flat form of one structure.
#[derive(Debug)]
pub(crate) struct FlatStructure {
    /// Sorted domain constants; the dense id of a constant is its index.
    pub dom: Vec<Const>,
    /// Arity per relation id (same order as `Structure::rel_names`).
    pub arities: Vec<usize>,
    /// Per relation id: row-major tuples of dense ids, rows sorted
    /// lexicographically.  Empty for nullary relations.
    pub rows: Vec<Vec<u32>>,
    /// Per relation id: whether the (single possible) nullary fact is present.
    pub nullary_present: Vec<bool>,
    /// Number of `u64` words in one occurrence mask.
    pub slot_words: usize,
    /// Element-major occurrence masks: `occ[e * slot_words ..][w]` has bit
    /// `k % 64` of word `k / 64` set iff element `e` occurs at slot `k`.
    pub occ: Vec<u64>,
    /// Relation table (shared with the source structure's schema), for the
    /// canonical encoding.
    table: Arc<RelTable>,
    /// Canonical byte encoding (relation names + arities + dense rows +
    /// domain size), built on first use: two structures with equal encodings
    /// are equal up to an order-preserving renaming of constants.
    canon: OnceLock<Vec<u8>>,
    /// True isomorphism-invariant canonical key ([`crate::canon`]), built on
    /// first use: two structures have equal keys iff they are isomorphic.
    canon_key: OnceLock<CanonKey>,
    /// Memoized candidate lists for homomorphism search *into* this
    /// structure: occurrence mask (in this structure's slot space) → the
    /// elements whose mask is a superset.  Shared across every search plan
    /// targeting this structure, so a fan-in of many small sources (e.g. the
    /// per-view containment gate) scans the domain once per distinct mask
    /// instead of once per plan.
    cand_cache: CandCache,
}

impl FlatStructure {
    // Invariant-backed expect: every constant fed to `dense` comes from the
    // structure whose domain `dom` enumerates.
    #[allow(clippy::expect_used)]
    pub(crate) fn compile(s: &Structure) -> FlatStructure {
        let dom: Vec<Const> = s.domain().into_iter().collect();
        let dense = |c: Const| -> u32 {
            dom.binary_search(&c).expect("constant from the structure") as u32
        };

        let arities: Vec<usize> = s.rel_arities().to_vec();
        let slot_base: Vec<usize> = arities
            .iter()
            .scan(0usize, |acc, &a| {
                let base = *acc;
                *acc += a;
                Some(base)
            })
            .collect();
        let total_slots: usize = arities.iter().sum();
        let slot_words = total_slots.div_ceil(64).max(1);

        let mut rows: Vec<Vec<u32>> = Vec::with_capacity(arities.len());
        let mut nullary_present = vec![false; arities.len()];
        let mut occ = vec![0u64; dom.len() * slot_words];
        for (rel, &arity) in arities.iter().enumerate() {
            let tuples = s.tuples_of(rel as u32);
            if arity == 0 {
                nullary_present[rel] = !tuples.is_empty();
                rows.push(Vec::new());
                continue;
            }
            let mut flat = Vec::with_capacity(tuples.len() * arity);
            for t in tuples {
                for (pos, &c) in t.iter().enumerate() {
                    let e = dense(c) as usize;
                    flat.push(e as u32);
                    let slot = slot_base[rel] + pos;
                    occ[e * slot_words + slot / 64] |= 1 << (slot % 64);
                }
            }
            // `tuples` is a BTreeSet of Vec<Const> iterated in sorted order and
            // the dense renumbering is monotone, so `flat`'s rows are already
            // sorted lexicographically.
            rows.push(flat);
        }

        FlatStructure {
            dom,
            arities,
            rows,
            nullary_present,
            slot_words,
            occ,
            table: s.schema().table(),
            canon: OnceLock::new(),
            canon_key: OnceLock::new(),
            cand_cache: Mutex::new(HashMap::new()),
        }
    }

    /// The interned relation table this structure was compiled against.
    pub(crate) fn table(&self) -> &RelTable {
        &self.table
    }

    /// The canonical byte encoding (computed once, on first use).
    pub(crate) fn canon(&self) -> &[u8] {
        self.canon.get_or_init(|| {
            encode_canonical(
                &self.table.names,
                &self.arities,
                &self.rows,
                &self.nullary_present,
                self.dom.len(),
            )
        })
    }

    /// The isomorphism-invariant canonical key (computed once, on first use;
    /// see [`crate::canon`] for the labeling algorithm).
    pub(crate) fn canon_key(&self) -> &CanonKey {
        self.canon_key.get_or_init(|| canonical_key(self))
    }

    /// Number of tuples of relation `rel`.
    #[inline]
    #[allow(clippy::manual_checked_ops)]
    pub(crate) fn row_count(&self, rel: usize) -> usize {
        let a = self.arities[rel];
        if a == 0 {
            usize::from(self.nullary_present[rel])
        } else {
            self.rows[rel].len() / a
        }
    }

    /// Whether relation `rel` contains the dense-id row `row`.
    #[inline]
    pub(crate) fn contains_row(&self, rel: usize, row: &[u32]) -> bool {
        let a = self.arities[rel];
        debug_assert_eq!(a, row.len());
        if a == 0 {
            return self.nullary_present[rel];
        }
        let data = &self.rows[rel];
        let n = data.len() / a;
        // Binary search over the sorted fixed-stride rows.
        let mut lo = 0usize;
        let mut hi = n;
        while lo < hi {
            let mid = (lo + hi) / 2;
            let cand = &data[mid * a..mid * a + a];
            match cand.cmp(row) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return true,
            }
        }
        false
    }

    /// The occurrence mask of element `e`, as a word slice.
    #[inline]
    pub(crate) fn mask_of(&self, e: usize) -> &[u64] {
        &self.occ[e * self.slot_words..(e + 1) * self.slot_words]
    }

    /// The elements of this structure whose occurrence mask is a superset of
    /// `mask` (i.e. the candidate images, under this target, of any source
    /// element with that mask), memoized per distinct mask.  `mask` must
    /// live in this structure's slot space.
    pub(crate) fn candidates_for_mask(&self, mask: &[u64]) -> Arc<Vec<u32>> {
        debug_assert_eq!(mask.len(), self.slot_words);
        if let Some(hit) = locked(&self.cand_cache).get(mask) {
            return hit.clone();
        }
        let cands: Arc<Vec<u32>> = Arc::new(
            (0..self.dom.len() as u32)
                .filter(|&t| mask_subset(mask, self.mask_of(t as usize)))
                .collect(),
        );
        let mut cache = locked(&self.cand_cache);
        if cache.len() < CAND_CACHE_CAP {
            cache.insert(mask.into(), cands.clone());
        }
        cands
    }
}

/// Canonical byte encoding; includes relation names so that structures over
/// different schemas can never collide in the memo cache.
pub(crate) fn encode_canonical(
    names: &[String],
    arities: &[usize],
    rows: &[Vec<u32>],
    nullary_present: &[bool],
    dom_len: usize,
) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + rows.iter().map(|r| r.len() * 4).sum::<usize>());
    out.extend_from_slice(&(dom_len as u64).to_le_bytes());
    out.extend_from_slice(&(arities.len() as u32).to_le_bytes());
    for (rel, name) in names.iter().enumerate() {
        out.extend_from_slice(&(name.len() as u32).to_le_bytes());
        out.extend_from_slice(name.as_bytes());
        out.extend_from_slice(&(arities[rel] as u32).to_le_bytes());
        if arities[rel] == 0 {
            out.push(u8::from(nullary_present[rel]));
            continue;
        }
        out.extend_from_slice(&(rows[rel].len() as u32).to_le_bytes());
        for &e in &rows[rel] {
            out.extend_from_slice(&e.to_le_bytes());
        }
    }
    out
}

/// Whether `sub` is a subset of `sup`, wordwise.  Both masks must live in
/// the same slot space (equal word counts) — comparing masks from different
/// schemas would be meaningless.
#[inline]
pub(crate) fn mask_subset(sub: &[u64], sup: &[u64]) -> bool {
    debug_assert_eq!(sub.len(), sup.len(), "masks from different slot spaces");
    sub.iter().zip(sup.iter()).all(|(&a, &b)| a & !b == 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    #[test]
    fn compile_basic() {
        let mut s = Structure::new(Schema::with_relations([("E", 2), ("P", 1)]));
        s.add("E", &[5, 9]);
        s.add("E", &[9, 5]);
        s.add("P", &[5]);
        s.add_isolated(7);
        let f = FlatStructure::compile(&s);
        assert_eq!(f.dom, vec![5, 7, 9]);
        // Relation ids are sorted: E=0, P=1.
        assert_eq!(f.arities, vec![2, 1]);
        assert_eq!(f.row_count(0), 2);
        assert_eq!(f.row_count(1), 1);
        assert!(f.contains_row(0, &[0, 2]));
        assert!(f.contains_row(0, &[2, 0]));
        assert!(!f.contains_row(0, &[0, 0]));
        assert!(f.contains_row(1, &[0]));
        assert!(!f.contains_row(1, &[1]));
        // Element 7 (dense id 1) occurs nowhere.
        assert_eq!(f.mask_of(1), &[0]);
        // Element 5 occurs at E.0, E.1 and P.0 — slots 0, 1, 2.
        assert_eq!(f.mask_of(0), &[0b111]);
        // Element 9 occurs at E.0 and E.1 only.
        assert_eq!(f.mask_of(2), &[0b011]);
    }

    #[test]
    fn nullary_and_canonical_keys() {
        let sch = Schema::with_relations([("H", 0), ("P", 1)]);
        let mut a = Structure::new(sch.clone());
        a.add("H", &[]);
        a.add("P", &[3]);
        let mut b = Structure::new(sch.clone());
        b.add("H", &[]);
        b.add("P", &[77]);
        // Same structure up to renaming → same canonical key.
        assert_eq!(
            FlatStructure::compile(&a).canon(),
            FlatStructure::compile(&b).canon()
        );
        let mut c = Structure::new(sch);
        c.add("P", &[3]);
        assert_ne!(
            FlatStructure::compile(&a).canon(),
            FlatStructure::compile(&c).canon()
        );
        assert!(FlatStructure::compile(&a).contains_row(0, &[]));
        assert!(!FlatStructure::compile(&c).contains_row(0, &[]));
    }

    #[test]
    fn isolated_only_differs_from_empty() {
        let sch = Schema::binary(["E"]);
        let empty = Structure::new(sch.clone());
        let mut iso = Structure::new(sch);
        iso.add_isolated(0);
        assert_ne!(
            FlatStructure::compile(&empty).canon(),
            FlatStructure::compile(&iso).canon()
        );
    }

    #[test]
    fn mask_subset_words() {
        assert!(mask_subset(&[0b01], &[0b11]));
        assert!(!mask_subset(&[0b10], &[0b01]));
        assert!(mask_subset(&[0, 0b1], &[0b1, 0b1]));
        assert!(!mask_subset(&[0b1, 0b1], &[0, 0b1]));
    }
}
