//! Compiled flat-index form of a [`Structure`].
//!
//! Homomorphism search is the single most used primitive of the whole
//! reproduction, and the original engine paid a `String`-keyed `BTreeMap`
//! lookup plus a `Vec` allocation per backtracking step.  This module
//! compiles a structure once into contiguous arrays:
//!
//! * the domain becomes a sorted `Vec<Const>`, so every constant is a dense
//!   `u32` id (its index),
//! * every relation's tuples become one row-major `Vec<u32>` of dense ids,
//!   rows sorted lexicographically, so a fact-membership test is a binary
//!   search over a flat slice — no allocation, no tree walk,
//! * every element gets an *occurrence bitmask* over `(relation, position)`
//!   slots, the raw material of the degree/arity candidate filter used by the
//!   search ([`crate::hom`]),
//! * a byte encoding of the whole structure under the order-preserving dense
//!   renumbering, keyed by relation *names* — a cheap equality fast path for
//!   the isomorphism test ([`crate::iso`]),
//! * the true isomorphism-invariant canonical key of [`crate::canon`]
//!   (computed on first use, cached), which de-duplication, multiplicity
//!   vectors and the [`crate::hom::hom_count_cached`] memo key on,
//! * a per-target memo of candidate-image lists keyed by occurrence mask
//!   ([`FlatStructure::candidates_for_mask`]), shared across every search
//!   plan targeting the structure.
//!
//! The compiled form is cached on the [`Structure`] itself (invalidated on
//! mutation), so the one-time O(n log n) compile cost is amortised over every
//! query against the same structure.

use crate::canon::{canonical_key, CanonKey};
use crate::filter;
use crate::schema::RelTable;
use crate::structure::{Const, Structure};
use cqdet_cache::{CounterSink, ShardedCache};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// Byte budget shared by *every* live candidate memo (the memos are
/// per-target-structure and short-lived, so each reads the family cap from
/// this one cell — retargeting governs existing and future structures
/// alike).  The default keeps adversarial mask diversity from accumulating
/// unbounded memory on long-lived targets; `cqdet serve --cache-bytes`
/// scales it.
static CAND_CACHE_CAP_BYTES: AtomicUsize = AtomicUsize::new(16 << 20);

/// Family-wide counters aggregated across every live candidate memo (each
/// memo mirrors its deltas here and subtracts its residue on drop).
static CAND_CACHE_SINK: CounterSink = CounterSink::new();

/// Family-wide counters of the candidate memos: occupancy, byte usage and
/// hit/miss/eviction counts summed over every live target structure.
pub fn cand_cache_usage() -> cqdet_cache::CacheUsage {
    CAND_CACHE_SINK.usage(CAND_CACHE_CAP_BYTES.load(Ordering::Relaxed) as u64)
}

/// Retarget the byte budget shared by all candidate memos (live: existing
/// structures sweep on their next insert).
pub fn set_cand_cache_bytes(bytes: usize) {
    CAND_CACHE_CAP_BYTES.store(bytes, Ordering::Relaxed);
}

/// True byte cost of one memoized candidate list: mask words, candidate
/// ids, plus a fixed estimate of the map-entry and `Arc` bookkeeping.
#[allow(clippy::borrowed_box)] // must match the cache's `fn(&K, &V)` weigher type
fn cand_weight(key: &Box<[u64]>, value: &Arc<Vec<u32>>) -> usize {
    key.len() * 8 + value.len() * 4 + 64
}

/// Occurrence mask → candidate-image list (see
/// [`FlatStructure::candidates_for_mask`]): a governed family member — few
/// shards (the per-structure mask diversity is modest), byte cap and
/// counters shared across the family.
type CandCache = ShardedCache<Box<[u64]>, Arc<Vec<u32>>>;

fn new_cand_cache() -> CandCache {
    ShardedCache::family_member(4, &CAND_CACHE_CAP_BYTES, &CAND_CACHE_SINK, cand_weight)
}

/// Largest domain for which a binary relation gets a dense membership bit
/// matrix (`4096² bits = 2 MiB` per relation at the cap — bounded, and tiny
/// on the query-sized structures the hom search spends its time on).
const PAIR_BITS_MAX_DOM: usize = 4096;

/// The compiled flat form of one structure.
#[derive(Debug)]
pub(crate) struct FlatStructure {
    /// Sorted domain constants; the dense id of a constant is its index.
    pub dom: Vec<Const>,
    /// Arity per relation id (same order as `Structure::rel_names`).
    pub arities: Vec<usize>,
    /// Per relation id: row-major tuples of dense ids, rows sorted
    /// lexicographically.  Empty for nullary relations.
    pub rows: Vec<Vec<u32>>,
    /// Per relation id: whether the (single possible) nullary fact is present.
    pub nullary_present: Vec<bool>,
    /// Number of `u64` words in one occurrence mask.
    pub slot_words: usize,
    /// Element-major occurrence masks, a contiguous fixed-stride lane
    /// matrix: `occ[e * slot_words ..][w]` has bit `k % 64` of word `k / 64`
    /// set iff element `e` occurs at slot `k`.  The candidate filter sweeps
    /// it block-wise through the lane kernels of [`crate::filter`].
    pub occ: Vec<u64>,
    /// Per relation id: bucket boundaries of the sorted rows by *first*
    /// argument (`row_starts[rel][e] .. row_starts[rel][e+1]` is the row
    /// range whose leading dense id is `e`), so a fact-membership probe
    /// binary-searches a handful of rows instead of the whole relation.
    /// Empty for nullary relations.
    pub row_starts: Vec<Vec<u32>>,
    /// Per relation id: for binary relations over a small domain, a dense
    /// bit matrix (`bits[u * words_per_row + v/64]` bit `v%64` ⇔ `(u,v)`
    /// present) answering the hot arity-2 membership probe with one load
    /// and a bit test.  `None` for other arities or very large domains.
    pair_bits: Vec<Option<Vec<u64>>>,
    /// Per relation id, binary relations only: bucket boundaries by *second*
    /// argument (`rev_starts[rel][v] .. rev_starts[rel][v+1]` indexes into
    /// `rev_firsts[rel]`, the first arguments of the rows whose second
    /// argument is `v`).  The hom search enumerates in-neighbours through
    /// it.  Empty for other arities.
    pub rev_starts: Vec<Vec<u32>>,
    pub rev_firsts: Vec<Vec<u32>>,
    /// Relation table (shared with the source structure's schema), for the
    /// canonical encoding.
    table: Arc<RelTable>,
    /// Canonical byte encoding (relation names + arities + dense rows +
    /// domain size), built on first use: two structures with equal encodings
    /// are equal up to an order-preserving renaming of constants.
    canon: OnceLock<Vec<u8>>,
    /// True isomorphism-invariant canonical key ([`crate::canon`]), built on
    /// first use: two structures have equal keys iff they are isomorphic.
    canon_key: OnceLock<CanonKey>,
    /// Memoized candidate lists for homomorphism search *into* this
    /// structure: occurrence mask (in this structure's slot space) → the
    /// elements whose mask is a superset.  Shared across every search plan
    /// targeting this structure, so a fan-in of many small sources (e.g. the
    /// per-view containment gate) scans the domain once per distinct mask
    /// instead of once per plan.
    cand_cache: CandCache,
}

impl FlatStructure {
    // Invariant-backed expect: every constant fed to `dense` comes from the
    // structure whose domain `dom` enumerates.
    #[allow(clippy::expect_used)]
    pub(crate) fn compile(s: &Structure) -> FlatStructure {
        let dom: Vec<Const> = s.domain().into_iter().collect();
        let dense = |c: Const| -> u32 {
            dom.binary_search(&c).expect("constant from the structure") as u32
        };

        let arities: Vec<usize> = s.rel_arities().to_vec();
        let slot_base: Vec<usize> = arities
            .iter()
            .scan(0usize, |acc, &a| {
                let base = *acc;
                *acc += a;
                Some(base)
            })
            .collect();
        let total_slots: usize = arities.iter().sum();
        let slot_words = total_slots.div_ceil(64).max(1);

        let mut rows: Vec<Vec<u32>> = Vec::with_capacity(arities.len());
        let mut nullary_present = vec![false; arities.len()];
        let mut occ = vec![0u64; dom.len() * slot_words];
        for (rel, &arity) in arities.iter().enumerate() {
            let tuples = s.tuples_of(rel as u32);
            if arity == 0 {
                nullary_present[rel] = !tuples.is_empty();
                rows.push(Vec::new());
                continue;
            }
            let mut flat = Vec::with_capacity(tuples.len() * arity);
            for t in tuples {
                for (pos, &c) in t.iter().enumerate() {
                    let e = dense(c) as usize;
                    flat.push(e as u32);
                    let slot = slot_base[rel] + pos;
                    occ[e * slot_words + slot / 64] |= 1 << (slot % 64);
                }
            }
            // `tuples` is a BTreeSet of Vec<Const> iterated in sorted order and
            // the dense renumbering is monotone, so `flat`'s rows are already
            // sorted lexicographically.
            rows.push(flat);
        }

        let mut pair_bits: Vec<Option<Vec<u64>>> = Vec::with_capacity(arities.len());
        for (rel, &arity) in arities.iter().enumerate() {
            if arity != 2 || dom.len() > PAIR_BITS_MAX_DOM {
                pair_bits.push(None);
                continue;
            }
            let wpr = dom.len().div_ceil(64).max(1);
            let mut bits = vec![0u64; dom.len() * wpr];
            for row in rows[rel].chunks_exact(2) {
                let (u, v) = (row[0] as usize, row[1] as usize);
                bits[u * wpr + v / 64] |= 1 << (v % 64);
            }
            pair_bits.push(Some(bits));
        }

        let mut rev_starts: Vec<Vec<u32>> = Vec::with_capacity(arities.len());
        let mut rev_firsts: Vec<Vec<u32>> = Vec::with_capacity(arities.len());
        for (rel, &arity) in arities.iter().enumerate() {
            if arity != 2 {
                rev_starts.push(Vec::new());
                rev_firsts.push(Vec::new());
                continue;
            }
            // Counting sort of the rows by second argument.
            let mut starts = vec![0u32; dom.len() + 1];
            for row in rows[rel].chunks_exact(2) {
                starts[row[1] as usize + 1] += 1;
            }
            for v in 0..dom.len() {
                starts[v + 1] += starts[v];
            }
            let mut firsts = vec![0u32; rows[rel].len() / 2];
            let mut cursor = starts.clone();
            for row in rows[rel].chunks_exact(2) {
                let c = &mut cursor[row[1] as usize];
                firsts[*c as usize] = row[0];
                *c += 1;
            }
            rev_starts.push(starts);
            rev_firsts.push(firsts);
        }

        let mut row_starts: Vec<Vec<u32>> = Vec::with_capacity(arities.len());
        for (rel, &arity) in arities.iter().enumerate() {
            if arity == 0 {
                row_starts.push(Vec::new());
                continue;
            }
            // Lexicographically sorted rows group by first argument, so the
            // bucket boundaries are one counting pass plus a prefix sum.
            let mut starts = vec![0u32; dom.len() + 1];
            for row in rows[rel].chunks_exact(arity) {
                starts[row[0] as usize + 1] += 1;
            }
            for e in 0..dom.len() {
                starts[e + 1] += starts[e];
            }
            row_starts.push(starts);
        }

        FlatStructure {
            dom,
            arities,
            rows,
            nullary_present,
            slot_words,
            occ,
            row_starts,
            pair_bits,
            rev_starts,
            rev_firsts,
            table: s.schema().table(),
            canon: OnceLock::new(),
            canon_key: OnceLock::new(),
            cand_cache: new_cand_cache(),
        }
    }

    /// The interned relation table this structure was compiled against.
    pub(crate) fn table(&self) -> &RelTable {
        &self.table
    }

    /// The canonical byte encoding (computed once, on first use).
    pub(crate) fn canon(&self) -> &[u8] {
        self.canon.get_or_init(|| {
            encode_canonical(
                &self.table.names,
                &self.arities,
                &self.rows,
                &self.nullary_present,
                self.dom.len(),
            )
        })
    }

    /// The isomorphism-invariant canonical key (computed once, on first use;
    /// see [`crate::canon`] for the labeling algorithm).
    pub(crate) fn canon_key(&self) -> &CanonKey {
        self.canon_key.get_or_init(|| canonical_key(self))
    }

    /// Number of tuples of relation `rel`.
    #[inline]
    #[allow(clippy::manual_checked_ops)]
    pub(crate) fn row_count(&self, rel: usize) -> usize {
        let a = self.arities[rel];
        if a == 0 {
            usize::from(self.nullary_present[rel])
        } else {
            self.rows[rel].len() / a
        }
    }

    /// Whether relation `rel` contains the dense-id row `row`.
    #[inline]
    pub(crate) fn contains_row(&self, rel: usize, row: &[u32]) -> bool {
        let a = self.arities[rel];
        debug_assert_eq!(a, row.len());
        if a == 0 {
            return self.nullary_present[rel];
        }
        if a == 2 {
            if let Some(bits) = &self.pair_bits[rel] {
                let wpr = self.dom.len().div_ceil(64).max(1);
                let (u, v) = (row[0] as usize, row[1] as usize);
                return bits[u * wpr + v / 64] >> (v % 64) & 1 == 1;
            }
        }
        let data = &self.rows[rel];
        // Narrow to the bucket of rows sharing the probe's first argument
        // (usually a handful), then binary-search the sorted fixed-stride
        // rows inside it.  The hom search probes once per candidate
        // extension, so this lookup is squarely on the hot path.
        let starts = &self.row_starts[rel];
        let mut lo = starts[row[0] as usize] as usize;
        let mut hi = starts[row[0] as usize + 1] as usize;
        if a == 1 {
            return lo < hi;
        }
        while lo < hi {
            let mid = (lo + hi) / 2;
            let cand = &data[mid * a + 1..mid * a + a];
            match cand.cmp(&row[1..]) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return true,
            }
        }
        false
    }

    /// The occurrence mask of element `e`, as a word slice.
    #[inline]
    pub(crate) fn mask_of(&self, e: usize) -> &[u64] {
        &self.occ[e * self.slot_words..(e + 1) * self.slot_words]
    }

    /// The elements of this structure whose occurrence mask is a superset of
    /// `mask` (i.e. the candidate images, under this target, of any source
    /// element with that mask), memoized per distinct mask.  `mask` must
    /// live in this structure's slot space.
    pub(crate) fn candidates_for_mask(&self, mask: &[u64]) -> Arc<Vec<u32>> {
        debug_assert_eq!(mask.len(), self.slot_words);
        if let Some(hit) = self.cand_cache.probe(mask) {
            return hit;
        }
        let cands: Arc<Vec<u32>> = Arc::new(filter::superset_indices(
            mask,
            &self.occ,
            self.slot_words,
            self.dom.len(),
        ));
        self.cand_cache.insert_or_get(mask.into(), cands)
    }
}

/// Canonical byte encoding; includes relation names so that structures over
/// different schemas can never collide in the memo cache.
pub(crate) fn encode_canonical(
    names: &[String],
    arities: &[usize],
    rows: &[Vec<u32>],
    nullary_present: &[bool],
    dom_len: usize,
) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + rows.iter().map(|r| r.len() * 4).sum::<usize>());
    out.extend_from_slice(&(dom_len as u64).to_le_bytes());
    out.extend_from_slice(&(arities.len() as u32).to_le_bytes());
    for (rel, name) in names.iter().enumerate() {
        out.extend_from_slice(&(name.len() as u32).to_le_bytes());
        out.extend_from_slice(name.as_bytes());
        out.extend_from_slice(&(arities[rel] as u32).to_le_bytes());
        if arities[rel] == 0 {
            out.push(u8::from(nullary_present[rel]));
            continue;
        }
        out.extend_from_slice(&(rows[rel].len() as u32).to_le_bytes());
        for &e in &rows[rel] {
            out.extend_from_slice(&e.to_le_bytes());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    #[test]
    fn compile_basic() {
        let mut s = Structure::new(Schema::with_relations([("E", 2), ("P", 1)]));
        s.add("E", &[5, 9]);
        s.add("E", &[9, 5]);
        s.add("P", &[5]);
        s.add_isolated(7);
        let f = FlatStructure::compile(&s);
        assert_eq!(f.dom, vec![5, 7, 9]);
        // Relation ids are sorted: E=0, P=1.
        assert_eq!(f.arities, vec![2, 1]);
        assert_eq!(f.row_count(0), 2);
        assert_eq!(f.row_count(1), 1);
        assert!(f.contains_row(0, &[0, 2]));
        assert!(f.contains_row(0, &[2, 0]));
        assert!(!f.contains_row(0, &[0, 0]));
        assert!(f.contains_row(1, &[0]));
        assert!(!f.contains_row(1, &[1]));
        // Element 7 (dense id 1) occurs nowhere.
        assert_eq!(f.mask_of(1), &[0]);
        // Element 5 occurs at E.0, E.1 and P.0 — slots 0, 1, 2.
        assert_eq!(f.mask_of(0), &[0b111]);
        // Element 9 occurs at E.0 and E.1 only.
        assert_eq!(f.mask_of(2), &[0b011]);
    }

    #[test]
    fn nullary_and_canonical_keys() {
        let sch = Schema::with_relations([("H", 0), ("P", 1)]);
        let mut a = Structure::new(sch.clone());
        a.add("H", &[]);
        a.add("P", &[3]);
        let mut b = Structure::new(sch.clone());
        b.add("H", &[]);
        b.add("P", &[77]);
        // Same structure up to renaming → same canonical key.
        assert_eq!(
            FlatStructure::compile(&a).canon(),
            FlatStructure::compile(&b).canon()
        );
        let mut c = Structure::new(sch);
        c.add("P", &[3]);
        assert_ne!(
            FlatStructure::compile(&a).canon(),
            FlatStructure::compile(&c).canon()
        );
        assert!(FlatStructure::compile(&a).contains_row(0, &[]));
        assert!(!FlatStructure::compile(&c).contains_row(0, &[]));
    }

    #[test]
    fn isolated_only_differs_from_empty() {
        let sch = Schema::binary(["E"]);
        let empty = Structure::new(sch.clone());
        let mut iso = Structure::new(sch);
        iso.add_isolated(0);
        assert_ne!(
            FlatStructure::compile(&empty).canon(),
            FlatStructure::compile(&iso).canon()
        );
    }
}
