//! Finite relational structures (databases) over a [`Schema`].

use crate::schema::Schema;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A constant (domain element).  Constants are plain integers; structures over
/// the "infinite set of constants" of the paper only ever mention finitely
/// many of them.
pub type Const = u64;

/// A fact `R(t⃗)`: a relation name applied to a tuple of constants.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Fact {
    /// Relation symbol.
    pub relation: String,
    /// Argument tuple (length = arity of the relation).
    pub args: Vec<Const>,
}

impl Fact {
    /// Construct a fact.
    pub fn new<S: Into<String>>(relation: S, args: Vec<Const>) -> Self {
        Fact {
            relation: relation.into(),
            args,
        }
    }
}

impl fmt::Display for Fact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.relation)?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")
    }
}

/// A finite relational structure: a set of facts over a schema, plus an
/// optional set of isolated domain elements (the paper's Section 3 explicitly
/// allows the domain to be larger than the active domain).
#[derive(Clone, PartialEq, Eq, Default)]
pub struct Structure {
    schema: Schema,
    /// Facts grouped by relation name; each relation maps to the set of tuples.
    tuples: BTreeMap<String, BTreeSet<Vec<Const>>>,
    /// Domain elements that occur in no fact.
    isolated: BTreeSet<Const>,
}

impl Structure {
    /// The empty structure over a schema.
    pub fn new(schema: Schema) -> Self {
        Structure {
            schema,
            tuples: BTreeMap::new(),
            isolated: BTreeSet::new(),
        }
    }

    /// Build a structure from facts.
    pub fn from_facts<I>(schema: Schema, facts: I) -> Self
    where
        I: IntoIterator<Item = Fact>,
    {
        let mut s = Structure::new(schema);
        for f in facts {
            s.add_fact(f);
        }
        s
    }

    /// The schema of this structure.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Add a fact; panics if the relation is unknown or the arity is wrong.
    pub fn add_fact(&mut self, fact: Fact) {
        let arity = self
            .schema
            .arity(&fact.relation)
            .unwrap_or_else(|| panic!("unknown relation {} in fact", fact.relation));
        assert_eq!(
            arity,
            fact.args.len(),
            "arity mismatch for relation {}: expected {}, got {}",
            fact.relation,
            arity,
            fact.args.len()
        );
        for &a in &fact.args {
            self.isolated.remove(&a);
        }
        self.tuples.entry(fact.relation).or_default().insert(fact.args);
    }

    /// Convenience: add the fact `relation(args…)`.
    pub fn add<S: Into<String>>(&mut self, relation: S, args: &[Const]) {
        self.add_fact(Fact::new(relation, args.to_vec()));
    }

    /// Add an isolated domain element (one that occurs in no fact).
    pub fn add_isolated(&mut self, c: Const) {
        if !self.active_domain().contains(&c) {
            self.isolated.insert(c);
        }
    }

    /// Whether the structure contains the given fact.
    pub fn contains_fact(&self, relation: &str, args: &[Const]) -> bool {
        self.tuples
            .get(relation)
            .map(|set| set.contains(args))
            .unwrap_or(false)
    }

    /// The tuples of one relation (empty slice view if the relation has no facts).
    pub fn relation_tuples(&self, relation: &str) -> impl Iterator<Item = &Vec<Const>> {
        self.tuples.get(relation).into_iter().flatten()
    }

    /// Number of tuples in one relation.
    pub fn relation_size(&self, relation: &str) -> usize {
        self.tuples.get(relation).map(BTreeSet::len).unwrap_or(0)
    }

    /// Iterator over all facts in deterministic order.
    pub fn facts(&self) -> impl Iterator<Item = Fact> + '_ {
        self.tuples.iter().flat_map(|(rel, tuples)| {
            tuples.iter().map(move |args| Fact::new(rel.clone(), args.clone()))
        })
    }

    /// Total number of facts.
    pub fn num_facts(&self) -> usize {
        self.tuples.values().map(BTreeSet::len).sum()
    }

    /// Whether the structure has no facts and no isolated elements.
    pub fn is_empty(&self) -> bool {
        self.num_facts() == 0 && self.isolated.is_empty()
    }

    /// The active domain: constants appearing in facts.
    pub fn active_domain(&self) -> BTreeSet<Const> {
        let mut dom = BTreeSet::new();
        for tuples in self.tuples.values() {
            for t in tuples {
                dom.extend(t.iter().copied());
            }
        }
        dom
    }

    /// The domain: active domain plus isolated elements.
    pub fn domain(&self) -> BTreeSet<Const> {
        let mut dom = self.active_domain();
        dom.extend(self.isolated.iter().copied());
        dom
    }

    /// Domain size.
    pub fn domain_size(&self) -> usize {
        self.domain().len()
    }

    /// Apply a constant-renaming function to every fact (and isolated element).
    ///
    /// The mapping need not be injective; the result is the homomorphic image.
    pub fn map_constants<F: Fn(Const) -> Const>(&self, f: F) -> Structure {
        let mut out = Structure::new(self.schema.clone());
        for fact in self.facts() {
            out.add_fact(Fact::new(
                fact.relation,
                fact.args.iter().map(|&a| f(a)).collect(),
            ));
        }
        for &c in &self.isolated {
            out.add_isolated(f(c));
        }
        out
    }

    /// Rename constants to `0..n` (dense renumbering), preserving order.
    pub fn compact(&self) -> Structure {
        let dom: Vec<Const> = self.domain().into_iter().collect();
        let index: BTreeMap<Const, Const> =
            dom.iter().enumerate().map(|(i, &c)| (c, i as Const)).collect();
        self.map_constants(|c| index[&c])
    }

    /// The largest constant mentioned (useful when generating fresh constants).
    pub fn max_constant(&self) -> Option<Const> {
        self.domain().into_iter().next_back()
    }

    /// Per-relation fact counts, in deterministic order (an isomorphism
    /// invariant used for fast non-isomorphism detection).
    pub fn profile(&self) -> Vec<(String, usize)> {
        self.schema
            .relation_names()
            .iter()
            .map(|&n| (n.to_string(), self.relation_size(n)))
            .collect()
    }
}

impl fmt::Debug for Structure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Structure{{")?;
        let mut first = true;
        for fact in self.facts() {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{fact}")?;
            first = false;
        }
        for c in &self.isolated {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "·{c}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

impl fmt::Display for Structure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::with_relations([("R", 2), ("P", 1)])
    }

    #[test]
    fn add_and_query_facts() {
        let mut s = Structure::new(schema());
        s.add("R", &[1, 2]);
        s.add("R", &[2, 3]);
        s.add("P", &[1]);
        assert_eq!(s.num_facts(), 3);
        assert!(s.contains_fact("R", &[1, 2]));
        assert!(!s.contains_fact("R", &[2, 1]));
        assert_eq!(s.relation_size("R"), 2);
        assert_eq!(s.relation_size("P"), 1);
        assert_eq!(s.relation_size("Q"), 0);
        assert_eq!(s.active_domain(), BTreeSet::from([1, 2, 3]));
        assert_eq!(s.domain_size(), 3);
        assert!(!s.is_empty());
    }

    #[test]
    fn duplicate_facts_are_set_like() {
        let mut s = Structure::new(schema());
        s.add("R", &[1, 2]);
        s.add("R", &[1, 2]);
        assert_eq!(s.num_facts(), 1);
    }

    #[test]
    #[should_panic(expected = "unknown relation")]
    fn unknown_relation_panics() {
        let mut s = Structure::new(schema());
        s.add("Q", &[1]);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_mismatch_panics() {
        let mut s = Structure::new(schema());
        s.add("R", &[1]);
    }

    #[test]
    fn isolated_elements() {
        let mut s = Structure::new(schema());
        s.add_isolated(7);
        s.add("P", &[1]);
        assert_eq!(s.active_domain(), BTreeSet::from([1]));
        assert_eq!(s.domain(), BTreeSet::from([1, 7]));
        // Adding a fact mentioning 7 removes it from the isolated set.
        s.add("P", &[7]);
        assert_eq!(s.domain(), BTreeSet::from([1, 7]));
        assert_eq!(s.active_domain(), BTreeSet::from([1, 7]));
        // Adding an isolated element that is already active is a no-op.
        s.add_isolated(1);
        assert_eq!(s.domain_size(), 2);
    }

    #[test]
    fn map_and_compact() {
        let mut s = Structure::new(schema());
        s.add("R", &[10, 20]);
        s.add("P", &[30]);
        let c = s.compact();
        assert_eq!(c.active_domain(), BTreeSet::from([0, 1, 2]));
        assert!(c.contains_fact("R", &[0, 1]));
        assert!(c.contains_fact("P", &[2]));
        // Non-injective mapping merges constants.
        let merged = s.map_constants(|_| 0);
        assert_eq!(merged.domain_size(), 1);
        assert!(merged.contains_fact("R", &[0, 0]));
    }

    #[test]
    fn nullary_facts() {
        let sch = Schema::with_relations([("H", 0usize)]);
        let mut s = Structure::new(sch);
        s.add("H", &[]);
        assert_eq!(s.num_facts(), 1);
        assert!(s.contains_fact("H", &[]));
        assert_eq!(s.domain_size(), 0);
        assert!(!s.is_empty());
    }

    #[test]
    fn profile_and_display() {
        let mut s = Structure::new(schema());
        s.add("R", &[1, 2]);
        s.add("P", &[1]);
        assert_eq!(s.profile(), vec![("P".to_string(), 1), ("R".to_string(), 1)]);
        let d = format!("{s}");
        assert!(d.contains("R(1,2)") && d.contains("P(1)"));
    }

    #[test]
    fn from_facts_and_equality() {
        let s1 = Structure::from_facts(
            schema(),
            [Fact::new("R", vec![1, 2]), Fact::new("P", vec![1])],
        );
        let s2 = Structure::from_facts(
            schema(),
            [Fact::new("P", vec![1]), Fact::new("R", vec![1, 2])],
        );
        assert_eq!(s1, s2, "fact insertion order must not matter");
        assert_eq!(s1.max_constant(), Some(2));
        assert_eq!(Structure::new(schema()).max_constant(), None);
    }
}
