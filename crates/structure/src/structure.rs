//! Finite relational structures (databases) over a [`Schema`].
//!
//! Relation names are interned at construction time: the sorted relation
//! names of the schema become contiguous `u32` ids, and all per-relation
//! storage is a plain `Vec` indexed by that id.  The `&str`-based public API
//! is a thin shim over a binary search on the sorted name table, so no
//! `String`-keyed map lookup happens anywhere on a hot path.  The first
//! homomorphism query against a structure additionally compiles (and caches)
//! a flat CSR form of the structure — see [`crate::flat`].

use crate::flat::FlatStructure;
use crate::schema::{RelTable, Schema};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::{Arc, OnceLock};

/// A constant (domain element).  Constants are plain integers; structures over
/// the "infinite set of constants" of the paper only ever mention finitely
/// many of them.
pub type Const = u64;

/// A fact `R(t⃗)`: a relation name applied to a tuple of constants.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Fact {
    /// Relation symbol.
    pub relation: String,
    /// Argument tuple (length = arity of the relation).
    pub args: Vec<Const>,
}

impl Fact {
    /// Construct a fact.
    pub fn new<S: Into<String>>(relation: S, args: Vec<Const>) -> Self {
        Fact {
            relation: relation.into(),
            args,
        }
    }
}

impl fmt::Display for Fact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.relation)?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")
    }
}

/// A finite relational structure: a set of facts over a schema, plus an
/// optional set of isolated domain elements (the paper's Section 3 explicitly
/// allows the domain to be larger than the active domain).
#[derive(Clone)]
pub struct Structure {
    schema: Schema,
    /// Interned relation table (shared with the schema and every sibling
    /// structure): sorted names and arities, index = relation id.
    table: Arc<RelTable>,
    /// Tuples per relation id.
    tuples: Vec<BTreeSet<Vec<Const>>>,
    /// Constants appearing in at least one fact (maintained incrementally).
    active: BTreeSet<Const>,
    /// Domain elements that occur in no fact.
    isolated: BTreeSet<Const>,
    /// Lazily compiled flat form; reset on mutation.
    flat: OnceLock<Arc<FlatStructure>>,
}

impl Default for Structure {
    fn default() -> Self {
        Structure::new(Schema::default())
    }
}

impl PartialEq for Structure {
    fn eq(&self, other: &Self) -> bool {
        self.schema == other.schema
            && self.tuples == other.tuples
            && self.isolated == other.isolated
    }
}

impl Eq for Structure {}

impl Structure {
    /// The empty structure over a schema.
    pub fn new(schema: Schema) -> Self {
        let table = schema.table();
        let tuples = vec![BTreeSet::new(); table.names.len()];
        Structure {
            schema,
            table,
            tuples,
            active: BTreeSet::new(),
            isolated: BTreeSet::new(),
            flat: OnceLock::new(),
        }
    }

    /// Build a structure from facts.
    pub fn from_facts<I>(schema: Schema, facts: I) -> Self
    where
        I: IntoIterator<Item = Fact>,
    {
        let mut s = Structure::new(schema);
        for f in facts {
            s.add_fact(f);
        }
        s
    }

    /// The schema of this structure.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The interned id of a relation name, if it exists in the schema.
    #[inline]
    pub fn rel_id(&self, relation: &str) -> Option<u32> {
        self.table
            .names
            .binary_search_by(|n| n.as_str().cmp(relation))
            .ok()
            .map(|i| i as u32)
    }

    /// The interned relation names, sorted (index = relation id).
    pub fn rel_names(&self) -> &[String] {
        &self.table.names
    }

    /// Arity per relation id.
    pub fn rel_arities(&self) -> &[usize] {
        &self.table.arities
    }

    /// The tuple set of a relation id.
    pub(crate) fn tuples_of(&self, rel: u32) -> &BTreeSet<Vec<Const>> {
        &self.tuples[rel as usize]
    }

    fn invalidate(&mut self) {
        self.flat = OnceLock::new();
    }

    /// The compiled flat form of this structure (built on first use, cached
    /// until the next mutation).
    pub(crate) fn flat(&self) -> &Arc<FlatStructure> {
        self.flat
            .get_or_init(|| Arc::new(FlatStructure::compile(self)))
    }

    /// Add a fact; panics if the relation is unknown or the arity is wrong.
    // The panic is this constructor's documented contract for malformed
    // input; schema-checked callers (the parser) validate first.
    #[allow(clippy::panic)]
    pub fn add_fact(&mut self, fact: Fact) {
        let rel = self
            .rel_id(&fact.relation)
            .unwrap_or_else(|| panic!("unknown relation {} in fact", fact.relation));
        let arity = self.table.arities[rel as usize];
        assert_eq!(
            arity,
            fact.args.len(),
            "arity mismatch for relation {}: expected {}, got {}",
            fact.relation,
            arity,
            fact.args.len()
        );
        for &a in &fact.args {
            self.isolated.remove(&a);
            self.active.insert(a);
        }
        self.tuples[rel as usize].insert(fact.args);
        self.invalidate();
    }

    /// Convenience: add the fact `relation(args…)`.
    pub fn add<S: Into<String>>(&mut self, relation: S, args: &[Const]) {
        self.add_fact(Fact::new(relation, args.to_vec()));
    }

    /// Add a fact by interned relation id (see [`Structure::rel_id`]) without
    /// allocating a relation-name string.  Panics if the id is out of range
    /// or the arity is wrong.
    pub fn add_by_id(&mut self, rel: u32, args: Vec<Const>) {
        let arity = self.table.arities[rel as usize];
        assert_eq!(
            arity,
            args.len(),
            "arity mismatch for relation {}: expected {}, got {}",
            self.table.names[rel as usize],
            arity,
            args.len()
        );
        for &a in &args {
            self.isolated.remove(&a);
            self.active.insert(a);
        }
        self.tuples[rel as usize].insert(args);
        self.invalidate();
    }

    /// Add an isolated domain element (one that occurs in no fact).
    pub fn add_isolated(&mut self, c: Const) {
        if !self.active.contains(&c) && self.isolated.insert(c) {
            self.invalidate();
        }
    }

    /// Whether the structure contains the given fact.
    pub fn contains_fact(&self, relation: &str, args: &[Const]) -> bool {
        match self.rel_id(relation) {
            Some(rel) => self.tuples[rel as usize].contains(args),
            None => false,
        }
    }

    /// The tuples of one relation (empty iterator if the relation has no facts).
    pub fn relation_tuples(&self, relation: &str) -> impl Iterator<Item = &Vec<Const>> {
        self.rel_id(relation)
            .map(|rel| &self.tuples[rel as usize])
            .into_iter()
            .flatten()
    }

    /// Number of tuples in one relation.
    pub fn relation_size(&self, relation: &str) -> usize {
        self.rel_id(relation)
            .map(|rel| self.tuples[rel as usize].len())
            .unwrap_or(0)
    }

    /// Iterator over all facts in deterministic order.
    pub fn facts(&self) -> impl Iterator<Item = Fact> + '_ {
        self.table
            .names
            .iter()
            .zip(self.tuples.iter())
            .flat_map(|(rel, tuples)| {
                tuples
                    .iter()
                    .map(move |args| Fact::new(rel.clone(), args.clone()))
            })
    }

    /// Total number of facts.
    pub fn num_facts(&self) -> usize {
        self.tuples.iter().map(BTreeSet::len).sum()
    }

    /// Whether the structure has no facts and no isolated elements.
    pub fn is_empty(&self) -> bool {
        self.num_facts() == 0 && self.isolated.is_empty()
    }

    /// The active domain: constants appearing in facts.
    pub fn active_domain(&self) -> BTreeSet<Const> {
        self.active.clone()
    }

    /// The domain: active domain plus isolated elements.
    pub fn domain(&self) -> BTreeSet<Const> {
        let mut dom = self.active.clone();
        dom.extend(self.isolated.iter().copied());
        dom
    }

    /// Domain size.
    pub fn domain_size(&self) -> usize {
        // `active` and `isolated` are disjoint by construction.
        self.active.len() + self.isolated.len()
    }

    /// Apply a constant-renaming function to every fact (and isolated element).
    ///
    /// The mapping need not be injective; the result is the homomorphic image.
    pub fn map_constants<F: Fn(Const) -> Const>(&self, f: F) -> Structure {
        let mut out = Structure::new(self.schema.clone());
        for fact in self.facts() {
            out.add_fact(Fact::new(
                fact.relation,
                fact.args.iter().map(|&a| f(a)).collect(),
            ));
        }
        for &c in &self.isolated {
            out.add_isolated(f(c));
        }
        out
    }

    /// Rename constants to `0..n` (dense renumbering), preserving order.
    pub fn compact(&self) -> Structure {
        let dom: Vec<Const> = self.domain().into_iter().collect();
        let index: BTreeMap<Const, Const> = dom
            .iter()
            .enumerate()
            .map(|(i, &c)| (c, i as Const))
            .collect();
        self.map_constants(|c| index[&c])
    }

    /// The largest constant mentioned (useful when generating fresh constants).
    pub fn max_constant(&self) -> Option<Const> {
        match (
            self.active.iter().next_back(),
            self.isolated.iter().next_back(),
        ) {
            (Some(&a), Some(&b)) => Some(a.max(b)),
            (Some(&a), None) => Some(a),
            (None, Some(&b)) => Some(b),
            (None, None) => None,
        }
    }

    /// Per-relation fact counts, in deterministic order (an isomorphism
    /// invariant used for fast non-isomorphism detection).
    pub fn profile(&self) -> Vec<(String, usize)> {
        self.table
            .names
            .iter()
            .zip(self.tuples.iter())
            .map(|(n, t)| (n.clone(), t.len()))
            .collect()
    }
}

impl fmt::Debug for Structure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Structure{{")?;
        let mut first = true;
        for fact in self.facts() {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{fact}")?;
            first = false;
        }
        for c in &self.isolated {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "·{c}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

impl fmt::Display for Structure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::with_relations([("R", 2), ("P", 1)])
    }

    #[test]
    fn add_and_query_facts() {
        let mut s = Structure::new(schema());
        s.add("R", &[1, 2]);
        s.add("R", &[2, 3]);
        s.add("P", &[1]);
        assert_eq!(s.num_facts(), 3);
        assert!(s.contains_fact("R", &[1, 2]));
        assert!(!s.contains_fact("R", &[2, 1]));
        assert_eq!(s.relation_size("R"), 2);
        assert_eq!(s.relation_size("P"), 1);
        assert_eq!(s.relation_size("Q"), 0);
        assert_eq!(s.active_domain(), BTreeSet::from([1, 2, 3]));
        assert_eq!(s.domain_size(), 3);
        assert!(!s.is_empty());
    }

    #[test]
    fn duplicate_facts_are_set_like() {
        let mut s = Structure::new(schema());
        s.add("R", &[1, 2]);
        s.add("R", &[1, 2]);
        assert_eq!(s.num_facts(), 1);
    }

    #[test]
    #[should_panic(expected = "unknown relation")]
    fn unknown_relation_panics() {
        let mut s = Structure::new(schema());
        s.add("Q", &[1]);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_mismatch_panics() {
        let mut s = Structure::new(schema());
        s.add("R", &[1]);
    }

    #[test]
    fn isolated_elements() {
        let mut s = Structure::new(schema());
        s.add_isolated(7);
        s.add("P", &[1]);
        assert_eq!(s.active_domain(), BTreeSet::from([1]));
        assert_eq!(s.domain(), BTreeSet::from([1, 7]));
        // Adding a fact mentioning 7 removes it from the isolated set.
        s.add("P", &[7]);
        assert_eq!(s.domain(), BTreeSet::from([1, 7]));
        assert_eq!(s.active_domain(), BTreeSet::from([1, 7]));
        // Adding an isolated element that is already active is a no-op.
        s.add_isolated(1);
        assert_eq!(s.domain_size(), 2);
    }

    #[test]
    fn map_and_compact() {
        let mut s = Structure::new(schema());
        s.add("R", &[10, 20]);
        s.add("P", &[30]);
        let c = s.compact();
        assert_eq!(c.active_domain(), BTreeSet::from([0, 1, 2]));
        assert!(c.contains_fact("R", &[0, 1]));
        assert!(c.contains_fact("P", &[2]));
        // Non-injective mapping merges constants.
        let merged = s.map_constants(|_| 0);
        assert_eq!(merged.domain_size(), 1);
        assert!(merged.contains_fact("R", &[0, 0]));
    }

    #[test]
    fn nullary_facts() {
        let sch = Schema::with_relations([("H", 0usize)]);
        let mut s = Structure::new(sch);
        s.add("H", &[]);
        assert_eq!(s.num_facts(), 1);
        assert!(s.contains_fact("H", &[]));
        assert_eq!(s.domain_size(), 0);
        assert!(!s.is_empty());
    }

    #[test]
    fn profile_and_display() {
        let mut s = Structure::new(schema());
        s.add("R", &[1, 2]);
        s.add("P", &[1]);
        assert_eq!(
            s.profile(),
            vec![("P".to_string(), 1), ("R".to_string(), 1)]
        );
        let d = format!("{s}");
        assert!(d.contains("R(1,2)") && d.contains("P(1)"));
    }

    #[test]
    fn from_facts_and_equality() {
        let s1 = Structure::from_facts(
            schema(),
            [Fact::new("R", vec![1, 2]), Fact::new("P", vec![1])],
        );
        let s2 = Structure::from_facts(
            schema(),
            [Fact::new("P", vec![1]), Fact::new("R", vec![1, 2])],
        );
        assert_eq!(s1, s2, "fact insertion order must not matter");
        assert_eq!(s1.max_constant(), Some(2));
        assert_eq!(Structure::new(schema()).max_constant(), None);
    }

    #[test]
    fn interned_relation_ids_follow_sorted_name_order() {
        let s = Structure::new(schema());
        assert_eq!(s.rel_id("P"), Some(0));
        assert_eq!(s.rel_id("R"), Some(1));
        assert_eq!(s.rel_id("Z"), None);
        assert_eq!(s.rel_names(), &["P".to_string(), "R".to_string()]);
        assert_eq!(s.rel_arities(), &[1, 2]);
    }

    #[test]
    fn mutation_invalidates_flat_cache() {
        let mut s = Structure::new(schema());
        s.add("R", &[0, 1]);
        let before = s.flat().clone();
        assert_eq!(before.dom, vec![0, 1]);
        s.add("R", &[1, 2]);
        let after = s.flat();
        assert_eq!(after.dom, vec![0, 1, 2]);
    }
}
