//! Lane-oriented occurrence-mask filtering kernels.
//!
//! The candidate filter of the homomorphism engine asks one question over
//! and over: *which elements of the target have an occurrence mask that is a
//! superset of this source mask?*  Masks live in a contiguous element-major
//! lane matrix (`stride` words per element, see [`crate::flat`]), so the
//! whole question is a strided sweep over `u64` lanes.
//!
//! Two interchangeable kernels answer it:
//!
//! * [`lane_superset_indices`] — the default.  The subset test is branch-free
//!   (`acc |= sub & !sup` folded over the stride, one compare per element)
//!   and the loop is specialised per stride (1, 2, 4 words inline, generic
//!   fallback), so the compiler unrolls and auto-vectorises the sweep over
//!   whole lane blocks.
//! * [`scalar_superset_indices`] — the original word-at-a-time,
//!   short-circuiting filter, retained verbatim as the differential-testing
//!   oracle and selectable at runtime with `CQDET_SCALAR_FILTER=1`.
//!
//! Differential property tests pin the two against each other on random lane
//! matrices (see `tests/differential_filter.rs`); the fuel-parity suite
//! additionally asserts that the choice of kernel never shows up in gas
//! accounting (the filter runs at plan-build time, which is unmetered, and
//! both kernels produce identical candidate lists — so identical searches).
//!
//! The module is `#[doc(hidden)] pub` only so integration tests can drive
//! the kernels directly; it is not part of the supported API surface.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// Whether the `CQDET_SCALAR_FILTER=1` escape hatch is active (checked once).
fn scalar_filter_env() -> bool {
    static FLAG: OnceLock<bool> = OnceLock::new();
    *FLAG.get_or_init(|| {
        std::env::var("CQDET_SCALAR_FILTER")
            .map(|v| v == "1")
            .unwrap_or(false)
    })
}

/// Process-wide programmatic override of the scalar hatch, for tests that
/// must exercise both kernels inside one process (the env flag is latched on
/// first use).  Tests using it run in their own integration-test binary so
/// the global cannot race with unrelated tests.
static FORCE_SCALAR: AtomicBool = AtomicBool::new(false);

/// Force (or stop forcing) the scalar filter kernel, regardless of the
/// `CQDET_SCALAR_FILTER` environment flag.  Test-only knob.
pub fn force_scalar_filter(on: bool) {
    FORCE_SCALAR.store(on, Ordering::SeqCst);
}

/// Whether the scalar oracle kernel is selected (env hatch or test override).
pub fn scalar_filter_active() -> bool {
    FORCE_SCALAR.load(Ordering::SeqCst) || scalar_filter_env()
}

/// Branch-free wordwise subset test: whether `sub ⊆ sup`.  Both masks must
/// live in the same slot space (equal word counts); the OR-accumulate shape
/// gives the optimiser a straight-line body with a single final compare.
#[inline]
pub fn mask_subset(sub: &[u64], sup: &[u64]) -> bool {
    debug_assert_eq!(sub.len(), sup.len(), "masks from different slot spaces");
    let mut acc = 0u64;
    for (&a, &b) in sub.iter().zip(sup.iter()) {
        acc |= a & !b;
    }
    acc == 0
}

/// The indices `i < n` whose lane block `lanes[i*stride .. (i+1)*stride]` is
/// a superset of `mask`, through whichever kernel is active.
pub fn superset_indices(mask: &[u64], lanes: &[u64], stride: usize, n: usize) -> Vec<u32> {
    if scalar_filter_active() {
        scalar_superset_indices(mask, lanes, stride, n)
    } else {
        lane_superset_indices(mask, lanes, stride, n)
    }
}

/// Lane kernel: branch-free subset tests over whole lane blocks, with the
/// sweep specialised per stride so the inner fold is fully unrolled.
pub fn lane_superset_indices(mask: &[u64], lanes: &[u64], stride: usize, n: usize) -> Vec<u32> {
    debug_assert_eq!(mask.len(), stride);
    debug_assert!(lanes.len() >= n * stride);
    let mut out = Vec::new();
    match stride {
        1 => {
            let m = mask[0];
            for (i, &w) in lanes[..n].iter().enumerate() {
                if m & !w == 0 {
                    out.push(i as u32);
                }
            }
        }
        2 => {
            let (m0, m1) = (mask[0], mask[1]);
            for (i, b) in lanes[..n * 2].chunks_exact(2).enumerate() {
                let acc = (m0 & !b[0]) | (m1 & !b[1]);
                if acc == 0 {
                    out.push(i as u32);
                }
            }
        }
        3 | 4 => {
            // Pad the mask to a 4-wide register-shaped fold; the phantom
            // fourth word of a 3-word layout never constrains (`0 & !x = 0`).
            let m = [
                mask[0],
                mask[1],
                mask[2],
                if stride == 4 { mask[3] } else { 0 },
            ];
            for i in 0..n {
                let b = &lanes[i * stride..i * stride + stride];
                let mut acc = (m[0] & !b[0]) | (m[1] & !b[1]) | (m[2] & !b[2]);
                if stride == 4 {
                    acc |= m[3] & !b[3];
                }
                if acc == 0 {
                    out.push(i as u32);
                }
            }
        }
        _ => {
            for (i, block) in lanes[..n * stride].chunks_exact(stride).enumerate() {
                let mut acc = 0u64;
                for (&a, &b) in mask.iter().zip(block.iter()) {
                    acc |= a & !b;
                }
                if acc == 0 {
                    out.push(i as u32);
                }
            }
        }
    }
    out
}

/// Scalar oracle: the original short-circuiting word-at-a-time filter the
/// engine shipped with before the lane rewrite, kept as the differential
/// baseline (`CQDET_SCALAR_FILTER=1`).
pub fn scalar_superset_indices(mask: &[u64], lanes: &[u64], stride: usize, n: usize) -> Vec<u32> {
    debug_assert_eq!(mask.len(), stride);
    (0..n as u32)
        .filter(|&i| {
            let block = &lanes[i as usize * stride..(i as usize + 1) * stride];
            mask.iter().zip(block.iter()).all(|(&a, &b)| a & !b == 0)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernels_agree_on_small_cases() {
        // stride 1, including the all-zero mask (matches everything).
        let lanes = [0b011u64, 0b000, 0b111, 0b101];
        for mask in [[0b000u64], [0b001], [0b110], [0b111]] {
            assert_eq!(
                lane_superset_indices(&mask, &lanes, 1, 4),
                scalar_superset_indices(&mask, &lanes, 1, 4),
                "mask {mask:?}"
            );
        }
        // Wider strides, one element, empty lane matrix edge cases.
        for stride in [2usize, 3, 4, 5, 7] {
            let mask: Vec<u64> = (0..stride as u64).map(|w| w | 1).collect();
            let block: Vec<u64> = mask.iter().map(|&w| w | 0b1000).collect();
            assert_eq!(
                lane_superset_indices(&mask, &block, stride, 1),
                vec![0],
                "stride {stride}"
            );
            assert_eq!(
                lane_superset_indices(&mask, &vec![0u64; stride], stride, 1),
                Vec::<u32>::new(),
                "stride {stride} zero block"
            );
            assert_eq!(
                lane_superset_indices(&mask, &[], stride, 0),
                Vec::<u32>::new()
            );
        }
    }

    #[test]
    fn mask_subset_matches_definition() {
        assert!(mask_subset(&[0b01], &[0b11]));
        assert!(!mask_subset(&[0b10], &[0b01]));
        assert!(mask_subset(&[0, 0b1], &[0b1, 0b1]));
        assert!(!mask_subset(&[0b1, 0b1], &[0, 0b1]));
        assert!(mask_subset(&[], &[]));
    }
}
