//! Isomorphism testing and de-duplication up to isomorphism.
//!
//! Definition 27 builds the basis `W` as a *set* of connected components,
//! "and we think that isomorphic structures are equal" — so the decision
//! procedure needs a reliable isomorphism test.  Every structure carries a
//! cached isomorphism-invariant canonical key ([`crate::canon`]): two
//! structures are isomorphic **iff** their keys are equal, so the test is a
//! key comparison, de-duplication is a single-pass hash-map insert, and the
//! multiplicity vectors of Definition 29 are hash-map lookups — no
//! backtracking search anywhere (the previous implementation fell back to
//! pairwise `injective_hom_exists` searches, which made basis construction
//! quadratic in the number of components with a search per pair).

use crate::flat::FlatStructure;
use crate::structure::Structure;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// An opaque isomorphism-class token: cheap to clone, hash and compare, and
/// equal **iff** the underlying structures are isomorphic.  Obtained from
/// [`Structure::iso_class_key`]; constructing one forces the canonical key
/// ([`crate::canon`]) so that hashing and comparison are lookup-cheap and a
/// fan-out of constructions over scoped threads parallelizes canonization.
///
/// Callers use this to *intern* structures by isomorphism class — e.g. the
/// decision procedure computes each isomorphism-invariant per-view stage
/// (retention gate, component decomposition, multiplicity vector) once per
/// class instead of once per view.
#[derive(Clone)]
pub struct IsoClassKey(Arc<FlatStructure>);

impl IsoClassKey {
    pub(crate) fn new(flat: Arc<FlatStructure>) -> Self {
        flat.canon_key();
        IsoClassKey(flat)
    }

    /// The isomorphism-invariant canonical byte string of this class: equal
    /// across any two keys of the same class, stable across processes — the
    /// identity the warm-start snapshot persists class ids and gate
    /// verdicts under.
    pub fn canon_bytes(&self) -> &[u8] {
        &self.0.canon_key().bytes
    }
}

impl PartialEq for IsoClassKey {
    fn eq(&self, other: &Self) -> bool {
        self.0.canon_key() == other.0.canon_key()
    }
}

impl Eq for IsoClassKey {}

impl std::hash::Hash for IsoClassKey {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        state.write_u64(self.0.canon_key().hash);
    }
}

impl std::fmt::Debug for IsoClassKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "IsoClassKey({:016x})", self.0.canon_key().hash)
    }
}

impl Structure {
    /// The isomorphism-class token of this structure: two structures over
    /// equal schemas get equal tokens iff they are isomorphic.  The
    /// underlying canonical key is computed at most once per structure and
    /// cached on its compiled flat form, which clones of the structure share.
    pub fn iso_class_key(&self) -> IsoClassKey {
        IsoClassKey::new(self.flat().clone())
    }
}

/// Whether two structures are isomorphic.
///
/// Two structures are isomorphic iff there is a bijection between their
/// domains mapping facts onto facts — equivalently, iff their canonical keys
/// ([`crate::canon`]) coincide.  Cheap invariants (schema, domain size,
/// per-relation fact counts) are compared first so that obviously different
/// structures never pay for canonization; the order-preserving encoding of
/// [`crate::flat`] then proves isomorphism without canonizing when the two
/// structures happen to be written with equally-ordered constants.
pub fn isomorphic(a: &Structure, b: &Structure) -> bool {
    if a.schema() != b.schema() {
        return false;
    }
    if a.domain_size() != b.domain_size() {
        return false;
    }
    let n_rels = a.rel_names().len() as u32;
    if (0..n_rels).any(|r| a.tuples_of(r).len() != b.tuples_of(r).len()) {
        return false;
    }
    // Identical order-preserving encodings: the dense renumbering is an
    // isomorphism, no need to compute canonical keys.
    if a.flat().canon() == b.flat().canon() {
        return true;
    }
    a.flat().canon_key() == b.flat().canon_key()
}

/// De-duplicate a list of structures up to isomorphism, preserving the first
/// occurrence of each isomorphism class (this is exactly how the basis `W` of
/// Definition 27 is formed from the connected components of `Σ_{v∈V′} v`).
///
/// Single pass: every structure is canonized once ([`crate::canon`], cached
/// on its flat form) and a structure is kept iff its [`IsoClassKey`] was not
/// seen before.
pub fn dedup_up_to_iso(structures: Vec<Structure>) -> Vec<Structure> {
    // See `IsoClassKey` for why the interior-mutability lint is moot: the
    // key's hash/equality read the `OnceLock`-cached canonical key, forced
    // at construction and immutable afterwards.
    #[allow(clippy::mutable_key_type)]
    let mut seen: HashSet<IsoClassKey> = HashSet::new();
    structures
        .into_iter()
        .filter(|s| seen.insert(s.iso_class_key()))
        .collect()
}

/// By-reference variant of [`dedup_up_to_iso`]: the first occurrence of each
/// isomorphism class, without taking (or cloning) the inputs.  The decision
/// procedure uses this to build the basis by cloning only the kept
/// representatives.
pub fn dedup_up_to_iso_refs<'a, I>(structures: I) -> Vec<&'a Structure>
where
    I: IntoIterator<Item = &'a Structure>,
{
    #[allow(clippy::mutable_key_type)]
    let mut seen: HashSet<IsoClassKey> = HashSet::new();
    structures
        .into_iter()
        .filter(|s| seen.insert(s.iso_class_key()))
        .collect()
}

/// A canonical-key hash index over a basis of structures, for repeated
/// multiplicity-vector extraction ([`BasisIndex::vector`]) without
/// re-indexing the basis per call.  Build it once per basis; lookups are one
/// cached canonization plus one hash probe per structure.
pub struct BasisIndex {
    /// Key hash → basis positions, in basis order (first match wins,
    /// preserving linear-scan semantics should a basis contain duplicates).
    buckets: HashMap<u64, Vec<usize>>,
    /// Compiled flat forms of the basis entries (owning their cached keys).
    flats: Vec<Arc<FlatStructure>>,
}

impl BasisIndex {
    /// Index a basis by canonical key.
    pub fn new(basis: &[Structure]) -> BasisIndex {
        let mut buckets: HashMap<u64, Vec<usize>> = HashMap::new();
        let mut flats = Vec::with_capacity(basis.len());
        for (i, b) in basis.iter().enumerate() {
            let flat = b.flat().clone();
            buckets.entry(flat.canon_key().hash).or_default().push(i);
            flats.push(flat);
        }
        BasisIndex { buckets, flats }
    }

    /// Number of basis entries.
    pub fn len(&self) -> usize {
        self.flats.len()
    }

    /// Whether the basis is empty.
    pub fn is_empty(&self) -> bool {
        self.flats.is_empty()
    }

    /// The basis position of the isomorphism class of `s`, if present.
    pub fn position(&self, s: &Structure) -> Option<usize> {
        let key = s.flat().canon_key();
        self.buckets
            .get(&key.hash)?
            .iter()
            .copied()
            .find(|&i| self.flats[i].canon_key().bytes == key.bytes)
    }

    /// The multiplicity of each basis representative in `structures`
    /// (counting up to isomorphism); `None` if some structure belongs to no
    /// basis class.
    pub fn vector(&self, structures: &[Structure]) -> Option<Vec<u64>> {
        let mut counts = vec![0u64; self.len()];
        for s in structures {
            counts[self.position(s)?] += 1;
        }
        Some(counts)
    }
}

/// The multiplicity of each representative of `basis` in `structures`
/// (counting up to isomorphism).  Every element of `structures` must be
/// isomorphic to some basis element; returns `None` otherwise.
///
/// This is the "vector representation" of Observation 28 / Definition 29.
/// One-shot convenience over [`BasisIndex`]; callers extracting many vectors
/// against the same basis should build the index once instead.
pub fn multiplicities(basis: &[Structure], structures: &[Structure]) -> Option<Vec<u64>> {
    BasisIndex::new(basis).vector(structures)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::structure::Structure;

    fn sch() -> Schema {
        Schema::with_relations([("E", 2), ("P", 1)])
    }

    fn edge(a: u64, b: u64) -> Structure {
        let mut s = Structure::new(sch());
        s.add("E", &[a, b]);
        s
    }

    #[test]
    fn renamed_structures_are_isomorphic() {
        assert!(isomorphic(&edge(0, 1), &edge(10, 20)));
        assert!(isomorphic(&edge(0, 0), &edge(5, 5)));
        assert!(!isomorphic(&edge(0, 1), &edge(5, 5)), "loop vs non-loop");
    }

    #[test]
    fn direction_matters() {
        let mut a = Structure::new(sch());
        a.add("E", &[0, 1]);
        a.add("P", &[0]);
        let mut b = Structure::new(sch());
        b.add("E", &[0, 1]);
        b.add("P", &[1]);
        assert!(!isomorphic(&a, &b));
    }

    #[test]
    fn different_sizes_not_isomorphic() {
        let mut two = Structure::new(sch());
        two.add("E", &[0, 1]);
        two.add("E", &[1, 2]);
        assert!(!isomorphic(&edge(0, 1), &two));
    }

    #[test]
    fn cycles_vs_paths() {
        let mut c3 = Structure::new(sch());
        c3.add("E", &[0, 1]);
        c3.add("E", &[1, 2]);
        c3.add("E", &[2, 0]);
        let mut p3 = Structure::new(sch());
        p3.add("E", &[0, 1]);
        p3.add("E", &[1, 2]);
        p3.add("E", &[2, 3]);
        assert!(!isomorphic(&c3, &p3));
        // Same cycle written with different constants and rotation.
        let mut c3b = Structure::new(sch());
        c3b.add("E", &[7, 9]);
        c3b.add("E", &[9, 11]);
        c3b.add("E", &[11, 7]);
        assert!(isomorphic(&c3, &c3b));
    }

    #[test]
    fn isolated_elements_count() {
        let mut a = edge(0, 1);
        a.add_isolated(5);
        assert!(!isomorphic(&a, &edge(0, 1)));
        let mut b = edge(3, 4);
        b.add_isolated(9);
        assert!(isomorphic(&a, &b));
    }

    #[test]
    fn hard_case_same_profile_not_isomorphic() {
        // Both have 3 edges and 3 vertices but only one is a cycle.
        let mut c3 = Structure::new(sch());
        c3.add("E", &[0, 1]);
        c3.add("E", &[1, 2]);
        c3.add("E", &[2, 0]);
        let mut other = Structure::new(sch());
        other.add("E", &[0, 1]);
        other.add("E", &[1, 2]);
        other.add("E", &[0, 2]);
        assert_eq!(c3.profile(), other.profile());
        assert_eq!(c3.domain_size(), other.domain_size());
        assert!(!isomorphic(&c3, &other));
    }

    #[test]
    fn dedup() {
        let items = vec![edge(0, 1), edge(9, 12), edge(3, 3), edge(4, 4), edge(1, 0)];
        let unique = dedup_up_to_iso(items);
        assert_eq!(unique.len(), 2);
        assert!(isomorphic(&unique[0], &edge(0, 1)));
        assert!(isomorphic(&unique[1], &edge(7, 7)));
    }

    #[test]
    fn multiplicity_vectors() {
        let basis = vec![edge(0, 1), edge(3, 3)];
        let items = vec![edge(10, 20), edge(5, 5), edge(6, 6), edge(30, 40)];
        assert_eq!(multiplicities(&basis, &items), Some(vec![2, 2]));
        // An item outside the basis yields None.
        let mut p = Structure::new(sch());
        p.add("P", &[0]);
        assert_eq!(multiplicities(&basis, &[p]), None);
        assert_eq!(multiplicities(&basis, &[]), Some(vec![0, 0]));
    }

    #[test]
    fn nullary_iso() {
        let sch = Schema::with_relations([("H", 0), ("C", 0)]);
        let mut h = Structure::new(sch.clone());
        h.add("H", &[]);
        let mut c = Structure::new(sch.clone());
        c.add("C", &[]);
        assert!(!isomorphic(&h, &c));
        assert!(isomorphic(&h, &h.clone()));
    }
}
