//! Isomorphism testing and de-duplication up to isomorphism.
//!
//! Definition 27 builds the basis `W` as a *set* of connected components,
//! "and we think that isomorphic structures are equal" — so the decision
//! procedure needs a reliable isomorphism test.  Structures arising from
//! queries are small (a handful of atoms), so a backtracking search suffices.

use crate::hom::injective_hom_exists;
use crate::structure::Structure;

/// Whether two structures are isomorphic.
///
/// Two structures are isomorphic iff there is a bijection between their
/// domains mapping facts onto facts.  We use: `A ≅ B` iff they have the same
/// domain size, the same number of facts per relation, and there is an
/// injective homomorphism `A → B`.  (An injective homomorphism maps distinct
/// facts to distinct facts, so with equal per-relation fact counts its image
/// is all of `B`, and a fact-count-preserving bijective homomorphism is an
/// isomorphism.)
///
/// Fast paths: equal compiled canonical forms ([`crate::flat`]) prove
/// isomorphism without any search (the order-preserving renaming *is* an
/// isomorphism), and per-relation fact counts are compared without the
/// allocation `Structure::profile` would make.
pub fn isomorphic(a: &Structure, b: &Structure) -> bool {
    if a.schema() != b.schema() {
        return false;
    }
    if a.domain_size() != b.domain_size() {
        return false;
    }
    let n_rels = a.rel_names().len() as u32;
    if (0..n_rels).any(|r| a.tuples_of(r).len() != b.tuples_of(r).len()) {
        return false;
    }
    // Identical canonical encodings: the dense renumbering is an isomorphism.
    if a.flat().canon() == b.flat().canon() {
        return true;
    }
    injective_hom_exists(a, b)
}

/// De-duplicate a list of structures up to isomorphism, preserving the first
/// occurrence of each isomorphism class (this is exactly how the basis `W` of
/// Definition 27 is formed from the connected components of `Σ_{v∈V′} v`).
pub fn dedup_up_to_iso(structures: Vec<Structure>) -> Vec<Structure> {
    let mut out: Vec<Structure> = Vec::new();
    for s in structures {
        if !out.iter().any(|t| isomorphic(t, &s)) {
            out.push(s);
        }
    }
    out
}

/// The multiplicity of each representative of `basis` in `structures`
/// (counting up to isomorphism).  Every element of `structures` must be
/// isomorphic to some basis element; returns `None` otherwise.
///
/// This is the "vector representation" of Observation 28 / Definition 29.
pub fn multiplicities(basis: &[Structure], structures: &[Structure]) -> Option<Vec<u64>> {
    let mut counts = vec![0u64; basis.len()];
    for s in structures {
        let idx = basis.iter().position(|b| isomorphic(b, s))?;
        counts[idx] += 1;
    }
    Some(counts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::structure::Structure;

    fn sch() -> Schema {
        Schema::with_relations([("E", 2), ("P", 1)])
    }

    fn edge(a: u64, b: u64) -> Structure {
        let mut s = Structure::new(sch());
        s.add("E", &[a, b]);
        s
    }

    #[test]
    fn renamed_structures_are_isomorphic() {
        assert!(isomorphic(&edge(0, 1), &edge(10, 20)));
        assert!(isomorphic(&edge(0, 0), &edge(5, 5)));
        assert!(!isomorphic(&edge(0, 1), &edge(5, 5)), "loop vs non-loop");
    }

    #[test]
    fn direction_matters() {
        let mut a = Structure::new(sch());
        a.add("E", &[0, 1]);
        a.add("P", &[0]);
        let mut b = Structure::new(sch());
        b.add("E", &[0, 1]);
        b.add("P", &[1]);
        assert!(!isomorphic(&a, &b));
    }

    #[test]
    fn different_sizes_not_isomorphic() {
        let mut two = Structure::new(sch());
        two.add("E", &[0, 1]);
        two.add("E", &[1, 2]);
        assert!(!isomorphic(&edge(0, 1), &two));
    }

    #[test]
    fn cycles_vs_paths() {
        let mut c3 = Structure::new(sch());
        c3.add("E", &[0, 1]);
        c3.add("E", &[1, 2]);
        c3.add("E", &[2, 0]);
        let mut p3 = Structure::new(sch());
        p3.add("E", &[0, 1]);
        p3.add("E", &[1, 2]);
        p3.add("E", &[2, 3]);
        assert!(!isomorphic(&c3, &p3));
        // Same cycle written with different constants and rotation.
        let mut c3b = Structure::new(sch());
        c3b.add("E", &[7, 9]);
        c3b.add("E", &[9, 11]);
        c3b.add("E", &[11, 7]);
        assert!(isomorphic(&c3, &c3b));
    }

    #[test]
    fn isolated_elements_count() {
        let mut a = edge(0, 1);
        a.add_isolated(5);
        assert!(!isomorphic(&a, &edge(0, 1)));
        let mut b = edge(3, 4);
        b.add_isolated(9);
        assert!(isomorphic(&a, &b));
    }

    #[test]
    fn hard_case_same_profile_not_isomorphic() {
        // Both have 3 edges and 3 vertices but only one is a cycle.
        let mut c3 = Structure::new(sch());
        c3.add("E", &[0, 1]);
        c3.add("E", &[1, 2]);
        c3.add("E", &[2, 0]);
        let mut other = Structure::new(sch());
        other.add("E", &[0, 1]);
        other.add("E", &[1, 2]);
        other.add("E", &[0, 2]);
        assert_eq!(c3.profile(), other.profile());
        assert_eq!(c3.domain_size(), other.domain_size());
        assert!(!isomorphic(&c3, &other));
    }

    #[test]
    fn dedup() {
        let items = vec![edge(0, 1), edge(9, 12), edge(3, 3), edge(4, 4), edge(1, 0)];
        let unique = dedup_up_to_iso(items);
        assert_eq!(unique.len(), 2);
        assert!(isomorphic(&unique[0], &edge(0, 1)));
        assert!(isomorphic(&unique[1], &edge(7, 7)));
    }

    #[test]
    fn multiplicity_vectors() {
        let basis = vec![edge(0, 1), edge(3, 3)];
        let items = vec![edge(10, 20), edge(5, 5), edge(6, 6), edge(30, 40)];
        assert_eq!(multiplicities(&basis, &items), Some(vec![2, 2]));
        // An item outside the basis yields None.
        let mut p = Structure::new(sch());
        p.add("P", &[0]);
        assert_eq!(multiplicities(&basis, &[p]), None);
        assert_eq!(multiplicities(&basis, &[]), Some(vec![0, 0]));
    }

    #[test]
    fn nullary_iso() {
        let sch = Schema::with_relations([("H", 0), ("C", 0)]);
        let mut h = Structure::new(sch.clone());
        h.add("H", &[]);
        let mut c = Structure::new(sch.clone());
        c.add("C", &[]);
        assert!(!isomorphic(&h, &c));
        assert!(isomorphic(&h, &h.clone()));
    }
}
