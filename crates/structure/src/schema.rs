//! Relational schemas: finite sets of relation symbols with arities.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, OnceLock};

/// The interned relation table of a schema: sorted names (index = relation
/// id) and their arities.  Shared by every [`crate::Structure`] over the
/// schema, so freezing a query allocates no per-relation strings.
#[derive(Debug, PartialEq, Eq)]
pub(crate) struct RelTable {
    pub names: Vec<String>,
    pub arities: Vec<usize>,
}

/// A relational schema Σ: a finite map from relation names to arities.
///
/// The paper calls a schema *n-ary* when every relation has arity at most `n`;
/// path queries (Section 3) require a *binary* schema.
#[derive(Clone, Default)]
pub struct Schema {
    relations: BTreeMap<String, usize>,
    /// Interned table, built on first use and invalidated by mutation.
    table: OnceLock<Arc<RelTable>>,
}

impl PartialEq for Schema {
    fn eq(&self, other: &Self) -> bool {
        self.relations == other.relations
    }
}

impl Eq for Schema {}

impl std::hash::Hash for Schema {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.relations.hash(state);
    }
}

impl Schema {
    /// The empty schema.
    pub fn new() -> Self {
        Schema::default()
    }

    /// A schema built from `(name, arity)` pairs.
    pub fn with_relations<I, S>(relations: I) -> Self
    where
        I: IntoIterator<Item = (S, usize)>,
        S: Into<String>,
    {
        let mut s = Schema::new();
        for (name, arity) in relations {
            s.add_relation(name, arity);
        }
        s
    }

    /// A binary schema with the given relation names (the setting of the
    /// path-query results, Section 3).
    pub fn binary<I, S>(names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Schema::with_relations(names.into_iter().map(|n| (n, 2)))
    }

    /// Add (or overwrite) a relation symbol.
    pub fn add_relation<S: Into<String>>(&mut self, name: S, arity: usize) {
        self.relations.insert(name.into(), arity);
        self.table = OnceLock::new();
    }

    /// The interned relation table (names sorted, index = relation id).
    pub(crate) fn table(&self) -> Arc<RelTable> {
        self.table
            .get_or_init(|| {
                let names: Vec<String> = self.relations.keys().cloned().collect();
                let arities: Vec<usize> = self.relations.values().copied().collect();
                Arc::new(RelTable { names, arities })
            })
            .clone()
    }

    /// The arity of `name`, if the relation exists.
    pub fn arity(&self, name: &str) -> Option<usize> {
        self.relations.get(name).copied()
    }

    /// Whether the schema contains the relation `name`.
    pub fn contains(&self, name: &str) -> bool {
        self.relations.contains_key(name)
    }

    /// Iterator over `(name, arity)` pairs in deterministic (sorted) order.
    pub fn relations(&self) -> impl Iterator<Item = (&str, usize)> {
        self.relations.iter().map(|(n, &a)| (n.as_str(), a))
    }

    /// Relation names in deterministic (sorted) order.
    pub fn relation_names(&self) -> Vec<&str> {
        self.relations.keys().map(String::as_str).collect()
    }

    /// Number of relation symbols.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// Whether the schema has no relations.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// The maximum arity over all relations (`0` for the empty schema).
    pub fn max_arity(&self) -> usize {
        self.relations.values().copied().max().unwrap_or(0)
    }

    /// Whether every relation is binary (the path-query setting).
    pub fn is_binary(&self) -> bool {
        self.relations.values().all(|&a| a == 2)
    }

    /// Whether every relation has arity at least one.
    ///
    /// The Theorem 3 machinery (Lemma 4 parts (1)–(2)) needs this: a nullary
    /// atom forms a connected component for which the disjoint-union counting
    /// rules do not hold.
    pub fn all_positive_arity(&self) -> bool {
        self.relations.values().all(|&a| a >= 1)
    }

    /// The union of two schemas; panics if a shared name has conflicting arity.
    pub fn union(&self, other: &Schema) -> Schema {
        let mut out = self.clone();
        for (name, arity) in other.relations() {
            if let Some(existing) = out.arity(name) {
                assert_eq!(
                    existing, arity,
                    "conflicting arities for relation {name} in schema union"
                );
            }
            out.add_relation(name, arity);
        }
        out
    }
}

impl fmt::Debug for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Schema{{")?;
        for (i, (n, a)) in self.relations().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{n}/{a}")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_lookup() {
        let s = Schema::with_relations([("R", 2), ("P", 1), ("H", 0)]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.arity("R"), Some(2));
        assert_eq!(s.arity("P"), Some(1));
        assert_eq!(s.arity("H"), Some(0));
        assert_eq!(s.arity("X"), None);
        assert!(s.contains("P"));
        assert!(!s.contains("Q"));
        assert_eq!(s.max_arity(), 2);
        assert!(!s.is_binary());
        assert!(!s.all_positive_arity());
        assert!(!s.is_empty());
        assert!(Schema::new().is_empty());
    }

    #[test]
    fn binary_schema() {
        let s = Schema::binary(["A", "B", "C"]);
        assert!(s.is_binary());
        assert!(s.all_positive_arity());
        assert_eq!(s.relation_names(), vec!["A", "B", "C"]);
    }

    #[test]
    fn union_ok() {
        let a = Schema::with_relations([("R", 2)]);
        let b = Schema::with_relations([("S", 1), ("R", 2)]);
        let u = a.union(&b);
        assert_eq!(u.len(), 2);
        assert_eq!(u.arity("S"), Some(1));
    }

    #[test]
    #[should_panic(expected = "conflicting arities")]
    fn union_conflict_panics() {
        let a = Schema::with_relations([("R", 2)]);
        let b = Schema::with_relations([("R", 3)]);
        let _ = a.union(&b);
    }

    #[test]
    fn display() {
        let s = Schema::with_relations([("R", 2), ("P", 1)]);
        assert_eq!(format!("{s}"), "Schema{P/1, R/2}");
    }
}
