//! Random structure generation for benchmarks and property-based tests.
//!
//! The paper has no experimental workloads; these generators supply the
//! synthetic workloads used by `cqdet-bench` (see `EXPERIMENTS.md`), and by
//! property tests that compare independent implementations of the same
//! quantity (e.g. Lemma-4 evaluation vs. brute-force counting).

use crate::schema::Schema;
use crate::structure::{Const, Structure};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic (seeded) random structure generator over a fixed schema.
#[derive(Debug, Clone)]
pub struct StructureGenerator {
    schema: Schema,
    rng_seed: u64,
    counter: u64,
}

impl StructureGenerator {
    /// Create a generator over `schema` with the given seed.
    pub fn new(schema: Schema, seed: u64) -> Self {
        StructureGenerator {
            schema,
            rng_seed: seed,
            counter: 0,
        }
    }

    /// The schema used by this generator.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next_rng(&mut self) -> StdRng {
        self.counter += 1;
        StdRng::seed_from_u64(self.rng_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ self.counter)
    }

    /// A random structure with `domain_size` elements where every possible
    /// fact is included independently with probability `density` (per mille,
    /// i.e. `density = 500` means 1/2).
    pub fn random_structure(&mut self, domain_size: usize, density_per_mille: u32) -> Structure {
        let mut rng = self.next_rng();
        let mut s = Structure::new(self.schema.clone());
        if domain_size == 0 {
            return s;
        }
        for c in 0..domain_size {
            s.add_isolated(c as Const);
        }
        let relations: Vec<(String, usize)> = self
            .schema
            .relations()
            .map(|(n, a)| (n.to_string(), a))
            .collect();
        for (rel, arity) in relations {
            let mut tuple = vec![0usize; arity];
            loop {
                if rng.gen_range(0..1000) < density_per_mille {
                    let args: Vec<Const> = tuple.iter().map(|&x| x as Const).collect();
                    s.add(&rel, &args);
                }
                // Advance the mixed-radix counter over all tuples.
                let mut pos = 0;
                loop {
                    if arity == 0 || pos == arity {
                        break;
                    }
                    tuple[pos] += 1;
                    if tuple[pos] < domain_size {
                        break;
                    }
                    tuple[pos] = 0;
                    pos += 1;
                }
                if arity == 0 || pos == arity {
                    break;
                }
            }
        }
        s
    }

    /// A random structure with exactly (at most) `num_facts` facts drawn
    /// uniformly with replacement over a domain of the given size.
    pub fn random_with_facts(&mut self, domain_size: usize, num_facts: usize) -> Structure {
        let mut rng = self.next_rng();
        let mut s = Structure::new(self.schema.clone());
        let relations: Vec<(String, usize)> = self
            .schema
            .relations()
            .map(|(n, a)| (n.to_string(), a))
            .collect();
        if relations.is_empty() || domain_size == 0 {
            return s;
        }
        for _ in 0..num_facts {
            let (rel, arity) = &relations[rng.gen_range(0..relations.len())];
            let args: Vec<Const> = (0..*arity)
                .map(|_| rng.gen_range(0..domain_size) as Const)
                .collect();
            s.add(rel, &args);
        }
        s
    }

    /// A random *connected* structure: facts are added so that each new fact
    /// shares at least one constant with the already-generated part.
    ///
    /// Useful for generating connected components / basis queries.
    pub fn random_connected(&mut self, num_facts: usize) -> Structure {
        let mut rng = self.next_rng();
        let mut s = Structure::new(self.schema.clone());
        let relations: Vec<(String, usize)> = self
            .schema
            .relations()
            .map(|(n, a)| (n.to_string(), a))
            .filter(|(_, a)| *a >= 1)
            .collect();
        if relations.is_empty() {
            return s;
        }
        let mut next_const: Const = 0;
        for i in 0..num_facts {
            let (rel, arity) = &relations[rng.gen_range(0..relations.len())];
            let dom: Vec<Const> = s.domain().into_iter().collect();
            let mut args = Vec::with_capacity(*arity);
            for pos in 0..*arity {
                // With probability 1/2 (or always for the anchoring position of
                // a non-first fact) reuse an existing constant.
                let reuse = !dom.is_empty() && (rng.gen_bool(0.5) || (i > 0 && pos == 0));
                if reuse {
                    args.push(dom[rng.gen_range(0..dom.len())]);
                } else {
                    args.push(next_const);
                    next_const += 1;
                }
            }
            s.add(rel, &args);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::is_connected;

    fn sch() -> Schema {
        Schema::with_relations([("E", 2), ("P", 1)])
    }

    #[test]
    fn deterministic_for_same_seed() {
        let mut g1 = StructureGenerator::new(sch(), 42);
        let mut g2 = StructureGenerator::new(sch(), 42);
        assert_eq!(g1.random_structure(4, 300), g2.random_structure(4, 300));
        assert_eq!(g1.random_with_facts(5, 7), g2.random_with_facts(5, 7));
        let mut g3 = StructureGenerator::new(sch(), 43);
        // Different seed → (almost surely) different structure.
        let a = g1.random_with_facts(6, 10);
        let b = g3.random_with_facts(6, 10);
        assert!(a != b || a.num_facts() == 0);
    }

    #[test]
    fn density_extremes() {
        let mut g = StructureGenerator::new(sch(), 7);
        let empty = g.random_structure(3, 0);
        assert_eq!(empty.num_facts(), 0);
        assert_eq!(empty.domain_size(), 3, "isolated elements are kept");
        let full = g.random_structure(3, 1000);
        // All possible facts: 3^2 for E plus 3 for P.
        assert_eq!(full.num_facts(), 9 + 3);
    }

    #[test]
    fn fact_count_bound() {
        let mut g = StructureGenerator::new(sch(), 1);
        let s = g.random_with_facts(4, 10);
        assert!(s.num_facts() <= 10);
        assert!(s.domain_size() <= 4);
    }

    #[test]
    fn connected_generator_produces_connected_structures() {
        let mut g = StructureGenerator::new(sch(), 5);
        for n in 1..8 {
            let s = g.random_connected(n);
            assert!(
                is_connected(&s),
                "structure with {n} facts must be connected: {s:?}"
            );
            assert!(s.num_facts() <= n);
        }
    }

    #[test]
    fn zero_domain_or_empty_schema() {
        let mut g = StructureGenerator::new(Schema::new(), 3);
        assert!(g.random_with_facts(5, 5).is_empty());
        let mut g2 = StructureGenerator::new(sch(), 3);
        assert!(g2.random_with_facts(0, 5).is_empty());
    }
}
