//! Symbolic structures: formal expressions over the structure algebra.
//!
//! The good basis `S` of Section 6 is built from radix-`T` weighted sums and
//! `(j−1)`-st powers of structures; materialising those structures would blow
//! up exponentially (a single `s⁽²⁾ = Σ Tⁱ·s⁽¹⁾ᵢ` already has `Σ Tⁱ·|dom s⁽¹⁾ᵢ|`
//! elements).  Fortunately the paper itself never needs the structures, only
//! their homomorphism counts — and Lovász's Lemma 4 computes those counts
//! compositionally.  [`StructureExpr`] is that compositional representation:
//! counting a connected query against an expression is cheap, and the
//! expression can still be materialised on demand (with a size guard) when a
//! test wants to cross-check against brute-force counting.

use crate::components::is_connected;
use crate::hom::hom_count_cached;
use crate::ops::{all_loops_point, disjoint_union, power, product, scalar_multiple};
use crate::schema::Schema;
use crate::structure::Structure;
use cqdet_bigint::Nat;
use std::fmt;
use std::sync::Arc;

/// A formal expression denoting a finite structure built with the operations
/// of Section 2.2.
#[derive(Clone, Debug)]
pub enum StructureExpr {
    /// A concrete base structure.
    Base(Arc<Structure>),
    /// A weighted disjoint sum `Σᵢ cᵢ·eᵢ` (`cᵢ ∈ ℕ`).
    Sum(Vec<(Nat, StructureExpr)>),
    /// A product `Πᵢ eᵢ`; the empty product is the all-loops point `A⁰`.
    Product(Vec<StructureExpr>),
    /// A power `eᵗ`; `e⁰` is the all-loops point `A⁰`.
    Power(Box<StructureExpr>, u64),
}

impl StructureExpr {
    /// Wrap a concrete structure.
    pub fn base(s: Structure) -> Self {
        StructureExpr::Base(Arc::new(s))
    }

    /// The weighted sum `Σ cᵢ·eᵢ`.
    pub fn weighted_sum(terms: Vec<(Nat, StructureExpr)>) -> Self {
        StructureExpr::Sum(terms)
    }

    /// The binary sum `a + b`.
    pub fn sum2(a: StructureExpr, b: StructureExpr) -> Self {
        StructureExpr::Sum(vec![(Nat::one(), a), (Nat::one(), b)])
    }

    /// The product `a × b`.
    pub fn product2(a: StructureExpr, b: StructureExpr) -> Self {
        StructureExpr::Product(vec![a, b])
    }

    /// The power `eᵗ`.
    pub fn pow(self, t: u64) -> Self {
        StructureExpr::Power(Box::new(self), t)
    }

    /// The number of homomorphisms from a **connected** structure `w` into the
    /// structure denoted by this expression, computed by Lemma 4 without
    /// materialising anything.
    ///
    /// Panics if `w` is not connected (the sum rules (1)–(2) of Lemma 4 need
    /// connectivity); use [`StructureExpr::hom_count_from`] for arbitrary
    /// sources.
    pub fn hom_count_from_connected(&self, w: &Structure) -> Nat {
        assert!(
            is_connected(w),
            "hom_count_from_connected requires a connected source structure"
        );
        self.hom_count_connected_inner(w)
    }

    fn hom_count_connected_inner(&self, w: &Structure) -> Nat {
        match self {
            // Memoized: the good-basis construction evaluates the same
            // (component, base) pairs across every power of the shared radix
            // sum, so repeated counts become cache hits.
            StructureExpr::Base(s) => hom_count_cached(w, s),
            StructureExpr::Sum(terms) => {
                // Lemma 4 (1)–(2): hom(w, Σ cᵢ·eᵢ) = Σ cᵢ·hom(w, eᵢ).
                let mut acc = Nat::zero();
                for (c, e) in terms {
                    acc += &c.mul_ref(&e.hom_count_connected_inner(w));
                }
                acc
            }
            StructureExpr::Product(factors) => {
                // Lemma 4 (3): hom(w, Π eᵢ) = Π hom(w, eᵢ); empty product = A⁰.
                let mut acc = Nat::one();
                for e in factors {
                    acc = acc.mul_ref(&e.hom_count_connected_inner(w));
                }
                acc
            }
            StructureExpr::Power(e, t) => {
                // Lemma 4 (4): hom(w, eᵗ) = hom(w, e)ᵗ  (0 exponent → 1).
                e.hom_count_connected_inner(w).pow(*t)
            }
        }
    }

    /// The number of homomorphisms from an arbitrary structure, factored
    /// through its connected components (Lemma 4(5)).
    pub fn hom_count_from(&self, source: &Structure) -> Nat {
        let comps = crate::components::connected_components(source);
        if comps.is_empty() {
            return Nat::one();
        }
        let mut acc = Nat::one();
        for c in &comps {
            acc = acc.mul_ref(&self.hom_count_from_connected(c));
            if acc.is_zero() {
                return acc;
            }
        }
        acc
    }

    /// The domain size of the denoted structure (may be astronomically large —
    /// hence returned as a [`Nat`]).
    #[allow(clippy::only_used_in_recursion)]
    pub fn domain_size(&self, schema: &Schema) -> Nat {
        match self {
            StructureExpr::Base(s) => Nat::from_usize(s.domain_size()),
            StructureExpr::Sum(terms) => {
                let mut acc = Nat::zero();
                for (c, e) in terms {
                    acc += &c.mul_ref(&e.domain_size(schema));
                }
                acc
            }
            StructureExpr::Product(factors) => {
                let mut acc = Nat::one();
                for e in factors {
                    acc = acc.mul_ref(&e.domain_size(schema));
                }
                acc
            }
            StructureExpr::Power(e, t) => e.domain_size(schema).pow(*t),
        }
    }

    /// Materialise the expression into a concrete structure, provided its
    /// domain size does not exceed `max_domain`.  Returns `None` if it does.
    ///
    /// Used by tests to cross-check the Lemma-4 evaluation against brute-force
    /// homomorphism counting.
    pub fn materialize(&self, schema: &Schema, max_domain: usize) -> Option<Structure> {
        if self.domain_size(schema) > Nat::from_usize(max_domain) {
            return None;
        }
        Some(self.materialize_unchecked(schema))
    }

    // Documented contract: materializing a symbolic sum whose coefficient
    // exceeds u64 is a caller error, reported by the expect's panic.
    #[allow(clippy::expect_used)]
    fn materialize_unchecked(&self, schema: &Schema) -> Structure {
        match self {
            StructureExpr::Base(s) => (**s).clone(),
            StructureExpr::Sum(terms) => {
                let mut acc = Structure::new(schema.clone());
                for (c, e) in terms {
                    let copies = c
                        .to_u64()
                        .expect("materialize: sum coefficient does not fit in u64");
                    let part = e.materialize_unchecked(schema);
                    acc = disjoint_union(&acc, &scalar_multiple(copies, &part));
                }
                acc
            }
            StructureExpr::Product(factors) => {
                let mut acc = all_loops_point(schema);
                for e in factors {
                    acc = product(&acc, &e.materialize_unchecked(schema));
                }
                acc
            }
            StructureExpr::Power(e, t) => power(&e.materialize_unchecked(schema), *t),
        }
    }
}

impl fmt::Display for StructureExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StructureExpr::Base(s) => {
                write!(f, "⟨{} facts, {} elems⟩", s.num_facts(), s.domain_size())
            }
            StructureExpr::Sum(terms) => {
                write!(f, "(")?;
                for (i, (c, e)) in terms.iter().enumerate() {
                    if i > 0 {
                        write!(f, " + ")?;
                    }
                    if !c.is_one() {
                        write!(f, "{c}·")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
            StructureExpr::Product(factors) => {
                if factors.is_empty() {
                    return write!(f, "A⁰");
                }
                write!(f, "(")?;
                for (i, e) in factors.iter().enumerate() {
                    if i > 0 {
                        write!(f, " × ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
            StructureExpr::Power(e, t) => write!(f, "{e}^{t}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hom::hom_count;
    use crate::structure::Const;

    fn sch() -> Schema {
        Schema::binary(["E"])
    }

    fn path(n: usize) -> Structure {
        let mut s = Structure::new(sch());
        for i in 0..n {
            s.add("E", &[i as Const, (i + 1) as Const]);
        }
        s
    }

    fn cycle(n: usize) -> Structure {
        let mut s = Structure::new(sch());
        for i in 0..n {
            s.add("E", &[i as Const, ((i + 1) % n) as Const]);
        }
        s
    }

    #[test]
    fn base_matches_direct_count() {
        let e = StructureExpr::base(cycle(4));
        assert_eq!(e.hom_count_from_connected(&path(1)), Nat::from_u64(4));
        assert_eq!(e.hom_count_from(&path(1)), Nat::from_u64(4));
    }

    #[test]
    fn sum_product_power_match_materialisation() {
        let w = path(2);
        let expr = StructureExpr::weighted_sum(vec![
            (Nat::from_u64(2), StructureExpr::base(cycle(3))),
            (
                Nat::one(),
                StructureExpr::product2(
                    StructureExpr::base(cycle(2)),
                    StructureExpr::base(path(3)),
                ),
            ),
            (Nat::from_u64(3), StructureExpr::base(cycle(2)).pow(2)),
        ]);
        let symbolic = expr.hom_count_from_connected(&w);
        let concrete = expr.materialize(&sch(), 100).unwrap();
        assert_eq!(symbolic, hom_count(&w, &concrete));
    }

    #[test]
    fn disconnected_source_uses_component_factoring() {
        let mut src = Structure::new(sch());
        src.add("E", &[0, 1]);
        src.add("E", &[5, 6]);
        let expr =
            StructureExpr::sum2(StructureExpr::base(cycle(3)), StructureExpr::base(cycle(4)));
        let symbolic = expr.hom_count_from(&src);
        let concrete = expr.materialize(&sch(), 100).unwrap();
        assert_eq!(symbolic, hom_count(&src, &concrete));
        // (3+4)^2 = 49 single-edge homs.
        assert_eq!(symbolic, Nat::from_u64(49));
    }

    #[test]
    fn empty_product_and_zero_power_are_all_loops() {
        let unit = StructureExpr::Product(vec![]);
        assert_eq!(unit.hom_count_from_connected(&cycle(5)), Nat::one());
        let p0 = StructureExpr::base(cycle(3)).pow(0);
        assert_eq!(p0.hom_count_from_connected(&cycle(5)), Nat::one());
        assert_eq!(p0.domain_size(&sch()), Nat::one());
    }

    #[test]
    fn domain_size_and_materialisation_guard() {
        let expr =
            StructureExpr::weighted_sum(vec![(Nat::from_u64(1000), StructureExpr::base(cycle(3)))]);
        assert_eq!(expr.domain_size(&sch()), Nat::from_u64(3000));
        assert!(expr.materialize(&sch(), 100).is_none());
        assert!(expr.materialize(&sch(), 3000).is_some());
    }

    #[test]
    fn huge_symbolic_counts_do_not_materialise() {
        // (Σ 10^i · C_3 for i = 1..5)^3 — domain size ≈ (3·111110)^3 ≈ 3.7e16.
        let terms: Vec<(Nat, StructureExpr)> = (1..=5u64)
            .map(|i| (Nat::from_u64(10).pow(i), StructureExpr::base(cycle(3))))
            .collect();
        let expr = StructureExpr::weighted_sum(terms).pow(3);
        let count = expr.hom_count_from_connected(&path(1));
        // hom(edge, Σ 10^i C3) = Σ 10^i · 3 = 333330; cubed.
        assert_eq!(count, Nat::from_u64(333330).pow(3));
        assert!(expr.materialize(&sch(), 1_000_000).is_none());
    }

    #[test]
    #[should_panic(expected = "connected")]
    fn connected_counting_rejects_disconnected_sources() {
        let mut src = Structure::new(sch());
        src.add("E", &[0, 1]);
        src.add("E", &[5, 6]);
        let expr = StructureExpr::base(cycle(3));
        let _ = expr.hom_count_from_connected(&src);
    }

    #[test]
    fn zero_coefficient_terms_contribute_nothing() {
        let expr = StructureExpr::weighted_sum(vec![
            (Nat::zero(), StructureExpr::base(cycle(3))),
            (Nat::one(), StructureExpr::base(cycle(4))),
        ]);
        assert_eq!(expr.hom_count_from_connected(&path(1)), Nat::from_u64(4));
        assert_eq!(expr.domain_size(&sch()), Nat::from_u64(4));
    }
}
