//! Connected components of a structure.
//!
//! Two domain elements are connected when they co-occur in a fact; a connected
//! component is a maximal set of pairwise connected elements together with the
//! facts over them.  Nullary facts have no elements, so each nullary fact
//! forms a component of its own (with an empty domain); isolated domain
//! elements are singleton components.
//!
//! The basis `W` of the Main Lemma (Definition 27) is the set of connected
//! components of `Σ_{v ∈ V′} v`, de-duplicated up to isomorphism.

use crate::structure::{Const, Structure};
use std::collections::BTreeMap;

/// Disjoint-set union–find over constants.
struct UnionFind {
    parent: BTreeMap<Const, Const>,
}

impl UnionFind {
    fn new() -> Self {
        UnionFind {
            parent: BTreeMap::new(),
        }
    }

    fn add(&mut self, x: Const) {
        self.parent.entry(x).or_insert(x);
    }

    fn find(&mut self, x: Const) -> Const {
        let p = self.parent[&x];
        if p == x {
            return x;
        }
        let root = self.find(p);
        self.parent.insert(x, root);
        root
    }

    fn union(&mut self, a: Const, b: Const) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            self.parent.insert(ra, rb);
        }
    }
}

/// The connected components of a structure, each returned as a structure over
/// the same schema.
///
/// The empty structure has no components.  Components are returned in a
/// deterministic order (by their smallest domain element; nullary-fact
/// components first, ordered by relation name).
pub fn connected_components(s: &Structure) -> Vec<Structure> {
    let mut uf = UnionFind::new();
    for c in s.domain() {
        uf.add(c);
    }
    for f in s.facts() {
        if let Some((&first, rest)) = f.args.split_first() {
            for &other in rest {
                uf.union(first, other);
            }
        }
    }
    // Group domain elements by root.
    let mut groups: BTreeMap<Const, Vec<Const>> = BTreeMap::new();
    for c in s.domain() {
        let root = uf.find(c);
        groups.entry(root).or_default().push(c);
    }

    let mut out = Vec::new();

    // Each nullary fact is its own component.
    for f in s.facts().filter(|f| f.args.is_empty()) {
        let mut comp = Structure::new(s.schema().clone());
        comp.add_fact(f);
        out.push(comp);
    }

    for (_, members) in groups {
        let mut comp = Structure::new(s.schema().clone());
        let member_set: std::collections::BTreeSet<Const> = members.iter().copied().collect();
        for f in s.facts() {
            if let Some(&first) = f.args.first() {
                if member_set.contains(&first) {
                    comp.add_fact(f);
                }
            }
        }
        for &m in &members {
            comp.add_isolated(m);
        }
        out.push(comp);
    }
    out
}

/// Whether the structure is connected, i.e. it has exactly one connected
/// component.  (The empty structure is *not* connected.)
pub fn is_connected(s: &Structure) -> bool {
    connected_components(s).len() == 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn sch() -> Schema {
        Schema::with_relations([("E", 2), ("P", 1)])
    }

    #[test]
    fn empty_structure_has_no_components() {
        let s = Structure::new(sch());
        assert!(connected_components(&s).is_empty());
        assert!(!is_connected(&s));
    }

    #[test]
    fn single_edge_is_connected() {
        let mut s = Structure::new(sch());
        s.add("E", &[0, 1]);
        let comps = connected_components(&s);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0], s);
        assert!(is_connected(&s));
    }

    #[test]
    fn two_disjoint_edges() {
        let mut s = Structure::new(sch());
        s.add("E", &[0, 1]);
        s.add("E", &[5, 6]);
        let comps = connected_components(&s);
        assert_eq!(comps.len(), 2);
        assert!(!is_connected(&s));
        assert_eq!(comps[0].num_facts(), 1);
        assert_eq!(comps[1].num_facts(), 1);
        // Components partition the facts and the domain.
        let total: usize = comps.iter().map(|c| c.num_facts()).sum();
        assert_eq!(total, s.num_facts());
        let dom: usize = comps.iter().map(|c| c.domain_size()).sum();
        assert_eq!(dom, s.domain_size());
    }

    #[test]
    fn chain_is_one_component() {
        let mut s = Structure::new(sch());
        s.add("E", &[0, 1]);
        s.add("E", &[1, 2]);
        s.add("E", &[2, 3]);
        s.add("P", &[3]);
        assert!(is_connected(&s));
    }

    #[test]
    fn unary_bridge_does_not_connect() {
        // P(3) and P(7) do not connect 3 and 7.
        let mut s = Structure::new(sch());
        s.add("P", &[3]);
        s.add("P", &[7]);
        assert_eq!(connected_components(&s).len(), 2);
    }

    #[test]
    fn isolated_elements_are_singleton_components() {
        let mut s = Structure::new(sch());
        s.add("E", &[0, 1]);
        s.add_isolated(9);
        let comps = connected_components(&s);
        assert_eq!(comps.len(), 2);
        assert!(comps
            .iter()
            .any(|c| c.num_facts() == 0 && c.domain_size() == 1));
    }

    #[test]
    fn nullary_facts_are_their_own_components() {
        let sch = Schema::with_relations([("H", 0), ("C", 0), ("E", 2)]);
        let mut s = Structure::new(sch);
        s.add("H", &[]);
        s.add("C", &[]);
        s.add("E", &[1, 2]);
        let comps = connected_components(&s);
        assert_eq!(comps.len(), 3);
        assert_eq!(comps.iter().filter(|c| c.domain_size() == 0).count(), 2);
    }

    #[test]
    fn higher_arity_fact_connects_all_its_arguments() {
        let sch = Schema::with_relations([("T", 3)]);
        let mut s = Structure::new(sch);
        s.add("T", &[1, 2, 3]);
        s.add("T", &[3, 4, 5]);
        s.add("T", &[7, 8, 9]);
        let comps = connected_components(&s);
        assert_eq!(comps.len(), 2);
        assert!(comps.iter().any(|c| c.domain_size() == 5));
        assert!(comps.iter().any(|c| c.domain_size() == 3));
    }
}
