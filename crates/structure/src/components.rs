//! Connected components of a structure.
//!
//! Two domain elements are connected when they co-occur in a fact; a connected
//! component is a maximal set of pairwise connected elements together with the
//! facts over them.  Nullary facts have no elements, so each nullary fact
//! forms a component of its own (with an empty domain); isolated domain
//! elements are singleton components.
//!
//! The basis `W` of the Main Lemma (Definition 27) is the set of connected
//! components of `Σ_{v ∈ V′} v`, de-duplicated up to isomorphism.
//!
//! The decomposition runs on the compiled flat index ([`crate::flat`]): a
//! vec-based iterative union–find over dense element ids (path halving +
//! union by size), followed by a single pass distributing each CSR fact row
//! to its component.  The original `BTreeMap` union–find — which re-scanned
//! every fact once per component — is retained in [`reference`] as the
//! differential-testing oracle.

use crate::structure::Structure;

/// Vec-based disjoint-set union–find over dense ids `0..n`, with iterative
/// path-halving `find` (no recursion, so arbitrarily long parent chains
/// cannot overflow the stack) and union by size.
pub(crate) struct DenseUnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
    /// Number of distinct sets remaining.
    sets: usize,
}

impl DenseUnionFind {
    fn new(n: usize) -> Self {
        DenseUnionFind {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
            sets: n,
        }
    }

    pub(crate) fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            // Path halving: point every other node at its grandparent.
            let grand = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grand;
            x = grand;
        }
        x
    }

    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        let (big, small) = if self.size[ra as usize] >= self.size[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small as usize] = big;
        self.size[big as usize] += self.size[small as usize];
        self.sets -= 1;
    }
}

/// Run the union–find over all positive-arity fact rows of a flat structure.
pub(crate) fn unite_fact_rows(f: &crate::flat::FlatStructure) -> DenseUnionFind {
    let mut uf = DenseUnionFind::new(f.dom.len());
    for (rel, &arity) in f.arities.iter().enumerate() {
        if arity == 0 {
            continue;
        }
        for row in f.rows[rel].chunks_exact(arity) {
            for &other in &row[1..] {
                uf.union(row[0], other);
            }
        }
    }
    uf
}

/// The connected components of a structure, each returned as a structure over
/// the same schema.
///
/// The empty structure has no components.  Components are returned in a
/// deterministic order: nullary-fact components first (ordered by relation
/// name), then element components ordered by their smallest domain element.
pub fn connected_components(s: &Structure) -> Vec<Structure> {
    let f = s.flat().clone();
    let n = f.dom.len();
    let mut uf = unite_fact_rows(&f);

    let mut out: Vec<Structure> = Vec::new();

    // Each nullary fact is its own component (relation ids are name-sorted,
    // preserving the documented order).
    for (rel, &arity) in f.arities.iter().enumerate() {
        if arity == 0 && f.nullary_present[rel] {
            let mut comp = Structure::new(s.schema().clone());
            comp.add_by_id(rel as u32, Vec::new());
            out.push(comp);
        }
    }

    // Assign component slots in increasing smallest-element order (dense ids
    // are sorted by constant, so scanning 0..n visits minima first).
    let nullary_comps = out.len();
    let mut comp_of_root = vec![u32::MAX; n];
    for e in 0..n as u32 {
        let root = uf.find(e) as usize;
        if comp_of_root[root] == u32::MAX {
            comp_of_root[root] = (out.len() - nullary_comps) as u32;
            out.push(Structure::new(s.schema().clone()));
        }
    }
    let comp_of = |uf: &mut DenseUnionFind, e: u32| -> usize {
        let root = uf.find(e) as usize;
        nullary_comps + comp_of_root[root] as usize
    };

    // Single pass distributing each fact row to its component.
    for (rel, &arity) in f.arities.iter().enumerate() {
        if arity == 0 {
            continue;
        }
        for row in f.rows[rel].chunks_exact(arity) {
            let c = comp_of(&mut uf, row[0]);
            out[c].add_by_id(rel as u32, row.iter().map(|&e| f.dom[e as usize]).collect());
        }
    }
    // Every member joins its component's domain (a no-op for elements already
    // active there; this is what turns lone elements into singleton
    // components).
    for e in 0..n as u32 {
        let c = comp_of(&mut uf, e);
        out[c].add_isolated(f.dom[e as usize]);
    }
    out
}

/// Whether the structure is connected, i.e. it has exactly one connected
/// component.  (The empty structure is *not* connected.)
///
/// Pure union–find bookkeeping — no component `Structure` is materialised —
/// with early exits: a nullary fact next to any domain element (or a second
/// nullary fact) proves disconnection immediately, and the fact scan stops
/// as soon as everything has merged into one set.
pub fn is_connected(s: &Structure) -> bool {
    let f = s.flat();
    let n = f.dom.len();
    let nullary = f
        .arities
        .iter()
        .zip(f.nullary_present.iter())
        .filter(|&(&a, &p)| a == 0 && p)
        .count();
    if n == 0 {
        return nullary == 1;
    }
    if nullary > 0 {
        // A nullary component plus at least one element component.
        return false;
    }
    let mut uf = DenseUnionFind::new(n);
    for (rel, &arity) in f.arities.iter().enumerate() {
        if arity == 0 {
            continue;
        }
        for row in f.rows[rel].chunks_exact(arity) {
            for &other in &row[1..] {
                uf.union(row[0], other);
            }
            if uf.sets == 1 {
                return true;
            }
        }
    }
    uf.sets == 1
}

/// The original `BTreeMap`-based decomposition, retained verbatim (modulo the
/// stack-safety fix in `find`) as the differential-testing oracle for the
/// flat-index rebuild — the same role [`crate::hom::reference`] plays for the
/// homomorphism engine.
pub mod reference {
    use crate::structure::{Const, Structure};
    use std::collections::BTreeMap;

    /// Disjoint-set union–find over constants.
    struct UnionFind {
        parent: BTreeMap<Const, Const>,
    }

    impl UnionFind {
        fn new() -> Self {
            UnionFind {
                parent: BTreeMap::new(),
            }
        }

        fn add(&mut self, x: Const) {
            self.parent.entry(x).or_insert(x);
        }

        /// Iterative find with full path compression.  (The original
        /// recursive version could overflow the stack on the long parent
        /// chains a pathological union order produces.)
        fn find(&mut self, x: Const) -> Const {
            let mut root = x;
            while self.parent[&root] != root {
                root = self.parent[&root];
            }
            let mut cur = x;
            while cur != root {
                let next = self.parent[&cur];
                self.parent.insert(cur, root);
                cur = next;
            }
            root
        }

        fn union(&mut self, a: Const, b: Const) {
            let ra = self.find(a);
            let rb = self.find(b);
            if ra != rb {
                self.parent.insert(ra, rb);
            }
        }
    }

    /// The connected components of a structure (oracle implementation; the
    /// production path is [`super::connected_components`]).
    pub fn connected_components(s: &Structure) -> Vec<Structure> {
        let mut uf = UnionFind::new();
        for c in s.domain() {
            uf.add(c);
        }
        for f in s.facts() {
            if let Some((&first, rest)) = f.args.split_first() {
                for &other in rest {
                    uf.union(first, other);
                }
            }
        }
        // Group domain elements by root.
        let mut groups: BTreeMap<Const, Vec<Const>> = BTreeMap::new();
        for c in s.domain() {
            let root = uf.find(c);
            groups.entry(root).or_default().push(c);
        }

        let mut out = Vec::new();

        // Each nullary fact is its own component.
        for f in s.facts().filter(|f| f.args.is_empty()) {
            let mut comp = Structure::new(s.schema().clone());
            comp.add_fact(f);
            out.push(comp);
        }

        for (_, members) in groups {
            let mut comp = Structure::new(s.schema().clone());
            let member_set: std::collections::BTreeSet<Const> = members.iter().copied().collect();
            for f in s.facts() {
                if let Some(&first) = f.args.first() {
                    if member_set.contains(&first) {
                        comp.add_fact(f);
                    }
                }
            }
            for &m in &members {
                comp.add_isolated(m);
            }
            out.push(comp);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn sch() -> Schema {
        Schema::with_relations([("E", 2), ("P", 1)])
    }

    #[test]
    fn empty_structure_has_no_components() {
        let s = Structure::new(sch());
        assert!(connected_components(&s).is_empty());
        assert!(!is_connected(&s));
    }

    #[test]
    fn single_edge_is_connected() {
        let mut s = Structure::new(sch());
        s.add("E", &[0, 1]);
        let comps = connected_components(&s);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0], s);
        assert!(is_connected(&s));
    }

    #[test]
    fn two_disjoint_edges() {
        let mut s = Structure::new(sch());
        s.add("E", &[0, 1]);
        s.add("E", &[5, 6]);
        let comps = connected_components(&s);
        assert_eq!(comps.len(), 2);
        assert!(!is_connected(&s));
        assert_eq!(comps[0].num_facts(), 1);
        assert_eq!(comps[1].num_facts(), 1);
        // Components partition the facts and the domain.
        let total: usize = comps.iter().map(|c| c.num_facts()).sum();
        assert_eq!(total, s.num_facts());
        let dom: usize = comps.iter().map(|c| c.domain_size()).sum();
        assert_eq!(dom, s.domain_size());
    }

    #[test]
    fn chain_is_one_component() {
        let mut s = Structure::new(sch());
        s.add("E", &[0, 1]);
        s.add("E", &[1, 2]);
        s.add("E", &[2, 3]);
        s.add("P", &[3]);
        assert!(is_connected(&s));
    }

    #[test]
    fn unary_bridge_does_not_connect() {
        // P(3) and P(7) do not connect 3 and 7.
        let mut s = Structure::new(sch());
        s.add("P", &[3]);
        s.add("P", &[7]);
        assert_eq!(connected_components(&s).len(), 2);
    }

    #[test]
    fn isolated_elements_are_singleton_components() {
        let mut s = Structure::new(sch());
        s.add("E", &[0, 1]);
        s.add_isolated(9);
        let comps = connected_components(&s);
        assert_eq!(comps.len(), 2);
        assert!(comps
            .iter()
            .any(|c| c.num_facts() == 0 && c.domain_size() == 1));
    }

    #[test]
    fn nullary_facts_are_their_own_components() {
        let sch = Schema::with_relations([("H", 0), ("C", 0), ("E", 2)]);
        let mut s = Structure::new(sch);
        s.add("H", &[]);
        s.add("C", &[]);
        s.add("E", &[1, 2]);
        let comps = connected_components(&s);
        assert_eq!(comps.len(), 3);
        assert_eq!(comps.iter().filter(|c| c.domain_size() == 0).count(), 2);
        assert!(!is_connected(&s));
        // A single nullary fact alone *is* connected.
        let mut lone = Structure::new(Schema::with_relations([("H", 0)]));
        lone.add("H", &[]);
        assert!(is_connected(&lone));
    }

    #[test]
    fn higher_arity_fact_connects_all_its_arguments() {
        let sch = Schema::with_relations([("T", 3)]);
        let mut s = Structure::new(sch);
        s.add("T", &[1, 2, 3]);
        s.add("T", &[3, 4, 5]);
        s.add("T", &[7, 8, 9]);
        let comps = connected_components(&s);
        assert_eq!(comps.len(), 2);
        assert!(comps.iter().any(|c| c.domain_size() == 5));
        assert!(comps.iter().any(|c| c.domain_size() == 3));
    }

    #[test]
    fn components_ordered_by_smallest_element() {
        let mut s = Structure::new(sch());
        s.add("E", &[8, 9]);
        s.add("E", &[0, 5]);
        s.add_isolated(3);
        let comps = connected_components(&s);
        assert_eq!(comps.len(), 3);
        assert!(comps[0].contains_fact("E", &[0, 5]));
        assert_eq!(comps[1].domain_size(), 1); // {3}
        assert!(comps[2].contains_fact("E", &[8, 9]));
    }

    #[test]
    fn flat_and_reference_agree_on_long_chains() {
        // A long union chain (every fact extends the same component); the
        // reference oracle's compression must not recurse its way into a
        // stack overflow, and both implementations must agree.
        let mut s = Structure::new(sch());
        for i in 0..20_000u64 {
            s.add("E", &[i, i + 1]);
        }
        assert!(is_connected(&s));
        let flat = connected_components(&s);
        let oracle = reference::connected_components(&s);
        assert_eq!(flat.len(), 1);
        assert_eq!(flat.len(), oracle.len());
        assert_eq!(flat[0], oracle[0]);
    }
}
