//! The structure algebra of Section 2.2: disjoint union `A + B`, product
//! `A × B`, scalar multiple `t·A`, power `Aᵗ` and the all-loops point `A⁰`.

use crate::structure::{Const, Fact, Structure};
use std::collections::BTreeMap;

/// Disjoint union `A + B`: constants of `B` are renamed with fresh constants
/// whenever they clash with constants of `A` (footnote 13 of the paper).
pub fn disjoint_union(a: &Structure, b: &Structure) -> Structure {
    let schema = a.schema().union(b.schema());
    let mut out = Structure::new(schema.clone());
    for f in a.facts() {
        out.add_fact(f);
    }
    for &c in &a.domain() {
        out.add_isolated(c);
    }
    // Shift every constant of b above the constants of a.
    let offset = a.domain().iter().next_back().map(|&m| m + 1).unwrap_or(0);
    let shifted = b.map_constants(|c| c + offset);
    for f in shifted.facts() {
        out.add_fact(f);
    }
    for &c in &shifted.domain() {
        out.add_isolated(c);
    }
    out
}

/// Scalar multiple `t·A = A + A + … + A` (`t` copies); `0·A` is the empty
/// structure.
pub fn scalar_multiple(t: u64, a: &Structure) -> Structure {
    let mut out = Structure::new(a.schema().clone());
    for _ in 0..t {
        out = disjoint_union(&out, a);
    }
    out
}

/// Product `A × B`: the domain is `dom(A) × dom(B)` and
/// `R(⟨a₁,b₁⟩, …, ⟨a_k,b_k⟩)` holds iff `R(a⃗) ∈ A` and `R(b⃗) ∈ B`.
///
/// Domain pairs are encoded as fresh consecutive constants; the encoding is
/// deterministic (row-major over the sorted domains).
pub fn product(a: &Structure, b: &Structure) -> Structure {
    let schema = a.schema().union(b.schema());
    let mut out = Structure::new(schema.clone());
    let a_dom: Vec<Const> = a.domain().into_iter().collect();
    let b_dom: Vec<Const> = b.domain().into_iter().collect();
    let index: BTreeMap<(Const, Const), Const> = a_dom
        .iter()
        .flat_map(|&x| b_dom.iter().map(move |&y| (x, y)))
        .enumerate()
        .map(|(i, p)| (p, i as Const))
        .collect();
    for (&(_, _), &c) in &index {
        out.add_isolated(c);
    }
    for (rel, arity) in schema.relations() {
        if arity == 0 {
            if a.contains_fact(rel, &[]) && b.contains_fact(rel, &[]) {
                out.add_fact(Fact::new(rel, vec![]));
            }
            continue;
        }
        for ta in a.relation_tuples(rel) {
            for tb in b.relation_tuples(rel) {
                let args: Vec<Const> = ta
                    .iter()
                    .zip(tb.iter())
                    .map(|(&x, &y)| index[&(x, y)])
                    .collect();
                out.add_fact(Fact::new(rel, args));
            }
        }
    }
    out
}

/// The all-loops point `A⁰`: a single element `α` with `R(α, …, α)` for every
/// relation `R` of the schema.  `|hom(A, A⁰)| = 1` for every structure `A`
/// over the schema, which is why empty products behave like a multiplicative
/// unit.
pub fn all_loops_point(schema: &crate::schema::Schema) -> Structure {
    let mut out = Structure::new(schema.clone());
    out.add_isolated(0);
    for (rel, arity) in schema.relations() {
        out.add_fact(Fact::new(rel, vec![0; arity]));
    }
    out
}

/// Power `Aᵗ = A × A × … × A` (`t` factors); `A⁰` is the all-loops point.
pub fn power(a: &Structure, t: u64) -> Structure {
    if t == 0 {
        return all_loops_point(a.schema());
    }
    let mut out = a.clone();
    for _ in 1..t {
        out = product(&out, a);
    }
    out
}

/// Generalised sum `Σᵢ aᵢ` of a sequence of structures.
pub fn sum_of<'a, I: IntoIterator<Item = &'a Structure>>(
    schema: &crate::schema::Schema,
    items: I,
) -> Structure {
    let mut out = Structure::new(schema.clone());
    for s in items {
        out = disjoint_union(&out, s);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hom::hom_count;
    use crate::iso::isomorphic;
    use crate::schema::Schema;
    use cqdet_bigint::Nat;

    fn sch() -> Schema {
        Schema::binary(["E"])
    }

    fn path(n: usize) -> Structure {
        let mut s = Structure::new(sch());
        for i in 0..n {
            s.add("E", &[i as Const, (i + 1) as Const]);
        }
        s
    }

    fn cycle(n: usize) -> Structure {
        let mut s = Structure::new(sch());
        for i in 0..n {
            s.add("E", &[i as Const, ((i + 1) % n) as Const]);
        }
        s
    }

    #[test]
    fn disjoint_union_sizes() {
        let u = disjoint_union(&path(2), &path(3));
        assert_eq!(u.domain_size(), 3 + 4);
        assert_eq!(u.num_facts(), 2 + 3);
        // Union with the empty structure is (isomorphic to) the original.
        let e = Structure::new(sch());
        assert!(isomorphic(&disjoint_union(&e, &path(2)), &path(2)));
        assert!(isomorphic(&disjoint_union(&path(2), &e), &path(2)));
    }

    #[test]
    fn disjoint_union_renames_clashing_constants() {
        let a = path(2); // constants 0,1,2
        let u = disjoint_union(&a, &a);
        assert_eq!(u.domain_size(), 6);
        assert_eq!(u.num_facts(), 4);
    }

    #[test]
    fn scalar_multiple_sizes() {
        assert!(scalar_multiple(0, &path(2)).is_empty());
        assert!(isomorphic(&scalar_multiple(1, &path(2)), &path(2)));
        let t3 = scalar_multiple(3, &cycle(3));
        assert_eq!(t3.domain_size(), 9);
        assert_eq!(t3.num_facts(), 9);
    }

    #[test]
    fn product_sizes_and_unit() {
        let p = product(&cycle(2), &cycle(3));
        assert_eq!(p.domain_size(), 6);
        // Each pair of edges gives one product edge: 2*3 = 6.
        assert_eq!(p.num_facts(), 6);

        let unit = all_loops_point(&sch());
        assert_eq!(unit.domain_size(), 1);
        assert_eq!(unit.num_facts(), 1);
        // A × A⁰ ≅ A for structures whose domain is the active domain.
        assert!(isomorphic(&product(&cycle(3), &unit), &cycle(3)));
    }

    #[test]
    fn power_conventions() {
        assert!(isomorphic(&power(&cycle(3), 0), &all_loops_point(&sch())));
        assert!(isomorphic(&power(&cycle(3), 1), &cycle(3)));
        let sq = power(&cycle(2), 2);
        assert_eq!(sq.domain_size(), 4);
        assert_eq!(sq.num_facts(), 4);
    }

    #[test]
    fn lemma_4_sum_rule() {
        // (1) A connected ⇒ hom(A, B + C) = hom(A,B) + hom(A,C).
        let a = path(2);
        let b = cycle(3);
        let c = cycle(4);
        assert_eq!(
            hom_count(&a, &disjoint_union(&b, &c)),
            hom_count(&a, &b) + hom_count(&a, &c)
        );
        // (2) hom(A, tB) = t · hom(A, B).
        assert_eq!(
            hom_count(&a, &scalar_multiple(3, &b)),
            hom_count(&a, &b).mul_ref(&Nat::from_u64(3))
        );
    }

    #[test]
    fn lemma_4_product_rule() {
        // (3) hom(A, B × C) = hom(A,B) · hom(A,C)  (no connectivity needed).
        let mut a = Structure::new(sch());
        a.add("E", &[0, 1]);
        a.add("E", &[5, 6]); // disconnected source
        let b = cycle(3);
        let c = path(3);
        assert_eq!(
            hom_count(&a, &product(&b, &c)),
            hom_count(&a, &b) * hom_count(&a, &c)
        );
        // (4) hom(A, B^t) = hom(A,B)^t.
        assert_eq!(hom_count(&a, &power(&b, 2)), hom_count(&a, &b).pow(2));
        assert_eq!(hom_count(&a, &power(&b, 0)), Nat::one());
    }

    #[test]
    fn lemma_4_left_sum_rule() {
        // (5) hom(A + B, C) = hom(A,C) · hom(B,C).
        let a = path(1);
        let b = cycle(3);
        let c = cycle(6);
        assert_eq!(
            hom_count(&disjoint_union(&a, &b), &c),
            hom_count(&a, &c) * hom_count(&b, &c)
        );
    }

    #[test]
    fn product_with_nullary_relations() {
        let sch = Schema::with_relations([("H", 0), ("P", 1)]);
        let mut a = Structure::new(sch.clone());
        a.add("H", &[]);
        a.add("P", &[0]);
        let mut b = Structure::new(sch.clone());
        b.add("P", &[0]);
        b.add("P", &[1]);
        let p = product(&a, &b);
        // H() requires the fact in both factors.
        assert!(!p.contains_fact("H", &[]));
        assert_eq!(p.relation_size("P"), 2);
        let mut b2 = b.clone();
        b2.add("H", &[]);
        assert!(product(&a, &b2).contains_fact("H", &[]));
    }

    #[test]
    fn sum_of_many() {
        let items = [path(1), path(1), cycle(3)];
        let s = sum_of(&sch(), items.iter());
        assert_eq!(s.domain_size(), 2 + 2 + 3);
        assert_eq!(s.num_facts(), 1 + 1 + 3);
    }
}
