//! True canonical labeling of structures: iterated color refinement with
//! individualization–refinement backtracking.
//!
//! # Why the order-preserving `canon()` encoding is not enough
//!
//! The flat index's `canon()` encoding renumbers the domain *in constant
//! order* — it is an encoding of the structure up to an **order-preserving**
//! renaming.  Two isomorphic structures whose constants happen to sort
//! differently (e.g. `E(0,1)` vs `E(1,0)` — the same single edge, written
//! with its endpoints swapped) produce different encodings, so an
//! `canon()`-keyed map cannot de-duplicate up to isomorphism, and every
//! consumer (basis construction of Definition 27, multiplicity vectors of
//! Definition 29, the hom-count memo) previously had to fall back to
//! quadratic pairwise `injective_hom_exists` backtracking.
//!
//! # The algorithm
//!
//! This module computes a genuinely **isomorphism-invariant** canonical form
//! (`CanonKey`), the classic individualization–refinement scheme of
//! practical graph-canonization tools (nauty/bliss), specialised to small
//! relational structures over the CSR flat index:
//!
//! 1. **Color refinement.**  Every domain element starts with color `0`.  In
//!    each round, every fact contributes a hash of `(relation, colors of its
//!    argument tuple)` to each of its arguments (tagged with the argument
//!    position); an element's new color is determined by its old color plus
//!    the *multiset* of contributions it received (a commutative sum of
//!    64-bit hashes).  Rounds repeat until the color partition stops
//!    splitting.  Corresponding elements of isomorphic structures receive
//!    identical colors because the computation only reads colors and facts —
//!    never the underlying constant names.
//! 2. **Individualization.**  If the stable partition is not discrete, the
//!    *first smallest* non-singleton color class (an isomorphism-invariant
//!    choice) is split by trying each of its members as a forced singleton
//!    (assigning it a fresh color) and re-refining, recursively.  Every leaf
//!    of this search yields a discrete coloring, i.e. a candidate bijection
//!    `domain → 0..n`; the canonical form is the lexicographically smallest
//!    relabeled-and-re-sorted encoding over all leaves, which makes it
//!    independent of which member of an automorphism orbit was tried first.
//!
//! 3. **Component factoring.**  Refinement and individualization run *per
//!    connected component*: a structure's canonical form is a schema header
//!    (relation names, arities, nullary-fact flags, domain size) followed by
//!    the **sorted multiset** of its components' canonical encodings.  Two
//!    structures are isomorphic iff those multisets coincide (disjoint-union
//!    isomorphism is exactly a bijection between isomorphic components), and
//!    the factoring keeps the symmetry *between* isomorphic components — the
//!    dominant symmetry of real query bodies, e.g. a cross-product query
//!    with `k` copies of the same atom — out of the backtracking search
//!    entirely: without it the search would explore `k!` equivalent leaves.
//!    Isolated elements are singleton components, so they contribute one
//!    tiny payload each instead of a branching cell.
//!
//! Hash collisions inside refinement can only *merge* color classes (make
//! refinement coarser), never split corresponding classes apart — and the
//! individualization search restores exactness regardless of how coarse the
//! refinement is, because the final comparison is between full relabeled
//! encodings of the structure, not between hashes.
//!
//! # Worked example: color refinement on a 3-path vs a 3-cycle
//!
//! Take the directed 3-path `E(a,b), E(b,c)`:
//!
//! * **Round 0** — every element starts with color `0`: the partition is
//!   `{a, b, c}`.
//! * **Round 1** — each fact `E(x,y)` hashes `(E, colors of (x,y))` and
//!   deposits the hash, tagged with the argument position, on `x` and `y`.
//!   `a` receives one *source*-tagged contribution (from `E(a,b)`), `c` one
//!   *target*-tagged contribution (from `E(b,c)`), and `b` one of each —
//!   three distinct contribution multisets, so the partition splits into
//!   `{a} {b} {c}` and is discrete.  No backtracking happens; the canonical
//!   bijection reads straight off the colors.
//!
//! A directed 3-cycle `E(a,b), E(b,c), E(c,a)` is vertex-transitive: every
//! element receives exactly one source- and one target-contribution in
//! every round, so refinement never splits `{a, b, c}` and the
//! individualization search must force one element into a fresh singleton
//! color (after which refinement discretizes).  All three choices lie in
//! one automorphism orbit; the transposition prune explores a single
//! branch.
//!
//! The observable contract — equal keys **iff** isomorphic — surfaces
//! through the public API ([`crate::isomorphic`],
//! [`Structure::iso_class_key`](crate::Structure::iso_class_key)):
//!
//! ```
//! use cqdet_structure::{isomorphic, Schema, Structure};
//!
//! let schema = Schema::binary(["E"]);
//! let path = |v: [u64; 3]| {
//!     let mut s = Structure::new(schema.clone());
//!     s.add("E", &[v[0], v[1]]);
//!     s.add("E", &[v[1], v[2]]);
//!     s
//! };
//! let cycle = |v: [u64; 3]| {
//!     let mut s = path(v);
//!     s.add("E", &[v[2], v[0]]);
//!     s
//! };
//!
//! // Refinement alone separates path endpoints: any renaming — including
//! // one that reverses the constant order, where the cheap
//! // order-preserving encoding disagrees — shares the canonical key.
//! assert!(isomorphic(&path([0, 1, 2]), &path([9, 5, 1])));
//! assert_eq!(
//!     path([0, 1, 2]).iso_class_key(),
//!     path([9, 5, 1]).iso_class_key(),
//! );
//!
//! // The 3-cycle needs the individualization step; rotations and renamings
//! // still collapse to one key, and the path stays distinct.
//! assert!(isomorphic(&cycle([0, 1, 2]), &cycle([40, 2, 11])));
//! assert!(!isomorphic(&path([0, 1, 2]), &cycle([0, 1, 2])));
//! ```
//!
//! # Worst-case honesty
//!
//! Within one connected component, two prunes bound the search on the
//! symmetry families that actually occur: component factoring (above) and
//! a *transposition-automorphism* check — a cell member interchangeable
//! with an already-tried member (swapping the two fixes the fact set) is
//! skipped, which collapses cliques, parallel duplicate atoms and other
//! mutually-interchangeable element sets to one branch per level.  A
//! connected component whose automorphism group is large but contains few
//! transpositions (e.g. a long vertex-transitive circulant) still costs a
//! branch per cell member at the top level; full orbit/stabilizer pruning
//! à la nauty is future work.  The structures canonized in this codebase —
//! frozen query bodies and their components, a handful of atoms each —
//! discretize after one or two refinement rounds in practice, and the
//! hom-count memo deliberately never canonizes target (data) structures
//! ([`crate::hom::hom_count_cached`]).
//!
//! The resulting `CanonKey` (canonical bytes plus a 64-bit hash of them) is
//! cached on every compiled structure, so each structure is canonized at
//! most once; [`crate::iso`] compares and buckets keys instead of searching, and
//! [`crate::hom::hom_count_cached`] uses the bytes as memo key so isomorphic
//! sources share cache entries no matter how their constants were named.

use crate::components::unite_fact_rows;
use crate::flat::{encode_canonical, FlatStructure};

/// An isomorphism-invariant canonical key: two structures have equal keys
/// **iff** they are isomorphic (over schemas with identical relation names
/// and arities — the encoding includes both).
#[derive(Debug, Clone)]
pub(crate) struct CanonKey {
    /// 64-bit hash of `bytes` (compared first; used as the bucket hash).
    pub hash: u64,
    /// The canonical encoding: the structure relabeled by its canonical
    /// bijection `domain → 0..n`, rows re-sorted, serialized with relation
    /// names, arities, nullary flags and domain size.
    pub bytes: Box<[u8]>,
}

impl PartialEq for CanonKey {
    fn eq(&self, other: &Self) -> bool {
        self.hash == other.hash && self.bytes == other.bytes
    }
}

impl Eq for CanonKey {}

impl std::hash::Hash for CanonKey {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}

/// splitmix64 finalizer: the mixing primitive of the refinement hashes.
#[inline]
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// FNV-1a over the canonical bytes (the stored bucket hash).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// One connected component of a structure, in local dense element ids
/// `0..n`: per-relation row-major fact rows.  Nullary facts carry no
/// elements and are encoded once in the whole-structure header, so blocks
/// hold positive-arity rows only.
struct Block {
    n: usize,
    rows: Vec<Vec<u32>>,
}

/// One round of color refinement; returns the new number of color classes.
/// `colors` is replaced by the refined coloring (dense ids `0..k`, assigned
/// in increasing `(old color, contribution multiset)` order, which is
/// isomorphism-invariant).
fn refine_round(b: &Block, arities: &[usize], colors: &mut [u32]) -> usize {
    let n = colors.len();
    // Multiset accumulator: commutative sum of per-(fact, position) hashes.
    let mut acc = vec![0u64; n];
    for (rel, &arity) in arities.iter().enumerate() {
        if arity == 0 {
            continue;
        }
        for row in b.rows[rel].chunks_exact(arity) {
            let mut h = mix(rel as u64 ^ 0x9E37_79B9_7F4A_7C15);
            for &e in row {
                h = mix(h ^ (colors[e as usize] as u64 + 1));
            }
            for (pos, &e) in row.iter().enumerate() {
                acc[e as usize] =
                    acc[e as usize].wrapping_add(mix(h ^ (pos as u64 + 0x5851_F42D_4C95_7F2D)));
            }
        }
    }
    let mut idx: Vec<u32> = (0..n as u32).collect();
    idx.sort_unstable_by_key(|&e| (colors[e as usize], acc[e as usize]));
    let mut new_colors = vec![0u32; n];
    let mut k = 0usize;
    for w in 0..n {
        if w > 0 {
            let (a, b) = (idx[w - 1] as usize, idx[w] as usize);
            if (colors[a], acc[a]) != (colors[b], acc[b]) {
                k += 1;
            }
        }
        new_colors[idx[w] as usize] = k as u32;
    }
    colors.copy_from_slice(&new_colors);
    k + 1
}

/// Refine to a stable partition, starting from `k` classes.
fn refine(b: &Block, arities: &[usize], colors: &mut [u32], mut k: usize) -> usize {
    loop {
        let nk = refine_round(b, arities, colors);
        if nk == k {
            return k;
        }
        k = nk;
    }
}

/// Encode a block relabeled by the discrete coloring `perm` (`perm[e]` =
/// canonical local id of element `e`), rows re-sorted.  Relations appear in
/// fixed id order with a row-count prefix, so the encoding is unambiguous
/// without repeating the schema (the whole-structure header carries it).
fn encode_block(b: &Block, arities: &[usize], perm: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + b.rows.iter().map(|r| r.len() * 4 + 4).sum::<usize>());
    out.extend_from_slice(&(b.n as u32).to_le_bytes());
    for (rel, &arity) in arities.iter().enumerate() {
        if arity == 0 {
            continue;
        }
        let mut relabeled: Vec<Vec<u32>> = b.rows[rel]
            .chunks_exact(arity)
            .map(|row| row.iter().map(|&e| perm[e as usize]).collect())
            .collect();
        relabeled.sort_unstable();
        out.extend_from_slice(&(relabeled.len() as u32).to_le_bytes());
        for row in relabeled {
            for v in row {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
    }
    out
}

/// Per-block search context: the block, its arities, and per-relation
/// sorted row lists for O(log m) fact-membership tests during the
/// transposition-automorphism prune.
struct Ctx<'a> {
    b: &'a Block,
    arities: &'a [usize],
    sorted_rows: Vec<Vec<&'a [u32]>>,
}

/// Whether swapping elements `a` and `e` (fixing every other element) is an
/// automorphism of the block — i.e. the two are interchangeable.  This is
/// the symmetry family behind the worst factorial searches (cliques,
/// parallel duplicate atoms): members of an interchangeable set contribute
/// identical search subtrees, so one representative suffices.
fn transposition_is_automorphism(ctx: &Ctx, a: u32, e: u32) -> bool {
    for (rel, &arity) in ctx.arities.iter().enumerate() {
        if arity == 0 {
            continue;
        }
        for row in ctx.b.rows[rel].chunks_exact(arity) {
            if row.iter().all(|&x| x != a && x != e) {
                continue;
            }
            let mapped: Vec<u32> = row
                .iter()
                .map(|&x| {
                    if x == a {
                        e
                    } else if x == e {
                        a
                    } else {
                        x
                    }
                })
                .collect();
            if ctx.sorted_rows[rel]
                .binary_search(&mapped.as_slice())
                .is_err()
            {
                return false;
            }
        }
    }
    true
}

/// The individualization–refinement search: try every member of the first
/// smallest non-singleton class (modulo the interchangeability prune), keep
/// the lexicographically smallest leaf encoding.
// Invariant-backed expects: a non-discrete refinement always has a class of
// size ≥ 2 to individualize.
#[allow(clippy::expect_used)]
fn search(ctx: &Ctx, colors: &[u32], k: usize, best: &mut Option<Vec<u8>>) {
    let n = colors.len();
    if k == n {
        let cand = encode_block(ctx.b, ctx.arities, colors);
        match best {
            Some(prev) if *prev <= cand => {}
            _ => *best = Some(cand),
        }
        return;
    }
    // Target cell: the smallest class of size ≥ 2, lowest color id on ties —
    // both criteria are functions of the invariant coloring alone.
    let mut class_size = vec![0u32; k];
    for &c in colors {
        class_size[c as usize] += 1;
    }
    let target = (0..k)
        .filter(|&c| class_size[c] >= 2)
        .min_by_key(|&c| class_size[c])
        .expect("non-discrete coloring has a class of size >= 2");
    let mut tried: Vec<u32> = Vec::new();
    for e in (0..n as u32).filter(|&e| colors[e as usize] as usize == target) {
        // Interchangeable with an already-tried member: the subtrees are
        // images of each other under the transposition (which fixes the
        // individualized path — path elements hold singleton colors, so they
        // are never cell members), hence yield the same minimal encoding.
        if tried
            .iter()
            .any(|&t| transposition_is_automorphism(ctx, t, e))
        {
            continue;
        }
        let mut c2 = colors.to_vec();
        // A fresh color sorting after every existing class; the same member
        // of the corresponding orbit receives the same value in any
        // isomorphic copy, so the branch set is invariant.
        c2[e as usize] = k as u32;
        let nk = refine(ctx.b, ctx.arities, &mut c2, k + 1);
        search(ctx, &c2, nk, best);
        tried.push(e);
    }
}

/// The canonical encoding of one connected block.
// Invariant-backed expect: individualization always terminates in a
// discrete coloring, so the search necessarily records a leaf.
#[allow(clippy::expect_used)]
fn canonical_block(b: &Block, arities: &[usize]) -> Vec<u8> {
    let mut colors = vec![0u32; b.n];
    let k = refine(b, arities, &mut colors, 1);
    let sorted_rows: Vec<Vec<&[u32]>> = b
        .rows
        .iter()
        .zip(arities.iter())
        .map(|(rows, &arity)| {
            let mut v: Vec<&[u32]> = if arity == 0 {
                Vec::new()
            } else {
                rows.chunks_exact(arity).collect()
            };
            v.sort_unstable();
            v
        })
        .collect();
    let ctx = Ctx {
        b,
        arities,
        sorted_rows,
    };
    let mut best = None;
    search(&ctx, &colors, k, &mut best);
    best.expect("individualization search always reaches a discrete leaf")
}

/// Compute the canonical key of a compiled structure: schema header plus the
/// sorted multiset of per-component canonical encodings.  Called once per
/// [`FlatStructure`] via the `OnceLock` cache
/// ([`FlatStructure::canon_key`]).
pub(crate) fn canonical_key(f: &FlatStructure) -> CanonKey {
    let n = f.dom.len();
    // Header: relation names, arities, nullary-fact flags and domain size
    // (fact rows live in the component payloads).
    let empty_rows: Vec<Vec<u32>> = vec![Vec::new(); f.arities.len()];
    let mut bytes = encode_canonical(
        &f.table().names,
        &f.arities,
        &empty_rows,
        &f.nullary_present,
        n,
    );

    // Split the elements into connected components and the fact rows along
    // with them (a row belongs to the component of its first argument).
    let mut uf = unite_fact_rows(f);
    let mut comp_of_root = vec![u32::MAX; n];
    let mut members: Vec<Vec<u32>> = Vec::new();
    let mut local_of = vec![0u32; n];
    for e in 0..n as u32 {
        let root = uf.find(e) as usize;
        if comp_of_root[root] == u32::MAX {
            comp_of_root[root] = members.len() as u32;
            members.push(Vec::new());
        }
        let m = &mut members[comp_of_root[root] as usize];
        local_of[e as usize] = m.len() as u32;
        m.push(e);
    }
    let mut blocks: Vec<Block> = members
        .iter()
        .map(|m| Block {
            n: m.len(),
            rows: vec![Vec::new(); f.arities.len()],
        })
        .collect();
    for (rel, &arity) in f.arities.iter().enumerate() {
        if arity == 0 {
            continue;
        }
        for row in f.rows[rel].chunks_exact(arity) {
            let c = comp_of_root[uf.find(row[0]) as usize] as usize;
            blocks[c].rows[rel].extend(row.iter().map(|&e| local_of[e as usize]));
        }
    }

    // Canonize each component independently — the symmetry *between*
    // isomorphic components never enters the backtracking search — and
    // append the sorted, length-prefixed payload multiset.
    let mut payloads: Vec<Vec<u8>> = blocks
        .iter()
        .map(|b| canonical_block(b, &f.arities))
        .collect();
    payloads.sort_unstable();
    bytes.extend_from_slice(&(payloads.len() as u32).to_le_bytes());
    for p in &payloads {
        bytes.extend_from_slice(&(p.len() as u32).to_le_bytes());
        bytes.extend_from_slice(p);
    }
    CanonKey {
        hash: fnv1a(&bytes),
        bytes: bytes.into_boxed_slice(),
    }
}

#[cfg(test)]
mod tests {
    use crate::schema::Schema;
    use crate::structure::Structure;

    fn key(s: &Structure) -> (u64, Box<[u8]>) {
        let k = s.flat().canon_key();
        (k.hash, k.bytes.clone())
    }

    fn sch() -> Schema {
        Schema::with_relations([("E", 2), ("P", 1)])
    }

    #[test]
    fn non_order_preserving_renaming_shares_key() {
        // The case the old canon() encoding got wrong: the same edge with
        // endpoints in opposite constant order.
        let mut a = Structure::new(sch());
        a.add("E", &[0, 1]);
        let mut b = Structure::new(sch());
        b.add("E", &[1, 0]);
        assert_ne!(a.flat().canon(), b.flat().canon(), "order-preserving");
        assert_eq!(key(&a), key(&b), "isomorphism-invariant");
    }

    #[test]
    fn cycle_vs_near_cycle_distinguished() {
        // Same profile, same domain size, same degree sequence per slot —
        // only the global structure differs.
        let mut c3 = Structure::new(sch());
        c3.add("E", &[0, 1]);
        c3.add("E", &[1, 2]);
        c3.add("E", &[2, 0]);
        let mut other = Structure::new(sch());
        other.add("E", &[0, 1]);
        other.add("E", &[1, 2]);
        other.add("E", &[0, 2]);
        assert_ne!(key(&c3), key(&other));
        // A rotated, renamed cycle still shares the key.
        let mut c3b = Structure::new(sch());
        c3b.add("E", &[11, 7]);
        c3b.add("E", &[7, 9]);
        c3b.add("E", &[9, 11]);
        assert_eq!(key(&c3), key(&c3b));
    }

    #[test]
    fn symmetric_structures_need_individualization() {
        // A directed 6-cycle is vertex-transitive: refinement alone cannot
        // discretize it, so this exercises the backtracking path.
        let cyc = |offsets: &[u64]| {
            let mut s = Structure::new(sch());
            let n = offsets.len() as u64;
            for i in 0..n {
                s.add("E", &[offsets[i as usize], offsets[((i + 1) % n) as usize]]);
            }
            s
        };
        let a = cyc(&[0, 1, 2, 3, 4, 5]);
        let b = cyc(&[9, 3, 77, 2, 40, 11]);
        assert_eq!(key(&a), key(&b));
        // Two disjoint 3-cycles vs one 6-cycle: same profile, not isomorphic.
        let mut two = cyc(&[0, 1, 2]);
        for f in cyc(&[10, 11, 12]).facts() {
            two.add_fact(f);
        }
        assert_ne!(key(&a), key(&two));
    }

    #[test]
    fn isolated_elements_counted_not_named() {
        let mut a = Structure::new(sch());
        a.add("E", &[0, 1]);
        a.add_isolated(7);
        a.add_isolated(8);
        let mut b = Structure::new(sch());
        b.add("E", &[500, 2]);
        b.add_isolated(1000);
        b.add_isolated(3);
        assert_eq!(key(&a), key(&b));
        let mut c = Structure::new(sch());
        c.add("E", &[0, 1]);
        c.add_isolated(7);
        assert_ne!(key(&a), key(&c));
    }

    #[test]
    fn nullary_only_structures() {
        let sch = Schema::with_relations([("H", 0), ("C", 0)]);
        let mut h = Structure::new(sch.clone());
        h.add("H", &[]);
        let mut c = Structure::new(sch.clone());
        c.add("C", &[]);
        assert_ne!(key(&h), key(&c));
        assert_eq!(key(&h), key(&h.clone()));
    }

    #[test]
    fn unary_marks_break_symmetry() {
        let mut a = Structure::new(sch());
        a.add("E", &[0, 1]);
        a.add("P", &[0]);
        let mut b = Structure::new(sch());
        b.add("E", &[0, 1]);
        b.add("P", &[1]);
        assert_ne!(key(&a), key(&b), "source-marked vs sink-marked edge");
    }
}
