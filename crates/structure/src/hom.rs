//! Homomorphism search: enumeration, existence and exact counting.
//!
//! A homomorphism from `A` to `B` is a function `h : dom(A) → dom(B)` such
//! that `R(t⃗) ∈ A` implies `R(h(t⃗)) ∈ B` (Section 2.1).  Boolean conjunctive
//! queries are identified with their frozen bodies, so `q(D) = |hom(q, D)|`
//! — exact counting is the single most used primitive of the whole
//! reproduction.
//!
//! The implementation is a backtracking search over the domain of the source
//! structure with forward checking: source elements are visited in a
//! breadth-first order inside each connected component so that, when an
//! element is assigned, at least one fact constraining it is usually already
//! fully assigned.

use crate::components::connected_components;
use crate::structure::{Const, Structure};
use cqdet_bigint::Nat;
use std::collections::{BTreeMap, BTreeSet};

/// A homomorphism, represented as the assignment of source to target constants.
pub type Homomorphism = BTreeMap<Const, Const>;

/// What the backtracking search should do with complete assignments.
enum Mode {
    /// Count all homomorphisms.
    CountAll,
    /// Stop at the first homomorphism.
    FindFirst,
    /// Stop at the first *injective* homomorphism.
    FindInjective,
    /// Collect all homomorphisms (used by query evaluation and tests).
    Collect,
}

struct Search<'a> {
    source: &'a Structure,
    target: &'a Structure,
    target_domain: Vec<Const>,
    /// Source elements in assignment order.
    order: Vec<Const>,
    /// For each source element, the facts (relation, args) that mention it.
    facts_of: BTreeMap<Const, Vec<(String, Vec<Const>)>>,
    assignment: BTreeMap<Const, Const>,
    used_targets: BTreeSet<Const>,
    mode: Mode,
    count: u64,
    count_big: Nat,
    found: bool,
    collected: Vec<Homomorphism>,
}

impl<'a> Search<'a> {
    fn new(source: &'a Structure, target: &'a Structure, mode: Mode) -> Self {
        let target_domain: Vec<Const> = target.domain().into_iter().collect();
        let order = assignment_order(source);
        let mut facts_of: BTreeMap<Const, Vec<(String, Vec<Const>)>> = BTreeMap::new();
        for f in source.facts() {
            for &a in &f.args {
                facts_of
                    .entry(a)
                    .or_default()
                    .push((f.relation.clone(), f.args.clone()));
            }
        }
        Search {
            source,
            target,
            target_domain,
            order,
            facts_of,
            assignment: BTreeMap::new(),
            used_targets: BTreeSet::new(),
            mode,
            count: 0,
            count_big: Nat::zero(),
            found: false,
            collected: Vec::new(),
        }
    }

    /// Nullary facts have no variables, so they are checked once up front.
    fn nullary_facts_ok(&self) -> bool {
        self.source
            .facts()
            .filter(|f| f.args.is_empty())
            .all(|f| self.target.contains_fact(&f.relation, &[]))
    }

    fn run(&mut self) {
        if !self.nullary_facts_ok() {
            return;
        }
        if self.order.is_empty() {
            // No variables to assign: exactly the empty homomorphism
            // (|hom(∅, D)| = 1, as the paper notes).
            self.register_leaf();
            return;
        }
        self.recurse(0);
    }

    fn register_leaf(&mut self) {
        match self.mode {
            Mode::CountAll => {
                self.count += 1;
                if self.count == u64::MAX {
                    self.count_big += &Nat::from_u64(self.count);
                    self.count = 0;
                }
            }
            Mode::FindFirst | Mode::FindInjective => self.found = true,
            Mode::Collect => self.collected.push(self.assignment.clone()),
        }
    }

    fn done(&self) -> bool {
        matches!(self.mode, Mode::FindFirst | Mode::FindInjective) && self.found
    }

    fn recurse(&mut self, idx: usize) {
        if self.done() {
            return;
        }
        if idx == self.order.len() {
            self.register_leaf();
            return;
        }
        let x = self.order[idx];
        let injective = matches!(self.mode, Mode::FindInjective);
        for ti in 0..self.target_domain.len() {
            let b = self.target_domain[ti];
            if injective && self.used_targets.contains(&b) {
                continue;
            }
            self.assignment.insert(x, b);
            if injective {
                self.used_targets.insert(b);
            }
            if self.consistent(x) {
                self.recurse(idx + 1);
            }
            self.assignment.remove(&x);
            if injective {
                self.used_targets.remove(&b);
            }
            if self.done() {
                return;
            }
        }
    }

    /// Check every source fact mentioning `x` whose arguments are now all
    /// assigned: its image must be a fact of the target.
    fn consistent(&self, x: Const) -> bool {
        let Some(facts) = self.facts_of.get(&x) else {
            return true;
        };
        'facts: for (rel, args) in facts {
            let mut image = Vec::with_capacity(args.len());
            for a in args {
                match self.assignment.get(a) {
                    Some(&b) => image.push(b),
                    None => continue 'facts,
                }
            }
            if !self.target.contains_fact(rel, &image) {
                return false;
            }
        }
        true
    }

    fn total_count(&self) -> Nat {
        self.count_big.add_ref(&Nat::from_u64(self.count))
    }
}

/// Order the source domain so that each connected component is visited in
/// breadth-first order (maximises early constraint propagation).
fn assignment_order(source: &Structure) -> Vec<Const> {
    let mut order = Vec::new();
    let mut seen = BTreeSet::new();
    // Adjacency between source elements that co-occur in a fact.
    let mut adj: BTreeMap<Const, BTreeSet<Const>> = BTreeMap::new();
    for f in source.facts() {
        for &a in &f.args {
            for &b in &f.args {
                if a != b {
                    adj.entry(a).or_default().insert(b);
                }
            }
            adj.entry(a).or_default();
        }
    }
    for &start in source.domain().iter() {
        if seen.contains(&start) {
            continue;
        }
        let mut queue = std::collections::VecDeque::from([start]);
        seen.insert(start);
        while let Some(x) = queue.pop_front() {
            order.push(x);
            if let Some(neigh) = adj.get(&x) {
                for &n in neigh {
                    if seen.insert(n) {
                        queue.push_back(n);
                    }
                }
            }
        }
    }
    order
}

/// The exact number of homomorphisms from `source` to `target`.
pub fn hom_count(source: &Structure, target: &Structure) -> Nat {
    let mut s = Search::new(source, target, Mode::CountAll);
    s.run();
    s.total_count()
}

/// Whether at least one homomorphism from `source` to `target` exists.
pub fn hom_exists(source: &Structure, target: &Structure) -> bool {
    let mut s = Search::new(source, target, Mode::FindFirst);
    s.run();
    s.found
}

/// Whether an *injective* homomorphism from `source` to `target` exists
/// (used by the isomorphism test).
pub fn injective_hom_exists(source: &Structure, target: &Structure) -> bool {
    let mut s = Search::new(source, target, Mode::FindInjective);
    s.run();
    s.found
}

/// Enumerate all homomorphisms from `source` to `target`.
///
/// Intended for small instances (tests, examples, query evaluation with free
/// variables); the count can be exponential in the size of `source`.
pub fn hom_enumerate(source: &Structure, target: &Structure) -> Vec<Homomorphism> {
    let mut s = Search::new(source, target, Mode::Collect);
    s.run();
    s.collected
}

/// Homomorphism counting factored through connected components:
/// `|hom(A, B)| = Π_C |hom(C, B)|` over the connected components `C` of `A`
/// (Lemma 4(5)).  Faster than [`hom_count`] when `A` is disconnected, and used
/// as an ablation baseline in the benchmarks.
pub fn hom_count_factored(source: &Structure, target: &Structure) -> Nat {
    let comps = connected_components(source);
    if comps.is_empty() {
        return hom_count(source, target);
    }
    let mut acc = Nat::one();
    for c in &comps {
        acc = acc.mul_ref(&hom_count(c, target));
        if acc.is_zero() {
            return acc;
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn edge_schema() -> Schema {
        Schema::binary(["E"])
    }

    /// The directed path with `n` edges: 0 → 1 → … → n.
    fn path(n: usize) -> Structure {
        let mut s = Structure::new(edge_schema());
        for i in 0..n {
            s.add("E", &[i as Const, (i + 1) as Const]);
        }
        s
    }

    /// The directed cycle with `n` vertices.
    fn cycle(n: usize) -> Structure {
        let mut s = Structure::new(edge_schema());
        for i in 0..n {
            s.add("E", &[i as Const, ((i + 1) % n) as Const]);
        }
        s
    }

    /// The complete directed graph (with loops) on `n` vertices.
    fn clique_with_loops(n: usize) -> Structure {
        let mut s = Structure::new(edge_schema());
        for i in 0..n {
            for j in 0..n {
                s.add("E", &[i as Const, j as Const]);
            }
        }
        s
    }

    #[test]
    fn empty_source_has_one_hom() {
        let empty = Structure::new(edge_schema());
        assert_eq!(hom_count(&empty, &path(3)), Nat::one());
        assert_eq!(hom_count(&empty, &empty), Nat::one());
        assert!(hom_exists(&empty, &empty));
    }

    #[test]
    fn single_edge_counts_edges() {
        // hom(edge, G) = number of edges of G.
        let e = path(1);
        assert_eq!(hom_count(&e, &path(4)), Nat::from_u64(4));
        assert_eq!(hom_count(&e, &cycle(5)), Nat::from_u64(5));
        assert_eq!(hom_count(&e, &clique_with_loops(3)), Nat::from_u64(9));
    }

    #[test]
    fn path_into_clique_with_loops() {
        // Every map of the k+1 vertices is a homomorphism: n^(k+1).
        assert_eq!(hom_count(&path(2), &clique_with_loops(3)), Nat::from_u64(27));
        assert_eq!(hom_count(&path(3), &clique_with_loops(2)), Nat::from_u64(16));
    }

    #[test]
    fn path_into_path_counts() {
        // hom(P_k, P_n) (paths as directed edge-paths) = n - k + 1 for k <= n.
        assert_eq!(hom_count(&path(2), &path(4)), Nat::from_u64(3));
        assert_eq!(hom_count(&path(4), &path(4)), Nat::from_u64(1));
        assert_eq!(hom_count(&path(5), &path(4)), Nat::zero());
        assert!(!hom_exists(&path(5), &path(4)));
    }

    #[test]
    fn cycle_into_cycle() {
        // A directed 3-cycle maps into a directed 3-cycle by rotation: 3 homs.
        assert_eq!(hom_count(&cycle(3), &cycle(3)), Nat::from_u64(3));
        // No hom from a 3-cycle into a 4-cycle (lengths incompatible).
        assert_eq!(hom_count(&cycle(3), &cycle(4)), Nat::zero());
        // 4-cycle into 2-cycle: wraps around, 2 homs.
        assert_eq!(hom_count(&cycle(4), &cycle(2)), Nat::from_u64(2));
    }

    #[test]
    fn disconnected_source_multiplies() {
        // Two disjoint edges into C_5: 5 * 5 = 25 (Lemma 4(5)).
        let mut two_edges = Structure::new(edge_schema());
        two_edges.add("E", &[0, 1]);
        two_edges.add("E", &[10, 11]);
        let t = cycle(5);
        assert_eq!(hom_count(&two_edges, &t), Nat::from_u64(25));
        assert_eq!(hom_count_factored(&two_edges, &t), Nat::from_u64(25));
    }

    #[test]
    fn factored_matches_plain_on_various_inputs() {
        let mut src = Structure::new(edge_schema());
        src.add("E", &[0, 1]);
        src.add("E", &[1, 2]);
        src.add("E", &[5, 6]);
        for target in [path(3), cycle(4), clique_with_loops(3)] {
            assert_eq!(hom_count(&src, &target), hom_count_factored(&src, &target));
        }
    }

    #[test]
    fn isolated_source_elements_map_anywhere() {
        let mut src = Structure::new(edge_schema());
        src.add_isolated(42);
        // One isolated vertex → |dom(target)| homomorphisms.
        assert_eq!(hom_count(&src, &path(3)), Nat::from_u64(4));
        let mut tgt = path(2);
        tgt.add_isolated(99);
        assert_eq!(hom_count(&src, &tgt), Nat::from_u64(4));
    }

    #[test]
    fn unary_and_mixed_arity() {
        let sch = Schema::with_relations([("R", 2), ("P", 1)]);
        let mut src = Structure::new(sch.clone());
        src.add("R", &[0, 1]);
        src.add("P", &[0]);
        let mut tgt = Structure::new(sch);
        tgt.add("R", &[10, 11]);
        tgt.add("R", &[12, 11]);
        tgt.add("P", &[10]);
        // Only the edge (10,11) has a P-marked source.
        assert_eq!(hom_count(&src, &tgt), Nat::one());
        assert!(hom_exists(&src, &tgt));
    }

    #[test]
    fn nullary_facts_gate_everything() {
        let sch = Schema::with_relations([("H", 0), ("P", 1)]);
        let mut src = Structure::new(sch.clone());
        src.add("H", &[]);
        src.add("P", &[0]);
        let mut tgt_without = Structure::new(sch.clone());
        tgt_without.add("P", &[5]);
        assert_eq!(hom_count(&src, &tgt_without), Nat::zero());
        let mut tgt_with = tgt_without.clone();
        tgt_with.add("H", &[]);
        assert_eq!(hom_count(&src, &tgt_with), Nat::one());
    }

    #[test]
    fn enumerate_returns_all_assignments() {
        let homs = hom_enumerate(&path(1), &path(2));
        assert_eq!(homs.len(), 2);
        for h in &homs {
            assert_eq!(h.len(), 2);
            let (a, b) = (h[&0], h[&1]);
            assert!(path(2).contains_fact("E", &[a, b]));
        }
    }

    #[test]
    fn injective_homs() {
        assert!(injective_hom_exists(&path(2), &path(2)));
        assert!(injective_hom_exists(&path(2), &path(5)));
        // C_4 maps into C_2 homomorphically but not injectively.
        assert!(hom_exists(&cycle(4), &cycle(2)));
        assert!(!injective_hom_exists(&cycle(4), &cycle(2)));
    }

    #[test]
    fn hom_composition_closure() {
        // If hom(A,B) and hom(B,C) are nonempty then hom(A,C) is nonempty.
        let a = path(3);
        let b = cycle(3);
        let c = clique_with_loops(2);
        assert!(hom_exists(&a, &b));
        assert!(hom_exists(&b, &c));
        assert!(hom_exists(&a, &c));
    }
}
