//! Homomorphism search: enumeration, existence and exact counting.
//!
//! A homomorphism from `A` to `B` is a function `h : dom(A) → dom(B)` such
//! that `R(t⃗) ∈ A` implies `R(h(t⃗)) ∈ B` (Section 2.1).  Boolean conjunctive
//! queries are identified with their frozen bodies, so `q(D) = |hom(q, D)|`
//! — exact counting is the single most used primitive of the whole
//! reproduction.
//!
//! The default engine works on the interned flat-index form of both
//! structures ([`crate::flat`]): the backtracking state is a dense `Vec<u32>`
//! assignment plus a `u64` bitset of used targets, candidate targets are
//! precomputed per source element from occurrence-mask (arity + degree)
//! filtering, and each source fact is checked exactly once per search path —
//! at the moment its last argument is assigned.  The original `BTreeMap`
//! engine is retained verbatim in [`reference`] as the differential-testing
//! oracle and as an escape hatch (`CQDET_NAIVE_HOM=1`).

use crate::components::connected_components;
use crate::filter;
use crate::flat::FlatStructure;
use crate::structure::{Const, Structure};
use cqdet_bigint::Nat;
use cqdet_cache::ShardedCache;
use cqdet_parallel::{Gas, Interrupt};
use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, HashMap};
use std::sync::OnceLock;

/// A homomorphism, represented as the assignment of source to target constants.
pub type Homomorphism = BTreeMap<Const, Const>;

/// What the backtracking search should do with complete assignments.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Count all homomorphisms.
    CountAll,
    /// Stop at the first homomorphism.
    FindFirst,
    /// Stop at the first *injective* homomorphism.
    FindInjective,
    /// Collect all homomorphisms (used by query evaluation and tests).
    Collect,
}

/// Whether the `CQDET_NAIVE_HOM=1` escape hatch is active (checked once).
fn use_naive_engine() -> bool {
    static FLAG: OnceLock<bool> = OnceLock::new();
    *FLAG.get_or_init(|| {
        std::env::var("CQDET_NAIVE_HOM")
            .map(|v| v == "1")
            .unwrap_or(false)
    })
}

/// How the search enumerates candidate images at one order position.
#[derive(Clone, Copy)]
enum Ext {
    /// Sweep the precomputed candidate list.
    List,
    /// The element is the second argument of a binary fact whose first
    /// argument is assigned earlier: enumerate the out-neighbours of that
    /// image (a contiguous CSR bucket) and keep those passing the
    /// occurrence-mask subset filter.  The driving fact is satisfied by
    /// construction and removed from the consistency checks.
    Fwd { rel: u32, other: u32 },
    /// Mirror image: the element is the *first* argument, enumerated through
    /// the reverse (second-argument) bucket index.
    Rev { rel: u32, other: u32 },
}

/// The compiled search plan: everything that depends only on the pair of
/// structures, not on the traversal.
struct Plan<'a> {
    src: &'a FlatStructure,
    tgt: &'a FlatStructure,
    n_src: usize,
    n_tgt: usize,
    /// Source elements in assignment order (selectivity-ordered frontier
    /// scheduling inside each connected component: most-constrained element
    /// first, by candidate-list length).  Elements occurring in no fact are
    /// excluded unless `enumerate_all` was requested at build time.
    order: Vec<u32>,
    /// Number of source elements occurring in no fact that were *excluded*
    /// from `order`; each contributes a factor `n_tgt` to the count.
    excluded_unconstrained: usize,
    /// Facts with arity ≥ 1, flattened: relation (already mapped to target
    /// relation ids), offsets, dense argument ids.
    fact_rel: Vec<u32>,
    fact_off: Vec<u32>,
    fact_args: Vec<u32>,
    /// Per order position: the facts whose last argument is assigned there.
    facts_at: Vec<Vec<u32>>,
    /// Candidate target lists, shared between elements with equal occurrence
    /// masks: `cand_lists[cand_of[x]]` is the candidate list of element `x`.
    /// The lists live behind `Arc` because (same-layout) plans share them
    /// with the target's per-mask memo ([`FlatStructure::candidates_for_mask`]).
    cand_of: Vec<u32>,
    cand_lists: Vec<std::sync::Arc<Vec<u32>>>,
    /// Per order position: the candidate enumeration mode (see [`Ext`]).
    ext: Vec<Ext>,
    /// Cross-schema only: target occurrence masks rebuilt in the source's
    /// slot space (`None` when the layouts agree and `tgt.occ` is directly
    /// comparable), consulted by the per-extension subset filter.
    remapped_occ: Option<Vec<u64>>,
    /// Set when the plan can be answered without any search.
    trivially_zero: bool,
}

impl<'a> Plan<'a> {
    /// Compile a plan.  `enumerate_all` forces every source element into the
    /// search order (needed when complete assignments must be materialised).
    fn build(
        src: &'a FlatStructure,
        tgt: &'a FlatStructure,
        source: &Structure,
        target: &Structure,
        enumerate_all: bool,
    ) -> Plan<'a> {
        let n_src = src.dom.len();
        let n_tgt = tgt.dom.len();
        let mut plan = Plan {
            src,
            tgt,
            n_src,
            n_tgt,
            order: Vec::new(),
            excluded_unconstrained: 0,
            fact_rel: Vec::new(),
            fact_off: vec![0],
            fact_args: Vec::new(),
            facts_at: Vec::new(),
            cand_of: Vec::new(),
            cand_lists: Vec::new(),
            ext: Vec::new(),
            remapped_occ: None,
            trivially_zero: false,
        };

        // Map source relation ids to target relation ids by name; a source
        // relation with facts but no target counterpart (or with the nullary
        // fact missing from the target) makes the whole answer zero.
        let mut rel_map: Vec<u32> = Vec::with_capacity(src.arities.len());
        for (rel, name) in source.rel_names().iter().enumerate() {
            let mapped = target.rel_id(name);
            match mapped {
                Some(t) if target.rel_arities()[t as usize] == src.arities[rel] => {
                    rel_map.push(t);
                }
                _ => {
                    if src.row_count(rel) > 0 {
                        plan.trivially_zero = true;
                        return plan;
                    }
                    rel_map.push(u32::MAX);
                }
            }
        }

        // Nullary facts have no variables: check them once up front.
        for (rel, &arity) in src.arities.iter().enumerate() {
            if arity == 0 && src.nullary_present[rel] && !tgt.nullary_present[rel_map[rel] as usize]
            {
                plan.trivially_zero = true;
                return plan;
            }
        }

        // Flatten the positive-arity facts and build the co-occurrence
        // adjacency in one pass.
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n_src];
        for (rel, &arity) in src.arities.iter().enumerate() {
            if arity == 0 {
                continue;
            }
            for row in src.rows[rel].chunks_exact(arity) {
                plan.fact_rel.push(rel_map[rel]);
                plan.fact_args.extend_from_slice(row);
                plan.fact_off.push(plan.fact_args.len() as u32);
                for &a in row {
                    for &b in row {
                        if a != b {
                            adj[a as usize].push(b);
                        }
                    }
                }
            }
        }
        for neigh in &mut adj {
            neigh.sort_unstable();
            neigh.dedup();
        }

        // Candidate lists by occurrence-mask filtering: h(x) must occur at
        // every (relation, position) slot x occurs at.  Source masks live in
        // the *source* schema's slot space; when the target has a different
        // relation layout its compiled masks are incomparable, so rebuild the
        // target masks in the source's slot space via `rel_map` first.
        let same_layout = source.rel_names() == target.rel_names()
            && source.rel_arities() == target.rel_arities();
        let sw = src.slot_words;
        plan.remapped_occ = if same_layout {
            None
        } else {
            let mut occ = vec![0u64; n_tgt * sw];
            let mut slot_base = 0usize;
            for (rel, &arity) in src.arities.iter().enumerate() {
                if arity > 0 && rel_map[rel] != u32::MAX {
                    for row in tgt.rows[rel_map[rel] as usize].chunks_exact(arity) {
                        for (pos, &e) in row.iter().enumerate() {
                            let slot = slot_base + pos;
                            occ[e as usize * sw + slot / 64] |= 1 << (slot % 64);
                        }
                    }
                }
                slot_base += arity;
            }
            Some(occ)
        };
        // Candidate lists are computed up front (before the search order is
        // chosen, which consults their lengths).  Lists are shared between
        // elements with identical masks via a hash-keyed dedup index, and —
        // when the layouts agree, so masks are directly comparable —
        // additionally memoized on the target itself, turning a fan-in of
        // many sources against one target (the per-view containment gate)
        // into one domain scan per distinct mask overall.
        let constrained = |e: usize| src.mask_of(e).iter().any(|&w| w != 0);
        let eligible = |e: usize| enumerate_all || constrained(e);
        let mut mask_index: HashMap<&[u64], u32> = HashMap::new();
        plan.cand_of = vec![0; n_src];
        for x in 0..n_src {
            if !eligible(x) {
                continue;
            }
            let mask = src.mask_of(x);
            let next_id = mask_index.len() as u32;
            let id = *mask_index.entry(mask).or_insert(next_id);
            plan.cand_of[x] = id;
            if id == next_id {
                let cands = match &plan.remapped_occ {
                    None => tgt.candidates_for_mask(mask),
                    Some(occ) => {
                        std::sync::Arc::new(filter::superset_indices(mask, occ, sw, n_tgt))
                    }
                };
                plan.cand_lists.push(cands);
            }
        }

        // Selectivity-ordered frontier scheduling: inside each connected
        // component, start from the most-constrained element (fewest
        // candidate images) and repeatedly extend with the most-constrained
        // element adjacent to the ordered prefix, the pick re-evaluated
        // against the candidate counts at every step.  Compared to plain BFS
        // this turns the multiplicative branching of loosely-constrained
        // elements into near-additive work: a loose element is only
        // enumerated once its tightly-constrained neighbours have already
        // pinned the facts it participates in.
        let cand_len = |e: u32| plan.cand_lists[plan.cand_of[e as usize] as usize].len();
        let mut seen = vec![false; n_src];
        let mut placed = vec![false; n_src];
        let mut in_frontier = vec![false; n_src];
        let mut comp: Vec<u32> = Vec::new();
        let mut frontier: Vec<u32> = Vec::new();
        for start in 0..n_src {
            if seen[start] || !eligible(start) {
                continue;
            }
            // Collect the whole component of `start` first (adjacency only
            // ever connects fact-constrained elements, so an unconstrained
            // element under `enumerate_all` is a singleton component).
            comp.clear();
            comp.push(start as u32);
            seen[start] = true;
            let mut qi = 0;
            while qi < comp.len() {
                let x = comp[qi];
                qi += 1;
                for &n in &adj[x as usize] {
                    if !seen[n as usize] {
                        seen[n as usize] = true;
                        comp.push(n);
                    }
                }
            }
            // Seed with the component's most-constrained element (ties break
            // to the smallest id, keeping plans deterministic).
            let mut seed = comp[0];
            for &e in &comp[1..] {
                if (cand_len(e), e) < (cand_len(seed), seed) {
                    seed = e;
                }
            }
            plan.order.push(seed);
            placed[seed as usize] = true;
            frontier.clear();
            for &n in &adj[seed as usize] {
                in_frontier[n as usize] = true;
                frontier.push(n);
            }
            while !frontier.is_empty() {
                let mut bi = 0;
                for i in 1..frontier.len() {
                    let (a, b) = (frontier[i], frontier[bi]);
                    if (cand_len(a), a) < (cand_len(b), b) {
                        bi = i;
                    }
                }
                let x = frontier.swap_remove(bi);
                in_frontier[x as usize] = false;
                plan.order.push(x);
                placed[x as usize] = true;
                for &n in &adj[x as usize] {
                    if !placed[n as usize] && !in_frontier[n as usize] {
                        in_frontier[n as usize] = true;
                        frontier.push(n);
                    }
                }
            }
        }
        plan.excluded_unconstrained = n_src - plan.order.len();

        // Schedule each fact at the order position where its last argument is
        // assigned.
        let mut pos_of = vec![u32::MAX; n_src];
        for (pos, &x) in plan.order.iter().enumerate() {
            pos_of[x as usize] = pos as u32;
        }
        plan.facts_at = vec![Vec::new(); plan.order.len()];
        let n_facts = plan.fact_rel.len();
        for f in 0..n_facts {
            let args = &plan.fact_args[plan.fact_off[f] as usize..plan.fact_off[f + 1] as usize];
            // A fact with no arguments has no placement constraint: check it
            // at the first level.
            let last = args.iter().map(|&a| pos_of[a as usize]).max().unwrap_or(0);
            debug_assert_ne!(last, u32::MAX, "fact argument missing from order");
            plan.facts_at[last as usize].push(f as u32);
        }

        // Fact-driven candidate enumeration: when a binary fact completes at
        // position `idx` and its other argument is assigned earlier, the
        // images of `order[idx]` satisfying that fact are exactly one
        // (forward or reverse) CSR bucket of the target relation — usually a
        // handful of rows instead of the whole candidate list.  The driving
        // fact is removed from the consistency checks (it holds by
        // construction); every enumerated image still passes through the
        // branch-free occurrence-mask subset filter.
        plan.ext = vec![Ext::List; plan.order.len()];
        for (idx, &x) in plan.order.iter().enumerate() {
            let mut chosen: Option<(usize, Ext)> = None;
            for (k, &f) in plan.facts_at[idx].iter().enumerate() {
                let f = f as usize;
                let args =
                    &plan.fact_args[plan.fact_off[f] as usize..plan.fact_off[f + 1] as usize];
                if args.len() != 2 {
                    continue;
                }
                let (a0, a1) = (args[0], args[1]);
                let rel = plan.fact_rel[f];
                if a1 == x && a0 != x && (pos_of[a0 as usize] as usize) < idx {
                    chosen = Some((k, Ext::Fwd { rel, other: a0 }));
                    break;
                }
                if a0 == x && a1 != x && (pos_of[a1 as usize] as usize) < idx {
                    chosen = Some((k, Ext::Rev { rel, other: a1 }));
                    break;
                }
            }
            if let Some((k, e)) = chosen {
                plan.facts_at[idx].swap_remove(k);
                plan.ext[idx] = e;
            }
        }

        if plan
            .order
            .iter()
            .any(|&x| plan.cand_lists[plan.cand_of[x as usize] as usize].is_empty())
        {
            plan.trivially_zero = true;
        }
        plan
    }

    #[inline]
    fn candidates(&self, x: u32) -> &[u32] {
        self.cand_lists[self.cand_of[x as usize] as usize].as_slice()
    }
}

/// Backtracking search state over a [`Plan`].
struct Search<'p, 'a> {
    plan: &'p Plan<'a>,
    mode: Mode,
    /// Dense target id per source element; `u32::MAX` = unassigned.
    assignment: Vec<u32>,
    /// Bitset of used target ids (injective mode only).
    used: Vec<u64>,
    /// Scratch row buffer for fact-image lookups.
    scratch: Vec<u32>,
    count: u64,
    count_big: Nat,
    found: bool,
    collected: Vec<Vec<u32>>,
    /// Fuel/deadline meter, charged once per candidate extension.
    gas: Gas,
    /// Set when the meter fired: the search unwound early and its partial
    /// results are meaningless.
    stopped: Option<Interrupt>,
}

impl<'p, 'a> Search<'p, 'a> {
    fn new(plan: &'p Plan<'a>, mode: Mode) -> Self {
        Search::with_gas(plan, mode, Gas::unlimited())
    }

    fn with_gas(plan: &'p Plan<'a>, mode: Mode, gas: Gas) -> Self {
        let max_arity = plan
            .fact_off
            .windows(2)
            .map(|w| (w[1] - w[0]) as usize)
            .max()
            .unwrap_or(0);
        Search {
            plan,
            mode,
            assignment: vec![u32::MAX; plan.n_src],
            used: vec![0; plan.n_tgt.div_ceil(64).max(1)],
            scratch: vec![0; max_arity],
            count: 0,
            count_big: Nat::zero(),
            found: false,
            collected: Vec::new(),
            gas,
            stopped: None,
        }
    }

    fn run(&mut self) {
        if self.plan.trivially_zero {
            return;
        }
        if self.plan.n_src > 0 && self.plan.n_tgt == 0 {
            // Elements exist but there is nothing to map them to.
            return;
        }
        if self.mode == Mode::FindInjective && self.plan.n_src > self.plan.n_tgt {
            return;
        }
        self.recurse(0);
        // Account the tail below the flush granularity, so even a search
        // that finished charges what it used.
        if self.stopped.is_none() {
            if let Err(stop) = self.gas.flush() {
                self.stopped = Some(stop);
            }
        }
    }

    fn register_leaf(&mut self) {
        match self.mode {
            Mode::CountAll => {
                self.count += 1;
                if self.count == u64::MAX {
                    self.count_big += &Nat::from_u64(self.count);
                    self.count = 0;
                }
            }
            Mode::FindFirst | Mode::FindInjective => self.found = true,
            Mode::Collect => self.collected.push(self.assignment.clone()),
        }
    }

    #[inline]
    fn done(&self) -> bool {
        self.stopped.is_some()
            || (matches!(self.mode, Mode::FindFirst | Mode::FindInjective) && self.found)
    }

    fn recurse(&mut self, idx: usize) {
        let plan = self.plan;
        if idx == plan.order.len() {
            self.register_leaf();
            return;
        }
        let x = plan.order[idx];
        match plan.ext[idx] {
            Ext::List => {
                let cands = plan.candidates(x);
                for &t in cands {
                    if self.extend(idx, x, t, None) {
                        return;
                    }
                }
            }
            Ext::Fwd { rel, other } => {
                let rel = rel as usize;
                let key = self.assignment[other as usize] as usize;
                let lo = plan.tgt.row_starts[rel][key] as usize;
                let hi = plan.tgt.row_starts[rel][key + 1] as usize;
                let mask = plan.src.mask_of(x as usize);
                for i in lo..hi {
                    let t = plan.tgt.rows[rel][i * 2 + 1];
                    if self.extend(idx, x, t, Some(mask)) {
                        return;
                    }
                }
            }
            Ext::Rev { rel, other } => {
                let rel = rel as usize;
                let key = self.assignment[other as usize] as usize;
                let lo = plan.tgt.rev_starts[rel][key] as usize;
                let hi = plan.tgt.rev_starts[rel][key + 1] as usize;
                let mask = plan.src.mask_of(x as usize);
                for i in lo..hi {
                    let t = plan.tgt.rev_firsts[rel][i];
                    if self.extend(idx, x, t, Some(mask)) {
                        return;
                    }
                }
            }
        }
    }

    /// One candidate extension of `x := t` at order position `idx`; returns
    /// `true` when the enclosing enumeration should unwind (meter fired or a
    /// sought witness was found).  `filter` carries the source occurrence
    /// mask for fact-driven enumerations, whose rows bypass the precomputed
    /// candidate lists and are subset-tested here instead.
    #[inline]
    fn extend(&mut self, idx: usize, x: u32, t: u32, filter: Option<&[u64]>) -> bool {
        // One candidate extension = one fuel step; an exhausted budget or
        // expired deadline unwinds the whole search within one flush
        // window (~4k candidates), not at the next stage boundary.
        if let Err(stop) = self.gas.step() {
            self.stopped = Some(stop);
            return true;
        }
        if let Some(mask) = filter {
            let sup = match &self.plan.remapped_occ {
                None => self.plan.tgt.mask_of(t as usize),
                Some(occ) => {
                    let sw = self.plan.src.slot_words;
                    &occ[t as usize * sw..(t as usize + 1) * sw]
                }
            };
            if !filter::mask_subset(mask, sup) {
                return false;
            }
        }
        let injective = self.mode == Mode::FindInjective;
        if injective {
            let (w, b) = (t as usize / 64, 1u64 << (t % 64));
            if self.used[w] & b != 0 {
                return false;
            }
            self.used[w] |= b;
        }
        self.assignment[x as usize] = t;
        if self.consistent(idx) {
            self.recurse(idx + 1);
        }
        self.assignment[x as usize] = u32::MAX;
        if injective {
            self.used[t as usize / 64] &= !(1u64 << (t % 64));
        }
        self.done()
    }

    /// Check every source fact completed at order position `idx`: its image
    /// (now fully assigned) must be a fact of the target.
    #[inline]
    fn consistent(&mut self, idx: usize) -> bool {
        let plan = self.plan;
        for &f in &plan.facts_at[idx] {
            let f = f as usize;
            let args = &plan.fact_args[plan.fact_off[f] as usize..plan.fact_off[f + 1] as usize];
            debug_assert!(args
                .iter()
                .all(|&a| self.assignment[a as usize] != u32::MAX));
            for (slot, &a) in args.iter().enumerate() {
                self.scratch[slot] = self.assignment[a as usize];
            }
            if !plan
                .tgt
                .contains_row(plan.fact_rel[f] as usize, &self.scratch[..args.len()])
            {
                return false;
            }
        }
        true
    }

    /// Total count, including the `n_tgt^k` factor for the `k` source
    /// elements that occur in no fact and were excluded from the search.
    fn total_count(&self) -> Nat {
        let searched = self.count_big.add_ref(&Nat::from_u64(self.count));
        if self.plan.excluded_unconstrained == 0 || searched.is_zero() {
            return searched;
        }
        searched
            .mul_ref(&Nat::from_usize(self.plan.n_tgt).pow(self.plan.excluded_unconstrained as u64))
    }

    /// Whether an assignment exists, accounting for excluded elements.
    fn exists(&self) -> bool {
        // Excluded elements are unconstrained; in injective mode the up-front
        // `n_src ≤ n_tgt` check guarantees enough spare targets remain.
        self.found
    }
}

/// The exact number of homomorphisms from `source` to `target`.
pub fn hom_count(source: &Structure, target: &Structure) -> Nat {
    if use_naive_engine() {
        return reference::hom_count(source, target);
    }
    let plan = Plan::build(source.flat(), target.flat(), source, target, false);
    let mut s = Search::new(&plan, Mode::CountAll);
    s.run();
    s.total_count()
}

/// [`hom_count`] under a fuel/deadline meter: the search charges one step
/// per candidate extension and unwinds with a typed [`Interrupt`] within one
/// flush window of the budget or deadline firing.  A returned count is
/// always the complete, exact count (partial searches never leak a value).
///
/// The `CQDET_NAIVE_HOM=1` oracle hatch falls back to the unmetered
/// reference engine (the deadline is still checked before and after).
pub fn hom_count_gas(
    source: &Structure,
    target: &Structure,
    gas: &mut Gas,
) -> Result<Nat, Interrupt> {
    if use_naive_engine() {
        gas.flush()?;
        let count = reference::hom_count(source, target);
        gas.flush()?;
        return Ok(count);
    }
    let plan = Plan::build(source.flat(), target.flat(), source, target, false);
    let mut s = Search::with_gas(&plan, Mode::CountAll, gas.clone());
    s.run();
    *gas = s.gas.clone();
    match s.stopped {
        Some(stop) => Err(stop),
        None => Ok(s.total_count()),
    }
}

/// Whether at least one homomorphism from `source` to `target` exists.
pub fn hom_exists(source: &Structure, target: &Structure) -> bool {
    if use_naive_engine() {
        return reference::hom_exists(source, target);
    }
    let plan = Plan::build(source.flat(), target.flat(), source, target, false);
    let mut s = Search::new(&plan, Mode::FindFirst);
    s.run();
    s.exists()
}

/// [`hom_exists`] under a fuel/deadline meter (see [`hom_count_gas`]).
pub fn hom_exists_gas(
    source: &Structure,
    target: &Structure,
    gas: &mut Gas,
) -> Result<bool, Interrupt> {
    if use_naive_engine() {
        gas.flush()?;
        let exists = reference::hom_exists(source, target);
        gas.flush()?;
        return Ok(exists);
    }
    let plan = Plan::build(source.flat(), target.flat(), source, target, false);
    let mut s = Search::with_gas(&plan, Mode::FindFirst, gas.clone());
    s.run();
    *gas = s.gas.clone();
    match s.stopped {
        // A witness found before the meter fired is still a witness.
        None | Some(_) if s.found => Ok(true),
        Some(stop) => Err(stop),
        None => Ok(false),
    }
}

thread_local! {
    /// Instrumentation: number of [`injective_hom_exists`] calls on this
    /// thread.  The canonical-key rewiring of [`crate::iso`] is supposed to
    /// answer every de-duplication/multiplicity question without a single
    /// injective search; tests and benches assert that via this counter.
    static INJECTIVE_PROBES: Cell<u64> = const { Cell::new(0) };
}

/// The number of injective-homomorphism searches started on this thread
/// (test/bench instrumentation; see [`injective_hom_exists`]).
pub fn injective_probe_count() -> u64 {
    INJECTIVE_PROBES.with(Cell::get)
}

/// Whether an *injective* homomorphism from `source` to `target` exists.
pub fn injective_hom_exists(source: &Structure, target: &Structure) -> bool {
    INJECTIVE_PROBES.with(|c| c.set(c.get() + 1));
    if use_naive_engine() {
        return reference::injective_hom_exists(source, target);
    }
    let plan = Plan::build(source.flat(), target.flat(), source, target, false);
    let mut s = Search::new(&plan, Mode::FindInjective);
    s.run();
    s.exists()
}

/// Enumerate all homomorphisms from `source` to `target`.
///
/// Intended for small instances (tests, examples, query evaluation with free
/// variables); the count can be exponential in the size of `source`.
pub fn hom_enumerate(source: &Structure, target: &Structure) -> Vec<Homomorphism> {
    if use_naive_engine() {
        return reference::hom_enumerate(source, target);
    }
    let (src, tgt) = (source.flat(), target.flat());
    let plan = Plan::build(src, tgt, source, target, true);
    let mut s = Search::new(&plan, Mode::Collect);
    s.run();
    s.collected
        .into_iter()
        .map(|assignment| {
            assignment
                .iter()
                .enumerate()
                .map(|(x, &t)| (src.dom[x], tgt.dom[t as usize]))
                .collect()
        })
        .collect()
}

/// Homomorphism counting factored through connected components:
/// `|hom(A, B)| = Π_C |hom(C, B)|` over the connected components `C` of `A`
/// (Lemma 4(5)).  Faster than [`hom_count`] when `A` is disconnected, and used
/// as an ablation baseline in the benchmarks.
pub fn hom_count_factored(source: &Structure, target: &Structure) -> Nat {
    let comps = connected_components(source);
    if comps.is_empty() {
        return hom_count(source, target);
    }
    let mut acc = Nat::one();
    for c in &comps {
        acc = acc.mul_ref(&hom_count(c, target));
        if acc.is_zero() {
            return acc;
        }
    }
    acc
}

/// Default byte budget of one hom memo before the session governor retargets
/// it (`cqdet serve --cache-bytes`): generous enough that tests and one-shot
/// runs never evict, bounded so a long-lived default handle cannot grow
/// without limit.
const HOM_CACHE_DEFAULT_BYTES: usize = 64 << 20;

/// Memo key: `[u32 LE target-canon length][target canon][source canon]`,
/// one flat allocation so the sharded map needs no nested lookup and the
/// snapshot codec can split the pair back apart.
fn hom_key(tgt_canon: &[u8], src_canon: &[u8]) -> Box<[u8]> {
    let mut key = Vec::with_capacity(4 + tgt_canon.len() + src_canon.len());
    key.extend_from_slice(&(tgt_canon.len() as u32).to_le_bytes());
    key.extend_from_slice(tgt_canon);
    key.extend_from_slice(src_canon);
    key.into_boxed_slice()
}

/// Split a [`hom_key`] back into `(target canon, source canon)`; `None` on
/// a malformed prefix (only reachable from a corrupt snapshot payload).
fn split_hom_key(key: &[u8]) -> Option<(&[u8], &[u8])> {
    let tgt_len = u32::from_le_bytes(key.get(..4)?.try_into().ok()?) as usize;
    let rest = key.get(4..)?;
    if tgt_len > rest.len() {
        return None;
    }
    Some(rest.split_at(tgt_len))
}

/// True byte cost of one memo entry: the key bytes, the count's limb
/// storage, and a fixed estimate of the map-entry bookkeeping.
#[allow(clippy::borrowed_box)] // must match the cache's `fn(&K, &V)` weigher type
fn hom_weight(key: &Box<[u8]>, value: &Nat) -> usize {
    key.len() + value.heap_bytes() + 48
}

/// Aggregate statistics of a [`SharedCaches`] handle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Number of [`hom_count_cached`]-style probes answered from the cache.
    pub hits: u64,
    /// Number of probes that had to run a fresh backtracking search.
    pub misses: u64,
    /// Number of `(source class, target)` pairs currently memoized.
    pub entries: u64,
}

/// A shareable handle to the cross-request caches of the homomorphism
/// engine — today, the canonical-key hom-count memo plus its hit/miss
/// counters.
///
/// Every thread owns a private default instance, which is what the free
/// function [`hom_count_cached`] uses; a *batch* caller (the
/// `cqdet-engine` session) instead creates one `Arc<SharedCaches>` and
/// installs it with [`with_shared_caches`] around each unit of work, so
/// that tasks sharing views, bases or separating structures pay for each
/// distinct `(source class, target)` count once per *session* instead of
/// once per thread or per call.
///
/// The memo key is deliberately asymmetric (see [`hom_count_cached`]):
/// sources — frozen query bodies and their components, small by
/// construction — are keyed by their isomorphism-invariant canonical key
/// ([`Structure::iso_class_key`]), targets by the cheap order-preserving
/// flat encoding.
pub struct SharedCaches {
    /// The memo: a governed sharded map under a byte cap — entries charge
    /// their key bytes plus the count's limb storage, and a full shard
    /// evicts cold pairs with a clock sweep instead of clearing wholesale.
    map: ShardedCache<Box<[u8]>, Nat>,
}

impl Default for SharedCaches {
    fn default() -> Self {
        SharedCaches::new()
    }
}

impl SharedCaches {
    /// A fresh, empty cache handle under the default byte budget.
    pub fn new() -> SharedCaches {
        SharedCaches {
            map: ShardedCache::new(HOM_CACHE_DEFAULT_BYTES, hom_weight),
        }
    }

    /// [`hom_count`] through this handle's memo: isomorphic sources share
    /// one entry, and concurrent callers share the map (a miss outside the
    /// lock may be computed twice under contention; both writers store the
    /// same value).
    pub fn hom_count(&self, source: &Structure, target: &Structure) -> Nat {
        match self.hom_count_impl(source, target, None) {
            Ok(count) => count,
            // Unmetered searches never stop early.
            Err(stop) => unreachable!("unmetered hom count interrupted: {stop}"),
        }
    }

    /// [`SharedCaches::hom_count`] under a fuel/deadline meter.  Cache hits
    /// are free; a miss runs the metered search and **only completed counts
    /// are inserted** — an interrupted search leaves the cache untouched, so
    /// later requests never observe a partial count.
    pub fn hom_count_gas(
        &self,
        source: &Structure,
        target: &Structure,
        gas: &mut Gas,
    ) -> Result<Nat, Interrupt> {
        self.hom_count_impl(source, target, Some(gas))
    }

    fn hom_count_impl(
        &self,
        source: &Structure,
        target: &Structure,
        gas: Option<&mut Gas>,
    ) -> Result<Nat, Interrupt> {
        let key = hom_key(target.flat().canon(), &source.flat().canon_key().bytes);
        if let Some(hit) = self.map.probe(&key) {
            return Ok(hit);
        }
        // Compute outside any shard lock; an interrupt propagates before
        // any insert, so partial results never poison the shared map.
        let count = match gas {
            Some(gas) => hom_count_gas(source, target, gas)?,
            None => hom_count(source, target),
        };
        Ok(self.map.insert_or_get(key, count))
    }

    /// Current hit/miss/entry counts.
    pub fn stats(&self) -> CacheStats {
        let usage = self.map.stats();
        CacheStats {
            hits: usage.hits,
            misses: usage.misses,
            entries: usage.entries,
        }
    }

    /// Full governed-cache counters: occupancy, byte usage and evictions on
    /// top of the hit/miss counts of [`SharedCaches::stats`].
    pub fn usage(&self) -> cqdet_cache::CacheUsage {
        self.map.stats()
    }

    /// Retarget the memo's byte cap (live; over-budget shards evict).
    pub fn set_cap_bytes(&self, bytes: usize) {
        self.map.set_cap(bytes);
    }

    /// Drop every memoized count (the counters are kept).
    pub fn clear(&self) {
        self.map.clear();
    }

    /// Visit every memoized `(target canon, source canon, count)` triple —
    /// the warm-start snapshot exporter.
    pub fn export_counts(&self, mut f: impl FnMut(&[u8], &[u8], &Nat)) {
        self.map.for_each(|key, count| {
            if let Some((tgt, src)) = split_hom_key(key) {
                f(tgt, src, count);
            }
        });
    }

    /// Seed one memo entry from a snapshot (no hit/miss counted).
    pub fn preload_count(&self, tgt_canon: &[u8], src_canon: &[u8], count: Nat) {
        self.map.insert_or_get(hom_key(tgt_canon, src_canon), count);
    }
}

thread_local! {
    /// The per-thread default [`SharedCaches`] instance behind
    /// [`hom_count_cached`] when no session handle is installed.
    static THREAD_CACHES: std::sync::Arc<SharedCaches> =
        std::sync::Arc::new(SharedCaches::new());
    /// The session override installed by [`with_shared_caches`], if any.
    static ACTIVE_CACHES: RefCell<Option<std::sync::Arc<SharedCaches>>> =
        const { RefCell::new(None) };
}

/// The cache handle [`hom_count_cached`] currently resolves to on this
/// thread: the [`with_shared_caches`] override if one is installed, the
/// thread default otherwise.
fn active_caches() -> std::sync::Arc<SharedCaches> {
    if let Some(c) = ACTIVE_CACHES.with(|a| a.borrow().clone()) {
        return c;
    }
    THREAD_CACHES.with(|c| c.clone())
}

/// Run `f` with `caches` installed as this thread's hom-count cache: every
/// [`hom_count_cached`] call inside `f` (including the symbolic-evaluation
/// machinery of [`crate::StructureExpr`]) reads and fills the shared handle
/// instead of the thread default.  Restores the previous handle on exit,
/// including on panic.  The override is per-thread; a scoped fan-out inside
/// `f` must re-install on its worker threads.
pub fn with_shared_caches<R>(caches: &std::sync::Arc<SharedCaches>, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<std::sync::Arc<SharedCaches>>);
    impl Drop for Restore {
        fn drop(&mut self) {
            ACTIVE_CACHES.with(|a| *a.borrow_mut() = self.0.take());
        }
    }
    let previous = ACTIVE_CACHES.with(|a| a.borrow_mut().replace(caches.clone()));
    let _restore = Restore(previous);
    f()
}

/// `(hits, misses)` of [`hom_count_cached`] on this thread's active cache
/// handle (test/bench instrumentation).
pub fn hom_cache_stats() -> (u64, u64) {
    let stats = active_caches().stats();
    (stats.hits, stats.misses)
}

/// [`hom_count`] with memoization keyed by the true *canonical key*
/// ([`crate::canon`]) of the **source** and the cheap order-preserving
/// encoding of the **target**: any two isomorphic sources share one cache
/// entry no matter how (or in which order) their frozen constants were
/// named, while the target — arbitrary instance data, possibly large or
/// symmetric — is never canonized (its key only has to identify it, and a
/// cross-isomorphism miss on the target side merely costs a recount).
///
/// Symbolic structure evaluation ([`crate::StructureExpr`]) asks for the same
/// `(component, base-structure)` counts over and over — every power
/// `(s⁽²⁾)^{j}` of the good-basis construction shares its base, and the
/// evaluation matrix iterates all basis elements against all powers — so the
/// memo turns a quadratic number of searches into one search per distinct
/// pair, with the sources deduplicated *up to isomorphism*.  (The previous
/// memo keyed sources on the order-preserving encoding of `crate::flat`
/// and missed whenever isomorphic components were inserted in a different
/// fact order.)
///
/// The memo lives in a per-thread [`SharedCaches`] instance by default;
/// batch sessions install a cross-task handle with [`with_shared_caches`].
pub fn hom_count_cached(source: &Structure, target: &Structure) -> Nat {
    active_caches().hom_count(source, target)
}

/// [`hom_count_cached`] under a fuel/deadline meter (see
/// [`SharedCaches::hom_count_gas`]): hits are free, interrupted misses are
/// never cached.
pub fn hom_count_cached_gas(
    source: &Structure,
    target: &Structure,
    gas: &mut Gas,
) -> Result<Nat, Interrupt> {
    active_caches().hom_count_gas(source, target, gas)
}

/// The original `BTreeMap`-based backtracking engine, kept verbatim as the
/// differential-testing oracle for the flat-index engine (and selectable at
/// runtime with `CQDET_NAIVE_HOM=1`).
pub mod reference {
    use super::{Homomorphism, Mode};
    use crate::structure::{Const, Structure};
    use cqdet_bigint::Nat;
    use std::collections::{BTreeMap, BTreeSet};

    struct Search<'a> {
        source: &'a Structure,
        target: &'a Structure,
        target_domain: Vec<Const>,
        /// Source elements in assignment order.
        order: Vec<Const>,
        /// For each source element, the facts (relation, args) that mention it.
        facts_of: BTreeMap<Const, Vec<(String, Vec<Const>)>>,
        assignment: BTreeMap<Const, Const>,
        used_targets: BTreeSet<Const>,
        mode: Mode,
        count: u64,
        count_big: Nat,
        found: bool,
        collected: Vec<Homomorphism>,
    }

    impl<'a> Search<'a> {
        fn new(source: &'a Structure, target: &'a Structure, mode: Mode) -> Self {
            let target_domain: Vec<Const> = target.domain().into_iter().collect();
            let order = assignment_order(source);
            let mut facts_of: BTreeMap<Const, Vec<(String, Vec<Const>)>> = BTreeMap::new();
            for f in source.facts() {
                for &a in &f.args {
                    facts_of
                        .entry(a)
                        .or_default()
                        .push((f.relation.clone(), f.args.clone()));
                }
            }
            Search {
                source,
                target,
                target_domain,
                order,
                facts_of,
                assignment: BTreeMap::new(),
                used_targets: BTreeSet::new(),
                mode,
                count: 0,
                count_big: Nat::zero(),
                found: false,
                collected: Vec::new(),
            }
        }

        /// Nullary facts have no variables, so they are checked once up front.
        fn nullary_facts_ok(&self) -> bool {
            self.source
                .facts()
                .filter(|f| f.args.is_empty())
                .all(|f| self.target.contains_fact(&f.relation, &[]))
        }

        fn run(&mut self) {
            if !self.nullary_facts_ok() {
                return;
            }
            if self.order.is_empty() {
                // No variables to assign: exactly the empty homomorphism
                // (|hom(∅, D)| = 1, as the paper notes).
                self.register_leaf();
                return;
            }
            self.recurse(0);
        }

        fn register_leaf(&mut self) {
            match self.mode {
                Mode::CountAll => {
                    self.count += 1;
                    if self.count == u64::MAX {
                        self.count_big += &Nat::from_u64(self.count);
                        self.count = 0;
                    }
                }
                Mode::FindFirst | Mode::FindInjective => self.found = true,
                Mode::Collect => self.collected.push(self.assignment.clone()),
            }
        }

        fn done(&self) -> bool {
            matches!(self.mode, Mode::FindFirst | Mode::FindInjective) && self.found
        }

        fn recurse(&mut self, idx: usize) {
            if self.done() {
                return;
            }
            if idx == self.order.len() {
                self.register_leaf();
                return;
            }
            let x = self.order[idx];
            let injective = matches!(self.mode, Mode::FindInjective);
            for ti in 0..self.target_domain.len() {
                let b = self.target_domain[ti];
                if injective && self.used_targets.contains(&b) {
                    continue;
                }
                self.assignment.insert(x, b);
                if injective {
                    self.used_targets.insert(b);
                }
                if self.consistent(x) {
                    self.recurse(idx + 1);
                }
                self.assignment.remove(&x);
                if injective {
                    self.used_targets.remove(&b);
                }
                if self.done() {
                    return;
                }
            }
        }

        /// Check every source fact mentioning `x` whose arguments are now all
        /// assigned: its image must be a fact of the target.
        fn consistent(&self, x: Const) -> bool {
            let Some(facts) = self.facts_of.get(&x) else {
                return true;
            };
            'facts: for (rel, args) in facts {
                let mut image = Vec::with_capacity(args.len());
                for a in args {
                    match self.assignment.get(a) {
                        Some(&b) => image.push(b),
                        None => continue 'facts,
                    }
                }
                if !self.target.contains_fact(rel, &image) {
                    return false;
                }
            }
            true
        }

        fn total_count(&self) -> Nat {
            self.count_big.add_ref(&Nat::from_u64(self.count))
        }
    }

    /// Order the source domain so that each connected component is visited in
    /// breadth-first order (maximises early constraint propagation).
    fn assignment_order(source: &Structure) -> Vec<Const> {
        let mut order = Vec::new();
        let mut seen = BTreeSet::new();
        // Adjacency between source elements that co-occur in a fact.
        let mut adj: BTreeMap<Const, BTreeSet<Const>> = BTreeMap::new();
        for f in source.facts() {
            for &a in &f.args {
                for &b in &f.args {
                    if a != b {
                        adj.entry(a).or_default().insert(b);
                    }
                }
                adj.entry(a).or_default();
            }
        }
        for &start in source.domain().iter() {
            if seen.contains(&start) {
                continue;
            }
            let mut queue = std::collections::VecDeque::from([start]);
            seen.insert(start);
            while let Some(x) = queue.pop_front() {
                order.push(x);
                if let Some(neigh) = adj.get(&x) {
                    for &n in neigh {
                        if seen.insert(n) {
                            queue.push_back(n);
                        }
                    }
                }
            }
        }
        order
    }

    /// The exact number of homomorphisms from `source` to `target`.
    pub fn hom_count(source: &Structure, target: &Structure) -> Nat {
        let mut s = Search::new(source, target, Mode::CountAll);
        s.run();
        s.total_count()
    }

    /// Whether at least one homomorphism from `source` to `target` exists.
    pub fn hom_exists(source: &Structure, target: &Structure) -> bool {
        let mut s = Search::new(source, target, Mode::FindFirst);
        s.run();
        s.found
    }

    /// Whether an *injective* homomorphism exists.
    pub fn injective_hom_exists(source: &Structure, target: &Structure) -> bool {
        let mut s = Search::new(source, target, Mode::FindInjective);
        s.run();
        s.found
    }

    /// Enumerate all homomorphisms from `source` to `target`.
    pub fn hom_enumerate(source: &Structure, target: &Structure) -> Vec<Homomorphism> {
        let mut s = Search::new(source, target, Mode::Collect);
        s.run();
        s.collected
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn edge_schema() -> Schema {
        Schema::binary(["E"])
    }

    /// The directed path with `n` edges: 0 → 1 → … → n.
    fn path(n: usize) -> Structure {
        let mut s = Structure::new(edge_schema());
        for i in 0..n {
            s.add("E", &[i as Const, (i + 1) as Const]);
        }
        s
    }

    /// The directed cycle with `n` vertices.
    fn cycle(n: usize) -> Structure {
        let mut s = Structure::new(edge_schema());
        for i in 0..n {
            s.add("E", &[i as Const, ((i + 1) % n) as Const]);
        }
        s
    }

    /// The complete directed graph (with loops) on `n` vertices.
    fn clique_with_loops(n: usize) -> Structure {
        let mut s = Structure::new(edge_schema());
        for i in 0..n {
            for j in 0..n {
                s.add("E", &[i as Const, j as Const]);
            }
        }
        s
    }

    #[test]
    fn empty_source_has_one_hom() {
        let empty = Structure::new(edge_schema());
        assert_eq!(hom_count(&empty, &path(3)), Nat::one());
        assert_eq!(hom_count(&empty, &empty), Nat::one());
        assert!(hom_exists(&empty, &empty));
    }

    #[test]
    fn single_edge_counts_edges() {
        // hom(edge, G) = number of edges of G.
        let e = path(1);
        assert_eq!(hom_count(&e, &path(4)), Nat::from_u64(4));
        assert_eq!(hom_count(&e, &cycle(5)), Nat::from_u64(5));
        assert_eq!(hom_count(&e, &clique_with_loops(3)), Nat::from_u64(9));
    }

    #[test]
    fn path_into_clique_with_loops() {
        // Every map of the k+1 vertices is a homomorphism: n^(k+1).
        assert_eq!(
            hom_count(&path(2), &clique_with_loops(3)),
            Nat::from_u64(27)
        );
        assert_eq!(
            hom_count(&path(3), &clique_with_loops(2)),
            Nat::from_u64(16)
        );
    }

    #[test]
    fn path_into_path_counts() {
        // hom(P_k, P_n) (paths as directed edge-paths) = n - k + 1 for k <= n.
        assert_eq!(hom_count(&path(2), &path(4)), Nat::from_u64(3));
        assert_eq!(hom_count(&path(4), &path(4)), Nat::from_u64(1));
        assert_eq!(hom_count(&path(5), &path(4)), Nat::zero());
        assert!(!hom_exists(&path(5), &path(4)));
    }

    #[test]
    fn cycle_into_cycle() {
        // A directed 3-cycle maps into a directed 3-cycle by rotation: 3 homs.
        assert_eq!(hom_count(&cycle(3), &cycle(3)), Nat::from_u64(3));
        // No hom from a 3-cycle into a 4-cycle (lengths incompatible).
        assert_eq!(hom_count(&cycle(3), &cycle(4)), Nat::zero());
        // 4-cycle into 2-cycle: wraps around, 2 homs.
        assert_eq!(hom_count(&cycle(4), &cycle(2)), Nat::from_u64(2));
    }

    #[test]
    fn disconnected_source_multiplies() {
        // Two disjoint edges into C_5: 5 * 5 = 25 (Lemma 4(5)).
        let mut two_edges = Structure::new(edge_schema());
        two_edges.add("E", &[0, 1]);
        two_edges.add("E", &[10, 11]);
        let t = cycle(5);
        assert_eq!(hom_count(&two_edges, &t), Nat::from_u64(25));
        assert_eq!(hom_count_factored(&two_edges, &t), Nat::from_u64(25));
    }

    #[test]
    fn factored_matches_plain_on_various_inputs() {
        let mut src = Structure::new(edge_schema());
        src.add("E", &[0, 1]);
        src.add("E", &[1, 2]);
        src.add("E", &[5, 6]);
        for target in [path(3), cycle(4), clique_with_loops(3)] {
            assert_eq!(hom_count(&src, &target), hom_count_factored(&src, &target));
        }
    }

    #[test]
    fn isolated_source_elements_map_anywhere() {
        let mut src = Structure::new(edge_schema());
        src.add_isolated(42);
        // One isolated vertex → |dom(target)| homomorphisms.
        assert_eq!(hom_count(&src, &path(3)), Nat::from_u64(4));
        let mut tgt = path(2);
        tgt.add_isolated(99);
        assert_eq!(hom_count(&src, &tgt), Nat::from_u64(4));
    }

    #[test]
    fn unary_and_mixed_arity() {
        let sch = Schema::with_relations([("R", 2), ("P", 1)]);
        let mut src = Structure::new(sch.clone());
        src.add("R", &[0, 1]);
        src.add("P", &[0]);
        let mut tgt = Structure::new(sch);
        tgt.add("R", &[10, 11]);
        tgt.add("R", &[12, 11]);
        tgt.add("P", &[10]);
        // Only the edge (10,11) has a P-marked source.
        assert_eq!(hom_count(&src, &tgt), Nat::one());
        assert!(hom_exists(&src, &tgt));
    }

    #[test]
    fn nullary_facts_gate_everything() {
        let sch = Schema::with_relations([("H", 0), ("P", 1)]);
        let mut src = Structure::new(sch.clone());
        src.add("H", &[]);
        src.add("P", &[0]);
        let mut tgt_without = Structure::new(sch.clone());
        tgt_without.add("P", &[5]);
        assert_eq!(hom_count(&src, &tgt_without), Nat::zero());
        let mut tgt_with = tgt_without.clone();
        tgt_with.add("H", &[]);
        assert_eq!(hom_count(&src, &tgt_with), Nat::one());
    }

    #[test]
    fn enumerate_returns_all_assignments() {
        let homs = hom_enumerate(&path(1), &path(2));
        assert_eq!(homs.len(), 2);
        for h in &homs {
            assert_eq!(h.len(), 2);
            let (a, b) = (h[&0], h[&1]);
            assert!(path(2).contains_fact("E", &[a, b]));
        }
    }

    #[test]
    fn injective_homs() {
        assert!(injective_hom_exists(&path(2), &path(2)));
        assert!(injective_hom_exists(&path(2), &path(5)));
        // C_4 maps into C_2 homomorphically but not injectively.
        assert!(hom_exists(&cycle(4), &cycle(2)));
        assert!(!injective_hom_exists(&cycle(4), &cycle(2)));
    }

    #[test]
    fn hom_composition_closure() {
        // If hom(A,B) and hom(B,C) are nonempty then hom(A,C) is nonempty.
        let a = path(3);
        let b = cycle(3);
        let c = clique_with_loops(2);
        assert!(hom_exists(&a, &b));
        assert!(hom_exists(&b, &c));
        assert!(hom_exists(&a, &c));
    }

    #[test]
    fn flat_engine_agrees_with_reference_on_edge_cases() {
        let empty = Structure::new(edge_schema());
        let mut iso_only = Structure::new(edge_schema());
        iso_only.add_isolated(3);
        iso_only.add_isolated(8);
        let cases: Vec<(Structure, Structure)> = vec![
            (empty.clone(), empty.clone()),
            (iso_only.clone(), empty.clone()),
            (empty.clone(), iso_only.clone()),
            (iso_only.clone(), iso_only.clone()),
            (path(2), iso_only.clone()),
            (iso_only, cycle(3)),
        ];
        for (s, t) in &cases {
            assert_eq!(hom_count(s, t), reference::hom_count(s, t), "{s} -> {t}");
            assert_eq!(hom_exists(s, t), reference::hom_exists(s, t), "{s} -> {t}");
            assert_eq!(
                injective_hom_exists(s, t),
                reference::injective_hom_exists(s, t),
                "{s} -> {t}"
            );
        }
    }

    #[test]
    fn injective_needs_room_for_unconstrained_elements() {
        // Source: one edge plus one isolated element (3 elements total);
        // target: exactly 2 elements.  A plain hom exists, an injective one
        // does not.
        let mut src = path(1);
        src.add_isolated(9);
        let tgt = path(1);
        assert!(hom_exists(&src, &tgt));
        assert!(!injective_hom_exists(&src, &tgt));
        assert_eq!(
            injective_hom_exists(&src, &tgt),
            reference::injective_hom_exists(&src, &tgt)
        );
        // With a 3-element target there is room.
        let tgt3 = path(2);
        assert!(injective_hom_exists(&src, &tgt3));
    }

    #[test]
    fn enumerate_includes_unconstrained_elements() {
        let mut src = path(1);
        src.add_isolated(7);
        let homs = hom_enumerate(&src, &path(2));
        // 2 edge placements × 3 choices for the isolated element.
        assert_eq!(homs.len(), 6);
        for h in &homs {
            assert_eq!(h.len(), 3);
            assert!(h.contains_key(&7));
        }
        assert_eq!(homs.len(), reference::hom_enumerate(&src, &path(2)).len());
    }

    #[test]
    fn cross_schema_sources_count_zero_or_factor_out() {
        // Source over schema {E, F}, target over {E} only: an F-fact makes
        // the count zero; without F-facts the F relation is irrelevant.
        let sch_ef = Schema::binary(["E", "F"]);
        let mut with_f = Structure::new(sch_ef.clone());
        with_f.add("E", &[0, 1]);
        with_f.add("F", &[0, 1]);
        let mut without_f = Structure::new(sch_ef);
        without_f.add("E", &[0, 1]);
        let tgt = cycle(3);
        assert_eq!(hom_count(&with_f, &tgt), Nat::zero());
        assert_eq!(hom_count(&without_f, &tgt), Nat::from_u64(3));
        assert_eq!(
            hom_count(&with_f, &tgt),
            reference::hom_count(&with_f, &tgt)
        );
        assert_eq!(
            hom_count(&without_f, &tgt),
            reference::hom_count(&without_f, &tgt)
        );
    }

    #[test]
    fn cross_schema_slot_offsets_do_not_misalign_masks() {
        // Regression: the source schema has an extra relation A sorting
        // before E, so E's occurrence slots sit at different offsets in the
        // two schemas; the candidate filter must remap, not compare raw masks.
        let src_sch = Schema::with_relations([("A", 2), ("E", 2)]);
        let mut src = Structure::new(src_sch);
        src.add("E", &[0, 1]);
        let mut tgt = Structure::new(Schema::binary(["E"]));
        tgt.add("E", &[0, 1]);
        assert_eq!(hom_count(&src, &tgt), Nat::one());
        assert_eq!(hom_count(&src, &tgt), reference::hom_count(&src, &tgt));
        assert!(hom_exists(&src, &tgt));
        assert!(injective_hom_exists(&src, &tgt));
        // And the other direction: target schema has the extra relation.
        let mut src2 = Structure::new(Schema::binary(["E"]));
        src2.add("E", &[0, 1]);
        let mut tgt2 = Structure::new(Schema::with_relations([("A", 2), ("E", 2)]));
        tgt2.add("A", &[5, 6]);
        tgt2.add("E", &[0, 1]);
        tgt2.add("E", &[1, 2]);
        assert_eq!(hom_count(&src2, &tgt2), Nat::from_u64(2));
        assert_eq!(hom_count(&src2, &tgt2), reference::hom_count(&src2, &tgt2));
    }

    #[test]
    fn cached_counts_agree_and_hit() {
        let w = path(2);
        let t = clique_with_loops(3);
        let direct = hom_count(&w, &t);
        assert_eq!(hom_count_cached(&w, &t), direct);
        // Second call hits the cache (same canonical forms).
        assert_eq!(hom_count_cached(&w, &t), direct);
        // A renamed copy of the source shares the canonical form.
        let w2 = w.map_constants(|c| c + 100);
        assert_eq!(hom_count_cached(&w2, &t), direct);
    }

    #[test]
    fn shared_caches_accumulate_across_calls_and_threads() {
        let caches = std::sync::Arc::new(SharedCaches::new());
        let w = path(2);
        let t = clique_with_loops(3);
        let direct = hom_count(&w, &t);
        assert_eq!(caches.hom_count(&w, &t), direct);
        assert_eq!(caches.hom_count(&w, &t), direct);
        let s = caches.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        // A different thread probing the same handle hits the same entry
        // (the whole point of extracting the cache behind a shared handle).
        let caches2 = caches.clone();
        let w2 = w.map_constants(|c| c + 7);
        std::thread::spawn(move || {
            assert_eq!(caches2.hom_count(&w2, &clique_with_loops(3)), direct);
        })
        .join()
        .unwrap();
        assert_eq!(caches.stats().hits, 2);
        caches.clear();
        assert_eq!(caches.stats().entries, 0);
    }

    #[test]
    fn fuelled_search_matches_unfuelled_or_stops_typed() {
        use cqdet_parallel::{Budget, CancelToken};
        let src = path(3);
        let tgt = clique_with_loops(4);
        let exact = hom_count(&src, &tgt);
        // Generous budget: identical answer.
        let budget = Budget::with_limits(Some(1 << 30), None);
        let mut gas = Gas::new(&CancelToken::none(), &budget, "hom");
        assert_eq!(hom_count_gas(&src, &tgt, &mut gas).unwrap(), exact);
        assert!(budget.steps_spent() > 0, "the search must charge fuel");
        // Tiny budget on a big search space: typed exhaustion, no panic.
        let big_src = path(8);
        let big_tgt = clique_with_loops(8);
        let tiny = Budget::with_limits(Some(1), None);
        let mut gas = Gas::new(&CancelToken::none(), &tiny, "hom");
        let stop = hom_count_gas(&big_src, &big_tgt, &mut gas).unwrap_err();
        assert!(matches!(stop, Interrupt::Exhausted(e) if e.what == "steps"));
        // An expired deadline surfaces as Expired with the stage label.
        let ctl = CancelToken::with_deadline(std::time::Duration::ZERO);
        let mut gas = Gas::new(&ctl, &Budget::none(), "gate");
        let stop = hom_count_gas(&big_src, &big_tgt, &mut gas).unwrap_err();
        assert!(matches!(stop, Interrupt::Expired(e) if e.stage == "gate"));
    }

    #[test]
    fn fuelled_exists_keeps_found_witnesses() {
        use cqdet_parallel::{Budget, CancelToken};
        // FindFirst succeeds long before any realistic budget: a found
        // witness survives even a post-hoc budget overrun check.
        let src = path(2);
        let tgt = clique_with_loops(3);
        let budget = Budget::with_limits(Some(1 << 20), None);
        let mut gas = Gas::new(&CancelToken::none(), &budget, "gate");
        assert!(hom_exists_gas(&src, &tgt, &mut gas).unwrap());
    }

    #[test]
    fn interrupted_cached_count_is_not_inserted() {
        use cqdet_parallel::{Budget, CancelToken};
        let caches = std::sync::Arc::new(SharedCaches::new());
        let src = path(8);
        let tgt = clique_with_loops(8);
        let tiny = Budget::with_limits(Some(1), None);
        let mut gas = Gas::new(&CancelToken::none(), &tiny, "hom");
        assert!(caches.hom_count_gas(&src, &tgt, &mut gas).is_err());
        assert_eq!(
            caches.stats().entries,
            0,
            "an interrupted search must not poison the cache"
        );
        // The same pair computed without a budget afterwards is correct and
        // cached, and a metered *hit* costs no fuel.
        let exact = caches.hom_count(&src, &tgt);
        let spent_before = tiny.steps_spent();
        let mut gas = Gas::new(&CancelToken::none(), &tiny, "hom");
        assert_eq!(caches.hom_count_gas(&src, &tgt, &mut gas).unwrap(), exact);
        assert_eq!(tiny.steps_spent(), spent_before, "hits are free");
    }

    #[test]
    fn with_shared_caches_scopes_the_override() {
        let caches = std::sync::Arc::new(SharedCaches::new());
        let w = cycle(3);
        let t = clique_with_loops(2);
        let before = caches.stats();
        with_shared_caches(&caches, || {
            hom_count_cached(&w, &t);
            hom_count_cached(&w, &t);
        });
        let after = caches.stats();
        assert_eq!(after.misses, before.misses + 1, "first call misses");
        assert_eq!(after.hits, before.hits + 1, "second call hits");
        // Outside the scope the thread default is active again: the session
        // handle sees no further traffic.
        hom_count_cached(&w, &t);
        assert_eq!(caches.stats(), after);
    }
}
