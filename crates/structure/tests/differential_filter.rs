//! Differential tests for the candidate-filter kernels: the auto-vectorized
//! lane kernel must agree with the retained scalar oracle — directly on
//! random lane matrices, and end-to-end through `hom_count`, whose
//! plan-build candidate lists are the only consumer of the filter.
//!
//! The end-to-end test flips the process-wide `force_scalar_filter` knob, so
//! everything touching it lives in this dedicated test binary (a single
//! `#[test]` body per knob scope) and restores the default before returning.

use cqdet_structure::filter::{
    force_scalar_filter, lane_superset_indices, scalar_superset_indices,
};
use cqdet_structure::hom::reference;
use cqdet_structure::{hom_count, Schema, StructureGenerator};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The two kernels agree on random lane matrices of every stride shape
    /// the specialization covers, including the all-zero mask (matches
    /// every element) and the single-element matrix.
    #[test]
    fn kernels_agree_on_random_lanes(
        stride in 1usize..7,
        n in 0usize..20,
        seed in any::<u64>(),
        zero_mask in any::<bool>(),
    ) {
        // Deterministic xorshift fill: proptest's collection strategies
        // would shrink the lane matrix and stride out of sync.
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let lanes: Vec<u64> = (0..n * stride).map(|_| next()).collect();
        let mask: Vec<u64> = (0..stride)
            .map(|_| if zero_mask { 0 } else { next() & next() })
            .collect();
        prop_assert_eq!(
            lane_superset_indices(&mask, &lanes, stride, n),
            scalar_superset_indices(&mask, &lanes, stride, n)
        );
        if n > 0 {
            // Single-element edge case, and an element's own mask is always
            // a superset of itself.
            let first = lanes[..stride].to_vec();
            prop_assert_eq!(
                lane_superset_indices(&first, &lanes, stride, 1),
                vec![0u32]
            );
        }
    }
}

/// `hom_count` is invariant under the kernel choice on random structures —
/// and both kernels agree with the naive reference engine.  One `#[test]`
/// owns the global knob for the whole binary.
#[test]
fn hom_count_invariant_under_filter_kernel() {
    let schema = Schema::with_relations([("E", 2), ("P", 1), ("T", 3)]);
    for seed in 0..40u64 {
        let source =
            StructureGenerator::new(schema.clone(), seed).random_with_facts(3, (seed % 5) as usize);
        let target = StructureGenerator::new(schema.clone(), seed ^ 0xBEEF)
            .random_with_facts(1 + (seed % 4) as usize, (seed % 11) as usize);
        let lane = hom_count(&source, &target);
        force_scalar_filter(true);
        let scalar = hom_count(&source, &target);
        force_scalar_filter(false);
        assert_eq!(lane, scalar, "kernel mismatch at seed {seed}");
        assert_eq!(
            lane,
            reference::hom_count(&source, &target),
            "engine mismatch at seed {seed}"
        );
    }
}
