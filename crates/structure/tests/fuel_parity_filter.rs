//! Fuel parity across the filter kernels: the lane rewrite must not move
//! the fuel needle — `hom_count_gas` charges identical step/byte totals
//! whether the lane kernel or the scalar oracle filters the candidate
//! lists.  This holds by construction (the filter runs at plan-build time,
//! which is unmetered, and both kernels yield identical candidate lists,
//! hence identical searches), and this test pins the construction.
//!
//! Flips the process-wide `force_scalar_filter` knob → dedicated binary.

use cqdet_parallel::{Budget, CancelToken, Gas};
use cqdet_structure::filter::force_scalar_filter;
use cqdet_structure::{hom_count_gas, Schema, Structure, StructureGenerator};

/// Run one metered count and return `(count, steps, bytes)`.
fn metered(source: &Structure, target: &Structure) -> (cqdet_structure::Nat, u64, u64) {
    let ctl = CancelToken::new();
    let budget = Budget::with_limits(Some(u64::MAX), Some(u64::MAX));
    let mut gas = Gas::new(&ctl, &budget, "test");
    let count = hom_count_gas(source, target, &mut gas).expect("budget is effectively unlimited");
    (count, budget.steps_spent(), budget.bytes_spent())
}

#[test]
fn hom_count_charges_identically_on_both_kernels() {
    let schema = Schema::with_relations([("R0", 2), ("R1", 2)]);
    // The bench workload's shape: a disjoint union of 2-paths against a
    // dense random target, plus a handful of smaller generated pairs.
    let mut source = Structure::new(schema.clone());
    for i in 0..3u64 {
        source.add("R0", &[10 * i, 10 * i + 1]);
        source.add("R1", &[10 * i + 1, 10 * i + 2]);
    }
    let mut cases = vec![(
        source,
        StructureGenerator::new(schema.clone(), 0x5EED).random_with_facts(12, 40),
    )];
    for seed in 0..8u64 {
        cases.push((
            StructureGenerator::new(schema.clone(), seed).random_with_facts(3, 4),
            StructureGenerator::new(schema.clone(), seed ^ 0xF00D).random_with_facts(6, 14),
        ));
    }
    for (i, (src, tgt)) in cases.iter().enumerate() {
        let (lane_count, lane_steps, lane_bytes) = metered(src, tgt);
        force_scalar_filter(true);
        let (scalar_count, scalar_steps, scalar_bytes) = metered(src, tgt);
        force_scalar_filter(false);
        assert_eq!(lane_count, scalar_count, "case {i}: counts differ");
        assert_eq!(lane_steps, scalar_steps, "case {i}: step totals differ");
        assert_eq!(lane_bytes, scalar_bytes, "case {i}: byte totals differ");
        assert!(lane_steps > 0, "case {i}: the workload must be metered");
    }
}
