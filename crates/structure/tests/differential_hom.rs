//! Differential tests: the interned flat-index homomorphism engine must agree
//! with the retained naive `BTreeMap` reference engine ([`hom::reference`]) on
//! random structures — exact counts, existence, injective existence, and
//! enumerated assignments.

use cqdet_structure::hom::reference;
use cqdet_structure::{
    hom_count, hom_count_cached, hom_count_factored, hom_enumerate, hom_exists,
    injective_hom_exists, Schema, Structure, StructureGenerator,
};
use proptest::prelude::*;

fn schema() -> Schema {
    Schema::with_relations([("E", 2), ("P", 1), ("T", 3)])
}

/// A schema sharing E/P/T with [`schema`] but with an extra relation sorting
/// *before* the shared ones, so shared relations sit at different slot
/// offsets — the layout the flat engine must remap, not compare raw.
fn shifted_schema() -> Schema {
    Schema::with_relations([("A", 2), ("E", 2), ("P", 1), ("T", 3)])
}

fn random_structure(seed: u64, domain: usize, facts: usize) -> Structure {
    StructureGenerator::new(schema(), seed).random_with_facts(domain.max(1), facts)
}

fn random_shifted(seed: u64, domain: usize, facts: usize) -> Structure {
    StructureGenerator::new(shifted_schema(), seed).random_with_facts(domain.max(1), facts)
}

/// Sprinkle isolated elements so the unconstrained-element paths are hit.
fn with_isolated(mut s: Structure, seed: u64) -> Structure {
    for k in 0..seed % 3 {
        s.add_isolated(1000 + k);
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Counts agree between the flat engine, the reference engine, the
    /// component-factored variant and the memoized variant.
    #[test]
    fn counts_agree(seed in 0u64..100_000, src_facts in 0usize..5,
                    dom in 1usize..5, tgt_facts in 0usize..12) {
        let source = with_isolated(random_structure(seed, 3, src_facts), seed);
        let target = with_isolated(random_structure(seed ^ 0xABCD, dom, tgt_facts), seed / 3);
        let fast = hom_count(&source, &target);
        let naive = reference::hom_count(&source, &target);
        prop_assert_eq!(&fast, &naive, "count mismatch: {} -> {}", source, target);
        prop_assert_eq!(&hom_count_factored(&source, &target), &naive);
        prop_assert_eq!(&hom_count_cached(&source, &target), &naive);
    }

    /// Existence and injective existence agree.
    #[test]
    fn existence_agrees(seed in 0u64..100_000, src_facts in 0usize..5,
                        dom in 1usize..5, tgt_facts in 0usize..12) {
        let source = with_isolated(random_structure(seed, 3, src_facts), seed);
        let target = with_isolated(random_structure(seed ^ 0xF00D, dom, tgt_facts), seed / 5);
        prop_assert_eq!(
            hom_exists(&source, &target),
            reference::hom_exists(&source, &target),
            "existence mismatch: {} -> {}", source, target
        );
        prop_assert_eq!(
            injective_hom_exists(&source, &target),
            reference::injective_hom_exists(&source, &target),
            "injective mismatch: {} -> {}", source, target
        );
    }

    /// Enumeration returns exactly the same set of assignments.
    #[test]
    fn enumeration_agrees(seed in 0u64..100_000, src_facts in 0usize..4,
                          dom in 1usize..4, tgt_facts in 0usize..8) {
        let source = with_isolated(random_structure(seed, 2, src_facts), seed);
        let target = random_structure(seed ^ 0xBEEF, dom, tgt_facts);
        let mut fast = hom_enumerate(&source, &target);
        let mut naive = reference::hom_enumerate(&source, &target);
        fast.sort();
        naive.sort();
        prop_assert_eq!(fast, naive, "enumeration mismatch: {} -> {}", source, target);
    }

    /// Cross-schema pairs (shared relations at different slot offsets in the
    /// two schemas) agree with the reference engine in both directions.
    #[test]
    fn cross_schema_counts_agree(seed in 0u64..100_000, src_facts in 0usize..5,
                                 dom in 1usize..5, tgt_facts in 0usize..10) {
        let plain = random_structure(seed, 3, src_facts);
        let shifted = random_shifted(seed ^ 0xD00F, dom, tgt_facts);
        prop_assert_eq!(
            hom_count(&plain, &shifted),
            reference::hom_count(&plain, &shifted),
            "plain -> shifted: {} -> {}", plain, shifted
        );
        prop_assert_eq!(
            hom_count(&shifted, &plain),
            reference::hom_count(&shifted, &plain),
            "shifted -> plain: {} -> {}", shifted, plain
        );
        prop_assert_eq!(
            hom_exists(&plain, &shifted),
            reference::hom_exists(&plain, &shifted)
        );
        prop_assert_eq!(
            injective_hom_exists(&shifted, &plain),
            reference::injective_hom_exists(&shifted, &plain)
        );
    }

    /// The count equals the number of enumerated homomorphisms (on instances
    /// small enough to enumerate).
    #[test]
    fn count_equals_enumeration(seed in 0u64..100_000, src_facts in 0usize..4,
                                tgt_facts in 0usize..8) {
        let source = random_structure(seed, 3, src_facts);
        let target = random_structure(seed ^ 0x5EED, 3, tgt_facts);
        let count = hom_count(&source, &target);
        let listed = hom_enumerate(&source, &target).len();
        prop_assert_eq!(count.to_usize(), Some(listed));
    }
}

/// Directed fixtures with exactly known counts, run through both engines.
#[test]
fn engines_agree_on_known_fixtures() {
    let sch = Schema::binary(["E"]);
    let path = |n: usize| {
        let mut s = Structure::new(sch.clone());
        for i in 0..n {
            s.add("E", &[i as u64, i as u64 + 1]);
        }
        s
    };
    let cycle = |n: usize| {
        let mut s = Structure::new(sch.clone());
        for i in 0..n {
            s.add("E", &[i as u64, ((i + 1) % n) as u64]);
        }
        s
    };
    for (src, tgt, expect) in [
        (path(2), path(4), 3u64),
        (cycle(3), cycle(3), 3),
        (cycle(3), cycle(4), 0),
        (path(3), cycle(2), 2),
    ] {
        assert_eq!(hom_count(&src, &tgt).to_u64(), Some(expect));
        assert_eq!(reference::hom_count(&src, &tgt).to_u64(), Some(expect));
    }
}
